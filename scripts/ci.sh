#!/bin/sh
# Single-entry CI gate: release build, full test suite, clippy (warnings
# are errors, all crates), and the seven end-to-end smokes (tracing,
# record/replay, engine throughput, runtime overhead/METG, the elastic
# controller, streaming observability at scale, and the charm-kv serving
# workload — the last five also validate the committed BENCH_engine.json /
# BENCH_overhead.json / BENCH_elastic.json / BENCH_scale.json /
# BENCH_service.json).
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release -q

echo "==> cargo test"
cargo test -q

echo "==> lint (clippy -D warnings, all crates)"
sh scripts/lint.sh

echo "==> trace smoke"
sh scripts/trace_smoke.sh

echo "==> replay smoke"
sh scripts/replay_smoke.sh

echo "==> bench smoke"
sh scripts/bench_smoke.sh

echo "==> overhead smoke"
sh scripts/overhead_smoke.sh

echo "==> elastic smoke"
sh scripts/elastic_smoke.sh

echo "==> scale smoke"
sh scripts/scale_smoke.sh

echo "==> service smoke"
sh scripts/service_smoke.sh

echo "CI OK"
