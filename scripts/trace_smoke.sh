#!/bin/sh
# Tracing smoke test: run the projections-lite demo driver (which already
# self-checks busy-time agreement, streamed-vs-in-memory byte equality,
# and the critical-path bound, exiting non-zero on mismatch), then
# validate that the exported Chrome trace is well-formed JSON with the
# expected event phases and one track per PE plus the RTS track, and that
# the *streamed* Chrome/CSV files — written incrementally by file sinks
# during the run — are themselves well-formed and mutually consistent.
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin projections_lite

python3 - <<'EOF'
import json

with open("results/trace_leanmd.json") as f:
    trace = json.load(f)

events = trace["traceEvents"]
assert trace.get("displayTimeUnit") == "ms", "Perfetto display unit missing"
assert events, "trace has no events"

phases = {e["ph"] for e in events}
assert "X" in phases, "no complete (entry-method) spans"
assert "M" in phases, "no thread_name metadata"
assert "i" in phases, "no instant (RTS) events"
assert "C" in phases, "no counter (busy) events"

names = {e["args"]["name"] for e in events if e["ph"] == "M"}
assert "RTS" in names, "RTS track missing"
pe_tracks = {n for n in names if n.startswith("PE ")}
assert len(pe_tracks) >= 2, "expected one named track per PE"

for e in events:
    assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
    if e["ph"] == "X":
        assert float(e["dur"]) >= 0.0

print(f"trace smoke ok: {len(events)} events, {len(pe_tracks)} PE tracks + RTS")
EOF

python3 - <<'EOF'
import json

# The streamed Chrome trace is written record by record during the run;
# it must still parse as one well-formed JSON document with the same
# phases and metadata tracks as the in-memory export.
with open("results/trace_leanmd_stream.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert trace.get("displayTimeUnit") == "ms", "Perfetto display unit missing"
assert events, "streamed trace has no events"
phases = {e["ph"] for e in events}
for ph in ("X", "M", "i", "C"):
    assert ph in phases, f"streamed trace missing phase {ph}"
meta = sum(1 for e in events if e["ph"] == "M")

# The streamed CSV: a header plus one row per non-metadata record, the
# same population the Chrome stream carries.
with open("results/trace_leanmd_stream.csv") as f:
    lines = f.read().splitlines()
assert lines[0] == "t_ns,track,kind,name,dur_ns,bytes,a,b", "CSV header changed"
rows = len(lines) - 1
assert rows > 0, "streamed CSV has no rows"
assert rows == len(events) - meta, \
    f"CSV rows {rows} != Chrome events {len(events)} - {meta} metadata"

print(f"stream smoke ok: {rows} records streamed to Chrome JSON + CSV")
EOF

echo "trace smoke test passed"
