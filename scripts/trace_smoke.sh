#!/bin/sh
# Tracing smoke test: run the projections-lite demo driver (which already
# self-checks busy-time agreement and exits non-zero on mismatch), then
# validate that the exported Chrome trace is well-formed JSON with the
# expected event phases and one track per PE plus the RTS track.
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin projections_lite

python3 - <<'EOF'
import json

with open("results/trace_leanmd.json") as f:
    trace = json.load(f)

events = trace["traceEvents"]
assert trace.get("displayTimeUnit") == "ms", "Perfetto display unit missing"
assert events, "trace has no events"

phases = {e["ph"] for e in events}
assert "X" in phases, "no complete (entry-method) spans"
assert "M" in phases, "no thread_name metadata"
assert "i" in phases, "no instant (RTS) events"
assert "C" in phases, "no counter (busy) events"

names = {e["args"]["name"] for e in events if e["ph"] == "M"}
assert "RTS" in names, "RTS track missing"
pe_tracks = {n for n in names if n.startswith("PE ")}
assert len(pe_tracks) >= 2, "expected one named track per PE"

for e in events:
    assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
    if e["ph"] == "X":
        assert float(e["dur"]) >= 0.0

print(f"trace smoke ok: {len(events)} events, {len(pe_tracks)} PE tracks + RTS")
EOF

echo "trace smoke test passed"
