#!/bin/sh
# Scale-observability smoke: run the reduced scale_bench matrix — a 128K-PE
# stencil under full streaming (rings at capacity 0, Chrome+CSV sinks) with
# a hard peak-RSS ceiling, plus an off-vs-stream overhead arm — then
# schema-check the committed BENCH_scale.json (which must hold the full
# matrix including the 1M-PE point).
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin scale_bench -- --smoke

python3 - <<'EOF'
import json

with open("BENCH_scale.json") as f:
    b = json.load(f)

assert b["bench"] == "scale", "wrong bench id"
assert b["mode"] == "full", "committed BENCH_scale.json must be a full run"

scale = b["scale"]
assert [p["pes"] for p in scale] == [131072, 262144, 524288, 1048576], \
    "scale arm must cover 128K-1M simulated PEs"
for p in scale:
    for k in ("steps", "events", "entries", "messages", "wall_s",
              "events_per_sec", "ring_dropped", "sink_records",
              "sink_bytes", "peak_rss_bytes", "rss_bytes_per_pe"):
        assert k in p, f"point {p['pes']} missing {k}"
    assert p["peak_rss_bytes"] > 0, "VmHWM missing"
    assert p["sink_records"] > 0, "sinks saw nothing"
    assert p["ring_dropped"] > 0, "capacity-0 rings must shed"

big = scale[-1]
assert big["peak_rss_bytes"] < 8 * 2**30, "1M-PE point over the 8 GiB ceiling"
# Bounded memory: RSS per PE must not grow with PE count (at-most-linear).
assert big["rss_bytes_per_pe"] <= scale[0]["rss_bytes_per_pe"] * 1.5, \
    "super-linear memory growth across the scale arm"

arms = [a["arm"] for a in b["overhead"]]
assert arms == ["off", "summary_only", "stream"], f"overhead arms {arms}"
off = next(a for a in b["overhead"] if a["arm"] == "off")
assert all(a["events"] == off["events"] for a in b["overhead"]), \
    "overhead arms ran different virtual work"

print("BENCH_scale.json schema ok: 1M-PE point streamed %d records, "
      "peak RSS %.2f GiB (%.0f B/PE)" % (
          big["sink_records"], big["peak_rss_bytes"] / 2**30,
          big["rss_bytes_per_pe"]))
EOF

echo "scale smoke test passed"
