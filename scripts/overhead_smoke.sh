#!/bin/sh
# Runtime-overhead (METG) smoke test: run the Task-Bench-style sweep in
# --smoke mode (~1 s; every point self-checks same-seed determinism
# digests), then validate the committed BENCH_overhead.json — schema, the
# METG(50%) = min-over-sweep invariant, and instrumentation monotonicity
# (tracing or recording can never be *cheaper* than off, modulo host
# noise). CI fails if the overhead record is missing or malformed.
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin overhead_bench -- --smoke

python3 - <<'PYEOF'
import json

with open("BENCH_overhead.json") as f:
    doc = json.load(f)

for k in ["bench", "mode", "note", "host_cores", "pes", "configs"]:
    assert k in doc, f"BENCH_overhead.json missing top-level key {k!r}"
assert doc["bench"] == "overhead", f"unexpected bench id {doc['bench']!r}"
assert doc["host_cores"] >= 1, "host_cores must be recorded"

configs = {c["name"]: c for c in doc["configs"]}
assert len(configs) >= 3, f"need >= 3 instrumentation configs, got {len(configs)}"
assert "baseline" in configs, "baseline (tracing off, recording off) config required"

for name, c in configs.items():
    for k in ["tracing", "recording", "points", "metg_50_ns", "overhead_vs_baseline"]:
        assert k in c, f"config {name!r} missing {k!r}"
    assert len(c["points"]) >= 3, f"{name}: need >= 3 sweep points"
    densities = [p["tasks_per_pe_per_step"] for p in c["points"]]
    assert densities == sorted(densities) and len(set(densities)) == len(densities), (
        f"{name}: density axis must be strictly increasing, got {densities}"
    )
    for p in c["points"]:
        for k in ["tasks_per_pe_per_step", "tasks", "wall_s", "ns_per_task"]:
            assert k in p, f"{name}: point missing {k!r}"
        assert p["tasks"] > 0 and p["wall_s"] > 0 and p["ns_per_task"] > 0, (
            f"{name}: degenerate point {p}"
        )
    # METG(50%) is by definition the best per-task overhead over the sweep.
    best = min(p["ns_per_task"] for p in c["points"])
    assert abs(c["metg_50_ns"] - best) <= 1e-6 * best + 0.1, (
        f"{name}: metg_50_ns={c['metg_50_ns']} != min(ns_per_task)={best}"
    )

# Monotonicity along the instrumentation ladder: turning observability ON
# cannot beat having it off. 15% tolerance absorbs 1-core host noise.
base = configs["baseline"]["metg_50_ns"]
for name, c in configs.items():
    if name == "baseline":
        assert abs(c["overhead_vs_baseline"] - 1.0) < 1e-9, "baseline must be 1.0x"
        continue
    assert c["metg_50_ns"] >= base * 0.85, (
        f"{name}: METG {c['metg_50_ns']:.0f} ns below baseline {base:.0f} ns — "
        "instrumentation cannot be cheaper than off"
    )
    ratio = c["metg_50_ns"] / base
    assert abs(c["overhead_vs_baseline"] - ratio) < 0.01, (
        f"{name}: overhead_vs_baseline={c['overhead_vs_baseline']} != recomputed {ratio:.3f}"
    )

print(f"BENCH_overhead.json ok: {len(configs)} configs, baseline METG(50%) "
      f"{base:.0f} ns/task on {doc['host_cores']} core(s)")
PYEOF

echo "overhead smoke test passed"
