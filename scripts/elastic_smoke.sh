#!/bin/sh
# Elastic-controller smoke test: run the policy sweep + preemption pair in
# --smoke mode (tiny configs; the pair still asserts proactive evacuation
# beats checkpoint restart, with zero rollbacks, at smoke scale), then
# validate the committed BENCH_elastic.json — CI fails if the Pareto
# record is missing, malformed, or no longer shows an elastic policy
# dominating the static baseline under interference.
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin elastic_bench -- --smoke

python3 - <<'PYEOF'
import json

with open("BENCH_elastic.json") as f:
    doc = json.load(f)

for k in ("bench", "mode", "note", "apps"):
    assert k in doc, f"BENCH_elastic.json missing top-level key {k!r}"
assert doc["bench"] == "elastic", f"unexpected bench id {doc['bench']!r}"
assert doc["mode"] == "full", "committed record must come from a full run"

names = {a["name"] for a in doc["apps"]}
assert names == {"stencil2d", "leanmd"}, f"app set mismatch: {sorted(names)}"

expected_policies = {"static", "observe", "hysteresis-conservative", "hysteresis-aggressive"}
for app in doc["apps"]:
    name = app["name"]
    rows = {r["policy"]: r for r in app["policies"]}
    assert set(rows) == expected_policies, f"{name}: policy set mismatch: {sorted(rows)}"
    for p, r in rows.items():
        for k in ("makespan_s", "pe_seconds", "evacuations", "restarts",
                  "reconfigures", "final_alive_pes", "degraded"):
            assert k in r, f"{name}/{p}: missing {k!r}"
        assert r["makespan_s"] > 0, f"{name}/{p}: zero makespan"
        assert r["pe_seconds"] > 0, f"{name}/{p}: zero PE-seconds"

    # Observation must be free: same virtual makespan as static.
    assert abs(rows["static"]["makespan_s"] - rows["observe"]["makespan_s"]) < 1e-9, (
        f"{name}: observe-only controller changed the makespan"
    )

    # The Pareto claim: under interference some elastic policy beats static
    # on cost without losing time.
    assert app["elastic_dominates_static"] is True, (
        f"{name}: no elastic policy dominates the static baseline any more"
    )
    st = rows["static"]
    assert any(
        r["makespan_s"] <= st["makespan_s"] + 1e-9 and r["pe_seconds"] < st["pe_seconds"]
        for p, r in rows.items() if p.startswith("hysteresis")
    ), f"{name}: dominance flag contradicts the rows"

    # The preemption pair: proactive evacuation survives with zero
    # rollbacks and beats the zero-warning restart path outright.
    pair = app["preemption"]
    assert pair["evac_rollbacks"] == 0, f"{name}: proactive drain rolled back"
    assert pair["evacuations"] >= 1, f"{name}: no evacuation recorded"
    assert pair["restart_rollbacks"] >= 1, f"{name}: restart arm never rolled back"
    assert pair["evac_makespan_s"] < pair["restart_makespan_s"], (
        f"{name}: evacuation ({pair['evac_makespan_s']:.6f}s) no faster than "
        f"restart ({pair['restart_makespan_s']:.6f}s)"
    )

print(f"BENCH_elastic.json ok: {len(doc['apps'])} apps, "
      "elastic dominates static under interference, "
      "proactive evacuation beats checkpoint restart in both")
PYEOF

echo "elastic smoke test passed"
