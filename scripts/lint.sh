#!/bin/sh
# Lint gate for the runtime-critical crates: warnings are errors.
# (Scoped to charm-core and charm-machine; widen as other crates are
# brought up to clippy-clean.)
set -eu
cd "$(dirname "$0")/.."
cargo clippy -q -p charm-core -p charm-machine --all-targets -- -D warnings
echo "clippy clean: charm-core, charm-machine"
