#!/bin/sh
# Lint gate for the runtime-critical crates: warnings are errors.
# (Scoped to the crates brought up to clippy-clean; widen as the rest
# follow.)
set -eu
cd "$(dirname "$0")/.."
cargo clippy -q -p charm-core -p charm-machine -p charm-apps -p charm-bench \
    --all-targets -- -D warnings
echo "clippy clean: charm-core, charm-machine, charm-apps, charm-bench"
