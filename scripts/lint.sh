#!/bin/sh
# Lint gate for every workspace crate: warnings are errors.
set -eu
cd "$(dirname "$0")/.."
cargo clippy -q -p charm-pup -p charm-machine -p charm-core -p charm-lb \
    -p charm-tram -p charm-sort -p charm-ampi -p charm-threaded \
    -p charm-apps -p charm-replay -p charm-bench \
    --all-targets -- -D warnings
echo "clippy clean: all workspace crates"
