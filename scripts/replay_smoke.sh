#!/bin/sh
# Record/replay smoke test: run the race-hunt driver (which self-checks
# that the seeded order-sensitivity bug is flagged with a two-message
# witness and that the commutative control stays clean) and the what-if
# driver (which self-checks every cross-machine makespan prediction against
# an actual run, 10% tolerance), then validate the persisted baseline log's
# on-disk header.
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin race_hunt
cargo run --release -q -p charm-bench --bin whatif

python3 - <<'PYEOF'
import struct

with open("results/race_hunt_baseline.rlog", "rb") as f:
    data = f.read()

assert data[:8] == b"CHMRLOG1", "bad replay-log magic"
version = struct.unpack("<I", data[8:12])[0]
assert version == 1, f"unexpected log version {version}"
body_len = struct.unpack("<Q", data[12:20])[0]
assert len(data) == 20 + body_len + 8, "log length mismatch"

# FNV-1a over the body must match the stored checksum.
h = 0xCBF29CE484222325
for b in data[20:20 + body_len]:
    h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
stored = struct.unpack("<Q", data[20 + body_len:])[0]
assert h == stored, "log checksum mismatch"

print(f"replay log ok: {body_len} body bytes, checksum verified")
PYEOF

echo "replay smoke test passed"
