#!/bin/sh
# charm-kv service smoke test: run the load x LB x elastic sweep in
# --smoke mode (the LB-beats-noLB p99 claim, the observation-is-free
# invariant, per-arm same-seed determinism, and the acked-PUT durability
# check are all asserted inside the binary at smoke scale too), then
# validate the committed BENCH_service.json — CI fails if the SLO record
# is missing, malformed, internally inconsistent, or no longer shows
# measurement-based LB beating the unbalanced baseline on tail latency.
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin service_bench -- --smoke

python3 - <<'PYEOF'
import json

with open("BENCH_service.json") as f:
    doc = json.load(f)

for k in ("bench", "mode", "note", "machine", "arms", "mis_scaling_demo"):
    assert k in doc, f"BENCH_service.json missing top-level key {k!r}"
assert doc["bench"] == "service", f"unexpected bench id {doc['bench']!r}"
assert doc["mode"] == "full", "committed record must come from a full run"

FIELDS = ("offered_load", "lb", "elastic", "tram", "offered_rps",
          "throughput_rps", "acked", "retries", "p50_s", "p99_s", "p999_s",
          "mean_latency_s", "duration_s", "lb_rounds", "migrations",
          "reconfigures", "pe_seconds", "avg_utilization", "messages")

arms = doc["arms"]
for a in arms:
    tag = f"load={a.get('offered_load')} lb={a.get('lb')} elastic={a.get('elastic')} tram={a.get('tram')}"
    for k in FIELDS:
        assert k in a, f"{tag}: missing {k!r}"
    # SLO sanity: percentiles ordered, everything served, time moved.
    assert 0 < a["p50_s"] <= a["p99_s"] <= a["p999_s"], f"{tag}: percentiles out of order"
    assert a["acked"] > 0 and a["throughput_rps"] > 0, f"{tag}: no traffic served"
    assert a["duration_s"] > 0 and a["pe_seconds"] > 0, f"{tag}: empty run"
    if a["lb"]:
        assert a["lb_rounds"] > 0 and a["migrations"] > 0, f"{tag}: LB arm never balanced"

loads = sorted({a["offered_load"] for a in arms})
assert len(loads) >= 3, f"expected a load sweep, got {loads}"

def arm(load, lb, elastic, tram=False):
    match = [a for a in arms if a["offered_load"] == load and a["lb"] == lb
             and a["elastic"] == elastic and a["tram"] == tram]
    assert len(match) == 1, f"arm (load={load}, lb={lb}, elastic={elastic}, tram={tram}) not unique: {len(match)}"
    return match[0]

for load in loads:
    for lb in (False, True):
        st, ob = arm(load, lb, False), arm(load, lb, True)
        # Observation is free: the in-the-loop controller must not perturb
        # the service at all.
        assert ob["reconfigures"] == 0, f"load {load}: observe-only controller acted"
        assert abs(st["duration_s"] - ob["duration_s"]) < 1e-9, (
            f"load {load} lb={lb}: observe-only controller changed the timeline"
        )
    # The headline claim at every load: LB-on beats LB-off on p99 under
    # the drifting hotspot.
    off, on = arm(load, False, False), arm(load, True, False)
    assert on["p99_s"] < off["p99_s"], (
        f"load {load}: LB no longer beats the unbalanced baseline on p99 "
        f"({on['p99_s']:.6f}s vs {off['p99_s']:.6f}s)"
    )

# TRAM arm: aggregation re-routes every request over the mesh and must
# still serve all of it within the same SLO order of magnitude. (Delivery
# counts go *up* — each batch hops through intermediates — the recorded
# trade is batching vs added hops, so no direction is asserted on
# messages.)
tram = arm(loads[len(loads) // 2], True, False, True)
direct = arm(loads[len(loads) // 2], True, False, False)
assert tram["acked"] == direct["acked"], "TRAM arm dropped traffic"
assert tram["messages"] != direct["messages"], "TRAM arm routed nothing differently"

# The mis-scaling demo: an acting autoscaler under imbalance must be
# recorded as strictly worse than the static arm on both axes.
th = doc["mis_scaling_demo"]["thrash"]
base = arm(th["offered_load"], False, False)
assert th["reconfigures"] > 0, "mis-scaling demo never reconfigured"
assert th["p99_s"] > base["p99_s"] and th["pe_seconds"] > base["pe_seconds"], (
    "mis-scaling demo is not worse than static — the cautionary tale evaporated"
)

print(f"BENCH_service.json ok: {len(arms)} arms over loads {loads}, "
      "LB beats no-LB on p99 at every load, observation is free, "
      "TRAM aggregates, mis-scaling documented")
PYEOF

echo "service smoke test passed"
