#!/bin/sh
# Engine-throughput smoke test: run the benchmark matrix in --smoke mode
# (tiny configs, ~1 s; each workload still self-checks its same-seed
# determinism digest), then validate the committed BENCH_engine.json —
# CI fails if the benchmark record is missing or malformed, so the perf
# trajectory can never silently rot.
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin engine_bench -- --smoke

python3 - <<'PYEOF'
import json

with open("BENCH_engine.json") as f:
    doc = json.load(f)

required_top = ["bench", "mode", "workloads"]
for k in required_top:
    assert k in doc, f"BENCH_engine.json missing top-level key {k!r}"
assert doc["bench"] == "engine", f"unexpected bench id {doc['bench']!r}"

expected = {"ping_pipe", "tram_flood", "stencil2d", "leanmd", "pdes"}
names = {w["name"] for w in doc["workloads"]}
assert names == expected, f"workload set mismatch: {sorted(names)}"

for w in doc["workloads"]:
    for k in (
        "events", "messages", "wall_s", "events_per_sec", "msgs_per_sec",
        "baseline_events_per_sec", "speedup_vs_baseline", "final_state_digest",
    ):
        assert k in w, f"workload {w.get('name')!r} missing {k!r}"
    assert w["events"] > 0, f"{w['name']}: no events recorded"
    assert w["wall_s"] > 0, f"{w['name']}: zero wall time"
    assert w["events_per_sec"] > 0, f"{w['name']}: zero throughput"

pp = next(w for w in doc["workloads"] if w["name"] == "ping_pipe")
assert pp["speedup_vs_baseline"] >= 2.0, (
    f"ping_pipe speedup regressed below the 2x floor: "
    f"{pp['speedup_vs_baseline']:.2f}x"
)

print(f"BENCH_engine.json ok: {len(doc['workloads'])} workloads, "
      f"ping_pipe {pp['speedup_vs_baseline']:.2f}x vs pre-opt baseline")
PYEOF

echo "bench smoke test passed"
