#!/bin/sh
# Engine-throughput smoke test: run the benchmark matrix in --smoke mode
# (tiny configs, ~1 s; each workload still self-checks its same-seed
# determinism digest), run it again with two worker threads (every workload
# must produce a final-state digest identical to the sequential engine's —
# engine_bench asserts this internally and fails if no workload took the
# parallel path), then validate the committed BENCH_engine.json — CI fails
# if the benchmark record is missing or malformed, so the perf trajectory
# can never silently rot.
set -eu
cd "$(dirname "$0")/.."

cargo run --release -q -p charm-bench --bin engine_bench -- --smoke
cargo run --release -q -p charm-bench --bin engine_bench -- --smoke --threads 2

python3 - <<'PYEOF'
import json

with open("BENCH_engine.json") as f:
    doc = json.load(f)

required_top = ["bench", "mode", "workloads", "host_cores", "parallel_scaling"]
for k in required_top:
    assert k in doc, f"BENCH_engine.json missing top-level key {k!r}"
assert doc["bench"] == "engine", f"unexpected bench id {doc['bench']!r}"
assert doc["host_cores"] >= 1, "host_cores must be recorded"

expected = {"ping_pipe", "tram_flood", "stencil2d", "leanmd", "pdes"}
names = {w["name"] for w in doc["workloads"]}
assert names == expected, f"workload set mismatch: {sorted(names)}"

for w in doc["workloads"]:
    for k in (
        "events", "messages", "wall_s", "events_per_sec", "msgs_per_sec",
        "baseline_events_per_sec", "speedup_vs_baseline", "final_state_digest",
    ):
        assert k in w, f"workload {w.get('name')!r} missing {k!r}"
    assert w["events"] > 0, f"{w['name']}: no events recorded"
    assert w["wall_s"] > 0, f"{w['name']}: zero wall time"
    assert w["events_per_sec"] > 0, f"{w['name']}: zero throughput"

# The hot-path work must not rot away. Validate the *whole matrix*: the
# geometric mean of speedup-vs-baseline across all five workloads, not a
# single flattering workload. The committed record shows >= 1.35x; the
# floor sits lower because future re-measurements happen on 1-core CI
# hosts where steal-time noise can shave ~10-20% off any single run.
import math
speedups = {w["name"]: w["speedup_vs_baseline"] for w in doc["workloads"]}
geomean = math.exp(sum(math.log(s) for s in speedups.values()) / len(speedups))
assert geomean >= 1.25, (
    f"five-workload geomean speedup regressed below the 1.25x floor: "
    f"{geomean:.2f}x ({', '.join(f'{n} {s:.2f}x' for n, s in sorted(speedups.items()))})"
)
pp = next(w for w in doc["workloads"] if w["name"] == "ping_pipe")

# Multi-worker scaling entries: all five workloads, right thread matrix,
# sane numbers, and the parallel engine actually engaged at every threads>1
# point (a silent sequential fallback would fake perfect scaling).
scaling = {s["name"]: s for s in doc["parallel_scaling"]}
assert set(scaling) == expected, (
    f"parallel_scaling workload set mismatch: {sorted(scaling)}"
)
for name, s in scaling.items():
    threads = [p["threads"] for p in s["points"]]
    assert threads == [1, 2, 4, 8], f"{name}: thread matrix {threads} != [1, 2, 4, 8]"
    for p in s["points"]:
        assert p["events_per_sec"] > 0, f"{name}@{p['threads']}: zero throughput"
        assert p["speedup_vs_seq"] > 0, f"{name}@{p['threads']}: bad speedup"
        assert p["went_parallel"] == (p["threads"] > 1), (
            f"{name}@{p['threads']}: went_parallel={p['went_parallel']} — "
            "engine selection does not match the thread count"
        )
        assert p["barriers_per_kevent"] >= 0, f"{name}@{p['threads']}: bad wait cadence"
    base = s["points"][0]
    assert abs(base["speedup_vs_seq"] - 1.0) < 1e-9, f"{name}: seq point not 1.0x"

# The adaptive-lookahead work itself: leanmd — the fine-grained workload
# the lockstep engine lost worst on (0.11x at 2T before per-pair horizons)
# — must stay at least break-even-ish at 2 workers, and the sparse-traffic
# workloads must actually elide barriers (cross α-cell edges without a
# blocking wait). Floors sit below the committed record (leanmd >= 0.5x
# asserted vs ~0.6-0.9x measured) for 1-core CI steal-time headroom.
lean2 = next(p for p in scaling["leanmd"]["points"] if p["threads"] == 2)
assert lean2["speedup_vs_seq"] >= 0.5, (
    f"leanmd@2T regressed to {lean2['speedup_vs_seq']:.2f}x (< 0.5x floor): "
    "the adaptive engine is losing to sequential on fine-grained traffic again"
)
for name in ("leanmd", "pdes", "stencil2d"):
    for p in scaling[name]["points"]:
        if p["threads"] > 1:
            assert p["barriers_elided"] > 0, (
                f"{name}@{p['threads']}: zero barriers elided — the adaptive "
                "scheme degenerated into lockstep"
            )
            assert p["lockstep_barriers_per_kevent"] >= p["barriers_per_kevent"], (
                f"{name}@{p['threads']}: adaptive engine waits more often than "
                "the lockstep fallback it replaces"
            )

print(f"BENCH_engine.json ok: {len(doc['workloads'])} workloads, "
      f"geomean {geomean:.2f}x vs pre-opt baseline "
      f"(ping_pipe {pp['speedup_vs_baseline']:.2f}x), "
      f"{len(scaling)} parallel-scaling matrices on {doc['host_cores']} core(s)")
PYEOF

echo "bench smoke test passed"
