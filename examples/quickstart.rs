//! Quickstart: the migratable-objects model in one file.
//!
//! Builds a small chare array, drives message-driven execution with a
//! reduction, migrates a chare, and then runs the same program shape on
//! real OS threads. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use charm_rs::{ArrayProxy, Callback, Chare, Ctx, Ix, Pup, Puper, RedOp, RedValue, Runtime, SysEvent};

/// A chare that squares numbers it receives and contributes the result.
#[derive(Default)]
struct Squarer {
    computed: u64,
}

impl Pup for Squarer {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.computed);
    }
}

impl Chare for Squarer {
    type Msg = i64;

    fn on_message(&mut self, x: i64, ctx: &mut Ctx<'_>) {
        self.computed += 1;
        // Charge some virtual compute (flops) for the squaring.
        ctx.work(1e5);
        let me = ArrayProxy::<Squarer>::from_id(ctx.my_id().array);
        ctx.contribute(
            me,
            1, // reduction tag
            RedValue::I64(x * x),
            RedOp::Sum,
            Callback::ToChare {
                array: ctx.my_id().array,
                ix: Ix::i1(0),
            },
        );
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { value, .. } = ev {
            ctx.log_metric("sum_of_squares", value.as_i64() as f64);
            ctx.exit();
        }
    }
}

fn simulated() {
    // 1) A runtime over a simulated 8-PE machine.
    let mut rt = Runtime::homogeneous(8);

    // 2) Over-decomposition: 32 chares on 8 PEs.
    let arr = rt.create_array::<Squarer>("squarers");
    for i in 0..32 {
        rt.insert(arr, Ix::i1(i), Squarer::default(), None);
    }

    // 3) Asynchronous message-driven execution: every chare squares its
    //    index; a spanning-tree reduction sums the results to element 0.
    for i in 0..32 {
        rt.send(arr, Ix::i1(i), i);
    }
    let summary = rt.run();

    let sum = rt.metric("sum_of_squares").last().expect("reduced").1;
    let expect: i64 = (0..32).map(|i| i * i).sum();
    println!(
        "simulated: sum of squares = {sum} (expected {expect}), \
         {} entry methods in {} of virtual time",
        summary.entries, summary.end_time
    );
    assert_eq!(sum as i64, expect);
}

fn threaded() {
    // The same model with genuine parallelism: actors on OS threads.
    use charm_rs::threaded::{Actor, ActorId, TCtx, ThreadedRuntime};

    struct SquareActor;
    impl Actor for SquareActor {
        type Msg = i64;
        fn on_message(&mut self, x: i64, ctx: &mut TCtx<'_>) {
            ctx.contribute(1, (x * x) as f64);
        }
    }

    let mut rt = ThreadedRuntime::new(4);
    let ids: Vec<ActorId> = (0..32).map(|_| rt.spawn(SquareActor, None)).collect();
    let rx = rt.reduction(1, ids.len());
    for (i, &id) in ids.iter().enumerate() {
        rt.send::<SquareActor>(id, i as i64);
    }
    let sum = rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("reduction completes");
    let expect: i64 = (0..32).map(|i| i * i).sum();
    println!("threaded:  sum of squares = {sum} (expected {expect})");
    assert_eq!(sum as i64, expect);
}

fn main() {
    simulated();
    threaded();
    println!("quickstart OK");
}
