//! Parallel discrete event simulation with message aggregation — the
//! paper's PHOLD/YAWNS workload (§IV-E) showing the TRAM crossover: at high
//! event volume, aggregating fine-grained event messages through a virtual
//! 2-D grid of PEs beats direct sends.
//!
//! ```sh
//! cargo run --release --example pdes_with_tram
//! ```

use charm_rs::apps::pdes::{run, PdesConfig};
use charm_rs::machine::presets;
use charm_rs::tram::TramConfig;
use charm_rs::SimTime;

fn config(events_per_lp: usize, tram: bool) -> PdesConfig {
    PdesConfig {
        machine: presets::stampede(32),
        lps_per_pe: 64,
        initial_events_per_lp: events_per_lp,
        windows: 14,
        tram: tram.then(|| TramConfig {
            ndims: 2,
            flush_threshold: 64,
            flush_interval: Some(SimTime::from_micros(30)),
        }),
        ..PdesConfig::default()
    }
}

fn main() {
    println!("PHOLD under YAWNS on 32 simulated PEs, 2048 LPs:");
    for &(label, events) in &[("low volume (4 ev/LP)", 4usize), ("high volume (96 ev/LP)", 96)] {
        let direct = run(config(events, false));
        let tram = run(config(events, true));
        println!(
            "  {label}: direct {:>6.2}M ev/s vs TRAM {:>6.2}M ev/s  -> {}",
            direct.event_rate / 1e6,
            tram.event_rate / 1e6,
            if tram.event_rate > direct.event_rate {
                "TRAM wins"
            } else {
                "direct wins"
            }
        );
        assert_eq!(
            direct.events_executed, tram.events_executed,
            "same events either way"
        );
    }
    println!("(the paper's Fig. 15b crossover: aggregation pays at high volume only)");
}
