//! Molecular dynamics with adaptive load balancing — the paper's LeanMD
//! workload (§IV-B) end to end: a clustered atom distribution creates
//! imbalance; the HybridLB balancer restores scalability.
//!
//! ```sh
//! cargo run --release --example molecular_dynamics
//! ```

use charm_rs::apps::leanmd::{run, LeanMdConfig};
use charm_rs::machine::presets;
use charm_rs::Strategy;

fn main() {
    let mk = |lb: bool| LeanMdConfig {
        machine: presets::bgq(64),
        cells_per_dim: 8,
        atoms_per_cell: 60,
        density_peak: 8.0, // strongly clustered molecule
        steps: 12,
        lb_every: if lb { 3 } else { 0 },
        strategy: lb.then(|| Box::new(charm_lb::HybridLb::default()) as Box<dyn Strategy>),
        ..LeanMdConfig::default()
    };

    println!("LeanMD: 512 cells / 7168 pairwise computes on 64 simulated BG/Q PEs");
    let nolb = run(mk(false));
    let lb = run(mk(true));

    let tail = |r: &charm_rs::apps::AppRun| {
        let d = r.step_durations();
        d[d.len() - 4..].iter().sum::<f64>() / 4.0
    };
    println!("  without LB: {:>8.3} ms/step (steady state)", tail(&nolb) * 1e3);
    println!(
        "  with HybridLB: {:>5.3} ms/step after {} balancing rounds",
        tail(&lb) * 1e3,
        lb.lb_rounds
    );
    println!(
        "  improvement: {:.0}% (paper reports >= 40% for LeanMD at scale)",
        100.0 * (tail(&nolb) - tail(&lb)) / tail(&nolb)
    );
    assert!(tail(&lb) < tail(&nolb));
}
