//! HPC in the cloud (§IV-F) + malleability (§III-D) in one run: a
//! Stencil2D job on slow Ethernet suffers an interfering VM; RTS-triggered
//! load balancing absorbs it. Then a LeanMD job shrinks from 32 to 16 PEs
//! and expands back, paying only the reconfiguration spikes.
//!
//! ```sh
//! cargo run --release --example cloud_elasticity
//! ```

use charm_rs::apps::leanmd::{run_with_runtime, LeanMdConfig};
use charm_rs::apps::stencil::{run, StencilConfig};
use charm_rs::machine::{presets, InterferenceWindow};
use charm_rs::SimTime;

fn main() {
    // ---- interference + heterogeneity-aware LB -----------------------------
    println!("Stencil2D on 16 cloud VMs; a noisy neighbor lands on VM 0 at t=40ms:");
    let mk = |with_lb: bool| {
        let mut machine = presets::cloud(16);
        machine.speed = machine.speed.clone().with_interference(InterferenceWindow {
            first_pe: 0,
            num_pes: 1,
            start: SimTime::from_millis(40),
            end: SimTime::MAX,
            speed_factor: 0.4,
        });
        let mut c = StencilConfig::cloud_4k(machine, 4);
        c.blocks_per_side = 8;
        c.steps = 40;
        if with_lb {
            c.strategy = Some(Box::new(charm_lb::RefineLb::default()));
            c.lb_period = Some(SimTime::from_millis(30));
        }
        c
    };
    let nolb = run(mk(false));
    let lb = run(mk(true));
    let tail = |r: &charm_rs::apps::AppRun| {
        let d = r.step_durations();
        d[d.len() - 5..].iter().sum::<f64>() / 5.0
    };
    println!(
        "  steady iteration time: no LB {:.2} ms; RTS-triggered LB {:.2} ms ({} rounds)",
        tail(&nolb) * 1e3,
        tail(&lb) * 1e3,
        lb.lb_rounds
    );
    assert!(tail(&lb) < tail(&nolb));

    // ---- shrink / expand ----------------------------------------------------
    println!("LeanMD shrink 32->16->32 (CCS-style commands):");
    let (run, rt) = run_with_runtime(LeanMdConfig {
        machine: presets::stampede(32),
        cells_per_dim: 6,
        atoms_per_cell: 80,
        density_peak: 1.0,
        steps: 260,
        lb_every: 20,
        strategy: Some(Box::new(charm_lb::GreedyLb)),
        reconfigure: vec![
            (SimTime::from_millis(300), 16),
            (SimTime::from_secs_f64(2.0), 32),
        ],
        ..LeanMdConfig::default()
    });
    for (i, &(at, cost)) in rt.metric("reconfigure_cost_s").iter().enumerate() {
        println!(
            "  {} at t={at:.2}s cost {cost:.2}s",
            if i == 0 { "shrink" } else { "expand" }
        );
    }
    println!(
        "  completed {} iterations across both reconfigurations; final PEs = {}",
        run.step_times.len(),
        rt.num_pes()
    );
    assert_eq!(rt.num_pes(), 32);
    println!("cloud_elasticity OK");
}
