//! Fault tolerance end to end (§III-B): an iterative application takes a
//! double in-memory checkpoint, a node is killed mid-run, and the runtime
//! rolls everything back and finishes the job — plus a disk checkpoint
//! restarted on a *different* number of PEs.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use charm_rs::{
    ArrayProxy, Callback, Chare, Ctx, Ix, Pup, Puper, RedOp, RedValue, Runtime, SimTime, SysEvent,
};

const WORKERS: i64 = 32;
const TARGET: u64 = 12;

#[derive(Default)]
struct Worker {
    done: u64,
}
impl Pup for Worker {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.done);
    }
}
impl Chare for Worker {
    type Msg = u64;
    fn on_message(&mut self, step: u64, ctx: &mut Ctx<'_>) {
        self.done = step + 1;
        ctx.work(5e6);
        let me = ArrayProxy::<Worker>::from_id(ctx.my_id().array);
        ctx.contribute(
            me,
            step as u32,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare {
                array: charm_rs::core::ArrayId(1),
                ix: Ix::i1(0),
            },
        );
    }
}

#[derive(Default)]
struct Main {
    step: u64,
}
impl Pup for Main {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.step);
    }
}
impl Chare for Main {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, _ctx: &mut Ctx<'_>) {}
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        let workers = ArrayProxy::<Worker>::from_id(charm_rs::core::ArrayId(0));
        match ev {
            SysEvent::Reduction { .. } => {
                self.step += 1;
                ctx.log_metric("step", self.step as f64);
                if self.step == 3 {
                    println!("  [t={:?}] taking double in-memory checkpoint", ctx.now());
                    ctx.start_mem_checkpoint(ctx.cb_self());
                } else if self.step < TARGET {
                    ctx.broadcast(workers, self.step);
                } else {
                    ctx.exit();
                }
            }
            SysEvent::CheckpointDone => {
                println!("  [t={:?}] checkpoint complete; continuing", ctx.now());
                ctx.broadcast(workers, self.step);
            }
            SysEvent::Restarted { failed_pe } => {
                println!(
                    "  [t={:?}] PE {failed_pe} crashed; rolled back to step {} — resuming",
                    ctx.now(),
                    self.step
                );
                ctx.broadcast(workers, self.step);
            }
            _ => {}
        }
    }
}

fn build(pes: usize) -> Runtime {
    let mut rt = Runtime::homogeneous(pes);
    let workers = rt.create_array::<Worker>("workers");
    let main = rt.create_array::<Main>("main");
    for i in 0..WORKERS {
        rt.insert(workers, Ix::i1(i), Worker::default(), None);
    }
    rt.insert(main, Ix::i1(0), Main::default(), Some(0));
    rt.broadcast(workers, 0u64);
    rt
}

fn main() {
    // ---- in-memory checkpoint + injected failure ---------------------------
    println!("in-memory checkpoint + failure recovery on 8 PEs:");
    let mut rt = build(8);
    rt.schedule_failure(SimTime::from_millis(200), 5);
    rt.run();
    let last = rt.metric("step").last().expect("progressed").1;
    println!(
        "  finished all {TARGET} steps (last step metric = {last}); \
         checkpoint took {:.3} ms, restart took {:.3} ms",
        rt.metric("ckpt_time_s")[0].1 * 1e3,
        rt.metric("restart_time_s")[0].1 * 1e3
    );
    assert_eq!(last as u64, TARGET);

    // ---- disk checkpoint, restart on a different PE count ------------------
    println!("disk checkpoint: 8 PEs -> restart on 3 PEs:");
    let dir = std::env::temp_dir().join("charm_rs_example_ckpt");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("ckpt.bin");

    let mut rt = build(8);
    rt.run_until(SimTime::from_millis(60));
    let done_steps = rt.metric("step").last().map(|&(_, v)| v as u64).unwrap_or(0);
    let info = rt.checkpoint_to_disk(&path).expect("write checkpoint");
    println!(
        "  wrote {} bytes at step {done_steps} (modeled parallel write: {})",
        info.bytes, info.virtual_cost
    );

    let mut rt2 = Runtime::homogeneous(3);
    rt2.create_array::<Worker>("workers");
    rt2.create_array::<Main>("main");
    rt2.restore_from_disk(&path).expect("restore");
    rt2.broadcast(
        ArrayProxy::<Worker>::from_id(charm_rs::core::ArrayId(0)),
        done_steps,
    );
    rt2.run();
    let last2 = rt2.metric("step").last().expect("progressed").1;
    println!("  restarted on 3 PEs and finished at step {last2}");
    assert_eq!(last2 as u64, TARGET);
    std::fs::remove_file(&path).ok();
    println!("fault_tolerance OK");
}
