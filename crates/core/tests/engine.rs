//! Engine-surface tests for the hot-path overhaul: host broadcasts (flat
//! and spanning-tree) deliver exactly once, limbo diagnostics stay sorted
//! under the fast-hashed map, and run summaries report wall-clock
//! throughput.

use charm_core::{Chare, Ctx, Ix, MachineConfig, Runtime};
use charm_pup::{Pup, Puper};

/// Counts every delivery it sees.
#[derive(Default)]
struct Counter {
    hits: u64,
}

impl Pup for Counter {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.hits);
    }
}

impl Chare for Counter {
    type Msg = u64;
    fn on_message(&mut self, _msg: u64, _ctx: &mut Ctx<'_>) {
        self.hits += 1;
    }
}

fn counter_array(pes: usize, n: i64) -> (Runtime, charm_core::ArrayProxy<Counter>) {
    let mut rt = Runtime::builder(MachineConfig::homogeneous(pes)).build();
    let arr = rt.create_array::<Counter>("counter");
    for i in 0..n {
        rt.insert(arr, Ix::i1(i), Counter::default(), Some((i as usize) % pes));
    }
    (rt, arr)
}

#[test]
fn broadcast_delivers_to_every_element_exactly_once() {
    let (mut rt, arr) = counter_array(4, 37);
    rt.broadcast(arr, 7u64);
    rt.run();
    for i in 0..37 {
        let hits = rt.inspect(arr, &Ix::i1(i), |c| c.hits).unwrap();
        assert_eq!(hits, 1, "element {i} saw {hits} deliveries");
    }
}

#[test]
fn broadcast_tree_delivers_to_every_element_exactly_once() {
    let (mut rt, arr) = counter_array(4, 37);
    rt.broadcast_tree(arr, 7u64);
    rt.run();
    for i in 0..37 {
        let hits = rt.inspect(arr, &Ix::i1(i), |c| c.hits).unwrap();
        assert_eq!(hits, 1, "element {i} saw {hits} deliveries");
    }
}

#[test]
fn broadcast_variants_agree_on_final_state() {
    // Same seed, same array, same message: flat and tree broadcasts differ
    // only in modeled latency, never in who receives what.
    let (mut flat, arr_a) = counter_array(6, 64);
    flat.broadcast(arr_a, 1u64);
    flat.run();
    let (mut tree, arr_b) = counter_array(6, 64);
    tree.broadcast_tree(arr_b, 1u64);
    tree.run();
    assert_eq!(flat.state_digest(), tree.state_digest());
    // The tree charges depth hops of latency where flat charges per-element
    // point-to-point routing; both must finish with all messages drained.
    assert!(flat.limbo_messages().is_empty());
    assert!(tree.limbo_messages().is_empty());
}

#[test]
fn limbo_messages_sorted_by_array_then_index() {
    let mut rt = Runtime::builder(MachineConfig::homogeneous(2)).build();
    let a = rt.create_array::<Counter>("a");
    let b = rt.create_array::<Counter>("b");
    // One real element per array so sends have a live routing context.
    rt.insert(a, Ix::i1(0), Counter::default(), Some(0));
    rt.insert(b, Ix::i1(0), Counter::default(), Some(1));
    // Send to elements that never get inserted — the envelopes park in
    // limbo. Deliberately insert in a scattered order across both arrays.
    for i in [9i64, 2, 14, 5] {
        rt.send(a, Ix::i1(i), 0u64);
        rt.send(b, Ix::i1(i), 0u64);
    }
    rt.send(a, Ix::i1(2), 1u64); // second message for one parked element
    rt.run();
    let limbo = rt.limbo_messages();
    assert_eq!(limbo.len(), 8, "8 distinct parked destinations");
    // Sorted by (array, ix) regardless of hash-map iteration order.
    assert!(
        limbo.windows(2).all(|w| (w[0].0.array, w[0].0.ix) < (w[1].0.array, w[1].0.ix)),
        "limbo diagnostic must be sorted: {limbo:?}"
    );
    let on_a2 = limbo
        .iter()
        .find(|(k, _)| k.array == a.id() && k.ix == Ix::i1(2))
        .unwrap();
    assert_eq!(on_a2.1, 2, "both messages for a[2] are parked");
}

#[test]
fn summary_reports_wall_clock_throughput() {
    let (mut rt, arr) = counter_array(4, 16);
    rt.broadcast(arr, 3u64);
    let s = rt.run();
    assert!(s.wall_time_s > 0.0, "run accumulated wall time");
    assert!(s.events_per_sec > 0.0, "throughput derived from wall time");
    assert!(
        (s.events_per_sec - s.events as f64 / s.wall_time_s).abs()
            / s.events_per_sec
            < 1e-9,
        "events_per_sec is events / wall_time_s"
    );
    // summary() is a snapshot: a second call without more run time reports
    // the same totals.
    let s2 = rt.summary();
    assert_eq!(s2.events, s.events);
    assert_eq!(s2.wall_time_s, s.wall_time_s);
}
