//! Seeded spot-preemption campaign (elastic-controller PR hardening).
//!
//! The same three mini-apps as the fault-injection campaign run under
//! generated *preemption* schedules on 8 PEs with periodic checkpointing:
//!
//! - **Long warnings** (announced 25% of the checkpointed makespan ahead)
//!   must be survived *proactively*: the doomed PE's chares evacuate before
//!   reclamation, so the run completes with the correct answer and **zero
//!   rollbacks** — verified against the FT ledger, not just metrics.
//! - **Zero warnings** (classic spot reclaim with no notice) must fall back
//!   to buddy-checkpoint restart: ≥1 rollback in the ledger, correct answer.
//!
//! Schedules derive from a printed seed exactly like `ft_campaign.rs`, so
//! any failure reproduces from its log line.

mod campaign;

use campaign::{halo_spec, lockstep_spec, ring_spec, schedule_seed, AppSpec, Rng};
use charm_core::{MachineConfig, Runtime, SimTime, TraceConfig};

const PES: usize = 8;
const LONG_SCHEDULES_PER_APP: usize = 10;
const SHORT_SCHEDULES_PER_APP: usize = 4;

fn make_rt(auto_ckpt: Option<SimTime>) -> Runtime {
    let mut b = Runtime::builder(MachineConfig::homogeneous(PES))
        .tracing(TraceConfig::default());
    if let Some(interval) = auto_ckpt {
        b = b.auto_checkpoint(interval);
    }
    b.build()
}

fn ledger_lines<'a>(rt: &'a Runtime, needle: &str) -> Vec<&'a str> {
    rt.tracer()
        .expect("tracing is on")
        .ledger()
        .iter()
        .filter(|(_, line)| line.contains(needle))
        .map(|(_, line)| line.as_str())
        .collect()
}

/// Probe the app once failure-free and once checkpointed; return the
/// checkpoint interval, the checkpointed makespan, and the commit times.
fn probe(spec: &AppSpec) -> (SimTime, f64, Vec<f64>) {
    let mut rt = make_rt(None);
    (spec.build)(&mut rt);
    let t_free = rt.run().end_time.as_secs_f64();
    (spec.verify)(&rt).expect("failure-free baseline must be correct");

    let interval = SimTime::from_secs_f64((t_free / 5.0).max(1e-6));
    let mut rt = make_rt(Some(interval));
    (spec.build)(&mut rt);
    let t_ck = rt.run().end_time.as_secs_f64();
    (spec.verify)(&rt).expect("checkpointed baseline must be correct");
    let committed: Vec<f64> = rt.metric("ckpt_committed").iter().map(|&(t, _)| t).collect();
    assert!(!committed.is_empty(), "{}: auto-checkpointing must commit", spec.name);
    (interval, t_ck, committed)
}

/// 1–2 preemptions of distinct PEs, announced 25% of the makespan ahead.
fn gen_long_schedule(seed: u64, t_ck: f64) -> Vec<(SimTime, usize, SimTime)> {
    let mut rng = Rng::new(seed);
    let warning = SimTime::from_secs_f64(0.25 * t_ck);
    let n = 1 + rng.below(2) as usize;
    let mut out: Vec<(SimTime, usize, SimTime)> = Vec::new();
    for j in 0..n {
        // Space kills apart so one evacuation finishes before the next
        // announcement: first in [0.30, 0.45), second in [0.55, 0.70).
        let lo = 0.30 + 0.25 * j as f64;
        let t = rng.range(lo, lo + 0.15) * t_ck;
        loop {
            let pe = rng.below(PES as u64) as usize;
            if !out.iter().any(|&(_, p, _)| p == pe) {
                out.push((SimTime::from_secs_f64(t), pe, warning));
                break;
            }
        }
    }
    out
}

#[test]
fn long_warnings_evacuate_with_zero_rollbacks() {
    for spec in [lockstep_spec(), ring_spec(), halo_spec()] {
        let (interval, t_ck, _) = probe(&spec);
        let budget = SimTime::from_secs_f64(t_ck * 50.0 + 1.0);

        for k in 0..LONG_SCHEDULES_PER_APP {
            let seed = schedule_seed(spec.name, 0x1000 + k as u64);
            let schedule = gen_long_schedule(seed, t_ck);

            let mut rt = make_rt(Some(interval));
            (spec.build)(&mut rt);
            for &(t, pe, warning) in &schedule {
                rt.schedule_preemption(t, pe, warning);
            }
            let summary = rt.run_until_checked(budget).unwrap_or_else(|u| {
                panic!(
                    "{} seed {seed:#x} {schedule:?}: unrecoverable under long warning: {u}",
                    spec.name
                )
            });
            assert!(
                summary.end_time < budget,
                "{} seed {seed:#x} {schedule:?}: sim-time budget exhausted (hang)",
                spec.name
            );
            (spec.verify)(&rt).unwrap_or_else(|e| {
                panic!("{} seed {seed:#x} {schedule:?}: wrong answer: {e}", spec.name)
            });

            // Proactive survival: every preemption evacuated, nothing rolled
            // back — checked in the FT ledger, not just the metrics.
            assert!(
                rt.metric("restart_time_s").is_empty(),
                "{} seed {seed:#x} {schedule:?}: restart protocol ran",
                spec.name
            );
            assert!(
                rt.metric("evacuations").len() >= schedule.len(),
                "{} seed {seed:#x} {schedule:?}: expected {} evacuations, saw {}",
                spec.name,
                schedule.len(),
                rt.metric("evacuations").len()
            );
            assert!(
                ledger_lines(&rt, "rollback to checkpoint").is_empty(),
                "{} seed {seed:#x} {schedule:?}: ledger records a rollback",
                spec.name
            );
            assert!(
                ledger_lines(&rt, "preemption warning").len() >= schedule.len(),
                "{} seed {seed:#x} {schedule:?}: warnings missing from ledger",
                spec.name
            );
            assert_eq!(
                rt.alive_pes(),
                PES - schedule.len(),
                "{} seed {seed:#x}: preempted PEs must stay retired",
                spec.name
            );
        }
        println!("{}: {LONG_SCHEDULES_PER_APP} long-warning schedules, 0 rollbacks", spec.name);
    }
}

#[test]
fn zero_warnings_fall_back_to_checkpoint_restart() {
    for spec in [lockstep_spec(), ring_spec(), halo_spec()] {
        let (interval, t_ck, committed) = probe(&spec);
        let budget = SimTime::from_secs_f64(t_ck * 50.0 + 1.0);

        for k in 0..SHORT_SCHEDULES_PER_APP {
            let seed = schedule_seed(spec.name, 0x2000 + k as u64);
            let mut rng = Rng::new(seed);
            // Reclaim with no notice, strictly after the first committed
            // checkpoint so restart has a consistent state to restore.
            let t = committed[0] + rng.range(0.05, 0.75) * (0.9 * t_ck - committed[0]).max(1e-9);
            let pe = rng.below(PES as u64) as usize;

            let mut rt = make_rt(Some(interval));
            (spec.build)(&mut rt);
            rt.schedule_preemption(SimTime::from_secs_f64(t), pe, SimTime::ZERO);

            let summary = rt.run_until_checked(budget).unwrap_or_else(|u| {
                panic!(
                    "{} seed {seed:#x} (kill {t:.6}s pe {pe}): unrecoverable: {u}",
                    spec.name
                )
            });
            assert!(summary.end_time < budget, "{} seed {seed:#x}: hang", spec.name);
            (spec.verify)(&rt).unwrap_or_else(|e| {
                panic!("{} seed {seed:#x} (kill {t:.6}s pe {pe}): wrong answer: {e}", spec.name)
            });

            // Fallback path: the short warning was counted, the restart
            // protocol ran, and the ledger records the rollback.
            assert!(
                !rt.metric("preempt_short").is_empty(),
                "{} seed {seed:#x}: short warning not counted",
                spec.name
            );
            assert!(
                !rt.metric("restart_time_s").is_empty(),
                "{} seed {seed:#x}: restart protocol did not run",
                spec.name
            );
            assert!(
                !ledger_lines(&rt, "rollback to checkpoint").is_empty(),
                "{} seed {seed:#x}: rollback missing from ledger",
                spec.name
            );
            assert!(
                !ledger_lines(&rt, "preemption warning").is_empty(),
                "{} seed {seed:#x}: warning missing from ledger",
                spec.name
            );
            assert_eq!(rt.alive_pes(), PES - 1, "{} seed {seed:#x}", spec.name);
        }
        println!(
            "{}: {SHORT_SCHEDULES_PER_APP} zero-warning schedules restarted correctly",
            spec.name
        );
    }
}
