//! End-to-end tests of the §III-B/§III-D machinery: double in-memory
//! checkpointing with failure recovery, disk checkpoint/restart on a
//! different PE count, and malleable shrink/expand.

use charm_core::{
    Callback, Chare, Ctx, Ix, MachineConfig, RedOp, RedValue, Runtime, SimTime, SysEvent,
};
use charm_pup::{Pup, Puper};

const WORKERS: i64 = 24;
const TARGET_STEPS: u64 = 8;
const CKPT_AT: u64 = 3;

/// An iterative worker: contributes to a per-step reduction.
#[derive(Default)]
struct Worker {
    steps_done: u64,
}

impl Pup for Worker {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.steps_done);
    }
}

#[derive(Default, Clone)]
struct Step(u64);
impl Pup for Step {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.0);
    }
}

impl Chare for Worker {
    type Msg = Step;
    fn on_message(&mut self, Step(n): Step, ctx: &mut Ctx<'_>) {
        self.steps_done = n + 1;
        ctx.work(2e6);
        let workers = charm_core::ArrayProxy::<Worker>::from_id(ctx.my_id().array);
        ctx.contribute(
            workers,
            n as u32,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare {
                array: charm_core::ArrayId(1),
                ix: Ix::i1(0),
            },
        );
    }
}

/// The driver chare: counts completed steps, checkpoints once, and re-kicks
/// the iteration after a recovery.
#[derive(Default)]
struct Main {
    step: u64,
    recoveries: u64,
}

impl Pup for Main {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.step);
        p.p(&mut self.recoveries);
    }
}

impl Chare for Main {
    type Msg = Step;
    fn on_message(&mut self, _m: Step, _ctx: &mut Ctx<'_>) {}

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        let workers = charm_core::ArrayProxy::<Worker>::from_id(charm_core::ArrayId(0));
        match ev {
            SysEvent::Reduction { tag, value } => {
                assert_eq!(tag as u64, self.step);
                assert_eq!(value.as_i64(), WORKERS);
                self.step += 1;
                ctx.log_metric("step_done", self.step as f64);
                if self.step == CKPT_AT {
                    ctx.start_mem_checkpoint(ctx.cb_self());
                } else if self.step < TARGET_STEPS {
                    ctx.broadcast(workers, Step(self.step));
                } else {
                    ctx.exit();
                }
            }
            SysEvent::CheckpointDone => {
                ctx.log_metric("ckpt_done", 1.0);
                ctx.broadcast(workers, Step(self.step));
            }
            SysEvent::Restarted { failed_pe } => {
                self.recoveries += 1;
                ctx.log_metric("recovered_from", failed_pe as f64);
                // Roll forward from the checkpointed step.
                ctx.broadcast(workers, Step(self.step));
            }
            _ => {}
        }
    }
}

fn build(num_pes: usize) -> Runtime {
    build_rt(Runtime::homogeneous(num_pes))
}

fn build_rt(mut rt: Runtime) -> Runtime {
    let workers = rt.create_array::<Worker>("workers");
    let main = rt.create_array::<Main>("main");
    for i in 0..WORKERS {
        rt.insert(workers, Ix::i1(i), Worker::default(), None);
    }
    rt.insert(main, Ix::i1(0), Main::default(), Some(0));
    rt.broadcast(workers, Step(0));
    rt
}

#[test]
fn survives_injected_node_failure() {
    let mut rt = build(8);
    // Kill PE 5 well into the run (after the checkpoint at step 3).
    rt.schedule_failure(SimTime::from_millis(40), 5);
    rt.run();

    let steps: Vec<f64> = rt.metric("step_done").iter().map(|s| s.1).collect();
    assert_eq!(
        *steps.last().unwrap(),
        TARGET_STEPS as f64,
        "run must reach the target step count despite the failure"
    );
    assert_eq!(rt.metric("recovered_from").len(), 1, "one recovery");
    assert_eq!(rt.metric("restart_time_s").len(), 1);
    assert_eq!(rt.metric("ckpt_time_s").len(), 1);
    // The rollback re-executes steps between the checkpoint and the crash.
    let redone = steps.iter().filter(|&&s| s <= CKPT_AT as f64 + 2.0).count();
    assert!(redone >= CKPT_AT as usize, "some steps re-executed: {steps:?}");
}

#[test]
fn failure_without_checkpoint_is_not_recovered() {
    let mut rt = Runtime::homogeneous(4);
    let workers = rt.create_array::<Worker>("workers");
    for i in 0..4 {
        rt.insert(workers, Ix::i1(i), Worker::default(), None);
    }
    rt.schedule_failure(SimTime::from_nanos(10), 2);
    rt.run();
    assert_eq!(rt.metric("unrecovered_failures").len(), 1);
}

#[test]
fn deterministic_even_with_failures() {
    let run = || {
        let mut rt = build(8);
        rt.schedule_failure(SimTime::from_millis(40), 5);
        let s = rt.run();
        (s.end_time, s.entries, s.messages)
    };
    assert_eq!(run(), run());
}

#[test]
fn disk_checkpoint_restarts_on_different_pe_count() {
    let dir = std::env::temp_dir().join("charm_rs_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.bin");

    // Run half the steps on 8 PEs, checkpoint to disk.
    let mut rt = build(8);
    rt.run_until(SimTime::from_millis(25));
    let done_before = rt.metric("step_done").len();
    assert!(done_before >= 1, "made progress before checkpointing");
    let info = rt.checkpoint_to_disk(&path).expect("write checkpoint");
    assert!(info.bytes > 0);
    assert!(info.virtual_cost > SimTime::ZERO);

    // Restore into a *fresh* runtime with a different PE count (§III-B:
    // "can be restarted on any number of PEs").
    let mut rt2 = Runtime::homogeneous(3);
    let workers = rt2.create_array::<Worker>("workers");
    let main = rt2.create_array::<Main>("main");
    let _ = (workers, main);
    rt2.restore_from_disk(&path).expect("restore");
    assert_eq!(rt2.array_len(charm_core::ArrayId(0)), WORKERS as usize);
    assert_eq!(rt2.array_len(charm_core::ArrayId(1)), 1);
    // All elements must land on live PEs of the smaller machine.
    for ix in rt2.array_indices(charm_core::ArrayId(0)) {
        let pe = rt2.element_pe(charm_core::ArrayId(0), &ix).unwrap();
        assert!(pe < 3);
    }

    // The restored app continues from the checkpointed iteration to the end.
    rt2.broadcast(
        charm_core::ArrayProxy::<Worker>::from_id(charm_core::ArrayId(0)),
        Step(done_before as u64),
    );
    rt2.run();
    let steps: Vec<f64> = rt2.metric("step_done").iter().map(|s| s.1).collect();
    assert_eq!(*steps.last().unwrap(), TARGET_STEPS as f64);

    std::fs::remove_file(&path).ok();
}

#[test]
fn restore_requires_registered_arrays() {
    let dir = std::env::temp_dir().join("charm_rs_ckpt_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.bin");
    let mut rt = build(4);
    rt.run_until(SimTime::from_millis(5));
    rt.checkpoint_to_disk(&path).unwrap();

    let mut rt2 = Runtime::homogeneous(2);
    let err = rt2.restore_from_disk(&path).unwrap_err();
    assert!(
        matches!(err, charm_core::RestoreError::MissingArray { .. }),
        "got: {err:?}"
    );
    assert!(err.to_string().contains("not registered"), "got: {err}");
    std::fs::remove_file(&path).ok();
}

/// A chare that self-messages to a target count — progress that needs no
/// peers, so survivors of an unrecovered failure can still finish.
#[derive(Default)]
struct Pinger {
    count: u64,
}

impl Pup for Pinger {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.count);
    }
}

impl Chare for Pinger {
    type Msg = Step;
    fn on_message(&mut self, Step(n): Step, ctx: &mut Ctx<'_>) {
        self.count = n + 1;
        ctx.work(1e6);
        if self.count < 5 {
            let me = charm_core::ArrayProxy::<Pinger>::from_id(ctx.my_id().array);
            ctx.send(me, ctx.my_index(), Step(self.count));
        }
    }
}

#[test]
fn node_failure_kills_every_pe_on_the_node() {
    // 8 PEs grouped into 2-PE nodes, no checkpoint: a failure named for
    // PE 4 must also take out its node sibling, PE 5.
    let machine = MachineConfig::homogeneous(8).with_pes_per_node(2);
    let mut rt = Runtime::builder(machine).build();
    let pingers = rt.create_array::<Pinger>("pingers");
    for i in 0..8 {
        rt.insert(pingers, Ix::i1(i), Pinger::default(), Some(i as usize));
    }
    rt.schedule_failure(SimTime::from_nanos(10), 4);
    rt.run();
    let dead: Vec<f64> = rt.metric("unrecovered_failures").iter().map(|m| m.1).collect();
    assert_eq!(dead, vec![4.0, 5.0], "the whole node died");
    let u = rt.unrecoverable().expect("chares lost with no checkpoint");
    assert_eq!(u.failed_pes, vec![4, 5]);
    assert_eq!(u.lost_chares, 2);
}

#[test]
fn recovers_from_multi_pe_node_failure() {
    // With a checkpoint, a whole-node (2 PE) failure restarts and the job
    // still completes.
    let machine = MachineConfig::homogeneous(8).with_pes_per_node(2);
    let mut rt = build_rt(Runtime::builder(machine).build());
    rt.schedule_failure(SimTime::from_millis(40), 5);
    rt.run_checked().expect("whole-node failure is recoverable");
    let steps: Vec<f64> = rt.metric("step_done").iter().map(|s| s.1).collect();
    assert_eq!(*steps.last().unwrap(), TARGET_STEPS as f64);
    let recovered: Vec<f64> = rt.metric("failures_recovered").iter().map(|m| m.1).collect();
    assert_eq!(recovered, vec![4.0, 5.0], "both node PEs restarted");
    assert_eq!(rt.metric("restart_time_s").len(), 1);
}

#[test]
fn survivors_keep_running_after_unrecovered_failure() {
    // No checkpoint: the chare on PE 2 is lost, but the one on PE 0 still
    // drives itself to completion, and the outcome is typed.
    let mut rt = Runtime::homogeneous(4);
    let pingers = rt.create_array::<Pinger>("pingers");
    rt.insert(pingers, Ix::i1(0), Pinger::default(), Some(0));
    rt.insert(pingers, Ix::i1(1), Pinger::default(), Some(2));
    rt.send(pingers, Ix::i1(0), Step(0));
    rt.send(pingers, Ix::i1(1), Step(0));
    rt.schedule_failure(SimTime::from_nanos(10), 2);
    let err = rt.run_checked().unwrap_err();
    assert_eq!(err.failed_pes, vec![2]);
    assert_eq!(err.lost_chares, 1);
    assert!(err.reason.contains("no committed checkpoint"), "got: {}", err.reason);
    assert_eq!(rt.metric("unrecovered_failures").len(), 1);
    assert_eq!(
        rt.inspect(pingers, &Ix::i1(0), |p| p.count),
        Some(5),
        "the survivor finished its work"
    );
}

#[test]
fn failure_of_empty_pe_without_checkpoint_is_survivable() {
    // The dead PE hosted no chares: nothing is lost, so the run completes
    // and `run_checked` succeeds (the PE death is still recorded).
    let mut rt = Runtime::homogeneous(4);
    let pingers = rt.create_array::<Pinger>("pingers");
    rt.insert(pingers, Ix::i1(0), Pinger::default(), Some(0));
    rt.send(pingers, Ix::i1(0), Step(0));
    rt.schedule_failure(SimTime::from_nanos(10), 3);
    rt.run_checked().expect("no state was lost");
    assert_eq!(rt.metric("unrecovered_failures").len(), 1);
    assert_eq!(rt.inspect(pingers, &Ix::i1(0), |p| p.count), Some(5));
}

#[test]
fn buddy_pair_failure_is_unrecoverable() {
    // Simultaneously killing a PE and its buddy destroys both checkpoint
    // copies of that PE's chares — typed Unrecoverable, no panic, no hang.
    let pe = 1usize;
    let buddy = charm_core::buddy_pe(pe, 8);
    let mut rt = build(8);
    rt.schedule_failure(SimTime::from_millis(40), pe);
    rt.schedule_failure(SimTime::from_millis(40), buddy);
    let err = rt.run_checked().unwrap_err();
    assert!(err.lost_chares > 0);
    assert!(err.reason.contains("both checkpoint copies"), "got: {}", err.reason);
    assert_eq!(rt.metric("unrecoverable_failures").len(), 1);
}

#[test]
fn non_buddy_simultaneous_failures_recover() {
    // Two failures at the same instant on non-buddy PEs: each lost copy
    // has a live twin, so rollback succeeds (8 PEs: buddy(1)=5, so 1+2 is
    // safe).
    let mut rt = build(8);
    rt.schedule_failure(SimTime::from_millis(40), 1);
    rt.schedule_failure(SimTime::from_millis(40), 2);
    rt.run_checked().expect("non-overlapping copies survive");
    let steps: Vec<f64> = rt.metric("step_done").iter().map(|s| s.1).collect();
    assert_eq!(*steps.last().unwrap(), TARGET_STEPS as f64);
    assert!(rt.metric("restart_time_s").len() >= 2);
}

#[test]
fn cascade_into_restart_window_can_be_unrecoverable() {
    // Probe the first restart to learn its protocol window, then cascade:
    // kill the buddy of the first victim while the victim's replacement is
    // still rebuilding its copies. Both copies of the victim's chares are
    // now gone.
    let mut probe = build(8);
    probe.schedule_failure(SimTime::from_millis(40), 1);
    probe.run();
    let (restart_at, restart_dur) = probe.metric("restart_time_s")[0];
    let mid = SimTime::from_secs_f64(restart_at + restart_dur / 2.0);

    let mut rt = build(8);
    rt.schedule_failure(SimTime::from_millis(40), 1);
    rt.schedule_failure(mid, charm_core::buddy_pe(1, 8));
    let err = rt.run_checked().unwrap_err();
    assert!(err.reason.contains("both checkpoint copies"), "got: {}", err.reason);

    // The same second failure after the window closes is recoverable.
    let after = SimTime::from_secs_f64(restart_at + restart_dur) + SimTime::from_millis(5);
    let mut rt = build(8);
    rt.schedule_failure(SimTime::from_millis(40), 1);
    rt.schedule_failure(after, charm_core::buddy_pe(1, 8));
    rt.run_checked().expect("sequential buddy failures with rebuilt copies recover");
}

#[test]
fn failure_during_checkpoint_window_aborts_pending() {
    // Probe run: find the (deterministic) checkpoint replication window.
    let mut probe = build(8);
    probe.run();
    assert_eq!(probe.metric("ckpt_committed").len(), 1);
    let (at, dur) = probe.metric("ckpt_time_s")[0];
    let mid = SimTime::from_secs_f64(at + dur / 2.0);

    // A failure inside the window aborts the pending snapshot. No earlier
    // checkpoint had committed, so the run is unrecoverable — the aborted
    // half-replicated snapshot must never be restored.
    let mut rt = build(8);
    rt.schedule_failure(mid, 2);
    let err = rt.run_checked().unwrap_err();
    assert_eq!(rt.metric("ckpt_aborted").len(), 1);
    assert_eq!(rt.metric("ckpt_committed").len(), 0);
    assert!(err.reason.contains("no committed checkpoint"), "got: {}", err.reason);
}

#[test]
fn failure_during_later_checkpoint_rolls_back_to_previous() {
    // Auto-checkpointing takes several checkpoints; a failure inside a
    // later replication window aborts that snapshot and rolls back to the
    // previous committed one — the job still finishes.
    let build_auto = || {
        build_rt(
            Runtime::builder(MachineConfig::homogeneous(8))
                .auto_checkpoint(SimTime::from_millis(10))
                .build(),
        )
    };
    let mut probe = build_auto();
    probe.run();
    let ckpts = probe.metric("ckpt_time_s").to_vec();
    assert!(ckpts.len() >= 2, "auto-checkpointing ran repeatedly: {ckpts:?}");
    assert!(probe.metric("ckpt_committed").len() >= 2);
    let (at, dur) = ckpts[1];
    let mid = SimTime::from_secs_f64(at + dur / 2.0);

    let mut rt = build_auto();
    rt.schedule_failure(mid, 3);
    rt.run_checked().expect("previous committed checkpoint still valid");
    assert_eq!(rt.metric("ckpt_aborted").len(), 1);
    assert!(!rt.metric("restart_time_s").is_empty());
    let steps: Vec<f64> = rt.metric("step_done").iter().map(|s| s.1).collect();
    assert_eq!(*steps.last().unwrap(), TARGET_STEPS as f64);
}

#[test]
fn auto_checkpoint_terminates_when_job_drains() {
    // The periodic tick must not keep an otherwise-finished run alive.
    let mut rt = Runtime::builder(MachineConfig::homogeneous(4))
        .auto_checkpoint(SimTime::from_millis(1))
        .build();
    let pingers = rt.create_array::<Pinger>("pingers");
    rt.insert(pingers, Ix::i1(0), Pinger::default(), Some(0));
    rt.send(pingers, Ix::i1(0), Step(0));
    let s = rt.run(); // would hang here if ticks re-armed forever
    assert!(s.end_time < SimTime::from_secs(1));
    assert_eq!(rt.inspect(pingers, &Ix::i1(0), |p| p.count), Some(5));
}

#[test]
fn shrink_doubles_iteration_time_and_expand_restores_it() {
    // A fixed-work iterative job: per-step time is inversely proportional
    // to the PE count (Fig. 5's LeanMD behaviour).
    let mut rt = build(16);
    rt.schedule_reconfigure(SimTime::from_millis(30), 8);
    rt.run();
    assert!(rt.metric("reconfigure").len() == 1);
    // All elements must have evacuated PEs 8..16.
    for ix in rt.array_indices(charm_core::ArrayId(0)) {
        let pe = rt.element_pe(charm_core::ArrayId(0), &ix).unwrap();
        assert!(pe < 8, "element {ix} still on retired PE {pe}");
    }
    assert_eq!(rt.num_pes(), 8);
    let steps: Vec<f64> = rt.metric("step_done").iter().map(|s| s.1).collect();
    assert_eq!(*steps.last().unwrap(), TARGET_STEPS as f64, "job completed");
}

#[test]
fn expand_spreads_elements_to_new_pes() {
    let mut rt = build(16);
    // Start shrunk: do it immediately, then expand mid-run.
    rt.schedule_reconfigure(SimTime::from_nanos(1), 4);
    rt.schedule_reconfigure(SimTime::from_millis(30), 16);
    rt.run();
    assert_eq!(rt.num_pes(), 16);
    let steps: Vec<f64> = rt.metric("step_done").iter().map(|s| s.1).collect();
    assert_eq!(*steps.last().unwrap(), TARGET_STEPS as f64);
}
