//! Steady-state allocation discipline: once the arena pools and queue
//! capacities are warm, the engine's message hot path must not touch the
//! global allocator at all. A counting allocator wraps `System`; two
//! identical simulations differing only in *length* must then differ by at
//! most a trickle of allocations — every per-message envelope and payload
//! box is served from recycled pools, and every queue push reuses retained
//! capacity.
//!
//! This file is its own integration-test binary so the `#[global_allocator]`
//! override cannot leak into any other test.

use charm_core::{ArrayProxy, Chare, Ctx, Ix, MachineConfig, Runtime};
use charm_pup::{Pup, Puper};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Passes a token around a ring until its hop budget runs out.
#[derive(Default)]
struct Relay {
    n: i64,
    seen: u64,
}

impl Pup for Relay {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.n);
        p.p(&mut self.seen);
    }
}

impl Chare for Relay {
    type Msg = u64; // hops remaining
    fn on_message(&mut self, hops: u64, ctx: &mut Ctx<'_>) {
        self.seen += 1;
        if hops > 0 {
            let me = match ctx.my_index() {
                Ix::I1(i) => i,
                other => panic!("unexpected index {other:?}"),
            };
            let proxy = ArrayProxy::<Relay>::from_id(ctx.my_id().array);
            ctx.send(proxy, Ix::i1((me + 1) % self.n), hops - 1);
        }
    }
}

/// One full simulation: `tokens` concurrent ring walkers, each making
/// `hops` hops across 4 PEs. Returns total deliveries (sanity).
fn run_ring(hops: u64) -> u64 {
    const N: i64 = 16;
    const TOKENS: i64 = 8;
    let mut rt = Runtime::builder(MachineConfig::homogeneous(4)).build();
    let arr = rt.create_array::<Relay>("relay");
    for i in 0..N {
        rt.insert(arr, Ix::i1(i), Relay { n: N, seen: 0 }, Some(i as usize % 4));
    }
    for t in 0..TOKENS {
        rt.send(arr, Ix::i1(t * 2), hops);
    }
    rt.run();
    (0..N)
        .map(|i| rt.inspect(arr, &Ix::i1(i), |r| r.seen).unwrap())
        .sum()
}

#[test]
fn steady_state_message_path_bypasses_global_allocator() {
    // Warm the thread-local arena pools and libc internals.
    run_ring(500);

    // Two fresh, identical runtimes; the long run does 10× the messaging.
    // Startup, capacity growth, and teardown costs are identical by
    // determinism — the difference isolates the extra steady-state traffic.
    let snap = ALLOCS.load(Ordering::Relaxed);
    let short_seen = run_ring(500);
    let short_allocs = ALLOCS.load(Ordering::Relaxed) - snap;

    let snap = ALLOCS.load(Ordering::Relaxed);
    let long_seen = run_ring(5000);
    let long_allocs = ALLOCS.load(Ordering::Relaxed) - snap;

    let extra_msgs = long_seen - short_seen;
    assert!(extra_msgs >= 30_000, "expected a real workload, got {extra_msgs}");
    let extra_allocs = long_allocs.saturating_sub(short_allocs);
    // Without the arena this difference tracks the message count (two boxes
    // per delivery — envelope and payload — ≈ 70k+ allocations here).
    assert!(
        extra_allocs < 200,
        "steady state leaked {extra_allocs} global allocations for {extra_msgs} extra messages \
         (short run: {short_allocs}, long run: {long_allocs})"
    );
}
