//! Tracing subsystem guarantees (ISSUE 2 satellite):
//!
//! * **Determinism** — two runs of the same app with the same seed and
//!   machine profile emit byte-identical Chrome-JSON and CSV event streams.
//! * **Bounded memory** — ring-buffer overflow keeps only the newest
//!   `log_capacity` records per track and counts everything shed in
//!   `dropped_events`; the summary aggregates keep exact totals regardless.
//! * **Exact accounting** — per-entry-method total busy time equals
//!   `Σ pe_busy_time` to the nanosecond, and equals it even across LB
//!   rounds, migrations, and checkpoints.
//! * **Off by default** — without `RuntimeBuilder::tracing` there is no
//!   tracer and no export.

use charm_core::{
    ArrayProxy, Chare, Ctx, Ix, MachineConfig, Runtime, SimTime, SysEvent, TraceConfig,
    TraceEventKind,
};
use charm_pup::{Pup, Puper};

/// A chare ring that does some work per hop, checkpoints once, and has one
/// member migrate itself — enough activity to touch entry, message, LB/FT,
/// and migration record kinds.
#[derive(Default)]
struct Hopper {
    hops: u64,
    limit: u64,
    n: i64,
    arr: ArrayProxy<Hopper>,
}

impl Pup for Hopper {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.hops, self.limit, self.n, self.arr);
    }
}

impl Chare for Hopper {
    type Msg = i64;
    fn on_message(&mut self, me: i64, ctx: &mut Ctx<'_>) {
        self.hops += 1;
        ctx.work(5_000.0 * (1.0 + (me % 3) as f64));
        if self.hops == 2 && me == 0 {
            ctx.migrate_me((ctx.my_pe() + 1) % ctx.num_pes());
        }
        if self.hops >= self.limit {
            if me == 0 {
                ctx.exit();
            }
            return;
        }
        let next = (me + 1) % self.n;
        ctx.send(self.arr, Ix::i1(next), me);
    }
    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

fn hopper_run(trace: Option<TraceConfig>) -> Runtime {
    let mut b = Runtime::builder(MachineConfig::homogeneous(4)).seed(7);
    if let Some(tc) = trace {
        b = b.tracing(tc);
    }
    let mut rt = b.build();
    let arr = rt.create_array::<Hopper>("hopper");
    let n = 6i64;
    for i in 0..n {
        rt.insert(
            arr,
            Ix::i1(i),
            Hopper {
                hops: 0,
                limit: 40,
                n,
                arr,
            },
            Some(i as usize % 4),
        );
    }
    for i in 0..n {
        rt.send(arr, Ix::i1(i), i);
    }
    rt.run();
    rt
}

#[test]
fn tracing_disabled_records_nothing() {
    let rt = hopper_run(None);
    assert!(rt.tracer().is_none());
    assert!(rt.trace_chrome_json().is_none());
    assert!(rt.trace_csv().is_none());
    assert!(rt.projections_report(5).is_none());
    assert!(rt.trace_profiles().is_empty());
}

#[test]
fn same_seed_same_machine_byte_identical_exports() {
    let a = hopper_run(Some(TraceConfig::default()));
    let b = hopper_run(Some(TraceConfig::default()));
    let (ja, jb) = (a.trace_chrome_json().unwrap(), b.trace_chrome_json().unwrap());
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "Chrome-JSON export must be byte-identical");
    assert_eq!(
        a.trace_csv().unwrap(),
        b.trace_csv().unwrap(),
        "CSV export must be byte-identical"
    );
    // The report's "-- engine:" footer reports *wall-clock* throughput
    // (real seconds, events/s) and the "-- queues:" footer reports arena
    // counters that depend on thread-local pool warmth; both legitimately
    // differ run to run. All simulated content above must stay
    // byte-identical.
    let strip_footer = |r: String| -> String {
        r.lines()
            .filter(|l| !l.starts_with("-- engine:") && !l.starts_with("-- queues:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_footer(a.projections_report(10).unwrap()),
        strip_footer(b.projections_report(10).unwrap()),
        "report must be byte-identical apart from the wall-clock footers"
    );
    assert!(
        a.projections_report(10).unwrap().contains("-- engine:"),
        "report carries the engine-throughput footer"
    );
    assert!(
        a.projections_report(10).unwrap().contains("-- queues:"),
        "report carries the queue/arena footer"
    );
}

#[test]
fn ring_overflow_bounds_memory_and_counts_drops() {
    let cap = 32;
    let rt = hopper_run(Some(TraceConfig {
        log_capacity: cap,
        ..TraceConfig::default()
    }));
    let tr = rt.tracer().unwrap();
    for track in 0..tr.num_tracks() {
        assert!(
            tr.track_len(track) <= cap,
            "track {track} holds {} > cap {cap}",
            tr.track_len(track)
        );
    }
    assert!(
        tr.dropped_events() > 0,
        "a busy run must overflow a {cap}-record ring"
    );
    // The summary side is unaffected by ring capacity: profile counts match
    // the full run, not the retained window.
    let retained_entries: usize = (0..tr.num_tracks())
        .map(|t| {
            tr.track(t)
                .filter(|r| matches!(r.kind, TraceEventKind::Entry { .. }))
                .count()
        })
        .sum();
    let profile_entries: u64 = rt.trace_profiles().iter().map(|p| p.count).sum();
    assert!(profile_entries as usize > retained_entries);
}

#[test]
fn summary_only_mode_keeps_aggregates_without_log() {
    let rt = hopper_run(Some(TraceConfig::summary_only()));
    let tr = rt.tracer().unwrap();
    for track in 0..tr.num_tracks() {
        assert_eq!(tr.track_len(track), 0);
    }
    assert!(tr.dropped_events() > 0, "all log records count as dropped");
    assert!(!rt.trace_profiles().is_empty());
    assert!(tr.total_entry_time() > SimTime::ZERO);
}

#[test]
fn entry_profile_totals_equal_pe_busy_time_exactly() {
    let rt = hopper_run(Some(TraceConfig::default()));
    let tr = rt.tracer().unwrap();
    let busy: SimTime = (0..rt.num_pes()).map(|pe| rt.pe_busy_time(pe)).sum();
    assert!(busy > SimTime::ZERO);
    assert_eq!(
        tr.total_entry_time(),
        busy,
        "traced entry time must equal scheduler busy time to the nanosecond"
    );
}

#[test]
fn migration_lands_on_the_rts_track() {
    let rt = hopper_run(Some(TraceConfig::default()));
    let tr = rt.tracer().unwrap();
    let migrations = tr
        .track(tr.rts_track())
        .filter(|r| matches!(r.kind, TraceEventKind::Migration { .. }))
        .count();
    assert!(migrations >= 1, "migrate_me must be traced");
}

#[test]
fn different_seeds_change_the_event_stream() {
    let mk = |seed: u64| {
        let mut rt = Runtime::builder(MachineConfig::homogeneous(4))
            .seed(seed)
            .tracing(TraceConfig::default())
            .build();
        let arr = rt.create_array::<Hopper>("hopper");
        for i in 0..4i64 {
            rt.insert(arr, Ix::i1(i), Hopper { hops: 0, limit: 12, n: 4, arr }, None);
        }
        rt.send(arr, Ix::i1(0), 0);
        rt.run();
        rt.trace_csv().unwrap()
    };
    // Placement is seed-independent here, but utilization/export content
    // still must be stable per seed; a different machine profile (PE count)
    // definitely changes the stream.
    let base = mk(7);
    assert_eq!(base, mk(7));
    let mut rt = Runtime::builder(MachineConfig::homogeneous(8))
        .seed(7)
        .tracing(TraceConfig::default())
        .build();
    let arr = rt.create_array::<Hopper>("hopper");
    for i in 0..4i64 {
        rt.insert(arr, Ix::i1(i), Hopper { hops: 0, limit: 12, n: 4, arr }, None);
    }
    rt.send(arr, Ix::i1(0), 0);
    rt.run();
    assert_ne!(base, rt.trace_csv().unwrap());
}

#[test]
fn checkpoint_and_failure_show_in_ledger() {
    let mut rt = Runtime::builder(MachineConfig::homogeneous(4))
        .seed(3)
        .tracing(TraceConfig::default())
        .auto_checkpoint(SimTime::from_micros(50))
        .build();
    let arr = rt.create_array::<Hopper>("hopper");
    for i in 0..4i64 {
        rt.insert(arr, Ix::i1(i), Hopper { hops: 0, limit: 200, n: 4, arr }, Some(i as usize));
    }
    for i in 0..4i64 {
        rt.send(arr, Ix::i1(i), i);
    }
    rt.schedule_failure(SimTime::from_micros(400), 1);
    rt.run();
    let tr = rt.tracer().unwrap();
    let kinds: Vec<&str> = tr
        .track(tr.rts_track())
        .map(|r| match &r.kind {
            TraceEventKind::CkptBegin { .. } => "ckpt_begin",
            TraceEventKind::CkptCommit => "ckpt_commit",
            TraceEventKind::NodeFail { .. } => "node_fail",
            TraceEventKind::Rollback { .. } => "rollback",
            _ => "other",
        })
        .collect();
    assert!(kinds.contains(&"ckpt_begin"), "{kinds:?}");
    assert!(kinds.contains(&"ckpt_commit"), "{kinds:?}");
    assert!(kinds.contains(&"node_fail"), "{kinds:?}");
    assert!(kinds.contains(&"rollback"), "{kinds:?}");
    assert!(!tr.ledger().is_empty());
}
