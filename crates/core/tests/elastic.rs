//! Elastic controller and spot-preemption edge cases: the shrink guard,
//! typed graceful degradation, closed-loop shrink, failures racing
//! reconfiguration, and retired capacity staying retired.

mod campaign;

use campaign::{
    lockstep_build, lockstep_build_migratable, lockstep_build_packed, lockstep_spec,
    lockstep_verify,
};
use charm_core::{
    ElasticConfig, HysteresisPolicy, MachineConfig, RunOutcome, Runtime, SimTime,
};

const PES: usize = 8;

/// Failure-free makespan of the standard lockstep build.
fn probe_t_free() -> f64 {
    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES)).build();
    lockstep_build(&mut rt);
    let t = rt.run().end_time.as_secs_f64();
    lockstep_verify(&rt).expect("probe must be correct");
    t
}

/// A hysteresis policy that never fires (dead band covers everything) but
/// still promises `min_pes` — isolates the capacity floor from control
/// actions in tests.
fn floor_only(min_pes: usize) -> ElasticConfig {
    ElasticConfig::new(
        SimTime::from_secs(1),
        Box::new(HysteresisPolicy::new(1.5, 0.0, 1, SimTime::ZERO, min_pes, PES)),
    )
}

#[test]
fn shrink_below_checkpoint_floor_is_clamped_and_recoverable() {
    let t_free = probe_t_free();
    let interval = SimTime::from_secs_f64((t_free / 5.0).max(1e-6));

    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES))
        .auto_checkpoint(interval)
        .build();
    lockstep_build(&mut rt);
    // An external shrink-to-1 request: with buddy checkpointing active this
    // would co-locate both checkpoint copies, so it must clamp to 2.
    rt.schedule_reconfigure(SimTime::from_secs_f64(0.3 * t_free), 1);
    // A failure well after the clamped shrink: both copies must still exist
    // on distinct PEs for recovery to work.
    rt.schedule_failure(SimTime::from_secs_f64(0.8 * t_free), 0);

    let outcome = rt.run_outcome();
    let summary = outcome.summary().expect("single failure past a commit must recover");
    assert!(summary.end_time > SimTime::ZERO);
    lockstep_verify(&rt).expect("answer must survive shrink + failure");

    let rejected = rt.metric("reconfigure_rejected");
    assert_eq!(rejected.len(), 1, "the shrink-to-1 request must be journaled as clamped");
    assert_eq!(rejected[0].1, 1.0, "journal records the *requested* size");
    let reconf = rt.metric("reconfigure");
    assert_eq!(reconf.last().map(|&(_, to)| to), Some(2.0), "shrink lands on the floor");
    assert!(!rt.metric("restart_time_s").is_empty(), "the failure must trigger a restart");
    // The failed PE restarts in place (unlike preempted PEs, which the
    // platform reclaims for good), so both floor PEs are alive at the end.
    assert_eq!(rt.alive_pes(), 2);
}

#[test]
fn preemption_below_policy_floor_degrades_gracefully() {
    let t_free = probe_t_free();

    // Policy promises 6 PEs; three spot preemptions (ample warning) drop
    // alive capacity to 5 — the run must finish correctly, but flag it.
    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES))
        .elastic(floor_only(6))
        .build();
    lockstep_build(&mut rt);
    let warning = SimTime::from_secs_f64(0.2 * t_free);
    for (i, pe) in [5usize, 6, 7].into_iter().enumerate() {
        rt.schedule_preemption(
            SimTime::from_secs_f64((0.3 + 0.15 * i as f64) * t_free),
            pe,
            warning,
        );
    }

    match rt.run_outcome() {
        RunOutcome::Degraded { info, .. } => {
            assert_eq!(info.floor, 6);
            assert_eq!(info.have_pes, 5);
            assert!(info.at > SimTime::ZERO);
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    lockstep_verify(&rt).expect("degraded runs still finish with the right answer");
    assert_eq!(rt.alive_pes(), 5);
    assert!(rt.metric("restart_time_s").is_empty(), "ample warnings: no rollbacks");
    assert_eq!(rt.metric("evacuations").len(), 3);
    assert!(!rt.metric("degraded").is_empty());
}

#[test]
fn hysteresis_controller_shrinks_an_underutilized_job() {
    // All work pinned on 2 of 8 PEs: mean utilization ~25%, far below the
    // shrink threshold, so the controller must retire idle capacity.
    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES)).build();
    lockstep_build_packed(&mut rt, 2);
    let t_free = rt.run().end_time.as_secs_f64();
    lockstep_verify(&rt).expect("packed probe must be correct");

    let cadence = SimTime::from_secs_f64((t_free / 5.0).max(1e-6));
    let policy = HysteresisPolicy::new(0.95, 0.5, 2, cadence, 2, PES);
    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES))
        .elastic(ElasticConfig::new(cadence, Box::new(policy)))
        .build();
    lockstep_build_packed(&mut rt, 2);

    let outcome = rt.run_outcome();
    assert!(outcome.is_completed(), "controller action must not break the run: {outcome:?}");
    lockstep_verify(&rt).expect("answer must survive elastic shrink");

    assert!(!rt.metric("elastic_util").is_empty(), "controller must have sampled");
    let decisions = rt.metric("elastic_decision");
    assert!(!decisions.is_empty(), "an underutilized job must trigger a shrink");
    assert!(decisions[0].1 < PES as f64, "first decision shrinks");
    assert!(!rt.metric("reconfigure").is_empty(), "decision must reach the malleability path");
    assert!(rt.alive_pes() < PES, "idle capacity must actually be retired");
    assert!(rt.alive_pes() >= 2, "never below the policy floor");
}

#[test]
fn failure_during_evacuation_window_recovers() {
    let spec = lockstep_spec();
    let t_free = probe_t_free();
    let interval = SimTime::from_secs_f64((t_free / 5.0).max(1e-6));

    // Checkpointed probe: learn the (longer) checkpointed makespan.
    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES))
        .auto_checkpoint(interval)
        .build();
    (spec.build)(&mut rt);
    let t_ck = rt.run().end_time.as_secs_f64();

    // Preemption of PE 3 announced at 0.45·t_ck; a hard failure of PE 5
    // lands at the exact announcement instant — i.e. inside the evacuation
    // window, after the drain but before the doomed PE is reclaimed.
    let announce = SimTime::from_secs_f64(0.45 * t_ck);
    let warning = SimTime::from_secs_f64(0.25 * t_ck);
    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES))
        .auto_checkpoint(interval)
        .build();
    (spec.build)(&mut rt);
    rt.schedule_preemption(announce + warning, 3, warning);
    rt.schedule_failure(announce, 5);

    match rt.run_outcome() {
        RunOutcome::Completed(_) | RunOutcome::Degraded { .. } => {
            (spec.verify)(&rt).expect("recovery racing an evacuation must keep the answer");
        }
        RunOutcome::Unrecoverable(u) => {
            panic!("single failure with a live buddy must be recoverable: {u}")
        }
    }
    assert_eq!(rt.metric("evacuations").len(), 1, "the preemption still evacuates");
    assert!(!rt.metric("restart_time_s").is_empty(), "the failure still restarts");
    // PE 5 restarts in place; only the preempted PE 3 stays gone.
    assert_eq!(rt.alive_pes(), PES - 1);
}

#[test]
fn failure_on_just_expanded_pe_before_any_checkpoint_is_typed() {
    use charm_core::{LbStats, Strategy};
    // Expansion spreads load through an RTS-triggered LB round; a plain
    // round-robin strategy guarantees the revived PE receives chares.
    struct SpreadLb;
    impl Strategy for SpreadLb {
        fn name(&self) -> &'static str {
            "SpreadLb"
        }
        fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
            (0..stats.objs.len()).map(|i| Some(i % stats.num_pes)).collect()
        }
    }

    let t_free = probe_t_free();

    // Checkpoint interval far past the whole experiment: nothing commits.
    let interval = SimTime::from_secs(3600);
    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES))
        .auto_checkpoint(interval)
        .strategy(Box::new(SpreadLb))
        .build();
    lockstep_build_migratable(&mut rt);
    let t1 = SimTime::from_secs_f64(0.3 * t_free);
    let t2 = SimTime::from_secs_f64(0.6 * t_free);
    rt.schedule_reconfigure(t1, 4); // shrink …
    rt.schedule_reconfigure(t2, PES); // … expand back out
    // PE 6 was revived microseconds ago and holds rebalanced chares no
    // committed checkpoint covers: state loss must surface as a typed
    // verdict, never a panic.
    rt.schedule_failure(t2 + SimTime::from_nanos(1), 6);

    match rt.run_outcome() {
        RunOutcome::Unrecoverable(u) => {
            let msg = u.to_string();
            assert!(
                msg.contains("checkpoint"),
                "verdict should name the missing checkpoint: {msg}"
            );
        }
        other => panic!("expected Unrecoverable (no committed checkpoint), got {other:?}"),
    }
    assert!(rt.unrecoverable().is_some());
}

#[test]
fn expand_never_revives_a_preempted_pe() {
    let spec = lockstep_spec();
    let t_free = probe_t_free();
    let interval = SimTime::from_secs_f64((t_free / 5.0).max(1e-6));

    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES))
        .auto_checkpoint(interval)
        .build();
    (spec.build)(&mut rt);
    let t_ck = rt.run().end_time.as_secs_f64();

    // PE 6 is preempted (ample warning), then the job shrinks to 4 and
    // expands back to 8: the expand revives 4, 5, 7 — never 6, which the
    // platform reclaimed for good.
    let mut rt = Runtime::builder(MachineConfig::homogeneous(PES))
        .auto_checkpoint(interval)
        .build();
    (spec.build)(&mut rt);
    rt.schedule_preemption(
        SimTime::from_secs_f64(0.3 * t_ck),
        6,
        SimTime::from_secs_f64(0.25 * t_ck),
    );
    rt.schedule_reconfigure(SimTime::from_secs_f64(0.5 * t_ck), 4);
    rt.schedule_reconfigure(SimTime::from_secs_f64(0.7 * t_ck), PES);

    let outcome = rt.run_outcome();
    assert!(outcome.summary().is_some(), "run must finish: {outcome:?}");
    (spec.verify)(&rt).expect("answer must survive preempt + shrink + expand");
    assert_eq!(
        rt.alive_pes(),
        PES - 1,
        "expand must skip the preempted PE"
    );
    assert_eq!(rt.metric("evacuations").len(), 1);
    assert!(rt.metric("restart_time_s").is_empty(), "no rollback anywhere in this dance");
}
