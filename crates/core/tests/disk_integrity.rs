//! Disk-checkpoint integrity: every corruption mode the machine crate's
//! [`DiskFault`] injector produces must be rejected by `restore_from_disk`
//! with a structured [`RestoreError`] — no panics, no silently restoring
//! garbage, no partially-applied state.

use charm_core::machine::DiskFault;
use charm_core::{Chare, Ctx, Ix, RestoreError, Runtime};
use charm_pup::{Pup, Puper};
use std::path::{Path, PathBuf};

#[derive(Default)]
struct Cell {
    value: u64,
}

impl Pup for Cell {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.value);
    }
}

impl Chare for Cell {
    type Msg = u64;
    fn on_message(&mut self, msg: u64, _ctx: &mut Ctx<'_>) {
        self.value = msg;
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("charm_rs_disk_integrity");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Write a small checkpoint and return (path, pristine image bytes).
fn write_checkpoint(name: &str) -> (PathBuf, Vec<u8>) {
    let path = tmp(name);
    let mut rt = Runtime::homogeneous(4);
    let cells = rt.create_array::<Cell>("cells");
    for i in 0..16 {
        rt.insert(cells, Ix::i1(i), Cell { value: 1000 + i as u64 }, None);
    }
    rt.checkpoint_to_disk(&path).expect("write checkpoint");
    let image = std::fs::read(&path).unwrap();
    (path, image)
}

/// A runtime with the matching array registered, ready to restore into.
fn fresh_runtime() -> Runtime {
    let mut rt = Runtime::homogeneous(2);
    rt.create_array::<Cell>("cells");
    rt
}

fn restore(path: &Path) -> Result<(), RestoreError> {
    fresh_runtime().restore_from_disk(path).map(|_| ())
}

#[test]
fn pristine_checkpoint_restores() {
    let (path, _) = write_checkpoint("pristine.ckpt");
    let mut rt = fresh_runtime();
    rt.restore_from_disk(&path).expect("pristine image restores");
    let cells = rt.array_id("cells").unwrap();
    assert_eq!(rt.array_len(cells), 16);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_is_rejected() {
    let (path, image) = write_checkpoint("trunc.ckpt");
    // Cut at several depths: inside the magic, inside the header, and at
    // various points of the payload.
    for keep in [0, 4, 12, 19, 20, image.len() / 2, image.len() - 1] {
        let damaged = DiskFault::Truncate { keep_bytes: keep }.apply(&image);
        std::fs::write(&path, &damaged).unwrap();
        let err = restore(&path).unwrap_err();
        assert!(
            matches!(err, RestoreError::Truncated { .. } | RestoreError::BadMagic { .. }),
            "keep={keep}: got {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flips_are_rejected_at_every_offset() {
    let (path, image) = write_checkpoint("flip.ckpt");
    // A single flipped bit anywhere in the image must surface as a
    // structured error: in the magic → BadMagic, in the length → Truncated
    // or a checksum over the wrong span, in the CRC field or payload →
    // ChecksumMismatch.
    for offset in 0..image.len() {
        let damaged = DiskFault::BitFlip { offset, bit: (offset % 8) as u8 }.apply(&image);
        std::fs::write(&path, &damaged).unwrap();
        let err = restore(&path).unwrap_err();
        match (offset, &err) {
            (0..=7, RestoreError::BadMagic { .. }) => {}
            (8..=15, RestoreError::Truncated { .. } | RestoreError::ChecksumMismatch { .. }) => {}
            (_, RestoreError::ChecksumMismatch { .. }) => {}
            _ => panic!("offset {offset}: unexpected {err:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_writes_are_rejected() {
    let (path, image) = write_checkpoint("torn.ckpt");
    for from in [0, 8, 20, image.len() / 2, image.len() - 2] {
        let damaged = DiskFault::TornWrite { from_byte: from }.apply(&image);
        if damaged == image {
            // The zeroed tail was already zero — not actually corrupted.
            continue;
        }
        std::fs::write(&path, &damaged).unwrap();
        let err = restore(&path).unwrap_err();
        assert!(
            matches!(
                err,
                RestoreError::BadMagic { .. }
                    | RestoreError::Truncated { .. }
                    | RestoreError::ChecksumMismatch { .. }
            ),
            "from={from}: got {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_and_old_format_are_rejected() {
    let err = restore(&tmp("does_not_exist.ckpt")).unwrap_err();
    assert!(matches!(err, RestoreError::Io(_)), "got {err:?}");

    // A previous-generation (v1) image has a different magic.
    let path = tmp("v1.ckpt");
    let mut v1 = b"CHMCKPT1".to_vec();
    v1.extend_from_slice(&0u64.to_le_bytes());
    std::fs::write(&path, &v1).unwrap();
    let err = restore(&path).unwrap_err();
    assert!(matches!(err, RestoreError::BadMagic { .. }), "got {err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn rejected_restore_leaves_runtime_untouched() {
    let (path, image) = write_checkpoint("untouched.ckpt");
    let damaged = DiskFault::BitFlip { offset: image.len() - 1, bit: 7 }.apply(&image);
    std::fs::write(&path, &damaged).unwrap();

    let mut rt = fresh_runtime();
    rt.restore_from_disk(&path).unwrap_err();
    let cells = rt.array_id("cells").unwrap();
    assert_eq!(rt.array_len(cells), 0, "no partial restore");

    // The same runtime can still restore the pristine image afterwards.
    std::fs::write(&path, &image).unwrap();
    rt.restore_from_disk(&path).expect("pristine restore after rejection");
    assert_eq!(rt.array_len(cells), 16);
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_write_is_atomic() {
    // The write goes through a temp file + rename: after a successful
    // checkpoint no temp file remains, and overwriting an existing
    // checkpoint never leaves a mixed image behind.
    let (path, image) = write_checkpoint("atomic.ckpt");
    assert!(!path.with_extension("ckpt.tmp").exists());
    let tmp_path: PathBuf = {
        let mut s = path.as_os_str().to_os_string();
        s.push(".tmp");
        s.into()
    };
    assert!(!tmp_path.exists(), "temp file renamed away");

    let mut rt = Runtime::homogeneous(4);
    let cells = rt.create_array::<Cell>("cells");
    for i in 0..16 {
        rt.insert(cells, Ix::i1(i), Cell { value: 2000 + i as u64 }, None);
    }
    rt.checkpoint_to_disk(&path).expect("overwrite checkpoint");
    let new_image = std::fs::read(&path).unwrap();
    assert_ne!(new_image, image);
    restore(&path).expect("overwritten checkpoint is whole");
    std::fs::remove_file(&path).ok();
}
