//! Shared fixtures for the fault-injection and preemption campaigns:
//! a seeded RNG, per-schedule seed derivation, and three mini-apps with
//! verifiable answers (lockstep reduction, ring token, 1-D halo exchange).
//! Used by `ft_campaign.rs`, `preempt_campaign.rs`, and `elastic.rs`.
#![allow(dead_code)]

use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, RedOp, RedValue, Runtime, SysEvent,
};
use charm_pup::{Pup, Puper};

// ---------------------------------------------------------------------------
// Deterministic schedule generator (xorshift64*, no external deps).
// ---------------------------------------------------------------------------

pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    /// Uniform in [lo, hi).
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// Derive a per-schedule seed from the app name and schedule index (FNV-1a),
/// so every (app, k) pair is an independent, reproducible stream.
pub fn schedule_seed(app: &str, k: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in app.bytes().chain(k.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A mini-app: how to populate a runtime and how to check its answer.
pub struct AppSpec {
    pub name: &'static str,
    pub build: fn(&mut Runtime),
    pub verify: fn(&Runtime) -> Result<(), String>,
}

// ---------------------------------------------------------------------------
// Mini-app 1: Lockstep — driver-broadcast steps, per-step sum reduction.
// ---------------------------------------------------------------------------

pub const LOCK_WORKERS: i64 = 24;
pub const LOCK_STEPS: u64 = 10;

#[derive(Default, Clone)]
pub struct Step(pub u64);
impl Pup for Step {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.0);
    }
}

#[derive(Default)]
struct LockWorker {
    step: u64,
    workers: ArrayProxy<LockWorker>,
    driver: ArrayProxy<LockDriver>,
}

impl Pup for LockWorker {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.workers, self.driver);
    }
}

impl Chare for LockWorker {
    type Msg = Step;
    fn on_message(&mut self, Step(n): Step, ctx: &mut Ctx<'_>) {
        self.step = n;
        ctx.work(5e5);
        ctx.contribute(
            self.workers,
            n as u32,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare { array: self.driver.id(), ix: Ix::i1(0) },
        );
    }
}

#[derive(Default)]
struct LockDriver {
    step: u64,
    steps: u64,
    workers: ArrayProxy<LockWorker>,
}

impl Pup for LockDriver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.steps, self.workers);
    }
}

impl Chare for LockDriver {
    type Msg = Step;
    fn on_message(&mut self, _kick: Step, ctx: &mut Ctx<'_>) {
        ctx.broadcast(self.workers, Step(self.step));
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { value, .. } => {
                debug_assert_eq!(value.as_i64(), LOCK_WORKERS);
                self.step += 1;
                if self.step < self.steps {
                    ctx.broadcast(self.workers, Step(self.step));
                } else {
                    ctx.log_metric("lockstep_done", self.step as f64);
                    ctx.exit();
                }
            }
            SysEvent::Restarted { .. } => {
                // Re-drive the in-flight step (also replays a lost kick).
                ctx.broadcast(self.workers, Step(self.step));
            }
            _ => {}
        }
    }
}

pub fn lockstep_build(rt: &mut Runtime) {
    let workers = rt.create_array::<LockWorker>("lock_workers");
    let driver = rt.create_array::<LockDriver>("lock_driver");
    for i in 0..LOCK_WORKERS {
        rt.insert(workers, Ix::i1(i), LockWorker { workers, driver, ..Default::default() }, None);
    }
    rt.insert(
        driver,
        Ix::i1(0),
        LockDriver { steps: LOCK_STEPS, workers, ..Default::default() },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), Step(0));
}

/// Like [`lockstep_build`], but marks the worker array migratable
/// (at-sync load stats), so RTS-triggered LB rounds can move workers.
pub fn lockstep_build_migratable(rt: &mut Runtime) {
    let workers = rt.create_array::<LockWorker>("lock_workers");
    rt.set_at_sync(workers, true);
    let driver = rt.create_array::<LockDriver>("lock_driver");
    for i in 0..LOCK_WORKERS {
        rt.insert(workers, Ix::i1(i), LockWorker { workers, driver, ..Default::default() }, None);
    }
    rt.insert(
        driver,
        Ix::i1(0),
        LockDriver { steps: LOCK_STEPS, workers, ..Default::default() },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), Step(0));
}

/// Like [`lockstep_build`], but pins every worker onto the first `pes`
/// PEs, leaving the rest idle — fodder for an elastic shrink.
pub fn lockstep_build_packed(rt: &mut Runtime, pes: usize) {
    let workers = rt.create_array::<LockWorker>("lock_workers");
    let driver = rt.create_array::<LockDriver>("lock_driver");
    for i in 0..LOCK_WORKERS {
        rt.insert(
            workers,
            Ix::i1(i),
            LockWorker { workers, driver, ..Default::default() },
            Some(i as usize % pes),
        );
    }
    rt.insert(
        driver,
        Ix::i1(0),
        LockDriver { steps: LOCK_STEPS, workers, ..Default::default() },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), Step(0));
}

pub fn lockstep_verify(rt: &Runtime) -> Result<(), String> {
    match rt.metric("lockstep_done").last() {
        Some(&(_, v)) if v == LOCK_STEPS as f64 => Ok(()),
        other => Err(format!("lockstep_done = {other:?}, want {LOCK_STEPS}")),
    }
}

pub fn lockstep_spec() -> AppSpec {
    AppSpec { name: "lockstep", build: lockstep_build, verify: lockstep_verify }
}

// ---------------------------------------------------------------------------
// Mini-app 2: Ring — a token makes laps; recovery re-injects it from the
// highest hop any node remembers forwarding (gather-then-resume pattern).
// ---------------------------------------------------------------------------

pub const RING_NODES: i64 = 16;
pub const RING_LAPS: u64 = 3;
pub const RING_HOPS: u64 = RING_NODES as u64 * RING_LAPS;

#[derive(Clone)]
enum RingMsg {
    /// The token at hop `h`; hop `h` is processed by node `h % n`.
    Token(u64),
    /// Driver asks: what was the last hop you processed?
    Report,
}

impl Default for RingMsg {
    fn default() -> Self {
        RingMsg::Token(0)
    }
}

impl Pup for RingMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = matches!(self, RingMsg::Report) as u8;
        p.p(&mut t);
        let mut h = if let RingMsg::Token(h) = self { *h } else { 0 };
        p.p(&mut h);
        if p.is_unpacking() {
            *self = if t == 1 { RingMsg::Report } else { RingMsg::Token(h) };
        }
    }
}

#[derive(Clone, Default)]
enum RingCtl {
    #[default]
    Kick,
    /// A node's last processed hop (-1 = never held the token).
    LastHop(i64),
    /// The token completed all laps at hop count `h`.
    Done(u64),
}

impl Pup for RingCtl {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            RingCtl::Kick => 0,
            RingCtl::LastHop(_) => 1,
            RingCtl::Done(_) => 2,
        };
        p.p(&mut t);
        let mut a = if let RingCtl::LastHop(v) = self { *v } else { 0 };
        p.p(&mut a);
        let mut b = if let RingCtl::Done(h) = self { *h } else { 0 };
        p.p(&mut b);
        if p.is_unpacking() {
            *self = match t {
                0 => RingCtl::Kick,
                1 => RingCtl::LastHop(a),
                _ => RingCtl::Done(b),
            };
        }
    }
}

#[derive(Default)]
struct RingNode {
    n: i64,
    last_hop: i64,
    nodes: ArrayProxy<RingNode>,
    driver: ArrayProxy<RingDriver>,
}

impl Pup for RingNode {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.n, self.last_hop, self.nodes, self.driver);
    }
}

impl Chare for RingNode {
    type Msg = RingMsg;
    fn on_message(&mut self, msg: RingMsg, ctx: &mut Ctx<'_>) {
        match msg {
            RingMsg::Token(h) => {
                self.last_hop = h as i64;
                ctx.work(2e5);
                let next = h + 1;
                if next < RING_HOPS {
                    ctx.send(self.nodes, Ix::i1(next as i64 % self.n), RingMsg::Token(next));
                } else {
                    ctx.send(self.driver, Ix::i1(0), RingCtl::Done(next));
                }
            }
            RingMsg::Report => {
                ctx.send(self.driver, Ix::i1(0), RingCtl::LastHop(self.last_hop));
            }
        }
    }
}

#[derive(Default)]
struct RingDriver {
    n: i64,
    reports: i64,
    max_hop: i64,
    done: bool,
    nodes: ArrayProxy<RingNode>,
}

impl Pup for RingDriver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.n, self.reports, self.max_hop, self.done, self.nodes);
    }
}

impl RingDriver {
    fn finish(&mut self, hops: u64, ctx: &mut Ctx<'_>) {
        if !self.done {
            self.done = true;
            ctx.log_metric("ring_done", hops as f64);
            ctx.exit();
        }
    }
}

impl Chare for RingDriver {
    type Msg = RingCtl;
    fn on_message(&mut self, msg: RingCtl, ctx: &mut Ctx<'_>) {
        match msg {
            RingCtl::Kick => ctx.send(self.nodes, Ix::i1(0), RingMsg::Token(0)),
            RingCtl::LastHop(h) => {
                if self.done {
                    return;
                }
                self.max_hop = self.max_hop.max(h);
                self.reports += 1;
                if self.reports == self.n {
                    // The token at max_hop was processed; hop max_hop+1 was
                    // at most in flight (and in-flight messages were purged
                    // at rollback), so re-injecting it is exactly-once.
                    let next = (self.max_hop + 1) as u64;
                    self.reports = 0;
                    self.max_hop = -1;
                    if next >= RING_HOPS {
                        self.finish(RING_HOPS, ctx);
                    } else {
                        ctx.send(self.nodes, Ix::i1(next as i64 % self.n), RingMsg::Token(next));
                    }
                }
            }
            RingCtl::Done(h) => self.finish(h, ctx),
        }
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Restarted { .. } = ev {
            if self.done {
                return;
            }
            // A rollback may have restored mid-gather state: restart the
            // gather from scratch (stale LastHop messages were purged).
            self.reports = 0;
            self.max_hop = -1;
            ctx.broadcast(self.nodes, RingMsg::Report);
        }
    }
}

pub fn ring_build(rt: &mut Runtime) {
    let nodes = rt.create_array::<RingNode>("ring_nodes");
    let driver = rt.create_array::<RingDriver>("ring_driver");
    for i in 0..RING_NODES {
        rt.insert(
            nodes,
            Ix::i1(i),
            RingNode { n: RING_NODES, nodes, driver, last_hop: -1 },
            None,
        );
    }
    rt.insert(
        driver,
        Ix::i1(0),
        RingDriver { n: RING_NODES, max_hop: -1, nodes, ..Default::default() },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), RingCtl::Kick);
}

pub fn ring_verify(rt: &Runtime) -> Result<(), String> {
    match rt.metric("ring_done").last() {
        Some(&(_, v)) if v == RING_HOPS as f64 => Ok(()),
        other => Err(format!("ring_done = {other:?}, want {RING_HOPS}")),
    }
}

pub fn ring_spec() -> AppSpec {
    AppSpec { name: "ring", build: ring_build, verify: ring_verify }
}

// ---------------------------------------------------------------------------
// Mini-app 3: Halo1d — nearest-neighbor exchange per step (the mixed-phase
// rollback case: a checkpoint can catch neighbors at different steps).
// ---------------------------------------------------------------------------

pub const HALO_NODES: i64 = 16;
pub const HALO_STEPS: u64 = 8;

#[derive(Clone)]
enum HaloMsg {
    Step(u64),
    Halo(u64),
}

impl Default for HaloMsg {
    fn default() -> Self {
        HaloMsg::Step(0)
    }
}

impl Pup for HaloMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = matches!(self, HaloMsg::Halo(_)) as u8;
        p.p(&mut t);
        let mut s = match self {
            HaloMsg::Step(s) | HaloMsg::Halo(s) => *s,
        };
        p.p(&mut s);
        if p.is_unpacking() {
            *self = if t == 1 { HaloMsg::Halo(s) } else { HaloMsg::Step(s) };
        }
    }
}

#[derive(Default)]
struct HaloNode {
    i: i64,
    n: i64,
    step: u64,
    seen: u8,
    early: u8,
    rolled_back: bool,
    nodes: ArrayProxy<HaloNode>,
    driver: ArrayProxy<HaloDriver>,
}

impl Pup for HaloNode {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.i, self.n, self.step, self.seen, self.early,
            self.rolled_back, self.nodes, self.driver
        );
    }
}

impl HaloNode {
    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        if self.seen < 2 {
            return;
        }
        self.seen = 0;
        ctx.work(3e5);
        ctx.contribute(
            self.nodes,
            self.step as u32,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare { array: self.driver.id(), ix: Ix::i1(0) },
        );
    }
}

impl Chare for HaloNode {
    type Msg = HaloMsg;
    fn on_message(&mut self, msg: HaloMsg, ctx: &mut Ctx<'_>) {
        match msg {
            HaloMsg::Step(s) => {
                self.rolled_back = false;
                self.step = s;
                self.seen += std::mem::take(&mut self.early);
                for d in [-1i64, 1] {
                    ctx.send(
                        self.nodes,
                        Ix::i1((self.i + d).rem_euclid(self.n)),
                        HaloMsg::Halo(s),
                    );
                }
                self.maybe_compute(ctx);
            }
            HaloMsg::Halo(_) if self.rolled_back => {
                // Post-rollback traffic is all for the one re-driven step
                // (in-flight messages were purged); hold it until our Step.
                self.early += 1;
            }
            HaloMsg::Halo(s) => {
                if s == self.step {
                    self.seen += 1;
                    self.maybe_compute(ctx);
                } else {
                    debug_assert_eq!(s, self.step + 1, "halo from the far future");
                    self.early += 1;
                }
            }
        }
    }
    fn on_event(&mut self, ev: SysEvent, _ctx: &mut Ctx<'_>) {
        if let SysEvent::Restarted { .. } = ev {
            self.rolled_back = true;
            self.seen = 0;
            self.early = 0;
        }
    }
}

#[derive(Default)]
struct HaloDriver {
    step: u64,
    steps: u64,
    nodes: ArrayProxy<HaloNode>,
}

impl Pup for HaloDriver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.steps, self.nodes);
    }
}

impl Chare for HaloDriver {
    type Msg = Step;
    fn on_message(&mut self, _kick: Step, ctx: &mut Ctx<'_>) {
        ctx.broadcast(self.nodes, HaloMsg::Step(self.step));
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { .. } => {
                self.step += 1;
                if self.step < self.steps {
                    ctx.broadcast(self.nodes, HaloMsg::Step(self.step));
                } else {
                    ctx.log_metric("halo_done", self.step as f64);
                    ctx.exit();
                }
            }
            SysEvent::Restarted { .. } => {
                ctx.broadcast(self.nodes, HaloMsg::Step(self.step));
            }
            _ => {}
        }
    }
}

pub fn halo_build(rt: &mut Runtime) {
    let nodes = rt.create_array::<HaloNode>("halo_nodes");
    let driver = rt.create_array::<HaloDriver>("halo_driver");
    for i in 0..HALO_NODES {
        rt.insert(
            nodes,
            Ix::i1(i),
            HaloNode { i, n: HALO_NODES, nodes, driver, ..Default::default() },
            None,
        );
    }
    rt.insert(
        driver,
        Ix::i1(0),
        HaloDriver { steps: HALO_STEPS, nodes, ..Default::default() },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), Step(0));
}

pub fn halo_verify(rt: &Runtime) -> Result<(), String> {
    match rt.metric("halo_done").last() {
        Some(&(_, v)) if v == HALO_STEPS as f64 => Ok(()),
        other => Err(format!("halo_done = {other:?}, want {HALO_STEPS}")),
    }
}

pub fn halo_spec() -> AppSpec {
    AppSpec { name: "halo1d", build: halo_build, verify: halo_verify }
}
