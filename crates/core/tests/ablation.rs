//! Tests for the runtime's ablation toggles: location caching, collective
//! arity, and communication tracking for comm-aware balancing.

use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, MachineConfig, RedOp, RedValue, Runtime, SysEvent,
};
use charm_pup::{Pup, Puper};

/// A pair of chares exchanging many messages (persistent communication).
#[derive(Default)]
struct Chatty {
    peer: i64,
    remaining: u64,
}
impl Pup for Chatty {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.peer);
        p.p(&mut self.remaining);
    }
}
impl Chare for Chatty {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        // No compute: keep the chain latency-bound, so the lookup cost is
        // on the critical path. (With enough over-decomposition the cost
        // would hide behind other chares' work — which is the paper's own
        // point — so the ablation isolates a single dependent chain.)
        if self.remaining > 0 {
            self.remaining -= 1;
            let me = ArrayProxy::<Chatty>::from_id(ctx.my_id().array);
            ctx.send(me, Ix::i1(self.peer), 0u8);
        }
    }
}

fn chatty_run(cache: bool) -> f64 {
    let mut rt = Runtime::builder(MachineConfig::homogeneous(8))
        .location_cache(cache)
        .build();
    let arr = rt.create_array::<Chatty>("chatty");
    // A single dependent ping-pong chain across two PEs.
    for i in 0..2i64 {
        rt.insert(
            arr,
            Ix::i1(i),
            Chatty {
                peer: i ^ 1,
                remaining: 200,
            },
            Some(i as usize),
        );
    }
    rt.send(arr, Ix::i1(0), 0u8);
    rt.run().end_time.as_secs_f64()
}

#[test]
fn location_cache_pays_off_for_persistent_communication() {
    // "This scheme works well if there is persistence in the interaction
    // pattern of the application" (§II-D) — with the cache off, every send
    // pays the home-query round trip.
    let with = chatty_run(true);
    let without = chatty_run(false);
    assert!(
        with < without * 0.8,
        "cache must cut repeated-lookup cost: with={with:.6}s without={without:.6}s"
    );
}

#[derive(Default)]
struct Reducer {
    rounds: u64,
}
impl Pup for Reducer {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.rounds);
    }
}
impl Chare for Reducer {
    type Msg = u32;
    fn on_message(&mut self, round: u32, ctx: &mut Ctx<'_>) {
        let me = ArrayProxy::<Reducer>::from_id(ctx.my_id().array);
        ctx.contribute(
            me,
            round,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare {
                array: ctx.my_id().array,
                ix: Ix::i1(0),
            },
        );
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { tag, .. } = ev {
            self.rounds += 1;
            if self.rounds < 50 {
                let me = ArrayProxy::<Reducer>::from_id(ctx.my_id().array);
                ctx.broadcast(me, tag + 1);
            } else {
                ctx.exit();
            }
        }
    }
}

fn reduction_run(arity: u64, pes: usize) -> f64 {
    let mut rt = Runtime::builder(MachineConfig::homogeneous(pes))
        .collective_arity(arity)
        .build();
    let arr = rt.create_array::<Reducer>("red");
    for i in 0..(pes as i64) {
        rt.insert(arr, Ix::i1(i), Reducer::default(), Some(i as usize));
    }
    rt.broadcast(arr, 1u32);
    rt.run().end_time.as_secs_f64()
}

#[test]
fn collective_arity_flattens_the_tree() {
    // Higher arity → shallower spanning trees → cheaper barriers on a
    // latency-bound reduction ladder.
    let k2 = reduction_run(2, 64);
    let k8 = reduction_run(8, 64);
    assert!(
        k8 < k2,
        "arity-8 tree should beat binary: k2={k2:.6}s k8={k8:.6}s"
    );
}

/// Comm tracking feeds real volumes to the balancer.
#[derive(Default)]
struct Pairy {
    peer: i64,
    steps: u64,
    waiting: bool,
}
impl Pup for Pairy {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.peer, self.steps, self.waiting);
    }
}
impl Chare for Pairy {
    type Msg = Vec<u8>;
    fn on_message(&mut self, _m: Vec<u8>, ctx: &mut Ctx<'_>) {
        ctx.work(1e5);
        if self.steps > 0 {
            self.steps -= 1;
            let me = ArrayProxy::<Pairy>::from_id(ctx.my_id().array);
            ctx.send(me, Ix::i1(self.peer), vec![0u8; 4096]);
            if self.steps.is_multiple_of(10) {
                self.waiting = true;
                ctx.at_sync();
            }
        }
    }
    fn on_event(&mut self, ev: SysEvent, _ctx: &mut Ctx<'_>) {
        if matches!(ev, SysEvent::ResumeFromSync) {
            self.waiting = false;
        }
    }
}

#[test]
fn tracked_comm_reaches_the_strategy() {
    use charm_core::{LbStats, Strategy};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    struct Spy {
        saw_comm: Arc<AtomicUsize>,
    }
    impl Strategy for Spy {
        fn name(&self) -> &'static str {
            "Spy"
        }
        fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
            self.saw_comm.store(stats.comm.len(), Ordering::SeqCst);
            assert!(
                stats.objs.iter().any(|o| o.bytes_sent > 0),
                "per-object send totals populated"
            );
            vec![None; stats.objs.len()]
        }
    }
    let saw = Arc::new(AtomicUsize::new(0));
    let mut rt = Runtime::builder(MachineConfig::homogeneous(4))
        .track_comm(true)
        .strategy(Box::new(Spy {
            saw_comm: Arc::clone(&saw),
        }))
        .build();
    let arr = rt.create_array::<Pairy>("pairy");
    rt.set_at_sync(arr, true);
    for i in 0..8i64 {
        rt.insert(
            arr,
            Ix::i1(i),
            Pairy {
                peer: i ^ 1,
                steps: 30,
                waiting: false,
            },
            Some((i % 4) as usize),
        );
    }
    for i in 0..8 {
        rt.send(arr, Ix::i1(i), vec![0u8; 64]);
    }
    rt.run();
    assert!(
        saw.load(Ordering::SeqCst) > 0,
        "strategy must have seen comm edges"
    );
    assert!(!rt.lb_rounds().is_empty());
}

#[test]
fn untracked_comm_stays_empty() {
    use charm_core::NullLb;
    let mut rt = Runtime::builder(MachineConfig::homogeneous(4))
        .strategy(Box::new(NullLb))
        .build();
    let arr = rt.create_array::<Pairy>("pairy");
    rt.set_at_sync(arr, true);
    for i in 0..4i64 {
        rt.insert(
            arr,
            Ix::i1(i),
            Pairy {
                peer: i ^ 1,
                steps: 12,
                waiting: false,
            },
            None,
        );
    }
    for i in 0..4 {
        rt.send(arr, Ix::i1(i), vec![0u8; 64]);
    }
    rt.run();
    // With tracking off the run completes identically (no panic, LB ran);
    // there is no public accessor for comm, so completion is the check.
    assert!(!rt.lb_rounds().is_empty());
}

#[test]
fn home_maps_control_default_placement() {
    use charm_core::HomeMap;

    // Blocked: 1-D indices land in contiguous PE ranges.
    let mut rt = Runtime::homogeneous(4);
    let arr = rt.create_array::<Chatty>("blocked");
    rt.set_home_map(arr, HomeMap::Blocked { total: 16 });
    for i in 0..16 {
        rt.insert(arr, Ix::i1(i), Chatty::default(), None);
    }
    for i in 0..16i64 {
        let pe = rt.element_pe(arr.id(), &Ix::i1(i)).unwrap();
        assert_eq!(pe, (i as usize) * 4 / 16, "blocked placement for {i}");
    }

    // Custom: everything on the last PE.
    fn last_pe(_ix: &Ix, pes: usize) -> usize {
        pes - 1
    }
    let custom = rt.create_array::<Chatty>("custom");
    rt.set_home_map(custom, HomeMap::Custom(last_pe));
    for i in 0..5 {
        rt.insert(custom, Ix::i1(i), Chatty::default(), None);
    }
    for i in 0..5i64 {
        assert_eq!(rt.element_pe(custom.id(), &Ix::i1(i)), Some(3));
    }
}

#[test]
fn blocked_home_map_falls_back_to_hash_outside_range() {
    use charm_core::HomeMap;
    let mut rt = Runtime::homogeneous(4);
    let arr = rt.create_array::<Chatty>("blocked");
    rt.set_home_map(arr, HomeMap::Blocked { total: 4 });
    // Index 100 is outside 0..4: placement must still be a valid PE.
    rt.insert(arr, Ix::i1(100), Chatty::default(), None);
    let pe = rt.element_pe(arr.id(), &Ix::i1(100)).unwrap();
    assert!(pe < 4);
}
