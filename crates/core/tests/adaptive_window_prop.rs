//! Property tests for the adaptive per-shard-pair lookahead planner
//! (`charm_core::lookahead`) against the global-α reference scheme the
//! lockstep engine uses.
//!
//! Two properties carry the whole design:
//!
//! 1. **Dominance** — for any latency matrix whose entries respect the
//!    fabric-wide minimum α and any vector of per-shard pending times, the
//!    adaptive horizon granted to every shard is at least the global-α
//!    horizon. The adaptive engine can only run *ahead* of lockstep,
//!    never behind it, so elision is a pure win.
//! 2. **Safety** — no causal chain of messages (relayed through any
//!    sequence of shards, each hop at least the pairwise latency floor)
//!    can arrive below the horizon granted to its destination. Events the
//!    engine admits under the horizon are final.
//!
//! Both are checked over hundreds of randomized matrices and send
//! schedules (seeded SplitMix64 — failures reproduce), plus the real
//! fabric models for the flat-crossbar and torus cases.

use charm_core::lookahead::{close, global_horizon, horizon, pair_matrix, plan_bounds};
use charm_machine::{NetworkModel, NetworkParams};

/// Deterministic test PRNG (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// A random pairwise latency-floor matrix: `k` shards, every off-diagonal
/// entry in `[win, 8*win]` (the engine's `pair_matrix` clamps entries to
/// the global minimum, so `>= win` is an invariant, not an assumption),
/// diagonal left at `MAX` for `close` to fill with round trips.
fn random_matrix(rng: &mut Rng, k: usize, win: u64) -> Vec<Vec<u64>> {
    let mut m = vec![vec![u64::MAX; k]; k];
    for (a, row) in m.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            if a != b {
                *cell = rng.range(win, win * 8);
            }
        }
    }
    m
}

/// Random pending vector: mostly finite times, with idle (`MAX`) shards
/// mixed in so the tests cover partially drained systems.
fn random_pending(rng: &mut Rng, k: usize, win: u64) -> Vec<u64> {
    (0..k)
        .map(|_| {
            if rng.next().is_multiple_of(5) {
                u64::MAX
            } else {
                rng.range(0, win * 64)
            }
        })
        .collect()
}

#[test]
fn adaptive_horizon_dominates_global_alpha() {
    let mut rng = Rng(0xADA9_717E);
    for trial in 0..400 {
        let k = 2 + (rng.next() as usize % 7);
        let win = rng.range(40, 5_000);
        let dist = close(random_matrix(&mut rng, k, win));
        let pend = random_pending(&mut rng, k, win);
        let g = global_horizon(&pend, win);
        for s in 0..k {
            let b = horizon(&dist, &pend, s);
            assert!(
                b >= g,
                "trial {trial}: shard {s} adaptive horizon {b} < global-α {g} \
                 (win={win}, pending={pend:?})"
            );
        }
        if pend.iter().all(|&p| p == u64::MAX) {
            assert_eq!(g, u64::MAX, "all-idle system must grant unbounded horizons");
        }
    }
}

#[test]
fn adaptive_horizon_never_unsafe() {
    let mut rng = Rng(0x5AFE_0001);
    for trial in 0..400 {
        let k = 2 + (rng.next() as usize % 7);
        let win = rng.range(40, 5_000);
        let raw = random_matrix(&mut rng, k, win);
        let dist = close(raw.clone());
        let pend = random_pending(&mut rng, k, win);

        // Simulate random causal chains: a shard's next pending event
        // fires, sends a message (each hop pays at least the pairwise
        // floor plus arbitrary extra latency and think time), possibly
        // relayed through other shards. The arrival at the destination
        // must never undercut the destination's granted horizon.
        for _ in 0..32 {
            let src = (rng.next() as usize) % k;
            if pend[src] == u64::MAX {
                continue; // idle shards originate nothing
            }
            let mut at = pend[src];
            let mut here = src;
            let hops = 1 + rng.next() as usize % 3;
            for _ in 0..hops {
                let mut next = (rng.next() as usize) % k;
                if next == here {
                    next = (next + 1) % k;
                }
                // floor + jitter/serialization extra + relay think time
                at = at + raw[here][next] + rng.range(0, win * 4);
                here = next;
            }
            let b = horizon(&dist, &pend, here);
            assert!(
                at >= b,
                "trial {trial}: chain {src}->..->{here} arrives at {at}, below \
                 shard {here}'s horizon {b} — unsafe grant (pending={pend:?})"
            );
        }
    }
}

#[test]
fn closure_tightens_without_breaking_the_alpha_floor() {
    let mut rng = Rng(0xC1_050E);
    for _ in 0..200 {
        let k = 2 + (rng.next() as usize % 7);
        let win = rng.range(40, 5_000);
        let raw = random_matrix(&mut rng, k, win);
        let dist = close(raw.clone());
        for a in 0..k {
            for b in 0..k {
                if a != b {
                    assert!(
                        dist[a][b] <= raw[a][b],
                        "closure may only tighten an off-diagonal entry"
                    );
                }
                assert!(
                    dist[a][b] >= win,
                    "closed entry [{a}][{b}]={} fell below the α floor {win}",
                    dist[a][b]
                );
            }
            // Diagonal = min round trip: at least two α hops.
            assert!(dist[a][a] >= 2 * win, "round trip below 2α");
        }
    }
}

/// The same dominance property, but with the latency matrix produced by
/// the real planner over real fabric models instead of a synthetic one.
#[test]
fn planner_on_real_fabrics_dominates_global_alpha() {
    let fabrics: Vec<(&str, NetworkParams, usize)> = vec![
        ("infiniband", NetworkParams::infiniband(), 16),
        ("gemini_4x4x2", NetworkParams::gemini_torus(vec![4, 4, 2]), 32),
        ("ethernet", NetworkParams::ethernet_1g(), 8),
    ];
    let mut rng = Rng(0xFAB1);
    for (name, params, n) in fabrics {
        let net = NetworkModel::new(params, 42);
        let win = net.min_remote_delay().0.max(1);
        for shards in [2usize, 4] {
            let bounds = plan_bounds(n, shards, &net);
            let dist = close(pair_matrix(&net, &bounds));
            for (a, row) in dist.iter().enumerate() {
                for (b, &d) in row.iter().enumerate() {
                    assert!(
                        d >= win,
                        "{name}: dist[{a}][{b}]={d} below fabric α {win}"
                    );
                }
            }
            for _ in 0..100 {
                let pend = random_pending(&mut rng, bounds.len(), win);
                let g = global_horizon(&pend, win);
                for s in 0..bounds.len() {
                    assert!(
                        horizon(&dist, &pend, s) >= g,
                        "{name}/{shards} shards: adaptive horizon under global-α"
                    );
                }
            }
        }
    }
}

#[test]
fn shard_plans_cover_the_machine_and_respect_topology() {
    let flat = NetworkModel::new(NetworkParams::infiniband(), 7);
    for n in [1usize, 3, 8, 17, 64] {
        for shards in [1usize, 2, 4, 8] {
            let bounds = plan_bounds(n, shards, &flat);
            assert_eq!(bounds.first().map(|&(lo, _)| lo), Some(0));
            assert_eq!(bounds.last().map(|&(_, hi)| hi), Some(n));
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "shard bounds must be contiguous");
            }
            assert!(bounds.iter().all(|&(lo, hi)| lo <= hi));
        }
    }

    // On a torus whose rows tile the machine, interior cuts snap to row
    // boundaries so the nearest cross-shard pair is a full row apart.
    let torus = NetworkModel::new(NetworkParams::gemini_torus(vec![4, 4, 2]), 7);
    let bounds = plan_bounds(32, 4, &torus);
    for &(lo, hi) in &bounds {
        assert_eq!(lo % 4, 0, "torus shard cut {lo} not row-aligned");
        assert!(hi % 4 == 0 || hi == 32, "torus shard cut {hi} not row-aligned");
    }
}
