//! Property test: under arbitrary random communication patterns (fan-outs,
//! self-sends, random priorities, random placements, migrations), the
//! runtime never loses or duplicates a message — every send is eventually
//! executed exactly once — and runs remain deterministic.

use charm_core::{ArrayProxy, Chare, Ctx, Ix, MachineConfig, Runtime, SysEvent};
use charm_pup::{Pup, Puper};
use proptest::collection::vec;
use proptest::prelude::*;

/// A chare that relays a scripted number of messages.
#[derive(Default)]
struct Relay {
    /// Messages this chare still gets to originate (from its script).
    script: Vec<(i64, i64, u8)>, // (dst, prio, hops)
    received: u64,
    migrate_on: u8,
}

impl Pup for Relay {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.script, self.received, self.migrate_on);
    }
}

#[derive(Default)]
enum RelayMsg {
    /// Start executing the local script.
    #[default]
    Kick,
    /// A relayed message with `hops` forwards remaining.
    Hop { dst_next: i64, hops: u8 },
}

impl Pup for RelayMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            RelayMsg::Kick => 0,
            RelayMsg::Hop { .. } => 1,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => RelayMsg::Kick,
                _ => RelayMsg::Hop {
                    dst_next: 0,
                    hops: 0,
                },
            };
        }
        if let RelayMsg::Hop { dst_next, hops } = self {
            p.p(dst_next);
            p.p(hops);
        }
    }
}


impl Chare for Relay {
    type Msg = RelayMsg;

    fn on_message(&mut self, msg: RelayMsg, ctx: &mut Ctx<'_>) {
        let me = ArrayProxy::<Relay>::from_id(ctx.my_id().array);
        match msg {
            RelayMsg::Kick => {
                for (dst, prio, hops) in std::mem::take(&mut self.script) {
                    ctx.send_prio(
                        me,
                        Ix::i1(dst),
                        RelayMsg::Hop {
                            dst_next: (dst * 7 + 3) % 16,
                            hops,
                        },
                        prio,
                    );
                }
            }
            RelayMsg::Hop { dst_next, hops } => {
                self.received += 1;
                if self.received as u8 % 16 == self.migrate_on {
                    // Sporadic migration in the middle of the storm.
                    ctx.migrate_me((self.received as usize) % ctx.num_pes());
                }
                if hops > 0 {
                    ctx.send(
                        me,
                        Ix::i1(dst_next),
                        RelayMsg::Hop {
                            dst_next: (dst_next * 5 + 1) % 16,
                            hops: hops - 1,
                        },
                    );
                }
            }
        }
    }

    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

fn run_storm(scripts: &[Vec<(i64, i64, u8)>], pes: usize) -> (u64, u64, u64) {
    let mut rt = Runtime::builder(MachineConfig::homogeneous(pes)).build();
    let arr = rt.create_array::<Relay>("relay");
    for (i, script) in scripts.iter().enumerate() {
        rt.insert(
            arr,
            Ix::i1(i as i64),
            Relay {
                script: script.clone(),
                received: 0,
                migrate_on: (i % 16) as u8,
            },
            Some(i % pes),
        );
    }
    for i in 0..scripts.len() {
        rt.send(arr, Ix::i1(i as i64), RelayMsg::Kick);
    }
    let summary = rt.run();
    // Expected executions: each scripted send spawns a chain of (hops + 1)
    // Hop executions.
    let expected: u64 = scripts
        .iter()
        .flatten()
        .map(|&(_, _, hops)| hops as u64 + 1)
        .sum();
    let mut received = 0u64;
    for i in 0..scripts.len() {
        received += rt
            .inspect(arr, &Ix::i1(i as i64), |r: &Relay| r.received)
            .expect("chare alive");
    }
    (expected, received, summary.events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_message_is_lost_or_duplicated(
        scripts in vec(
            vec((0i64..16, -5i64..5, 0u8..6), 0..12),
            16..17
        ),
        pes in 1usize..9,
    ) {
        let (expected, received, _) = run_storm(&scripts, pes);
        prop_assert_eq!(received, expected, "every hop executes exactly once");
    }

    #[test]
    fn storms_are_deterministic(
        scripts in vec(
            vec((0i64..16, -5i64..5, 0u8..5), 0..10),
            16..17
        ),
    ) {
        let a = run_storm(&scripts, 4);
        let b = run_storm(&scripts, 4);
        prop_assert_eq!(a, b);
    }
}
