//! Seeded randomized fault-injection campaign (§III-B hardening).
//!
//! Three mini-apps with verifiable answers run under generated failure
//! schedules — single, simultaneous, cascading, buddy-pair, and
//! during-checkpoint — with automatic periodic checkpointing on. Every run
//! must either finish with the *correct* answer or surface a typed
//! [`Unrecoverable`]; panics and hangs (enforced with a sim-time budget)
//! are campaign failures. Schedules derive from a seed printed on failure,
//! so any run reproduces exactly (see EXPERIMENTS.md).

use charm_core::{
    buddy_pe, ArrayProxy, Callback, Chare, Ctx, Ix, MachineConfig, RedOp, RedValue, Runtime,
    SimTime, SysEvent, Unrecoverable,
};
use charm_pup::{Pup, Puper};

const PES: usize = 8;
const SCHEDULES_PER_APP: usize = 20;

// ---------------------------------------------------------------------------
// Deterministic schedule generator (xorshift64*, no external deps).
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    /// Uniform in [lo, hi).
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    /// One failure at a random instant.
    Single,
    /// Several distinct PEs at the same instant.
    Simultaneous,
    /// A burst: each subsequent failure lands shortly after the previous,
    /// often inside the restart protocol window it triggered.
    Cascade,
    /// A PE and its checkpoint buddy together — destroys both copies.
    BuddyPair,
    /// A failure placed inside a probed checkpoint replication window.
    DuringCheckpoint,
}

const KINDS: [Kind; 5] = [
    Kind::Single,
    Kind::Simultaneous,
    Kind::Cascade,
    Kind::BuddyPair,
    Kind::DuringCheckpoint,
];

/// Derive a per-schedule seed from the app name and schedule index (FNV-1a),
/// so every (app, k) pair is an independent, reproducible stream.
fn schedule_seed(app: &str, k: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in app.bytes().chain(k.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generate one failure schedule. `t_run` is the failure-free duration of
/// the checkpointed run; `windows` its checkpoint replication windows as
/// `(start, duration)` pairs from the `ckpt_time_s` metric.
fn gen_schedule(kind: Kind, seed: u64, t_run: f64, windows: &[(f64, f64)]) -> Vec<(SimTime, usize)> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::new();
    match kind {
        Kind::Single => {
            let t = rng.range(0.05, 0.85) * t_run;
            out.push((SimTime::from_secs_f64(t), rng.below(PES as u64) as usize));
        }
        Kind::Simultaneous => {
            let t = SimTime::from_secs_f64(rng.range(0.05, 0.85) * t_run);
            let n = 2 + rng.below(2) as usize; // 2 or 3 distinct PEs
            let mut pes = Vec::new();
            while pes.len() < n {
                let pe = rng.below(PES as u64) as usize;
                if !pes.contains(&pe) {
                    pes.push(pe);
                }
            }
            out.extend(pes.into_iter().map(|pe| (t, pe)));
        }
        Kind::Cascade => {
            let mut t = rng.range(0.05, 0.6) * t_run;
            for _ in 0..3 {
                out.push((SimTime::from_secs_f64(t), rng.below(PES as u64) as usize));
                t += rng.range(0.001, 0.08) * t_run;
            }
        }
        Kind::BuddyPair => {
            let t = SimTime::from_secs_f64(rng.range(0.05, 0.85) * t_run);
            let pe = rng.below(PES as u64) as usize;
            out.push((t, pe));
            out.push((t, buddy_pe(pe, PES)));
        }
        Kind::DuringCheckpoint => {
            let (at, dur) = windows[rng.below(windows.len() as u64) as usize];
            let t = at + rng.range(0.1, 0.9) * dur.max(1e-9);
            out.push((SimTime::from_secs_f64(t), rng.below(PES as u64) as usize));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Mini-app 1: Lockstep — driver-broadcast steps, per-step sum reduction.
// ---------------------------------------------------------------------------

const LOCK_WORKERS: i64 = 24;
const LOCK_STEPS: u64 = 10;

#[derive(Default, Clone)]
struct Step(u64);
impl Pup for Step {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.0);
    }
}

#[derive(Default)]
struct LockWorker {
    step: u64,
    workers: ArrayProxy<LockWorker>,
    driver: ArrayProxy<LockDriver>,
}

impl Pup for LockWorker {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.workers, self.driver);
    }
}

impl Chare for LockWorker {
    type Msg = Step;
    fn on_message(&mut self, Step(n): Step, ctx: &mut Ctx<'_>) {
        self.step = n;
        ctx.work(5e5);
        ctx.contribute(
            self.workers,
            n as u32,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare { array: self.driver.id(), ix: Ix::i1(0) },
        );
    }
}

#[derive(Default)]
struct LockDriver {
    step: u64,
    steps: u64,
    workers: ArrayProxy<LockWorker>,
}

impl Pup for LockDriver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.steps, self.workers);
    }
}

impl Chare for LockDriver {
    type Msg = Step;
    fn on_message(&mut self, _kick: Step, ctx: &mut Ctx<'_>) {
        ctx.broadcast(self.workers, Step(self.step));
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { value, .. } => {
                debug_assert_eq!(value.as_i64(), LOCK_WORKERS);
                self.step += 1;
                if self.step < self.steps {
                    ctx.broadcast(self.workers, Step(self.step));
                } else {
                    ctx.log_metric("lockstep_done", self.step as f64);
                    ctx.exit();
                }
            }
            SysEvent::Restarted { .. } => {
                // Re-drive the in-flight step (also replays a lost kick).
                ctx.broadcast(self.workers, Step(self.step));
            }
            _ => {}
        }
    }
}

fn lockstep_build(rt: &mut Runtime) {
    let workers = rt.create_array::<LockWorker>("lock_workers");
    let driver = rt.create_array::<LockDriver>("lock_driver");
    for i in 0..LOCK_WORKERS {
        rt.insert(workers, Ix::i1(i), LockWorker { workers, driver, ..Default::default() }, None);
    }
    rt.insert(
        driver,
        Ix::i1(0),
        LockDriver { steps: LOCK_STEPS, workers, ..Default::default() },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), Step(0));
}

fn lockstep_verify(rt: &Runtime) -> Result<(), String> {
    match rt.metric("lockstep_done").last() {
        Some(&(_, v)) if v == LOCK_STEPS as f64 => Ok(()),
        other => Err(format!("lockstep_done = {other:?}, want {LOCK_STEPS}")),
    }
}

// ---------------------------------------------------------------------------
// Mini-app 2: Ring — a token makes laps; recovery re-injects it from the
// highest hop any node remembers forwarding (gather-then-resume pattern).
// ---------------------------------------------------------------------------

const RING_NODES: i64 = 16;
const RING_LAPS: u64 = 3;
const RING_HOPS: u64 = RING_NODES as u64 * RING_LAPS;

#[derive(Clone)]
enum RingMsg {
    /// The token at hop `h`; hop `h` is processed by node `h % n`.
    Token(u64),
    /// Driver asks: what was the last hop you processed?
    Report,
}

impl Default for RingMsg {
    fn default() -> Self {
        RingMsg::Token(0)
    }
}

impl Pup for RingMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = matches!(self, RingMsg::Report) as u8;
        p.p(&mut t);
        let mut h = if let RingMsg::Token(h) = self { *h } else { 0 };
        p.p(&mut h);
        if p.is_unpacking() {
            *self = if t == 1 { RingMsg::Report } else { RingMsg::Token(h) };
        }
    }
}

#[derive(Clone, Default)]
enum RingCtl {
    #[default]
    Kick,
    /// A node's last processed hop (-1 = never held the token).
    LastHop(i64),
    /// The token completed all laps at hop count `h`.
    Done(u64),
}

impl Pup for RingCtl {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            RingCtl::Kick => 0,
            RingCtl::LastHop(_) => 1,
            RingCtl::Done(_) => 2,
        };
        p.p(&mut t);
        let mut a = if let RingCtl::LastHop(v) = self { *v } else { 0 };
        p.p(&mut a);
        let mut b = if let RingCtl::Done(h) = self { *h } else { 0 };
        p.p(&mut b);
        if p.is_unpacking() {
            *self = match t {
                0 => RingCtl::Kick,
                1 => RingCtl::LastHop(a),
                _ => RingCtl::Done(b),
            };
        }
    }
}

#[derive(Default)]
struct RingNode {
    n: i64,
    last_hop: i64,
    nodes: ArrayProxy<RingNode>,
    driver: ArrayProxy<RingDriver>,
}

impl Pup for RingNode {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.n, self.last_hop, self.nodes, self.driver);
    }
}

impl Chare for RingNode {
    type Msg = RingMsg;
    fn on_message(&mut self, msg: RingMsg, ctx: &mut Ctx<'_>) {
        match msg {
            RingMsg::Token(h) => {
                self.last_hop = h as i64;
                ctx.work(2e5);
                let next = h + 1;
                if next < RING_HOPS {
                    ctx.send(self.nodes, Ix::i1(next as i64 % self.n), RingMsg::Token(next));
                } else {
                    ctx.send(self.driver, Ix::i1(0), RingCtl::Done(next));
                }
            }
            RingMsg::Report => {
                ctx.send(self.driver, Ix::i1(0), RingCtl::LastHop(self.last_hop));
            }
        }
    }
}

#[derive(Default)]
struct RingDriver {
    n: i64,
    reports: i64,
    max_hop: i64,
    done: bool,
    nodes: ArrayProxy<RingNode>,
}

impl Pup for RingDriver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.n, self.reports, self.max_hop, self.done, self.nodes);
    }
}

impl RingDriver {
    fn finish(&mut self, hops: u64, ctx: &mut Ctx<'_>) {
        if !self.done {
            self.done = true;
            ctx.log_metric("ring_done", hops as f64);
            ctx.exit();
        }
    }
}

impl Chare for RingDriver {
    type Msg = RingCtl;
    fn on_message(&mut self, msg: RingCtl, ctx: &mut Ctx<'_>) {
        match msg {
            RingCtl::Kick => ctx.send(self.nodes, Ix::i1(0), RingMsg::Token(0)),
            RingCtl::LastHop(h) => {
                if self.done {
                    return;
                }
                self.max_hop = self.max_hop.max(h);
                self.reports += 1;
                if self.reports == self.n {
                    // The token at max_hop was processed; hop max_hop+1 was
                    // at most in flight (and in-flight messages were purged
                    // at rollback), so re-injecting it is exactly-once.
                    let next = (self.max_hop + 1) as u64;
                    self.reports = 0;
                    self.max_hop = -1;
                    if next >= RING_HOPS {
                        self.finish(RING_HOPS, ctx);
                    } else {
                        ctx.send(self.nodes, Ix::i1(next as i64 % self.n), RingMsg::Token(next));
                    }
                }
            }
            RingCtl::Done(h) => self.finish(h, ctx),
        }
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Restarted { .. } = ev {
            if self.done {
                return;
            }
            // A rollback may have restored mid-gather state: restart the
            // gather from scratch (stale LastHop messages were purged).
            self.reports = 0;
            self.max_hop = -1;
            ctx.broadcast(self.nodes, RingMsg::Report);
        }
    }
}

fn ring_build(rt: &mut Runtime) {
    let nodes = rt.create_array::<RingNode>("ring_nodes");
    let driver = rt.create_array::<RingDriver>("ring_driver");
    for i in 0..RING_NODES {
        rt.insert(
            nodes,
            Ix::i1(i),
            RingNode { n: RING_NODES, nodes, driver, last_hop: -1 },
            None,
        );
    }
    rt.insert(
        driver,
        Ix::i1(0),
        RingDriver { n: RING_NODES, max_hop: -1, nodes, ..Default::default() },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), RingCtl::Kick);
}

fn ring_verify(rt: &Runtime) -> Result<(), String> {
    match rt.metric("ring_done").last() {
        Some(&(_, v)) if v == RING_HOPS as f64 => Ok(()),
        other => Err(format!("ring_done = {other:?}, want {RING_HOPS}")),
    }
}

// ---------------------------------------------------------------------------
// Mini-app 3: Halo1d — nearest-neighbor exchange per step (the mixed-phase
// rollback case: a checkpoint can catch neighbors at different steps).
// ---------------------------------------------------------------------------

const HALO_NODES: i64 = 16;
const HALO_STEPS: u64 = 8;

#[derive(Clone)]
enum HaloMsg {
    Step(u64),
    Halo(u64),
}

impl Default for HaloMsg {
    fn default() -> Self {
        HaloMsg::Step(0)
    }
}

impl Pup for HaloMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = matches!(self, HaloMsg::Halo(_)) as u8;
        p.p(&mut t);
        let mut s = match self {
            HaloMsg::Step(s) | HaloMsg::Halo(s) => *s,
        };
        p.p(&mut s);
        if p.is_unpacking() {
            *self = if t == 1 { HaloMsg::Halo(s) } else { HaloMsg::Step(s) };
        }
    }
}

#[derive(Default)]
struct HaloNode {
    i: i64,
    n: i64,
    step: u64,
    seen: u8,
    early: u8,
    rolled_back: bool,
    nodes: ArrayProxy<HaloNode>,
    driver: ArrayProxy<HaloDriver>,
}

impl Pup for HaloNode {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.i, self.n, self.step, self.seen, self.early,
            self.rolled_back, self.nodes, self.driver
        );
    }
}

impl HaloNode {
    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        if self.seen < 2 {
            return;
        }
        self.seen = 0;
        ctx.work(3e5);
        ctx.contribute(
            self.nodes,
            self.step as u32,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare { array: self.driver.id(), ix: Ix::i1(0) },
        );
    }
}

impl Chare for HaloNode {
    type Msg = HaloMsg;
    fn on_message(&mut self, msg: HaloMsg, ctx: &mut Ctx<'_>) {
        match msg {
            HaloMsg::Step(s) => {
                self.rolled_back = false;
                self.step = s;
                self.seen += std::mem::take(&mut self.early);
                for d in [-1i64, 1] {
                    ctx.send(
                        self.nodes,
                        Ix::i1((self.i + d).rem_euclid(self.n)),
                        HaloMsg::Halo(s),
                    );
                }
                self.maybe_compute(ctx);
            }
            HaloMsg::Halo(_) if self.rolled_back => {
                // Post-rollback traffic is all for the one re-driven step
                // (in-flight messages were purged); hold it until our Step.
                self.early += 1;
            }
            HaloMsg::Halo(s) => {
                if s == self.step {
                    self.seen += 1;
                    self.maybe_compute(ctx);
                } else {
                    debug_assert_eq!(s, self.step + 1, "halo from the far future");
                    self.early += 1;
                }
            }
        }
    }
    fn on_event(&mut self, ev: SysEvent, _ctx: &mut Ctx<'_>) {
        if let SysEvent::Restarted { .. } = ev {
            self.rolled_back = true;
            self.seen = 0;
            self.early = 0;
        }
    }
}

#[derive(Default)]
struct HaloDriver {
    step: u64,
    steps: u64,
    nodes: ArrayProxy<HaloNode>,
}

impl Pup for HaloDriver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.steps, self.nodes);
    }
}

impl Chare for HaloDriver {
    type Msg = Step;
    fn on_message(&mut self, _kick: Step, ctx: &mut Ctx<'_>) {
        ctx.broadcast(self.nodes, HaloMsg::Step(self.step));
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { .. } => {
                self.step += 1;
                if self.step < self.steps {
                    ctx.broadcast(self.nodes, HaloMsg::Step(self.step));
                } else {
                    ctx.log_metric("halo_done", self.step as f64);
                    ctx.exit();
                }
            }
            SysEvent::Restarted { .. } => {
                ctx.broadcast(self.nodes, HaloMsg::Step(self.step));
            }
            _ => {}
        }
    }
}

fn halo_build(rt: &mut Runtime) {
    let nodes = rt.create_array::<HaloNode>("halo_nodes");
    let driver = rt.create_array::<HaloDriver>("halo_driver");
    for i in 0..HALO_NODES {
        rt.insert(
            nodes,
            Ix::i1(i),
            HaloNode { i, n: HALO_NODES, nodes, driver, ..Default::default() },
            None,
        );
    }
    rt.insert(
        driver,
        Ix::i1(0),
        HaloDriver { steps: HALO_STEPS, nodes, ..Default::default() },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), Step(0));
}

fn halo_verify(rt: &Runtime) -> Result<(), String> {
    match rt.metric("halo_done").last() {
        Some(&(_, v)) if v == HALO_STEPS as f64 => Ok(()),
        other => Err(format!("halo_done = {other:?}, want {HALO_STEPS}")),
    }
}

// ---------------------------------------------------------------------------
// The campaign harness.
// ---------------------------------------------------------------------------

struct AppSpec {
    name: &'static str,
    build: fn(&mut Runtime),
    verify: fn(&Runtime) -> Result<(), String>,
}

fn make_rt(auto_ckpt: Option<SimTime>) -> Runtime {
    let mut b = Runtime::builder(MachineConfig::homogeneous(PES));
    if let Some(interval) = auto_ckpt {
        b = b.auto_checkpoint(interval);
    }
    b.build()
}

fn run_campaign(spec: &AppSpec) {
    // Probe 1: failure-free, no checkpoints — baseline duration and answer.
    let mut rt = make_rt(None);
    (spec.build)(&mut rt);
    let t_free = rt.run().end_time.as_secs_f64();
    (spec.verify)(&rt).expect("failure-free baseline must be correct");

    // Probe 2: with periodic checkpoints — learn the replication windows.
    let interval = SimTime::from_secs_f64((t_free / 5.0).max(1e-6));
    let mut rt = make_rt(Some(interval));
    (spec.build)(&mut rt);
    let t_ck = rt.run().end_time.as_secs_f64();
    (spec.verify)(&rt).expect("checkpointed baseline must be correct");
    let windows = rt.metric("ckpt_time_s").to_vec();
    assert!(!windows.is_empty(), "{}: auto-checkpointing must run", spec.name);

    // Sim-time budget: generous, but finite — exhausting it means a hang.
    let budget = SimTime::from_secs_f64(t_ck * 50.0 + 1.0);

    let (mut correct, mut unrecoverable) = (0usize, 0usize);
    for k in 0..SCHEDULES_PER_APP {
        let kind = KINDS[k % KINDS.len()];
        let seed = schedule_seed(spec.name, k as u64);
        let schedule = gen_schedule(kind, seed, t_ck, &windows);

        let mut rt = make_rt(Some(interval));
        (spec.build)(&mut rt);
        for &(t, pe) in &schedule {
            rt.schedule_failure(t, pe);
        }
        match rt.run_until_checked(budget) {
            Ok(summary) => {
                assert!(
                    summary.end_time < budget,
                    "{} {kind:?} seed {seed:#x} {schedule:?}: sim-time budget exhausted (hang)",
                    spec.name
                );
                if let Err(e) = (spec.verify)(&rt) {
                    panic!(
                        "{} {kind:?} seed {seed:#x} {schedule:?}: completed with wrong answer: {e}",
                        spec.name
                    );
                }
                correct += 1;
            }
            Err(u) => {
                let _: &Unrecoverable = &u;
                unrecoverable += 1;
            }
        }
    }

    println!(
        "{}: {correct} correct, {unrecoverable} unrecoverable of {SCHEDULES_PER_APP}",
        spec.name
    );
    // Sanity: the campaign exercised both outcomes. Buddy-pair schedules
    // are unrecoverable by construction (both copies die together), and
    // most single failures recover.
    assert!(correct >= 4, "{}: too few correct recoveries ({correct})", spec.name);
    assert!(
        unrecoverable >= 4,
        "{}: too few unrecoverable outcomes ({unrecoverable})",
        spec.name
    );
}

#[test]
fn campaign_lockstep() {
    run_campaign(&AppSpec {
        name: "lockstep",
        build: lockstep_build,
        verify: lockstep_verify,
    });
}

#[test]
fn campaign_ring() {
    run_campaign(&AppSpec { name: "ring", build: ring_build, verify: ring_verify });
}

#[test]
fn campaign_halo1d() {
    run_campaign(&AppSpec { name: "halo1d", build: halo_build, verify: halo_verify });
}

#[test]
fn schedules_are_reproducible_from_their_seed() {
    let windows = [(0.01, 0.002), (0.02, 0.002)];
    for (k, kind) in KINDS.iter().enumerate() {
        let seed = schedule_seed("repro", k as u64);
        let a = gen_schedule(*kind, seed, 0.05, &windows);
        let b = gen_schedule(*kind, seed, 0.05, &windows);
        assert_eq!(a, b, "{kind:?}");
        assert!(!a.is_empty());
    }
}
