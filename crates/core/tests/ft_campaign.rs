//! Seeded randomized fault-injection campaign (§III-B hardening).
//!
//! Three mini-apps with verifiable answers run under generated failure
//! schedules — single, simultaneous, cascading, buddy-pair, and
//! during-checkpoint — with automatic periodic checkpointing on. Every run
//! must either finish with the *correct* answer or surface a typed
//! [`Unrecoverable`]; panics and hangs (enforced with a sim-time budget)
//! are campaign failures. Schedules derive from a seed printed on failure,
//! so any run reproduces exactly (see EXPERIMENTS.md).
//!
//! The mini-apps and schedule RNG live in `campaign/mod.rs`, shared with
//! the spot-preemption campaign (`preempt_campaign.rs`).

mod campaign;

use campaign::{
    halo_spec, lockstep_spec, ring_spec, schedule_seed, AppSpec, Rng,
};
use charm_core::{buddy_pe, MachineConfig, Runtime, SimTime, Unrecoverable};

const PES: usize = 8;
const SCHEDULES_PER_APP: usize = 20;

#[derive(Clone, Copy, Debug)]
enum Kind {
    /// One failure at a random instant.
    Single,
    /// Several distinct PEs at the same instant.
    Simultaneous,
    /// A burst: each subsequent failure lands shortly after the previous,
    /// often inside the restart protocol window it triggered.
    Cascade,
    /// A PE and its checkpoint buddy together — destroys both copies.
    BuddyPair,
    /// A failure placed inside a probed checkpoint replication window.
    DuringCheckpoint,
}

const KINDS: [Kind; 5] = [
    Kind::Single,
    Kind::Simultaneous,
    Kind::Cascade,
    Kind::BuddyPair,
    Kind::DuringCheckpoint,
];

/// Generate one failure schedule. `t_run` is the failure-free duration of
/// the checkpointed run; `windows` its checkpoint replication windows as
/// `(start, duration)` pairs from the `ckpt_time_s` metric.
fn gen_schedule(kind: Kind, seed: u64, t_run: f64, windows: &[(f64, f64)]) -> Vec<(SimTime, usize)> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::new();
    match kind {
        Kind::Single => {
            let t = rng.range(0.05, 0.85) * t_run;
            out.push((SimTime::from_secs_f64(t), rng.below(PES as u64) as usize));
        }
        Kind::Simultaneous => {
            let t = SimTime::from_secs_f64(rng.range(0.05, 0.85) * t_run);
            let n = 2 + rng.below(2) as usize; // 2 or 3 distinct PEs
            let mut pes = Vec::new();
            while pes.len() < n {
                let pe = rng.below(PES as u64) as usize;
                if !pes.contains(&pe) {
                    pes.push(pe);
                }
            }
            out.extend(pes.into_iter().map(|pe| (t, pe)));
        }
        Kind::Cascade => {
            let mut t = rng.range(0.05, 0.6) * t_run;
            for _ in 0..3 {
                out.push((SimTime::from_secs_f64(t), rng.below(PES as u64) as usize));
                t += rng.range(0.001, 0.08) * t_run;
            }
        }
        Kind::BuddyPair => {
            let t = SimTime::from_secs_f64(rng.range(0.05, 0.85) * t_run);
            let pe = rng.below(PES as u64) as usize;
            out.push((t, pe));
            out.push((t, buddy_pe(pe, PES)));
        }
        Kind::DuringCheckpoint => {
            let (at, dur) = windows[rng.below(windows.len() as u64) as usize];
            let t = at + rng.range(0.1, 0.9) * dur.max(1e-9);
            out.push((SimTime::from_secs_f64(t), rng.below(PES as u64) as usize));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The campaign harness.
// ---------------------------------------------------------------------------

fn make_rt(auto_ckpt: Option<SimTime>) -> Runtime {
    let mut b = Runtime::builder(MachineConfig::homogeneous(PES));
    if let Some(interval) = auto_ckpt {
        b = b.auto_checkpoint(interval);
    }
    b.build()
}

fn run_campaign(spec: &AppSpec) {
    // Probe 1: failure-free, no checkpoints — baseline duration and answer.
    let mut rt = make_rt(None);
    (spec.build)(&mut rt);
    let t_free = rt.run().end_time.as_secs_f64();
    (spec.verify)(&rt).expect("failure-free baseline must be correct");

    // Probe 2: with periodic checkpoints — learn the replication windows.
    let interval = SimTime::from_secs_f64((t_free / 5.0).max(1e-6));
    let mut rt = make_rt(Some(interval));
    (spec.build)(&mut rt);
    let t_ck = rt.run().end_time.as_secs_f64();
    (spec.verify)(&rt).expect("checkpointed baseline must be correct");
    let windows = rt.metric("ckpt_time_s").to_vec();
    assert!(!windows.is_empty(), "{}: auto-checkpointing must run", spec.name);

    // Sim-time budget: generous, but finite — exhausting it means a hang.
    let budget = SimTime::from_secs_f64(t_ck * 50.0 + 1.0);

    let (mut correct, mut unrecoverable) = (0usize, 0usize);
    for k in 0..SCHEDULES_PER_APP {
        let kind = KINDS[k % KINDS.len()];
        let seed = schedule_seed(spec.name, k as u64);
        let schedule = gen_schedule(kind, seed, t_ck, &windows);

        let mut rt = make_rt(Some(interval));
        (spec.build)(&mut rt);
        for &(t, pe) in &schedule {
            rt.schedule_failure(t, pe);
        }
        match rt.run_until_checked(budget) {
            Ok(summary) => {
                assert!(
                    summary.end_time < budget,
                    "{} {kind:?} seed {seed:#x} {schedule:?}: sim-time budget exhausted (hang)",
                    spec.name
                );
                if let Err(e) = (spec.verify)(&rt) {
                    panic!(
                        "{} {kind:?} seed {seed:#x} {schedule:?}: completed with wrong answer: {e}",
                        spec.name
                    );
                }
                correct += 1;
            }
            Err(u) => {
                let _: &Unrecoverable = &u;
                unrecoverable += 1;
            }
        }
    }

    println!(
        "{}: {correct} correct, {unrecoverable} unrecoverable of {SCHEDULES_PER_APP}",
        spec.name
    );
    // Sanity: the campaign exercised both outcomes. Buddy-pair schedules
    // are unrecoverable by construction (both copies die together), and
    // most single failures recover.
    assert!(correct >= 4, "{}: too few correct recoveries ({correct})", spec.name);
    assert!(
        unrecoverable >= 4,
        "{}: too few unrecoverable outcomes ({unrecoverable})",
        spec.name
    );
}

#[test]
fn campaign_lockstep() {
    run_campaign(&lockstep_spec());
}

#[test]
fn campaign_ring() {
    run_campaign(&ring_spec());
}

#[test]
fn campaign_halo1d() {
    run_campaign(&halo_spec());
}

#[test]
fn schedules_are_reproducible_from_their_seed() {
    let windows = [(0.01, 0.002), (0.02, 0.002)];
    for (k, kind) in KINDS.iter().enumerate() {
        let seed = schedule_seed("repro", k as u64);
        let a = gen_schedule(*kind, seed, 0.05, &windows);
        let b = gen_schedule(*kind, seed, 0.05, &windows);
        assert_eq!(a, b, "{kind:?}");
        assert!(!a.is_empty());
    }
}
