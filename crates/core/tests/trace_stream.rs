//! Streaming-observability guarantees (ISSUE 7):
//!
//! * **Streamed == in-memory** — the Chrome-JSON / CSV files a streaming
//!   sink writes are byte-identical to the in-memory arrival-order
//!   exporters whenever the rings retained every record.
//! * **Quantile accuracy** — online log-bucketed histograms place every
//!   quantile estimate in the same bucket as the exact order statistic
//!   (property-tested over arbitrary sample sets).
//! * **Visible loss** — `RunSummary` carries ring-drop counts and per-sink
//!   delivery stats; the report footer prints them.
//! * **Critical path** — the analyzer's path length equals the makespan
//!   exactly on a serial-chain micro-app and never exceeds it elsewhere.
//! * **Engine gating** — sinks and the analyzer force the sequential
//!   engine (their results must not depend on thread count).

use charm_core::{
    ArrayProxy, Chare, ChromeStreamSink, CsvStreamSink, CountingSink, Ctx, Ix, LogHist,
    MachineConfig, Runtime, SysEvent, TraceConfig,
};
use charm_pup::{Pup, Puper};
use proptest::prelude::*;

/// A chare ring with enough fan-out to exercise every trace record kind.
#[derive(Default)]
struct Hopper {
    hops: u64,
    limit: u64,
    n: i64,
    arr: ArrayProxy<Hopper>,
}

impl Pup for Hopper {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.hops, self.limit, self.n, self.arr);
    }
}

impl Chare for Hopper {
    type Msg = i64;
    fn on_message(&mut self, me: i64, ctx: &mut Ctx<'_>) {
        self.hops += 1;
        ctx.work(5_000.0 * (1.0 + (me % 3) as f64));
        if self.hops >= self.limit {
            return;
        }
        ctx.send(self.arr, Ix::i1((me + 1) % self.n), me);
    }
    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

/// A strict pipeline: element i runs once, then messages element i+1.
/// Exactly one message is ever in flight, so *every* execution and every
/// message latency lies on the critical path.
#[derive(Default)]
struct Chain {
    n: i64,
    arr: ArrayProxy<Chain>,
}

impl Pup for Chain {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.n, self.arr);
    }
}

impl Chare for Chain {
    type Msg = i64;
    fn on_message(&mut self, me: i64, ctx: &mut Ctx<'_>) {
        ctx.work(20_000.0 * (1.0 + (me % 5) as f64));
        if me + 1 < self.n {
            ctx.send(self.arr, Ix::i1(me + 1), me + 1);
        }
    }
    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

fn hopper_runtime(
    seed: u64,
    cfg: TraceConfig,
    threads: usize,
    sinks: Vec<Box<dyn charm_core::TraceSink>>,
) -> Runtime {
    let mut b = Runtime::builder(MachineConfig::homogeneous(4))
        .seed(seed)
        .tracing(cfg);
    if threads > 1 {
        b = b.threads(threads);
    }
    let mut rt = b.build();
    for s in sinks {
        rt.add_trace_sink(s);
    }
    let arr = rt.create_array::<Hopper>("hopper");
    let n = 6i64;
    for i in 0..n {
        rt.insert(arr, Ix::i1(i), Hopper { hops: 0, limit: 40, n, arr }, Some(i as usize % 4));
    }
    for i in 0..n {
        rt.send(arr, Ix::i1(i), i);
    }
    rt
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("charm_{}_{name}", std::process::id()))
}

#[test]
fn streamed_files_byte_equal_in_memory_arrival_exporters() {
    for seed in [7u64, 11, 42] {
        let jpath = tmp(&format!("{seed}.trace.json"));
        let cpath = tmp(&format!("{seed}.trace.csv"));
        // Rings big enough to retain everything, so the in-memory
        // arrival-order exporters see the full stream too.
        let mut rt = hopper_runtime(
            seed,
            TraceConfig {
                log_capacity: 1 << 20,
                ..TraceConfig::default()
            },
            1,
            vec![
                Box::new(ChromeStreamSink::create(&jpath).unwrap()),
                Box::new(CsvStreamSink::create(&cpath).unwrap()),
            ],
        );
        rt.run();
        let stats = rt.finish_trace();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.dropped == 0 && s.records > 0));

        let tr = rt.tracer().unwrap();
        assert_eq!(tr.dropped_events(), 0, "rings must have retained all");
        let streamed_json = std::fs::read_to_string(&jpath).unwrap();
        let streamed_csv = std::fs::read_to_string(&cpath).unwrap();
        assert_eq!(streamed_json, rt.trace_chrome_json_arrival().unwrap());
        assert_eq!(streamed_csv, rt.trace_csv_arrival().unwrap());
        // Streamed byte counts match what landed on disk.
        assert_eq!(
            stats.iter().map(|s| s.bytes_written).sum::<u64>() as usize,
            streamed_json.len() + streamed_csv.len()
        );
        let _ = std::fs::remove_file(&jpath);
        let _ = std::fs::remove_file(&cpath);
    }
}

#[test]
fn summary_carries_drop_counts_and_sink_stats() {
    let mut rt = hopper_runtime(
        3,
        TraceConfig {
            log_capacity: 16, // force ring shedding
            ..TraceConfig::default()
        },
        1,
        vec![Box::new(CountingSink::new())],
    );
    let summary = rt.run();
    assert!(summary.trace_dropped > 0, "16-record rings must shed");
    assert_eq!(summary.trace_dropped, rt.tracer().unwrap().dropped_events());
    assert_eq!(summary.trace_sinks.len(), 1);
    let s = &summary.trace_sinks[0];
    assert_eq!(s.name, "counting");
    assert!(s.records > 0);
    // Sinks see the full stream even though the rings shed.
    assert!(s.records > summary.trace_dropped);
    let report = rt.projections_report(5).unwrap();
    assert!(report.contains("dropped from rings"), "{report}");
    assert!(report.contains("sink counting:"), "{report}");
}

#[test]
fn critical_path_equals_makespan_on_serial_chain() {
    let mut rt = Runtime::builder(MachineConfig::homogeneous(4))
        .seed(9)
        .tracing(TraceConfig::default().with_critical_path())
        .build();
    let arr = rt.create_array::<Chain>("chain");
    let n = 24i64;
    for i in 0..n {
        rt.insert(arr, Ix::i1(i), Chain { n, arr }, Some(i as usize % 4));
    }
    rt.send(arr, Ix::i1(0), 0);
    let summary = rt.run();
    let cp = rt.tracer().unwrap().critical_path().unwrap();
    assert_eq!(cp.segments as u64, n as u64, "every hop is on the path");
    let cp_ns = (cp.len_s * 1e9).round() as u64;
    assert_eq!(
        cp_ns,
        summary.end_time.as_nanos(),
        "a serial chain's critical path IS the makespan"
    );
    assert!(cp.msg_wait_s > 0.0, "hop latency must be attributed");
    // Attribution covers every PE the chain touched and sums to the path.
    let by_pe_total: f64 = cp.by_pe.iter().map(|(_, s)| s).sum();
    let by_entry_total: f64 = cp.by_entry.iter().map(|(_, _, s, _)| s).sum();
    assert!((by_pe_total - by_entry_total).abs() < 1e-12);
    assert!((by_pe_total + cp.msg_wait_s - cp.len_s).abs() < 1e-9);
    let report = rt.projections_report(5).unwrap();
    assert!(report.contains("-- critical path:"), "{report}");
}

#[test]
fn critical_path_never_exceeds_makespan() {
    for seed in [1u64, 5, 23] {
        let mut rt =
            hopper_runtime(seed, TraceConfig::default().with_critical_path(), 1, vec![]);
        let summary = rt.run();
        let cp = rt.tracer().unwrap().critical_path().unwrap();
        let cp_ns = (cp.len_s * 1e9).round() as u64;
        assert!(
            cp_ns <= summary.end_time.as_nanos(),
            "seed {seed}: cp {cp_ns} > makespan {}",
            summary.end_time.as_nanos()
        );
        assert!(cp.len_s > 0.0);
    }
}

#[test]
fn sinks_and_analyzer_force_the_sequential_engine() {
    // Sinks write files in arrival order and the analyzer chains nodes
    // across sends — both byte-level contracts hold only on the sequential
    // engine, so the parallel planner must decline.
    let mut with_sink =
        hopper_runtime(7, TraceConfig::default(), 2, vec![Box::new(CountingSink::new())]);
    with_sink.run();
    assert!(!with_sink.last_run_parallel());

    let mut with_cp = hopper_runtime(7, TraceConfig::default().with_critical_path(), 2, vec![]);
    with_cp.run();
    assert!(!with_cp.last_run_parallel());

    // And the declined runs still match the sequential engine byte-for-byte.
    let mut plain = hopper_runtime(7, TraceConfig::default(), 1, vec![]);
    plain.run();
    assert_eq!(
        with_sink.trace_chrome_json().unwrap(),
        plain.trace_chrome_json().unwrap()
    );
}

proptest! {
    /// The histogram's quantile estimate always lands in the same
    /// log-bucket as the exact order statistic — i.e. within one bucket
    /// (≤ 12.5% relative error) of the true quantile.
    #[test]
    fn hist_quantile_within_one_bucket_of_exact(
        mut samples in proptest::collection::vec(0u64..1_000_000_000_000, 1..300),
        qs in proptest::collection::vec(0.001f64..1.0, 1..6),
    ) {
        let mut h = LogHist::new();
        for &s in &samples {
            h.add(s);
        }
        samples.sort_unstable();
        for q in qs {
            let rank = ((q * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let exact = samples[rank - 1];
            let est = h.quantile(q);
            prop_assert_eq!(
                LogHist::bucket_of(est),
                LogHist::bucket_of(exact),
                "q={} exact={} est={}", q, exact, est
            );
            prop_assert!(est <= exact);
        }
    }
}
