//! Parallel-engine determinism property: for every mini-app, seed,
//! worker-thread count, and synchronization scheme (adaptive per-shard-pair
//! lookahead vs the `global_window` lockstep fallback), the sharded engine
//! must produce results **byte-identical** to the sequential scheduler —
//! same final PUP state digests, same Chrome-trace JSON, same step timings,
//! and (separately) the same PUP-packed replay log bytes.
//!
//! The thread counts >1 additionally assert `last_run_parallel()`, so a
//! silent fallback to the sequential path cannot make this test vacuous.
//! The `global_window` knob is A/B'd the same way `classic_hotpath` is in
//! `hotpath_regression`: both engines answer identically, so the knob may
//! only ever change wall-clock time and window counters.

use charm_core::machine::{presets, MachineConfig};
use charm_core::{Runtime, TraceConfig};

const SEEDS: [u64; 2] = [42, 9001];
const THREADS: [usize; 3] = [1, 2, 4];

/// Everything we demand be identical across thread counts.
struct Fingerprint {
    digests: Vec<(charm_core::ObjId, u64)>,
    trace_json: String,
    step_times: Vec<f64>,
    went_parallel: bool,
}

fn fingerprint(mut rt: Runtime, step_times: Vec<f64>) -> Fingerprint {
    Fingerprint {
        digests: rt.state_digest(),
        trace_json: rt
            .trace_chrome_json()
            .expect("tracing was enabled for this run"),
        step_times,
        went_parallel: rt.last_run_parallel(),
    }
}

fn check_matrix(app: &str, run: impl Fn(u64, usize, bool) -> Fingerprint) {
    for seed in SEEDS {
        let base = run(seed, 1, false);
        assert!(
            !base.went_parallel,
            "{app} seed {seed}: threads=1 must use the sequential engine"
        );
        assert!(
            !base.digests.is_empty(),
            "{app} seed {seed}: no live chares to digest — test is vacuous"
        );
        for threads in THREADS.iter().copied().filter(|&t| t > 1) {
            for global_window in [false, true] {
                let scheme = if global_window { "lockstep" } else { "adaptive" };
                let par = run(seed, threads, global_window);
                assert!(
                    par.went_parallel,
                    "{app} seed {seed} threads {threads} ({scheme}): engine silently fell back to sequential"
                );
                assert_eq!(
                    base.digests, par.digests,
                    "{app} seed {seed} threads {threads} ({scheme}): final PUP digests diverged"
                );
                assert_eq!(
                    base.step_times, par.step_times,
                    "{app} seed {seed} threads {threads} ({scheme}): step timings diverged"
                );
                if base.trace_json != par.trace_json {
                    // Locate the first differing line for a readable failure.
                    let (a, b) = (&base.trace_json, &par.trace_json);
                    let diff = a
                        .lines()
                        .zip(b.lines())
                        .enumerate()
                        .find(|(_, (x, y))| x != y);
                    panic!(
                        "{app} seed {seed} threads {threads} ({scheme}): Chrome traces diverged at {:?}",
                        diff.map(|(i, (x, y))| format!("line {i}: {x} vs {y}"))
                    );
                }
            }
        }
    }
}

#[test]
fn stencil_parallel_matches_sequential() {
    check_matrix("stencil", |seed, threads, global_window| {
        let mut cfg =
            charm_apps::stencil::StencilConfig::cloud_4k(presets::cloud(8), 2);
        cfg.grid = 512;
        cfg.steps = 6;
        cfg.seed = seed;
        cfg.threads = threads;
        cfg.global_window = global_window;
        cfg.trace = Some(TraceConfig::default());
        let (run, rt) = charm_apps::stencil::run_with_runtime(cfg);
        fingerprint(rt, run.step_times)
    });
}

#[test]
fn leanmd_parallel_matches_sequential() {
    check_matrix("leanmd", |seed, threads, global_window| {
        let cfg = charm_apps::leanmd::LeanMdConfig {
            machine: MachineConfig::homogeneous(8),
            cells_per_dim: 3,
            atoms_per_cell: 40,
            steps: 4,
            seed,
            threads,
            global_window,
            trace: Some(TraceConfig::default()),
            ..Default::default()
        };
        let (run, rt) = charm_apps::leanmd::run_with_runtime(cfg);
        fingerprint(rt, run.step_times)
    });
}

/// Satellite: the tracer's per-entry profile must account for *exactly* the
/// busy time the scheduler billed, even when four shard tracers were merged.
#[test]
fn parallel_tracer_accounts_for_all_busy_time() {
    let cfg = charm_apps::leanmd::LeanMdConfig {
        machine: MachineConfig::homogeneous(8),
        cells_per_dim: 3,
        atoms_per_cell: 40,
        steps: 4,
        threads: 4,
        trace: Some(TraceConfig::default()),
        ..Default::default()
    };
    let (_run, rt) = charm_apps::leanmd::run_with_runtime(cfg);
    assert!(rt.last_run_parallel(), "run did not take the parallel path");
    let tr = rt.tracer().expect("tracing was enabled");
    let busy: charm_core::SimTime = (0..rt.num_pes()).map(|pe| rt.pe_busy_time(pe)).sum();
    assert!(busy > charm_core::SimTime::ZERO);
    assert_eq!(
        tr.total_entry_time(),
        busy,
        "merged shard profiles must bill every busy nanosecond exactly once"
    );
}

/// Satellite: ring-overflow drop counts survive the shard merge — a tiny
/// per-track ring must report the same per-track drops whether one scheduler
/// or four shard workers produced the records.
#[test]
fn parallel_tracer_merges_ring_drops() {
    let run = |threads: usize| {
        let cfg = charm_apps::leanmd::LeanMdConfig {
            machine: MachineConfig::homogeneous(8),
            cells_per_dim: 3,
            atoms_per_cell: 40,
            steps: 4,
            threads,
            trace: Some(TraceConfig {
                log_capacity: 8,
                ..Default::default()
            }),
            ..Default::default()
        };
        let (_run, rt) = charm_apps::leanmd::run_with_runtime(cfg);
        assert_eq!(rt.last_run_parallel(), threads > 1);
        let tr = rt.tracer().expect("tracing was enabled");
        (tr.dropped_events(), tr.dropped_by_track())
    };
    let (seq_dropped, seq_by_track) = run(1);
    let (par_dropped, par_by_track) = run(4);
    assert!(seq_dropped > 0, "rings never overflowed — drop test is vacuous");
    assert_eq!(seq_dropped, par_dropped);
    assert_eq!(seq_by_track, par_by_track);
}

#[test]
fn pdes_parallel_matches_sequential() {
    check_matrix("pdes", |seed, threads, global_window| {
        let cfg = charm_apps::pdes::PdesConfig {
            machine: MachineConfig::homogeneous(8),
            lps_per_pe: 16,
            initial_events_per_lp: 8,
            windows: 6,
            seed,
            threads,
            global_window,
            trace: Some(TraceConfig::default()),
            ..Default::default()
        };
        let (run, rt) = charm_apps::pdes::run_with_runtime(cfg);
        // PDES reports rates, not per-step times; fold the scalar results in.
        fingerprint(rt, vec![run.time_s, run.events_executed as f64, run.repolls as f64])
    });
}

/// Satellite: the PUP-packed replay log — executed entries in order, with
/// timings, digests, and message routing — must be byte-identical whether
/// it was recorded by the sequential scheduler, the adaptive sharded
/// engine, or the global-window lockstep fallback. Recording here uses no
/// periodic digest points (`ReplayConfig::default()`), which is exactly
/// the configuration where the adaptive scheme is eligible.
#[test]
fn replay_log_bytes_identical_across_engines() {
    let record = |threads: usize, global_window: bool| -> Vec<u8> {
        let cfg = charm_apps::leanmd::LeanMdConfig {
            machine: MachineConfig::homogeneous(8),
            cells_per_dim: 3,
            atoms_per_cell: 40,
            steps: 4,
            threads,
            global_window,
            record: Some(charm_core::ReplayConfig::default()),
            ..Default::default()
        };
        let (_run, mut rt) = charm_apps::leanmd::run_with_runtime(cfg);
        assert_eq!(
            rt.last_run_parallel(),
            threads > 1,
            "threads {threads}: unexpected engine selection"
        );
        let mut log = rt.take_replay_log().expect("recording was enabled");
        charm_pup::to_bytes(&mut log)
    };
    let seq = record(1, false);
    assert!(!seq.is_empty());
    for threads in [2usize, 4] {
        for global_window in [false, true] {
            let scheme = if global_window { "lockstep" } else { "adaptive" };
            assert_eq!(
                seq,
                record(threads, global_window),
                "threads {threads} ({scheme}): .rlog bytes diverged from sequential"
            );
        }
    }
}
