//! Closed-loop elastic control: observe → decide → act (§III-D, §IV-F).
//!
//! Every adaptive mechanism the runtime has — malleable shrink/expand,
//! buddy checkpoints, failure injection, cloud interference — is driven by
//! hand elsewhere. This module closes the loop: a controller samples PE
//! utilization on a fixed virtual-time cadence and issues reconfiguration
//! decisions through the existing malleability path via a pluggable
//! [`ElasticPolicy`]. Decisions depend only on simulation state at tick
//! time (no wall clock, no unseeded randomness), so runs with the
//! controller enabled replay bit-identically.
//!
//! The module also owns the *graceful degradation* bookkeeping: when
//! preemptions or failures push alive capacity below the policy's floor
//! (or below what buddy checkpointing needs), the run finishes with a
//! typed [`Degraded`] outcome — surfaced by [`Runtime::run_outcome`] —
//! instead of being declared unrecoverable or silently limping.

use crate::runtime::{Ev, Runtime, RunSummary, Unrecoverable};
use crate::trace::TraceEventKind;
use charm_machine::SimTime;

/// What a policy sees at each controller tick.
#[derive(Debug, Clone, Copy)]
pub struct ElasticObs {
    /// Virtual time of the tick.
    pub now: SimTime,
    /// Current live-PE boundary (the malleable `live_pes`).
    pub live_pes: usize,
    /// PEs actually alive (≤ `live_pes`; preempted PEs stay dead).
    pub alive_pes: usize,
    /// Hard ceiling: the machine's total PE count.
    pub max_pes: usize,
    /// Mean utilization of alive PEs over the last cadence window, in
    /// [0, 1].
    pub utilization: f64,
    /// Envelopes sitting in PE queues right now.
    pub queued: u64,
    /// Deliveries in flight right now.
    pub inflight: u64,
}

/// An autoscaling policy: maps an observation to a target PE count.
///
/// Implementations must be deterministic functions of the observation
/// stream (plus their own state) — the controller runs inside the
/// simulation's event loop and its decisions are replayed bit-exactly.
pub trait ElasticPolicy: Send {
    /// Short name, used in traces and benchmark output.
    fn name(&self) -> &'static str;

    /// The capacity floor this policy promises never to cross. A run whose
    /// alive capacity falls below it (e.g. preemptions faster than the
    /// platform grants replacements) completes [`Degraded`].
    fn min_pes(&self) -> usize {
        1
    }

    /// Decide a new target PE count, or `None` to hold.
    fn decide(&mut self, obs: &ElasticObs) -> Option<usize>;
}

/// The do-nothing baseline: observes, never acts. Useful for measuring
/// controller overhead and as the static arm of policy sweeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopPolicy;

impl ElasticPolicy for NoopPolicy {
    fn name(&self) -> &'static str {
        "noop"
    }
    fn decide(&mut self, _obs: &ElasticObs) -> Option<usize> {
        None
    }
}

/// Hysteresis autoscaler: expand when utilization is high, shrink when it
/// is low, and hold inside the dead band — with a cooldown after every
/// action so reconfiguration cost is amortized, and hard min/max bounds.
#[derive(Debug, Clone)]
pub struct HysteresisPolicy {
    /// Expand when mean utilization exceeds this.
    pub expand_util: f64,
    /// Shrink when mean utilization falls below this.
    pub shrink_util: f64,
    /// PEs added/removed per action.
    pub step: usize,
    /// Minimum virtual time between actions.
    pub cooldown: SimTime,
    /// Never shrink below this many PEs.
    pub min_pes: usize,
    /// Never expand past this many PEs.
    pub max_pes: usize,
    last_action: Option<SimTime>,
}

impl HysteresisPolicy {
    /// A policy with explicit thresholds and bounds.
    pub fn new(
        expand_util: f64,
        shrink_util: f64,
        step: usize,
        cooldown: SimTime,
        min_pes: usize,
        max_pes: usize,
    ) -> Self {
        assert!(shrink_util < expand_util, "dead band must be nonempty");
        assert!(step >= 1 && min_pes >= 1 && max_pes >= min_pes);
        HysteresisPolicy {
            expand_util,
            shrink_util,
            step,
            cooldown,
            min_pes,
            max_pes,
            last_action: None,
        }
    }

    /// Wide dead band, long cooldown: acts rarely, never thrashes.
    pub fn conservative(min_pes: usize, max_pes: usize) -> Self {
        HysteresisPolicy::new(0.92, 0.55, 2, SimTime::from_secs(30), min_pes, max_pes)
    }

    /// Narrow dead band, short cooldown, bigger steps: chases the load.
    pub fn aggressive(min_pes: usize, max_pes: usize) -> Self {
        HysteresisPolicy::new(0.85, 0.70, 4, SimTime::from_secs(10), min_pes, max_pes)
    }
}

impl ElasticPolicy for HysteresisPolicy {
    fn name(&self) -> &'static str {
        "hysteresis"
    }

    fn min_pes(&self) -> usize {
        self.min_pes
    }

    fn decide(&mut self, obs: &ElasticObs) -> Option<usize> {
        if let Some(last) = self.last_action {
            if obs.now.saturating_sub(last) < self.cooldown {
                return None;
            }
        }
        let lo = self.min_pes.max(1);
        let hi = self.max_pes.min(obs.max_pes);
        let cur = obs.live_pes;
        let target = if obs.utilization < self.shrink_util && cur > lo {
            cur.saturating_sub(self.step).max(lo)
        } else if obs.utilization > self.expand_util && cur < hi {
            (cur + self.step).min(hi)
        } else {
            return None;
        };
        if target == cur {
            return None;
        }
        self.last_action = Some(obs.now);
        Some(target)
    }
}

/// Controller configuration handed to [`RuntimeBuilder::elastic`].
///
/// [`RuntimeBuilder::elastic`]: crate::RuntimeBuilder::elastic
pub struct ElasticConfig {
    /// Sampling / decision cadence in virtual time.
    pub cadence: SimTime,
    /// The autoscaling policy.
    pub policy: Box<dyn ElasticPolicy>,
}

impl ElasticConfig {
    /// A controller ticking every `cadence` under `policy`.
    pub fn new(cadence: SimTime, policy: Box<dyn ElasticPolicy>) -> Self {
        assert!(cadence > SimTime::ZERO, "controller cadence must be positive");
        ElasticConfig { cadence, policy }
    }

    /// Observation-only controller (samples utilization, never acts).
    pub fn observe_only(cadence: SimTime) -> Self {
        ElasticConfig::new(cadence, Box::new(NoopPolicy))
    }
}

/// Live controller state inside the runtime.
pub(crate) struct ElasticCtl {
    pub(crate) cadence: SimTime,
    pub(crate) policy: Box<dyn ElasticPolicy>,
    /// `busy_time` of each PE at the previous tick (utilization deltas).
    last_busy: Vec<SimTime>,
    last_sample: SimTime,
}

impl ElasticCtl {
    pub(crate) fn new(cfg: ElasticConfig, num_pes: usize) -> Self {
        ElasticCtl {
            cadence: cfg.cadence,
            policy: cfg.policy,
            last_busy: vec![SimTime::ZERO; num_pes],
            last_sample: SimTime::ZERO,
        }
    }
}

/// The run finished, but below the capacity floor: preemptions/failures
/// retired more PEs than the policy (or buddy checkpointing) can tolerate,
/// and no replacement capacity exists in the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// When capacity first fell through the floor.
    pub at: SimTime,
    /// Alive PEs at that moment.
    pub have_pes: usize,
    /// The floor that was violated.
    pub floor: usize,
    /// Human-readable cause.
    pub reason: String,
}

impl std::fmt::Display for Degraded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degraded at {:.6}s: {} alive PE(s) below floor {}: {}",
            self.at.as_secs_f64(),
            self.have_pes,
            self.floor,
            self.reason
        )
    }
}

/// Typed outcome of [`Runtime::run_outcome`]: the three ways a run with
/// failure injection can end, none of them a panic.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// Full capacity (or above the floor) all the way through.
    Completed(RunSummary),
    /// The job drained correctly but spent part of the run below the
    /// capacity floor.
    Degraded {
        /// The usual completion summary.
        summary: RunSummary,
        /// When/why capacity fell through the floor.
        info: Degraded,
    },
    /// A failure destroyed state no surviving checkpoint copy covered.
    Unrecoverable(Unrecoverable),
}

impl RunOutcome {
    /// The completion summary, unless the run was unrecoverable.
    pub fn summary(&self) -> Option<&RunSummary> {
        match self {
            RunOutcome::Completed(s) | RunOutcome::Degraded { summary: s, .. } => Some(s),
            RunOutcome::Unrecoverable(_) => None,
        }
    }

    /// Did the run complete at (or above) the capacity floor?
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }
}

impl Runtime {
    /// Like [`run`](Runtime::run), but with the full typed ending: clean
    /// completion, completion below the capacity floor ([`Degraded`]), or
    /// fatal state loss ([`Unrecoverable`]).
    pub fn run_outcome(&mut self) -> RunOutcome {
        let summary = self.run();
        if let Some(u) = &self.unrecoverable {
            return RunOutcome::Unrecoverable(u.clone());
        }
        if let Some(d) = &self.degraded {
            return RunOutcome::Degraded {
                summary,
                info: d.clone(),
            };
        }
        RunOutcome::Completed(summary)
    }

    /// The degradation record, if capacity ever fell through the floor.
    pub fn degraded(&self) -> Option<&Degraded> {
        self.degraded.as_ref()
    }

    /// PEs currently alive inside the live boundary (preempted/retired PEs
    /// stay dead and are excluded).
    pub fn alive_pes(&self) -> usize {
        self.pes[..self.live_pes].iter().filter(|p| p.alive).count()
    }

    /// Is any form of buddy checkpointing in play? (Shrinking to one PE
    /// would then co-locate both checkpoint copies.)
    pub(crate) fn ckpt_active(&self) -> bool {
        self.auto_ckpt_interval.is_some() || self.mem_ckpt.is_some() || self.ckpt_pending.is_some()
    }

    /// The capacity floor in force: the policy's promise, raised to 2 when
    /// buddy checkpointing needs distinct owner/buddy PEs.
    pub(crate) fn capacity_floor(&self) -> usize {
        let policy = self
            .elastic
            .as_ref()
            .map(|c| c.policy.min_pes())
            .unwrap_or(1);
        let ckpt = if self.ckpt_active() { 2 } else { 1 };
        policy.max(ckpt)
    }

    /// Journal a capacity change and latch the [`Degraded`] outcome when
    /// alive capacity falls through the floor (first breach wins; an
    /// unrecoverable verdict takes precedence).
    pub(crate) fn note_capacity(&mut self, reason: &str) {
        let have = self.alive_pes();
        self.metrics
            .entry("capacity".into())
            .or_default()
            .push((self.now.as_secs_f64(), have as f64));
        let floor = self.capacity_floor();
        if have < floor && self.degraded.is_none() && self.unrecoverable.is_none() {
            if let Some(tr) = &mut self.tracer {
                tr.rts(self.now, TraceEventKind::DegradedCapacity { have, floor });
            }
            self.metrics
                .entry("degraded".into())
                .or_default()
                .push((self.now.as_secs_f64(), have as f64));
            self.degraded = Some(Degraded {
                at: self.now,
                have_pes: have,
                floor,
                reason: reason.to_string(),
            });
        }
    }

    /// One controller tick: sample utilization since the last tick, ask the
    /// policy, act through the malleability path, re-arm. Ticks stop
    /// re-arming once the job drains (same shape as the auto-checkpoint
    /// tick), so the run still terminates.
    pub(crate) fn on_elastic_tick(&mut self) {
        let Some(mut ctl) = self.elastic.take() else {
            return;
        };
        let outstanding = self.inflight > 0
            || self.queued > 0
            || self.busy_pes > 0
            || !self.pending_contribs.is_empty();
        if !outstanding || self.exit_requested {
            self.elastic = Some(ctl);
            return;
        }

        // Mean utilization of alive PEs over the window since the last
        // tick. `busy_time` accrues at entry completion, so entries longer
        // than the cadence smear across windows — fine for control.
        let dt = self.now.saturating_sub(ctl.last_sample);
        let mut util_sum = 0.0;
        let mut n_alive = 0usize;
        for pe in 0..self.live_pes {
            let busy = self.pes[pe].busy_time;
            let delta = busy.saturating_sub(ctl.last_busy[pe]);
            ctl.last_busy[pe] = busy;
            if self.pes[pe].alive {
                n_alive += 1;
                if dt > SimTime::ZERO {
                    util_sum += (delta.as_secs_f64() / dt.as_secs_f64()).min(1.0);
                }
            }
        }
        ctl.last_sample = self.now;
        let util = if n_alive > 0 {
            util_sum / n_alive as f64
        } else {
            0.0
        };
        self.metrics
            .entry("elastic_util".into())
            .or_default()
            .push((self.now.as_secs_f64(), util));

        let obs = ElasticObs {
            now: self.now,
            live_pes: self.live_pes,
            alive_pes: n_alive,
            max_pes: self.machine.num_pes,
            utilization: util,
            queued: self.queued,
            inflight: self.inflight,
        };
        if let Some(target) = ctl.policy.decide(&obs) {
            let floor = ctl.policy.min_pes().max(1);
            let target = target.clamp(floor, self.machine.num_pes);
            if target != self.live_pes {
                if let Some(tr) = &mut self.tracer {
                    tr.rts(
                        self.now,
                        TraceEventKind::ElasticDecision {
                            from: self.live_pes,
                            to: target,
                            util,
                        },
                    );
                }
                self.metrics
                    .entry("elastic_decision".into())
                    .or_default()
                    .push((self.now.as_secs_f64(), target as f64));
                self.on_reconfigure(target);
            }
        }

        let at = self.now + ctl.cadence;
        self.push_ev(at, Ev::ElasticTick);
        self.elastic = Some(ctl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(now_s: u64, live: usize, util: f64) -> ElasticObs {
        ElasticObs {
            now: SimTime::from_secs(now_s),
            live_pes: live,
            alive_pes: live,
            max_pes: 64,
            utilization: util,
            queued: 1,
            inflight: 1,
        }
    }

    #[test]
    fn hysteresis_dead_band_holds() {
        let mut p = HysteresisPolicy::new(0.9, 0.5, 2, SimTime::from_secs(10), 2, 16);
        assert_eq!(p.decide(&obs(5, 8, 0.7)), None);
        assert_eq!(p.decide(&obs(6, 8, 0.89)), None);
        assert_eq!(p.decide(&obs(7, 8, 0.51)), None);
    }

    #[test]
    fn hysteresis_shrinks_expands_and_cools_down() {
        let mut p = HysteresisPolicy::new(0.9, 0.5, 2, SimTime::from_secs(10), 2, 16);
        assert_eq!(p.decide(&obs(5, 8, 0.2)), Some(6));
        // Cooldown: the next breach inside 10 s is ignored.
        assert_eq!(p.decide(&obs(9, 6, 0.2)), None);
        assert_eq!(p.decide(&obs(15, 6, 0.2)), Some(4));
        // Expand, clipped at max_pes.
        assert_eq!(p.decide(&obs(30, 15, 0.95)), Some(16));
        // Shrink never crosses min_pes.
        let mut q = HysteresisPolicy::new(0.9, 0.5, 4, SimTime::ZERO, 2, 16);
        assert_eq!(q.decide(&obs(40, 3, 0.1)), Some(2));
        assert_eq!(q.decide(&obs(41, 2, 0.1)), None);
    }

    #[test]
    fn noop_never_acts() {
        let mut p = NoopPolicy;
        assert_eq!(p.decide(&obs(1, 8, 0.0)), None);
        assert_eq!(p.decide(&obs(2, 8, 1.0)), None);
        assert_eq!(p.min_pes(), 1);
    }
}
