//! `charm-trace` — Projections-lite runtime tracing & metrics (the paper's
//! observability surface: every adaptive-RTS feature in §II/§III rests on
//! the runtime *observing itself*; in real Charm++ that surface is the
//! Projections framework).
//!
//! Two consumption modes mirror Projections' log vs. summary split:
//!
//! * **Full log** — every runtime event (entry execution, message send/recv,
//!   PE idle/busy transitions, LB rounds with migration lists, checkpoint /
//!   rollback / failure, DVFS frequency changes, shrink/expand) is recorded
//!   into a *bounded* per-PE ring buffer. Overflow drops the oldest records
//!   and counts them ([`Tracer::dropped_events`]) — memory stays bounded no
//!   matter how long the run. The log exports to Chrome trace-event JSON
//!   ([`Runtime::trace_chrome_json`], loadable in Perfetto or
//!   `chrome://tracing`, one track per PE plus an RTS track) and to CSV.
//! * **Summary** — always-cheap streaming aggregates that never depend on
//!   ring capacity: per-entry-method time profiles (count/total/min/max plus
//!   a log₂ duration histogram), a binned per-PE utilization timeline that
//!   coarsens itself to stay within a bin budget, and a PE×PE
//!   communication-volume matrix. [`Runtime::projections_report`] renders
//!   them as a text report (top-k entry methods, utilization profile, comm
//!   hotspots, LB/FT event ledger) — the input the control-point tuner and
//!   future schedulers consume.
//!
//! Tracing is off unless [`RuntimeBuilder::tracing`](crate::RuntimeBuilder::tracing)
//! installs a [`TraceConfig`]; when off, every hook is a skipped `if let`
//! — zero events, zero per-message allocation.
//!
//! Determinism: records are produced in simulator dispatch order and carry
//! only virtual times, so two runs with the same seed and machine profile
//! emit byte-identical exports (tested in `tests/trace.rs`).

use crate::array::{ArrayId, ObjId};
use crate::runtime::Runtime;
use charm_machine::SimTime;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Configures the tracing subsystem (see module docs).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring capacity per track (one track per PE plus one RTS track).
    /// `0` keeps only the summary aggregates; every log record then counts
    /// as dropped.
    pub log_capacity: usize,
    /// Initial utilization-timeline bin width.
    pub util_bin: SimTime,
    /// Bin budget for the utilization timeline; when the run outgrows it
    /// the bin width doubles and adjacent bins fold together.
    pub max_util_bins: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            log_capacity: 1 << 16,
            util_bin: SimTime::from_millis(1),
            max_util_bins: 1024,
        }
    }
}

impl TraceConfig {
    /// Summary-only preset: no event log, just the cheap aggregates.
    pub fn summary_only() -> Self {
        TraceConfig {
            log_capacity: 0,
            ..TraceConfig::default()
        }
    }
}

/// Which entry method of a chare array ran: its user message handler or a
/// runtime [`SysEvent`](crate::SysEvent) handler (named by variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntryKind {
    /// `Chare::on_message` (the array's user entry method).
    Message,
    /// `Chare::on_event` with the named system event.
    Event(&'static str),
}

impl EntryKind {
    /// Short label used in exports ("entry" or the event name).
    pub fn label(&self) -> &'static str {
        match self {
            EntryKind::Message => "entry",
            EntryKind::Event(name) => name,
        }
    }
}

/// One traced runtime event. `Entry` spans carry a duration; everything
/// else is an instant.
#[derive(Debug, Clone)]
pub enum TraceEventKind {
    /// An entry method completed on this track's PE (start time = record
    /// time; completion was at `t + dur`). Recorded at completion so traced
    /// busy time agrees exactly with [`Runtime::pe_busy_time`].
    Entry {
        /// The chare that ran.
        obj: ObjId,
        /// Which of its entry methods.
        entry: EntryKind,
        /// Modeled execution duration.
        dur: SimTime,
    },
    /// A message left this track's PE toward `dst_pe`.
    MsgSend {
        /// Destination chare.
        dst: ObjId,
        /// PE the message was routed to.
        dst_pe: usize,
        /// Wire size, envelope included.
        bytes: usize,
    },
    /// A message was enqueued on this track's PE scheduler queue.
    MsgRecv {
        /// Sending PE.
        src_pe: usize,
        /// Destination chare.
        dst: ObjId,
        /// Wire size, envelope included.
        bytes: usize,
    },
    /// The PE went from idle to executing.
    PeBusy,
    /// The PE drained its queue and went idle.
    PeIdle,
    /// A load-balancing round started (RTS track).
    LbBegin {
        /// Strategy about to run.
        strategy: &'static str,
        /// Objects whose stats were collected.
        objs: usize,
    },
    /// One object migrated during an LB round or by `migrate_me` (RTS
    /// track; the records between `LbBegin` and `LbEnd` are the round's
    /// migration list).
    Migration {
        /// The object that moved.
        obj: ObjId,
        /// Source PE.
        from_pe: usize,
        /// Destination PE.
        to_pe: usize,
    },
    /// A load-balancing round finished (RTS track).
    LbEnd {
        /// Strategy that ran.
        strategy: &'static str,
        /// Objects that moved.
        migrations: usize,
        /// Modeled cost of the whole round.
        cost: SimTime,
    },
    /// A double in-memory checkpoint started replicating (RTS track).
    CkptBegin {
        /// Chares captured.
        chares: usize,
        /// Total snapshot bytes.
        bytes: usize,
    },
    /// The in-flight checkpoint committed and became the recovery point.
    CkptCommit,
    /// A failure aborted the in-flight checkpoint before it committed.
    CkptAbort,
    /// A node failure killed a contiguous PE range (RTS track).
    NodeFail {
        /// First PE of the failed node.
        first_pe: usize,
        /// PEs killed.
        num_pes: usize,
    },
    /// The application rolled back to the last committed checkpoint.
    Rollback {
        /// Virtual time the restored checkpoint was taken.
        to: SimTime,
        /// Chares restored.
        chares: usize,
    },
    /// A failure destroyed state beyond recovery.
    Unrecoverable {
        /// Chares lost outright.
        lost: usize,
    },
    /// DVFS changed a chip's frequency (RTS track).
    DvfsFreq {
        /// The chip.
        chip: usize,
        /// New frequency as a fraction of nominal.
        freq_factor: f64,
    },
    /// Malleable shrink/expand retargeted the live-PE count (RTS track).
    Reconfigure {
        /// PE count before.
        from: usize,
        /// PE count after.
        to: usize,
    },
    /// A spot preemption was announced for a node (RTS track).
    PreemptWarning {
        /// First PE of the doomed node.
        first_pe: usize,
        /// PEs the platform will reclaim.
        num_pes: usize,
        /// When the kill lands.
        deadline: SimTime,
        /// Did the warning horizon cover the modeled evacuation cost?
        proactive: bool,
    },
    /// Chares were proactively drained off doomed PEs before a preemption
    /// deadline — no rollback needed (RTS track).
    Evacuation {
        /// Chares moved to surviving PEs.
        chares: usize,
        /// First evacuated PE.
        first_pe: usize,
        /// PEs evacuated.
        num_pes: usize,
    },
    /// The elastic controller issued a shrink/expand decision (RTS track).
    ElasticDecision {
        /// Live-PE target before.
        from: usize,
        /// Live-PE target after.
        to: usize,
        /// Utilization sample that drove the decision.
        util: f64,
    },
    /// Capacity fell below the configured floor; the run continues in
    /// degraded mode (RTS track).
    DegradedCapacity {
        /// Alive PEs remaining.
        have: usize,
        /// The floor that was violated.
        floor: usize,
    },
}

/// A timestamped record on one track (`track < num_pes` = that PE;
/// `track == num_pes` = the RTS track).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Virtual time of the event (for `Entry`, the span's start).
    pub t: SimTime,
    /// Owning track.
    pub track: usize,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Bounded ring: keeps the newest `cap` records, counts what it sheds.
struct Ring {
    cap: usize,
    buf: Vec<TraceRecord>,
    /// Index of the oldest record once the ring has wrapped.
    next: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap,
            buf: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, r: TraceRecord) {
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(r);
        } else {
            self.buf[self.next] = r;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.next..].iter().chain(self.buf[..self.next].iter())
    }

    /// Consume the ring into (records oldest-first, dropped count).
    fn into_ordered(mut self) -> (Vec<TraceRecord>, u64) {
        let n = self.next.min(self.buf.len());
        self.buf.rotate_left(n);
        (self.buf, self.dropped)
    }
}

/// Streaming per-entry-method aggregate.
#[derive(Debug, Clone)]
struct EntryAgg {
    count: u64,
    total: SimTime,
    min: SimTime,
    max: SimTime,
    /// Counts by ⌈log₂(duration in ns)⌉ bucket.
    hist: [u64; 64],
}

impl EntryAgg {
    fn new() -> Self {
        EntryAgg {
            count: 0,
            total: SimTime::ZERO,
            min: SimTime::MAX,
            max: SimTime::ZERO,
            hist: [0; 64],
        }
    }

    fn add(&mut self, dur: SimTime) {
        self.count += 1;
        self.total += dur;
        self.min = self.min.min(dur);
        self.max = self.max.max(dur);
        let bucket = (64 - dur.as_nanos().max(1).leading_zeros() as usize).min(63);
        self.hist[bucket] += 1;
    }

    /// Fold another aggregate in (shard merge); all fields commute.
    fn merge(&mut self, o: &EntryAgg) {
        self.count += o.count;
        self.total += o.total;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        for (a, b) in self.hist.iter_mut().zip(o.hist.iter()) {
            *a += b;
        }
    }
}

/// Resolved per-entry-method profile, ready for reports and tuners.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// `<array>::<entry>` (e.g. `leanmd_cells::entry`,
    /// `leanmd_cells::ResumeFromSync`).
    pub name: String,
    /// Array the entry method belongs to.
    pub array: ArrayId,
    /// Which entry method.
    pub entry: EntryKind,
    /// Executions.
    pub count: u64,
    /// Total busy seconds across executions.
    pub total_s: f64,
    /// Shortest execution, seconds.
    pub min_s: f64,
    /// Longest execution, seconds.
    pub max_s: f64,
    /// Non-empty log₂ histogram buckets: (upper bound in ns, count).
    pub hist: Vec<(u64, u64)>,
}

impl TraceProfile {
    /// Mean execution time, seconds.
    pub fn avg_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

/// Self-coarsening binned busy-time timeline (bounded memory).
struct UtilTimeline {
    bin_ns: u64,
    max_bins: usize,
    /// Busy nanoseconds per bin, per PE.
    per_pe: Vec<Vec<u64>>,
}

impl UtilTimeline {
    fn new(bin: SimTime, max_bins: usize, num_pes: usize) -> Self {
        UtilTimeline {
            bin_ns: bin.as_nanos().max(1),
            max_bins: max_bins.max(2),
            per_pe: vec![Vec::new(); num_pes],
        }
    }

    fn add(&mut self, pe: usize, start: SimTime, end: SimTime) {
        if pe >= self.per_pe.len() || end <= start {
            return;
        }
        let (start, end) = (start.as_nanos(), end.as_nanos());
        while (end / self.bin_ns) as usize >= self.max_bins {
            self.fold();
        }
        let mut s = start;
        while s < end {
            let b = (s / self.bin_ns) as usize;
            let e = end.min((b as u64 + 1) * self.bin_ns);
            let v = &mut self.per_pe[pe];
            if v.len() <= b {
                v.resize(b + 1, 0);
            }
            v[b] += e - s;
            s = e;
        }
    }

    /// Fold another timeline in (shard merge): both are widened to the
    /// coarser of the two bin widths, then bins add element-wise. Folding
    /// distributes over addition, so the merged timeline is byte-identical
    /// to one that saw every interval itself.
    fn absorb(&mut self, mut o: UtilTimeline) {
        while self.bin_ns < o.bin_ns {
            self.fold();
        }
        while o.bin_ns < self.bin_ns {
            o.fold();
        }
        for (pe, v) in o.per_pe.into_iter().enumerate() {
            let dst = &mut self.per_pe[pe];
            if dst.len() < v.len() {
                dst.resize(v.len(), 0);
            }
            for (i, x) in v.into_iter().enumerate() {
                dst[i] += x;
            }
        }
    }

    /// Double the bin width, folding adjacent bins together.
    fn fold(&mut self) {
        self.bin_ns *= 2;
        for v in &mut self.per_pe {
            let half = v.len().div_ceil(2);
            for i in 0..half {
                let a = v[2 * i];
                let b = v.get(2 * i + 1).copied().unwrap_or(0);
                v[i] = a + b;
            }
            v.truncate(half);
        }
    }
}

/// Cap on LB/FT ledger lines kept for the report (rounds and failures are
/// few; DVFS changes can tick every period).
const LEDGER_CAP: usize = 4096;

/// The tracing subsystem: bounded per-PE event logs plus streaming summary
/// aggregates. Owned by the [`Runtime`]; construct via
/// [`RuntimeBuilder::tracing`](crate::RuntimeBuilder::tracing).
pub struct Tracer {
    cfg: TraceConfig,
    num_pes: usize,
    rings: Vec<Ring>,
    profiles: HashMap<(ArrayId, EntryKind), EntryAgg>,
    util: UtilTimeline,
    /// Flattened PE×PE byte volumes (`src * num_pes + dst`).
    comm_bytes: Vec<u64>,
    comm_msgs: Vec<u64>,
    busy_state: Vec<bool>,
    /// Human-readable LB/FT/DVFS/malleability ledger.
    ledger: Vec<(SimTime, String)>,
    ledger_dropped: u64,
}

impl Tracer {
    pub(crate) fn new(cfg: TraceConfig, num_pes: usize) -> Self {
        let rings = (0..=num_pes).map(|_| Ring::new(cfg.log_capacity)).collect();
        Tracer {
            util: UtilTimeline::new(cfg.util_bin, cfg.max_util_bins, num_pes),
            cfg,
            num_pes,
            rings,
            profiles: HashMap::new(),
            comm_bytes: vec![0; num_pes * num_pes],
            comm_msgs: vec![0; num_pes * num_pes],
            busy_state: vec![false; num_pes],
            ledger: Vec::new(),
            ledger_dropped: 0,
        }
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Number of tracks (PEs + the RTS track).
    pub fn num_tracks(&self) -> usize {
        self.rings.len()
    }

    /// The RTS track index (`num_pes`).
    pub fn rts_track(&self) -> usize {
        self.num_pes
    }

    /// Records currently retained on a track, oldest first.
    pub fn track(&self, track: usize) -> impl Iterator<Item = &TraceRecord> {
        self.rings[track].iter()
    }

    /// Records retained on a track.
    pub fn track_len(&self, track: usize) -> usize {
        self.rings[track].buf.len()
    }

    /// Log records shed across all tracks (ring overflow, or everything
    /// when `log_capacity == 0`). Summary aggregates never drop.
    pub fn dropped_events(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// PE×PE communication volume: `(bytes, messages)` routed `src → dst`.
    pub fn comm(&self, src: usize, dst: usize) -> (u64, u64) {
        let i = src * self.num_pes + dst;
        (self.comm_bytes[i], self.comm_msgs[i])
    }

    /// Utilization timeline: bin width in seconds and, per PE, the busy
    /// fraction of each bin.
    pub fn util_timeline(&self) -> (f64, Vec<Vec<f64>>) {
        let bin_s = self.util.bin_ns as f64 / 1e9;
        let rows = self
            .util
            .per_pe
            .iter()
            .map(|v| v.iter().map(|&ns| ns as f64 / self.util.bin_ns as f64).collect())
            .collect();
        (bin_s, rows)
    }

    /// Total traced busy time summed over every entry-method profile —
    /// equals `Σ pe_busy_time` when tracing covered the whole run.
    pub fn total_entry_time(&self) -> SimTime {
        self.profiles.values().map(|a| a.total).sum()
    }

    /// LB/FT/DVFS/malleability ledger lines (time, text), oldest first.
    pub fn ledger(&self) -> &[(SimTime, String)] {
        &self.ledger
    }

    /// Per-track dropped-record counts (PE tracks then the RTS track) —
    /// the per-shard breakdown behind [`Tracer::dropped_events`].
    pub fn dropped_by_track(&self) -> Vec<u64> {
        self.rings.iter().map(|r| r.dropped).collect()
    }

    /// Fold a shard tracer back in after a parallel run. The shard only
    /// recorded on the PE tracks it owned (`lo..hi`, plus possibly the RTS
    /// track on the coordinator shard), in dispatch order — so appending
    /// its records track-by-track reproduces exactly what the sequential
    /// engine would have pushed, including ring-overflow drop counts.
    pub(crate) fn absorb_shard(&mut self, shard: Tracer, lo: usize, hi: usize) {
        let Tracer {
            rings,
            profiles,
            util,
            comm_bytes,
            comm_msgs,
            busy_state,
            ledger,
            ledger_dropped,
            ..
        } = shard;
        for (track, ring) in rings.into_iter().enumerate() {
            let (records, dropped) = ring.into_ordered();
            for rec in records {
                self.rings[track].push(rec);
            }
            self.rings[track].dropped += dropped;
        }
        for (k, agg) in profiles {
            self.profiles
                .entry(k)
                .or_insert_with(EntryAgg::new)
                .merge(&agg);
        }
        self.util.absorb(util);
        for (a, b) in self.comm_bytes.iter_mut().zip(comm_bytes) {
            *a += b;
        }
        for (a, b) in self.comm_msgs.iter_mut().zip(comm_msgs) {
            *a += b;
        }
        let hi = hi.min(self.busy_state.len());
        self.busy_state[lo..hi].copy_from_slice(&busy_state[lo..hi]);
        for (t, line) in ledger {
            self.ledger_line(t, line);
        }
        self.ledger_dropped += ledger_dropped;
    }

    // ----- recording hooks (crate-internal) --------------------------------

    fn push(&mut self, track: usize, t: SimTime, kind: TraceEventKind) {
        self.rings[track].push(TraceRecord { t, track, kind });
    }

    fn ledger_line(&mut self, t: SimTime, line: String) {
        if self.ledger.len() < LEDGER_CAP {
            self.ledger.push((t, line));
        } else {
            self.ledger_dropped += 1;
        }
    }

    /// An entry method completed: `dur` ending at `start + dur` on `pe`.
    pub(crate) fn on_entry(&mut self, pe: usize, obj: ObjId, entry: EntryKind, start: SimTime, dur: SimTime) {
        self.profiles
            .entry((obj.array, entry))
            .or_insert_with(EntryAgg::new)
            .add(dur);
        self.util.add(pe, start, start + dur);
        self.push(pe, start, TraceEventKind::Entry { obj, entry, dur });
    }

    pub(crate) fn on_send(&mut self, t: SimTime, src_pe: usize, dst_pe: usize, dst: ObjId, bytes: usize) {
        if src_pe < self.num_pes && dst_pe < self.num_pes {
            let i = src_pe * self.num_pes + dst_pe;
            self.comm_bytes[i] += bytes as u64;
            self.comm_msgs[i] += 1;
        }
        self.push(
            src_pe.min(self.num_pes),
            t,
            TraceEventKind::MsgSend { dst, dst_pe, bytes },
        );
    }

    pub(crate) fn on_recv(&mut self, t: SimTime, pe: usize, src_pe: usize, dst: ObjId, bytes: usize) {
        self.push(pe, t, TraceEventKind::MsgRecv { src_pe, dst, bytes });
    }

    /// Record a busy/idle transition if the PE's state actually changed.
    pub(crate) fn pe_transition(&mut self, t: SimTime, pe: usize, busy: bool) {
        if pe >= self.busy_state.len() || self.busy_state[pe] == busy {
            return;
        }
        self.busy_state[pe] = busy;
        let kind = if busy { TraceEventKind::PeBusy } else { TraceEventKind::PeIdle };
        self.push(pe, t, kind);
    }

    /// Record an RTS-level event (LB, FT, DVFS, malleability) and mirror it
    /// into the ledger.
    pub(crate) fn rts(&mut self, t: SimTime, kind: TraceEventKind) {
        let line = match &kind {
            TraceEventKind::LbBegin { strategy, objs } => {
                Some(format!("LB {strategy} begin ({objs} objs)"))
            }
            TraceEventKind::LbEnd { strategy, migrations, cost } => Some(format!(
                "LB {strategy} end: {migrations} migration(s), cost {cost}"
            )),
            TraceEventKind::CkptBegin { chares, bytes } => {
                Some(format!("ckpt begin ({chares} chares, {bytes} B)"))
            }
            TraceEventKind::CkptCommit => Some("ckpt committed".to_string()),
            TraceEventKind::CkptAbort => Some("ckpt aborted by failure".to_string()),
            TraceEventKind::NodeFail { first_pe, num_pes } => {
                Some(format!("node failure: {num_pes} PE(s) from PE {first_pe}"))
            }
            TraceEventKind::Rollback { to, chares } => Some(format!(
                "rollback to checkpoint @{:.6}s ({chares} chares)",
                to.as_secs_f64()
            )),
            TraceEventKind::Unrecoverable { lost } => {
                Some(format!("UNRECOVERABLE: {lost} chare(s) lost"))
            }
            TraceEventKind::DvfsFreq { chip, freq_factor } => {
                Some(format!("DVFS chip {chip} -> {freq_factor:.3}x"))
            }
            TraceEventKind::Reconfigure { from, to } => {
                Some(format!("reconfigure {from} -> {to} PEs"))
            }
            TraceEventKind::PreemptWarning { first_pe, num_pes, deadline, proactive } => {
                Some(format!(
                    "preemption warning: {num_pes} PE(s) from PE {first_pe}, reclaim @{:.6}s ({})",
                    deadline.as_secs_f64(),
                    if *proactive { "evacuating" } else { "too short, will restart" }
                ))
            }
            TraceEventKind::Evacuation { chares, first_pe, num_pes } => Some(format!(
                "evacuated {chares} chare(s) off {num_pes} PE(s) from PE {first_pe}"
            )),
            TraceEventKind::ElasticDecision { from, to, util } => {
                Some(format!("elastic: {from} -> {to} PEs (util {util:.3})"))
            }
            TraceEventKind::DegradedCapacity { have, floor } => {
                Some(format!("DEGRADED: {have} alive PE(s) below floor {floor}"))
            }
            _ => None,
        };
        if let Some(line) = line {
            self.ledger_line(t, line);
        }
        let track = self.num_pes;
        self.push(track, t, kind);
    }
}

// ---------------------------------------------------------------------------
// Export & report (on Runtime, which can resolve array names).

/// Exact microseconds (`ns / 1000` with three fractional digits) — float
/// formatting is bypassed so exports are byte-deterministic.
fn us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Runtime {
    /// The tracer, when tracing was enabled at build time.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    fn entry_name(&self, array: ArrayId, entry: EntryKind) -> String {
        let name = self
            .stores
            .get(array.0 as usize)
            .map(|s| s.name())
            .unwrap_or("?");
        format!("{name}::{}", entry.label())
    }

    /// Per-entry-method profiles, sorted by total time (descending, then
    /// name). Empty when tracing is off.
    pub fn trace_profiles(&self) -> Vec<TraceProfile> {
        let Some(tr) = &self.tracer else {
            return Vec::new();
        };
        let mut keys: Vec<_> = tr.profiles.keys().copied().collect();
        keys.sort_unstable();
        let mut out: Vec<TraceProfile> = keys
            .into_iter()
            .map(|(array, entry)| {
                let a = &tr.profiles[&(array, entry)];
                TraceProfile {
                    name: self.entry_name(array, entry),
                    array,
                    entry,
                    count: a.count,
                    total_s: a.total.as_secs_f64(),
                    min_s: a.min.min(a.max).as_secs_f64(),
                    max_s: a.max.as_secs_f64(),
                    hist: a
                        .hist
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| (1u64 << i, c))
                        .collect(),
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.total_s
                .partial_cmp(&a.total_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        out
    }

    /// Export the retained event log as Chrome trace-event JSON (open in
    /// Perfetto / `chrome://tracing`; one track per PE plus an RTS track).
    /// `None` when tracing is off.
    pub fn trace_chrome_json(&self) -> Option<String> {
        let tr = self.tracer.as_ref()?;
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for track in 0..tr.num_tracks() {
            let name = if track == tr.rts_track() {
                "RTS".to_string()
            } else {
                format!("PE {track}")
            };
            let _ = writeln!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{track},\"args\":{{\"name\":\"{name}\"}}}},"
            );
        }
        let mut first = true;
        for track in 0..tr.num_tracks() {
            for rec in tr.track(track) {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                self.write_chrome_event(&mut out, rec);
            }
        }
        out.push_str("\n]}\n");
        Some(out)
    }

    fn write_chrome_event(&self, out: &mut String, rec: &TraceRecord) {
        let ts = us(rec.t);
        let tid = rec.track;
        match &rec.kind {
            TraceEventKind::Entry { obj, entry, dur } => {
                let name = json_escape(&self.entry_name(obj.array, *entry));
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"entry\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\"ix\":\"{:?}\"}}}}",
                    us(*dur),
                    obj.ix
                );
            }
            TraceEventKind::MsgSend { dst, dst_pe, bytes } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"send\",\"cat\":\"msg\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"to_pe\":{dst_pe},\"bytes\":{bytes},\"dst\":\"{:?}\"}}}}",
                    dst.ix
                );
            }
            TraceEventKind::MsgRecv { src_pe, dst, bytes } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"recv\",\"cat\":\"msg\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"from_pe\":{src_pe},\"bytes\":{bytes},\"dst\":\"{:?}\"}}}}",
                    dst.ix
                );
            }
            TraceEventKind::PeBusy | TraceEventKind::PeIdle => {
                let v = if matches!(rec.kind, TraceEventKind::PeBusy) { 1 } else { 0 };
                let _ = write!(
                    out,
                    "{{\"name\":\"busy\",\"cat\":\"pe\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"busy\":{v}}}}}"
                );
            }
            other => {
                let (name, args) = rts_name_args(other);
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"rts\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"s\":\"g\",\"args\":{{{args}}}}}"
                );
            }
        }
    }

    /// Export the retained event log as CSV
    /// (`t_ns,track,kind,name,dur_ns,bytes,a,b`). `None` when tracing is off.
    pub fn trace_csv(&self) -> Option<String> {
        let tr = self.tracer.as_ref()?;
        let mut out = String::from("t_ns,track,kind,name,dur_ns,bytes,a,b\n");
        for track in 0..tr.num_tracks() {
            for rec in tr.track(track) {
                let t = rec.t.as_nanos();
                let row = match &rec.kind {
                    TraceEventKind::Entry { obj, entry, dur } => format!(
                        "{t},{track},entry,{},{},0,0,0",
                        self.entry_name(obj.array, *entry),
                        dur.as_nanos()
                    ),
                    TraceEventKind::MsgSend { dst_pe, bytes, .. } => {
                        format!("{t},{track},send,,0,{bytes},{track},{dst_pe}")
                    }
                    TraceEventKind::MsgRecv { src_pe, bytes, .. } => {
                        format!("{t},{track},recv,,0,{bytes},{src_pe},{track}")
                    }
                    TraceEventKind::PeBusy => format!("{t},{track},busy,,0,0,0,0"),
                    TraceEventKind::PeIdle => format!("{t},{track},idle,,0,0,0,0"),
                    other => {
                        let (name, _) = rts_name_args(other);
                        match other {
                            TraceEventKind::LbEnd { migrations, cost, .. } => format!(
                                "{t},{track},{name},,{},0,{migrations},0",
                                cost.as_nanos()
                            ),
                            TraceEventKind::Migration { from_pe, to_pe, .. } => {
                                format!("{t},{track},{name},,0,0,{from_pe},{to_pe}")
                            }
                            TraceEventKind::CkptBegin { chares, bytes } => {
                                format!("{t},{track},{name},,0,{bytes},{chares},0")
                            }
                            TraceEventKind::NodeFail { first_pe, num_pes } => {
                                format!("{t},{track},{name},,0,0,{first_pe},{num_pes}")
                            }
                            TraceEventKind::Reconfigure { from, to } => {
                                format!("{t},{track},{name},,0,0,{from},{to}")
                            }
                            _ => format!("{t},{track},{name},,0,0,0,0"),
                        }
                    }
                };
                out.push_str(&row);
                out.push('\n');
            }
        }
        Some(out)
    }

    /// Render the projections-lite text report: top-`top_k` entry methods
    /// by total busy time, the per-PE utilization profile, communication
    /// hotspots, network-model totals, and the LB/FT event ledger. `None`
    /// when tracing is off.
    pub fn projections_report(&self, top_k: usize) -> Option<String> {
        let tr = self.tracer.as_ref()?;
        let mut out = String::new();
        let profiles = self.trace_profiles();
        let total_busy: f64 = profiles.iter().map(|p| p.total_s).sum();
        let _ = writeln!(
            out,
            "== projections-lite @ {:.6}s — {} PEs, {} entry methods, {} dropped log record(s)",
            self.now().as_secs_f64(),
            tr.num_pes,
            profiles.len(),
            tr.dropped_events()
        );

        let _ = writeln!(out, "-- top entry methods by total busy time");
        let _ = writeln!(
            out,
            "  {:<36} {:>8} {:>12} {:>10} {:>10} {:>10} {:>6}",
            "entry", "count", "total", "avg", "min", "max", "%busy"
        );
        for p in profiles.iter().take(top_k) {
            let pct = if total_busy > 0.0 { 100.0 * p.total_s / total_busy } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<36} {:>8} {:>12} {:>10} {:>10} {:>10} {:>5.1}%",
                p.name,
                p.count,
                fmt_secs(p.total_s),
                fmt_secs(p.avg_s()),
                fmt_secs(p.min_s),
                fmt_secs(p.max_s),
                pct
            );
        }

        let (bin_s, rows) = tr.util_timeline();
        let nbins = rows.iter().map(|r| r.len()).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "-- PE utilization ({} bins of {}; sparkline digits = busy tenths)",
            nbins,
            fmt_secs(bin_s)
        );
        for (pe, row) in rows.iter().enumerate() {
            let mean = if row.is_empty() { 0.0 } else { row.iter().sum::<f64>() / nbins.max(1) as f64 };
            let spark: String = (0..nbins)
                .map(|i| {
                    let u = row.get(i).copied().unwrap_or(0.0).clamp(0.0, 1.0);
                    char::from_digit((u * 9.0).round() as u32, 10).unwrap_or('9')
                })
                .collect();
            let _ = writeln!(out, "  pe {pe:>3} {:>5.1}% |{spark}|", mean * 100.0);
        }

        let mut pairs: Vec<(usize, usize, u64, u64)> = Vec::new();
        for src in 0..tr.num_pes {
            for dst in 0..tr.num_pes {
                let (b, m) = tr.comm(src, dst);
                if b > 0 && src != dst {
                    pairs.push((src, dst, b, m));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        let _ = writeln!(out, "-- comm hotspots (PE -> PE, remote only)");
        for (src, dst, b, m) in pairs.iter().take(top_k) {
            let _ = writeln!(out, "  pe {src:>3} -> pe {dst:>3}  {b:>12} B  {m:>8} msg(s)");
        }
        let c = self.net.counters();
        let _ = writeln!(
            out,
            "-- network model: {} remote msg(s), {} B remote, {} local hop(s)",
            c.remote_msgs, c.remote_bytes, c.local_msgs
        );

        let _ = writeln!(out, "-- LB/FT event ledger ({} entries)", tr.ledger.len());
        for (t, line) in tr.ledger() {
            let _ = writeln!(out, "  {:>12.6}s  {line}", t.as_secs_f64());
        }
        if tr.ledger_dropped > 0 {
            let _ = writeln!(out, "  ... {} ledger entries dropped", tr.ledger_dropped);
        }

        // Engine-throughput footer: real time spent simulating and the
        // resulting events/sec, so every report doubles as a perf sample
        // (cf. BENCH_engine.json for the standing benchmark matrix).
        let s = self.summary();
        let _ = writeln!(
            out,
            "-- engine: {} event(s) in {:.3}s wall ({:.0} events/s)",
            s.events, s.wall_time_s, s.events_per_sec
        );
        Some(out)
    }
}

/// Name + JSON args for the RTS-level event kinds.
fn rts_name_args(kind: &TraceEventKind) -> (&'static str, String) {
    match kind {
        TraceEventKind::LbBegin { strategy, objs } => {
            ("lb_begin", format!("\"strategy\":\"{strategy}\",\"objs\":{objs}"))
        }
        TraceEventKind::LbEnd { strategy, migrations, cost } => (
            "lb_end",
            format!(
                "\"strategy\":\"{strategy}\",\"migrations\":{migrations},\"cost_us\":{}",
                us(*cost)
            ),
        ),
        TraceEventKind::Migration { obj, from_pe, to_pe } => (
            "migration",
            format!("\"ix\":\"{:?}\",\"from_pe\":{from_pe},\"to_pe\":{to_pe}", obj.ix),
        ),
        TraceEventKind::CkptBegin { chares, bytes } => {
            ("ckpt_begin", format!("\"chares\":{chares},\"bytes\":{bytes}"))
        }
        TraceEventKind::CkptCommit => ("ckpt_commit", String::new()),
        TraceEventKind::CkptAbort => ("ckpt_abort", String::new()),
        TraceEventKind::NodeFail { first_pe, num_pes } => {
            ("node_fail", format!("\"first_pe\":{first_pe},\"num_pes\":{num_pes}"))
        }
        TraceEventKind::Rollback { to, chares } => (
            "rollback",
            format!("\"to_us\":{},\"chares\":{chares}", us(*to)),
        ),
        TraceEventKind::Unrecoverable { lost } => ("unrecoverable", format!("\"lost\":{lost}")),
        TraceEventKind::DvfsFreq { chip, freq_factor } => (
            "dvfs_freq",
            format!("\"chip\":{chip},\"freq\":{freq_factor:.4}"),
        ),
        TraceEventKind::Reconfigure { from, to } => {
            ("reconfigure", format!("\"from\":{from},\"to\":{to}"))
        }
        TraceEventKind::PreemptWarning { first_pe, num_pes, deadline, proactive } => (
            "preempt_warning",
            format!(
                "\"first_pe\":{first_pe},\"num_pes\":{num_pes},\"deadline_us\":{},\"proactive\":{proactive}",
                us(*deadline)
            ),
        ),
        TraceEventKind::Evacuation { chares, first_pe, num_pes } => (
            "evacuation",
            format!("\"chares\":{chares},\"first_pe\":{first_pe},\"num_pes\":{num_pes}"),
        ),
        TraceEventKind::ElasticDecision { from, to, util } => (
            "elastic_decision",
            format!("\"from\":{from},\"to\":{to},\"util\":{util:.4}"),
        ),
        TraceEventKind::DegradedCapacity { have, floor } => {
            ("degraded", format!("\"have\":{have},\"floor\":{floor}"))
        }
        _ => ("event", String::new()),
    }
}

fn fmt_secs(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3}s")
    } else if v >= 1e-3 {
        format!("{:.3}ms", v * 1e3)
    } else {
        format!("{:.1}us", v * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let mut r = Ring::new(4);
        for i in 0..10u64 {
            r.push(TraceRecord {
                t: SimTime(i),
                track: 0,
                kind: TraceEventKind::PeBusy,
            });
        }
        assert_eq!(r.buf.len(), 4);
        assert_eq!(r.dropped, 6);
        let kept: Vec<u64> = r.iter().map(|x| x.t.0).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "newest records are retained, in order");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = Ring::new(0);
        for i in 0..5u64 {
            r.push(TraceRecord {
                t: SimTime(i),
                track: 0,
                kind: TraceEventKind::PeIdle,
            });
        }
        assert_eq!(r.buf.len(), 0);
        assert_eq!(r.dropped, 5);
    }

    #[test]
    fn util_timeline_folds_to_stay_bounded() {
        let mut u = UtilTimeline::new(SimTime::from_nanos(10), 4, 1);
        // Fill [0, 200) ns busy: needs 20 ten-ns bins, budget is 4 → folds.
        u.add(0, SimTime(0), SimTime(200));
        assert!(u.per_pe[0].len() <= 4, "bins={}", u.per_pe[0].len());
        assert_eq!(u.per_pe[0].iter().sum::<u64>(), 200, "busy ns conserved");
        assert!(u.bin_ns >= 50, "bin widened: {}", u.bin_ns);
    }

    #[test]
    fn util_timeline_splits_across_bins() {
        let mut u = UtilTimeline::new(SimTime::from_nanos(100), 64, 2);
        u.add(1, SimTime(50), SimTime(250));
        assert_eq!(u.per_pe[1], vec![50, 100, 50]);
        assert!(u.per_pe[0].is_empty());
    }

    #[test]
    fn entry_agg_tracks_extremes_and_histogram() {
        let mut a = EntryAgg::new();
        a.add(SimTime(100));
        a.add(SimTime(1000));
        a.add(SimTime(1));
        assert_eq!(a.count, 3);
        assert_eq!(a.total, SimTime(1101));
        assert_eq!(a.min, SimTime(1));
        assert_eq!(a.max, SimTime(1000));
        assert_eq!(a.hist.iter().sum::<u64>(), 3);
    }

    #[test]
    fn microsecond_formatting_is_exact() {
        assert_eq!(us(SimTime(1_234_567)), "1234.567");
        assert_eq!(us(SimTime(999)), "0.999");
        assert_eq!(us(SimTime(1_000)), "1.000");
    }
}
