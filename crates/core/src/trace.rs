//! `charm-trace` — Projections-lite runtime tracing & metrics (the paper's
//! observability surface: every adaptive-RTS feature in §II/§III rests on
//! the runtime *observing itself*; in real Charm++ that surface is the
//! Projections framework).
//!
//! Three consumption modes mirror Projections' log vs. summary split, plus
//! the streaming mode that survives 128 K–1 M simulated PEs:
//!
//! * **Full log** — every runtime event (entry execution, message send/recv,
//!   PE idle/busy transitions, LB rounds with migration lists, checkpoint /
//!   rollback / failure, DVFS frequency changes, shrink/expand) is recorded
//!   into a *bounded* per-PE ring buffer. Overflow drops the oldest records
//!   and counts them ([`Tracer::dropped_events`]) — memory stays bounded no
//!   matter how long the run. The log exports to Chrome trace-event JSON
//!   ([`Runtime::trace_chrome_json`], loadable in Perfetto or
//!   `chrome://tracing`, one track per PE plus an RTS track) and to CSV.
//! * **Streaming sinks** — every record also fans out, at record time, to
//!   any [`TraceSink`]s installed via
//!   [`RuntimeBuilder::trace_sink`](crate::RuntimeBuilder::trace_sink):
//!   the built-in [`ChromeStreamSink`] / [`CsvStreamSink`] write the exact
//!   bytes of the in-memory exporters incrementally to disk, so the full
//!   event log survives runs far larger than any ring budget. Sinks report
//!   [`SinkStats`] (records, bytes, write errors) surfaced in
//!   [`RunSummary`](crate::RunSummary) and the report footer.
//! * **Summary** — always-cheap streaming aggregates that never depend on
//!   ring capacity: per-entry-method time profiles (count/total/min/max, a
//!   log₂ duration histogram, *and* an HDR-style sub-bucketed [`LogHist`]
//!   giving p50/p99/p999 without storing samples), a modeled message-latency
//!   histogram, a binned per-PE utilization timeline that coarsens itself to
//!   stay within a bin budget (and collapses to one aggregate row above
//!   [`TraceConfig::util_pe_cap`] PEs), a *sparse* top-K communication
//!   matrix (per-source fanout capped by [`TraceConfig::comm_fanout_cap`] —
//!   no dense PE×PE array), and a bounded LB/FT ledger.
//!   [`Runtime::projections_report`] renders them as a text report.
//!
//! On top of the event flow an optional **critical-path analyzer**
//! ([`TraceConfig::with_critical_path`]) maintains, online and without
//! storing events, the longest entry-execution + message-latency chain that
//! ends at each PE; [`Tracer::critical_path`] attributes the makespan to
//! entry methods and PEs. The path length is ≤ the makespan by construction
//! and equals it on serial dependency chains (tested).
//!
//! Tracing is off unless [`RuntimeBuilder::tracing`](crate::RuntimeBuilder::tracing)
//! installs a [`TraceConfig`]; when off, every hook is a skipped `if let`
//! — zero events, zero per-message allocation.
//!
//! Determinism: records are produced in simulator dispatch order and carry
//! only virtual times, so two runs with the same seed and machine profile
//! emit byte-identical exports (tested in `tests/trace.rs`); streamed files
//! are byte-identical to the arrival-order in-memory exporters
//! ([`Runtime::trace_chrome_json_arrival`]) whenever nothing was dropped.

use crate::array::{ArrayId, ObjId};
use crate::runtime::Runtime;
use charm_machine::SimTime;
use fxhash::FxHashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Configures the tracing subsystem (see module docs).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring capacity per track (one track per PE plus one RTS track).
    /// `0` keeps only the summary aggregates; every log record then counts
    /// as dropped (streaming sinks still see everything).
    pub log_capacity: usize,
    /// Initial utilization-timeline bin width.
    pub util_bin: SimTime,
    /// Bin budget for the utilization timeline; when the run outgrows it
    /// the bin width doubles and adjacent bins fold together.
    pub max_util_bins: usize,
    /// Above this many PEs the utilization timeline keeps a single
    /// machine-wide row instead of one per PE (O(PE × bins) → O(bins)).
    pub util_pe_cap: usize,
    /// Per-source cap on tracked communication partners (sparse top-K comm
    /// matrix); traffic to further destinations is counted as shed.
    /// `0` = unlimited.
    pub comm_fanout_cap: usize,
    /// Ledger lines retained (newest kept); older lines are shed and
    /// counted, like ring records.
    pub ledger_capacity: usize,
    /// Maintain the online critical-path analyzer. Off by default: it holds
    /// O(longest dependency chain) nodes and forces the sequential engine.
    pub critical_path: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            log_capacity: 1 << 16,
            util_bin: SimTime::from_millis(1),
            max_util_bins: 1024,
            util_pe_cap: 4096,
            comm_fanout_cap: 64,
            ledger_capacity: 4096,
            critical_path: false,
        }
    }
}

impl TraceConfig {
    /// Summary-only preset: no event log, just the cheap aggregates.
    pub fn summary_only() -> Self {
        TraceConfig {
            log_capacity: 0,
            ..TraceConfig::default()
        }
    }

    /// Enable the online critical-path analyzer (sequential engine only).
    pub fn with_critical_path(mut self) -> Self {
        self.critical_path = true;
        self
    }
}

/// Which entry method of a chare array ran: its user message handler or a
/// runtime [`SysEvent`](crate::SysEvent) handler (named by variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntryKind {
    /// `Chare::on_message` (the array's user entry method).
    Message,
    /// `Chare::on_event` with the named system event.
    Event(&'static str),
}

impl EntryKind {
    /// Short label used in exports ("entry" or the event name).
    pub fn label(&self) -> &'static str {
        match self {
            EntryKind::Message => "entry",
            EntryKind::Event(name) => name,
        }
    }
}

/// One traced runtime event. `Entry` spans carry a duration; everything
/// else is an instant.
#[derive(Debug, Clone)]
pub enum TraceEventKind {
    /// An entry method completed on this track's PE (start time = record
    /// time; completion was at `t + dur`). Recorded at completion so traced
    /// busy time agrees exactly with [`Runtime::pe_busy_time`].
    Entry {
        /// The chare that ran.
        obj: ObjId,
        /// Which of its entry methods.
        entry: EntryKind,
        /// Modeled execution duration.
        dur: SimTime,
    },
    /// A message left this track's PE toward `dst_pe`.
    MsgSend {
        /// Destination chare.
        dst: ObjId,
        /// PE the message was routed to.
        dst_pe: usize,
        /// Wire size, envelope included.
        bytes: usize,
    },
    /// A message was enqueued on this track's PE scheduler queue.
    MsgRecv {
        /// Sending PE.
        src_pe: usize,
        /// Destination chare.
        dst: ObjId,
        /// Wire size, envelope included.
        bytes: usize,
    },
    /// The PE went from idle to executing.
    PeBusy,
    /// The PE drained its queue and went idle.
    PeIdle,
    /// A load-balancing round started (RTS track).
    LbBegin {
        /// Strategy about to run.
        strategy: &'static str,
        /// Objects whose stats were collected.
        objs: usize,
    },
    /// One object migrated during an LB round or by `migrate_me` (RTS
    /// track; the records between `LbBegin` and `LbEnd` are the round's
    /// migration list).
    Migration {
        /// The object that moved.
        obj: ObjId,
        /// Source PE.
        from_pe: usize,
        /// Destination PE.
        to_pe: usize,
    },
    /// A load-balancing round finished (RTS track).
    LbEnd {
        /// Strategy that ran.
        strategy: &'static str,
        /// Objects that moved.
        migrations: usize,
        /// Modeled cost of the whole round.
        cost: SimTime,
    },
    /// A double in-memory checkpoint started replicating (RTS track).
    CkptBegin {
        /// Chares captured.
        chares: usize,
        /// Total snapshot bytes.
        bytes: usize,
    },
    /// The in-flight checkpoint committed and became the recovery point.
    CkptCommit,
    /// A failure aborted the in-flight checkpoint before it committed.
    CkptAbort,
    /// A node failure killed a contiguous PE range (RTS track).
    NodeFail {
        /// First PE of the failed node.
        first_pe: usize,
        /// PEs killed.
        num_pes: usize,
    },
    /// The application rolled back to the last committed checkpoint.
    Rollback {
        /// Virtual time the restored checkpoint was taken.
        to: SimTime,
        /// Chares restored.
        chares: usize,
    },
    /// A failure destroyed state beyond recovery.
    Unrecoverable {
        /// Chares lost outright.
        lost: usize,
    },
    /// DVFS changed a chip's frequency (RTS track).
    DvfsFreq {
        /// The chip.
        chip: usize,
        /// New frequency as a fraction of nominal.
        freq_factor: f64,
    },
    /// Malleable shrink/expand retargeted the live-PE count (RTS track).
    Reconfigure {
        /// PE count before.
        from: usize,
        /// PE count after.
        to: usize,
    },
    /// A spot preemption was announced for a node (RTS track).
    PreemptWarning {
        /// First PE of the doomed node.
        first_pe: usize,
        /// PEs the platform will reclaim.
        num_pes: usize,
        /// When the kill lands.
        deadline: SimTime,
        /// Did the warning horizon cover the modeled evacuation cost?
        proactive: bool,
    },
    /// Chares were proactively drained off doomed PEs before a preemption
    /// deadline — no rollback needed (RTS track).
    Evacuation {
        /// Chares moved to surviving PEs.
        chares: usize,
        /// First evacuated PE.
        first_pe: usize,
        /// PEs evacuated.
        num_pes: usize,
    },
    /// The elastic controller issued a shrink/expand decision (RTS track).
    ElasticDecision {
        /// Live-PE target before.
        from: usize,
        /// Live-PE target after.
        to: usize,
        /// Utilization sample that drove the decision.
        util: f64,
    },
    /// Capacity fell below the configured floor; the run continues in
    /// degraded mode (RTS track).
    DegradedCapacity {
        /// Alive PEs remaining.
        have: usize,
        /// The floor that was violated.
        floor: usize,
    },
}

/// A timestamped record on one track (`track < num_pes` = that PE;
/// `track == num_pes` = the RTS track).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Virtual time of the event (for `Entry`, the span's start).
    pub t: SimTime,
    /// Owning track.
    pub track: usize,
    /// Arrival order: position in the tracer's global record stream (the
    /// order streaming sinks observed).
    pub seq: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

// ---------------------------------------------------------------------------
// Streaming sinks.

/// Per-sink delivery counters, surfaced in [`RunSummary`](crate::RunSummary)
/// and the `projections_report` footer so trace loss is never silent.
#[derive(Debug, Clone, Default)]
pub struct SinkStats {
    /// Sink name (e.g. `chrome_stream`).
    pub name: String,
    /// Records delivered to the sink.
    pub records: u64,
    /// Records the sink failed to persist (e.g. write errors).
    pub dropped: u64,
    /// Payload bytes the sink has written out.
    pub bytes_written: u64,
}

/// Maps array ids to names so sinks can format events without a `Runtime`
/// in hand. Populated by `Runtime::create_array`; name resolution matches
/// the in-memory exporters byte-for-byte.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    arrays: Vec<String>,
}

impl NameTable {
    pub(crate) fn register(&mut self, id: ArrayId, name: &str) {
        let i = id.0 as usize;
        if self.arrays.len() <= i {
            self.arrays.resize(i + 1, String::new());
        }
        self.arrays[i] = name.to_string();
    }

    /// The array's registered name (`"?"` if unknown).
    pub fn array_name(&self, id: ArrayId) -> &str {
        match self.arrays.get(id.0 as usize) {
            Some(s) if !s.is_empty() => s,
            _ => "?",
        }
    }

    /// `<array>::<entry>` — identical to the runtime-side resolution.
    pub fn entry_name(&self, array: ArrayId, entry: EntryKind) -> String {
        format!("{}::{}", self.array_name(array), entry.label())
    }
}

/// A consumer of the live record stream. Events arrive incrementally, in
/// dispatch order, as they are traced — a sink never needs the run to fit
/// in memory. Installed via
/// [`RuntimeBuilder::trace_sink`](crate::RuntimeBuilder::trace_sink).
///
/// The per-PE rings remain the built-in retention sink (their drops are
/// counted separately by [`Tracer::dropped_events`]); external sinks see
/// every record regardless of ring capacity.
///
/// External sinks force the sequential engine (the sharded engine cannot
/// replay the global arrival order without buffering the run).
pub trait TraceSink: Send {
    /// Short stable identifier used in stats and reports.
    fn name(&self) -> &'static str;
    /// Called once before the first record.
    fn begin(&mut self, num_tracks: usize, names: &NameTable) {
        let _ = (num_tracks, names);
    }
    /// One traced record, in arrival order.
    fn record(&mut self, rec: &TraceRecord, names: &NameTable);
    /// Flush and finalize output. Idempotent; called by
    /// [`Runtime::finish_trace`].
    fn finish(&mut self, names: &NameTable) {
        let _ = names;
    }
    /// Delivery counters so far.
    fn stats(&self) -> SinkStats;
}

/// Bounded ring: keeps the newest `cap` records, counts what it sheds.
struct Ring {
    cap: usize,
    buf: Vec<TraceRecord>,
    /// Index of the oldest record once the ring has wrapped.
    next: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap,
            buf: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, r: TraceRecord) {
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(r);
        } else {
            self.buf[self.next] = r;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.next..].iter().chain(self.buf[..self.next].iter())
    }

    /// Consume the ring into (records oldest-first, dropped count).
    fn into_ordered(mut self) -> (Vec<TraceRecord>, u64) {
        let n = self.next.min(self.buf.len());
        self.buf.rotate_left(n);
        (self.buf, self.dropped)
    }
}

// ---------------------------------------------------------------------------
// Online histograms.

const QH_EXACT: usize = 8; // values 0..8 get exact buckets
const QH_SUB: usize = 8; // sub-buckets per octave (log₂ major bucket)
const QH_BUCKETS: usize = QH_EXACT + 61 * QH_SUB;

/// HDR-style log-bucketed histogram: 8 exact buckets below 8, then 8
/// sub-buckets per power of two. Relative quantile error ≤ 1/8 — the
/// estimate always lands in the same sub-bucket as the exact order
/// statistic (property-tested) — in ~4 KB regardless of sample count.
#[derive(Clone)]
pub struct LogHist {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHist {
            counts: vec![0; QH_BUCKETS],
            total: 0,
        }
    }

    /// Bucket index for a value.
    pub fn bucket_of(v: u64) -> usize {
        if v < QH_EXACT as u64 {
            v as usize
        } else {
            let m = 63 - v.leading_zeros() as usize;
            QH_EXACT + (m - 3) * QH_SUB + ((v >> (m - 3)) & 7) as usize
        }
    }

    /// Smallest value mapping to bucket `i` (the quantile estimate).
    pub fn bucket_lo(i: usize) -> u64 {
        if i < QH_EXACT {
            i as u64
        } else {
            let m = 3 + (i - QH_EXACT) / QH_SUB;
            let s = ((i - QH_EXACT) % QH_SUB) as u64;
            (1u64 << m) + (s << (m - 3))
        }
    }

    /// Record one sample.
    pub fn add(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The q-quantile estimate (lower bound of the bucket holding the
    /// ⌈q·n⌉-th order statistic). `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lo(i);
            }
        }
        Self::bucket_lo(QH_BUCKETS - 1)
    }

    /// Fold another histogram in (shard merge).
    pub fn merge(&mut self, o: &LogHist) {
        for (a, b) in self.counts.iter_mut().zip(o.counts.iter()) {
            *a += b;
        }
        self.total += o.total;
    }

    /// Raw bucket counts (length [`LogHist::num_buckets`]). Pairs with
    /// [`LogHist::from_counts`] so chares can ship histograms through
    /// `RedOp::Sum` reductions: bucket-wise summation of counts *is* the
    /// histogram merge.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of buckets in every histogram.
    pub const fn num_buckets() -> usize {
        QH_BUCKETS
    }

    /// Rebuild a histogram from raw bucket counts (e.g. the value of a
    /// summed reduction over per-chare [`LogHist::counts`] vectors). Extra
    /// trailing entries are ignored; missing ones count as empty buckets.
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut h = LogHist::new();
        for (a, &b) in h.counts.iter_mut().zip(counts) {
            *a = b;
        }
        h.total = h.counts.iter().sum();
        h
    }
}

// Serializable so latency histograms can live inside chare state and
// survive migration / checkpoint like any other field.
impl charm_pup::Pup for LogHist {
    fn pup(&mut self, p: &mut charm_pup::Puper) {
        p.p(&mut self.counts);
        p.p(&mut self.total);
    }
}

impl std::fmt::Debug for LogHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LogHist({} samples, p50={} p99={})",
            self.total,
            self.quantile(0.5),
            self.quantile(0.99)
        )
    }
}

/// Streaming per-entry-method aggregate.
#[derive(Debug, Clone)]
struct EntryAgg {
    count: u64,
    total: SimTime,
    min: SimTime,
    max: SimTime,
    /// Counts by ⌈log₂(duration in ns)⌉ bucket.
    hist: [u64; 64],
    /// Sub-bucketed histogram for p50/p99/p999.
    qhist: LogHist,
}

impl EntryAgg {
    fn new() -> Self {
        EntryAgg {
            count: 0,
            total: SimTime::ZERO,
            min: SimTime::MAX,
            max: SimTime::ZERO,
            hist: [0; 64],
            qhist: LogHist::new(),
        }
    }

    fn add(&mut self, dur: SimTime) {
        self.count += 1;
        self.total += dur;
        self.min = self.min.min(dur);
        self.max = self.max.max(dur);
        let bucket = (64 - dur.as_nanos().max(1).leading_zeros() as usize).min(63);
        self.hist[bucket] += 1;
        self.qhist.add(dur.as_nanos());
    }

    /// Fold another aggregate in (shard merge); all fields commute.
    fn merge(&mut self, o: &EntryAgg) {
        self.count += o.count;
        self.total += o.total;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        for (a, b) in self.hist.iter_mut().zip(o.hist.iter()) {
            *a += b;
        }
        self.qhist.merge(&o.qhist);
    }
}

/// Machine-readable per-entry-method latency SLO row, carried on
/// [`RunSummary`](crate::RunSummary) so bench drivers and service monitors
/// read p50/p99/p999 directly instead of parsing the projections report
/// text. A slim projection of [`TraceProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct EntrySlo {
    /// `<array>::<entry>` (same naming as [`TraceProfile::name`]).
    pub name: String,
    /// Executions observed.
    pub count: u64,
    /// Total busy seconds across executions.
    pub total_s: f64,
    /// Median execution time, seconds (log-bucket estimate).
    pub p50_s: f64,
    /// 99th-percentile execution time, seconds (log-bucket estimate).
    pub p99_s: f64,
    /// 99.9th-percentile execution time, seconds (log-bucket estimate).
    pub p999_s: f64,
}

/// Resolved per-entry-method profile, ready for reports and tuners.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// `<array>::<entry>` (e.g. `leanmd_cells::entry`,
    /// `leanmd_cells::ResumeFromSync`).
    pub name: String,
    /// Array the entry method belongs to.
    pub array: ArrayId,
    /// Which entry method.
    pub entry: EntryKind,
    /// Executions.
    pub count: u64,
    /// Total busy seconds across executions.
    pub total_s: f64,
    /// Shortest execution, seconds.
    pub min_s: f64,
    /// Longest execution, seconds.
    pub max_s: f64,
    /// Median execution time, seconds (log-bucket estimate).
    pub p50_s: f64,
    /// 99th-percentile execution time, seconds (log-bucket estimate).
    pub p99_s: f64,
    /// 99.9th-percentile execution time, seconds (log-bucket estimate).
    pub p999_s: f64,
    /// Non-empty log₂ histogram buckets: (upper bound in ns, count).
    pub hist: Vec<(u64, u64)>,
}

impl TraceProfile {
    /// Mean execution time, seconds.
    pub fn avg_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Sparse communication matrix.

#[derive(Debug, Clone)]
struct CommCell {
    src: u32,
    dst: u32,
    bytes: u64,
    msgs: u64,
}

/// Sparse top-K comm matrix: tracks up to `cap` destinations per source
/// (first-come, like a flow cache) and sheds the rest into counters.
/// O(PE · cap) memory instead of the dense O(PE²) array.
struct CommMatrix {
    cap: usize,
    idx: FxHashMap<u64, u32>,
    cells: Vec<CommCell>,
    /// Tracked destinations per source PE.
    deg: Vec<u32>,
    shed_msgs: u64,
    shed_bytes: u64,
    /// One-slot flow memo: `(key, cell index)` of the most recent hit.
    /// Message streams are bursty per (src, dst) pair, so the common case
    /// skips the hash probe entirely. Valid forever: `cells` is push-only.
    last: (u64, u32),
}

impl CommMatrix {
    fn new(num_pes: usize, cap: usize) -> Self {
        CommMatrix {
            cap,
            idx: FxHashMap::default(),
            cells: Vec::new(),
            deg: vec![0; num_pes],
            shed_msgs: 0,
            shed_bytes: 0,
            // `key()` never produces u64::MAX for real PE pairs.
            last: (u64::MAX, 0),
        }
    }

    fn key(src: usize, dst: usize) -> u64 {
        ((src as u64) << 32) | dst as u64
    }

    fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        let key = Self::key(src, dst);
        if self.last.0 == key {
            let c = &mut self.cells[self.last.1 as usize];
            c.bytes += bytes;
            c.msgs += 1;
            return;
        }
        if let Some(&i) = self.idx.get(&key) {
            let c = &mut self.cells[i as usize];
            c.bytes += bytes;
            c.msgs += 1;
            self.last = (key, i);
        } else if self.cap == 0 || (self.deg[src] as usize) < self.cap {
            let i = self.cells.len() as u32;
            self.idx.insert(key, i);
            self.cells.push(CommCell {
                src: src as u32,
                dst: dst as u32,
                bytes,
                msgs: 1,
            });
            self.deg[src] += 1;
            self.last = (key, i);
        } else {
            self.shed_msgs += 1;
            self.shed_bytes += bytes;
        }
    }

    fn get(&self, src: usize, dst: usize) -> (u64, u64) {
        match self.idx.get(&Self::key(src, dst)) {
            Some(&i) => {
                let c = &self.cells[i as usize];
                (c.bytes, c.msgs)
            }
            None => (0, 0),
        }
    }

    /// All tracked remote pairs, hottest first (bytes desc, then
    /// (src, dst) asc — insertion-order independent).
    fn top(&self) -> Vec<(usize, usize, u64, u64)> {
        let mut pairs: Vec<(usize, usize, u64, u64)> = self
            .cells
            .iter()
            .filter(|c| c.bytes > 0 && c.src != c.dst)
            .map(|c| (c.src as usize, c.dst as usize, c.bytes, c.msgs))
            .collect();
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        pairs
    }
}

/// Self-coarsening binned busy-time timeline (bounded memory). Above
/// `util_pe_cap` PEs it keeps a single machine-wide row (`agg_over` > 0)
/// instead of one per PE.
struct UtilTimeline {
    bin_ns: u64,
    max_bins: usize,
    /// When > 0, `per_pe` has one row aggregating this many PEs.
    agg_over: usize,
    /// Busy nanoseconds per bin, per PE (or aggregated).
    per_pe: Vec<Vec<u64>>,
}

impl UtilTimeline {
    fn new(bin: SimTime, max_bins: usize, num_pes: usize, pe_cap: usize) -> Self {
        let agg = num_pes > pe_cap.max(1);
        UtilTimeline {
            bin_ns: bin.as_nanos().max(1),
            max_bins: max_bins.max(2),
            agg_over: if agg { num_pes } else { 0 },
            per_pe: vec![Vec::new(); if agg { 1 } else { num_pes }],
        }
    }

    fn add(&mut self, pe: usize, start: SimTime, end: SimTime) {
        let pe = if self.agg_over > 0 { 0 } else { pe };
        if pe >= self.per_pe.len() || end <= start {
            return;
        }
        let (start, end) = (start.as_nanos(), end.as_nanos());
        while (end / self.bin_ns) as usize >= self.max_bins {
            self.fold();
        }
        let mut s = start;
        while s < end {
            let b = (s / self.bin_ns) as usize;
            let e = end.min((b as u64 + 1) * self.bin_ns);
            let v = &mut self.per_pe[pe];
            if v.len() <= b {
                v.resize(b + 1, 0);
            }
            v[b] += e - s;
            s = e;
        }
    }

    /// Fold another timeline in (shard merge): both are widened to the
    /// coarser of the two bin widths, then bins add element-wise. Folding
    /// distributes over addition, so the merged timeline is byte-identical
    /// to one that saw every interval itself.
    fn absorb(&mut self, mut o: UtilTimeline) {
        while self.bin_ns < o.bin_ns {
            self.fold();
        }
        while o.bin_ns < self.bin_ns {
            o.fold();
        }
        for (pe, v) in o.per_pe.into_iter().enumerate() {
            let dst = &mut self.per_pe[pe];
            if dst.len() < v.len() {
                dst.resize(v.len(), 0);
            }
            for (i, x) in v.into_iter().enumerate() {
                dst[i] += x;
            }
        }
    }

    /// Double the bin width, folding adjacent bins together.
    fn fold(&mut self) {
        self.bin_ns *= 2;
        for v in &mut self.per_pe {
            let half = v.len().div_ceil(2);
            for i in 0..half {
                let a = v[2 * i];
                let b = v.get(2 * i + 1).copied().unwrap_or(0);
                v[i] = a + b;
            }
            v.truncate(half);
        }
    }
}

// ---------------------------------------------------------------------------
// Online critical path.

/// One executed entry on a dependency chain. Chains share structure via
/// `Arc`; `Drop` is iterative so arbitrarily long chains cannot overflow
/// the stack.
pub(crate) struct CpNode {
    parent: Option<Arc<CpNode>>,
    pe: u32,
    array: ArrayId,
    entry: EntryKind,
    dur_ns: u64,
    /// Message latency charged to the edge into this node (0 when the
    /// binding dependency was the PE being busy).
    msg_wait_ns: u64,
    pub(crate) end_ns: u64,
}

impl Drop for CpNode {
    fn drop(&mut self) {
        // Unlink ancestors iteratively: only while we hold the last
        // reference, so shared suffixes stay alive for their other chains.
        let mut p = self.parent.take();
        while let Some(arc) = p {
            match Arc::into_inner(arc) {
                Some(mut node) => p = node.parent.take(),
                None => break,
            }
        }
    }
}

/// Critical-path provenance riding on a message: the sender's chain, its
/// completion time, and when the message left (so latency = recv − sent).
pub(crate) struct CpMsg {
    pub(crate) from: Option<Arc<CpNode>>,
    pub(crate) cp_end: u64,
    pub(crate) sent_at: SimTime,
}

struct CpState {
    /// Last node executed on each PE (the "PE busy" dependency).
    heads: Vec<Option<Arc<CpNode>>>,
    /// Node with the largest completion time seen so far.
    best: Option<Arc<CpNode>>,
}

/// The resolved longest entry-execution + message-latency chain
/// ([`Tracer::critical_path`]). `len_s ≤` the makespan by construction;
/// equality holds on serial dependency chains.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// End-to-end path length, seconds.
    pub len_s: f64,
    /// Portion of the path spent waiting on message latency, seconds.
    pub msg_wait_s: f64,
    /// Entry executions on the path.
    pub segments: usize,
    /// Busy seconds and execution count on the path, per entry method
    /// (largest first).
    pub by_entry: Vec<(ArrayId, EntryKind, f64, u64)>,
    /// Busy seconds on the path, per PE (largest first).
    pub by_pe: Vec<(usize, f64)>,
}

// ---------------------------------------------------------------------------
// The tracer.

/// The tracing subsystem: bounded per-PE event logs, streaming sinks, and
/// online summary aggregates. Owned by the [`Runtime`]; construct via
/// [`RuntimeBuilder::tracing`](crate::RuntimeBuilder::tracing).
pub struct Tracer {
    cfg: TraceConfig,
    num_pes: usize,
    rings: Vec<Ring>,
    sinks: Vec<Box<dyn TraceSink>>,
    sinks_begun: bool,
    sinks_finished: bool,
    names: NameTable,
    /// Global arrival counter stamped onto every record.
    seq: u64,
    /// Fx-hashed: bumped once per traced entry completion on the hot path.
    profiles: FxHashMap<(ArrayId, EntryKind), EntryAgg>,
    util: UtilTimeline,
    comm: CommMatrix,
    /// Modeled end-to-end message latency (send → delivery), nanoseconds.
    msg_latency: LogHist,
    busy_state: Vec<bool>,
    /// Human-readable LB/FT/DVFS/malleability ledger (newest
    /// `ledger_capacity` lines; compacted at 2× cap).
    ledger: Vec<(SimTime, String)>,
    ledger_total: u64,
    cp: Option<CpState>,
}

impl Tracer {
    pub(crate) fn new(cfg: TraceConfig, num_pes: usize) -> Self {
        let rings = (0..=num_pes).map(|_| Ring::new(cfg.log_capacity)).collect();
        Tracer {
            util: UtilTimeline::new(cfg.util_bin, cfg.max_util_bins, num_pes, cfg.util_pe_cap),
            comm: CommMatrix::new(num_pes, cfg.comm_fanout_cap),
            cp: cfg.critical_path.then(|| CpState {
                heads: vec![None; num_pes],
                best: None,
            }),
            cfg,
            num_pes,
            rings,
            sinks: Vec::new(),
            sinks_begun: false,
            sinks_finished: false,
            names: NameTable::default(),
            seq: 0,
            profiles: FxHashMap::default(),
            msg_latency: LogHist::new(),
            busy_state: vec![false; num_pes],
            ledger: Vec::new(),
            ledger_total: 0,
        }
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Number of tracks (PEs + the RTS track).
    pub fn num_tracks(&self) -> usize {
        self.rings.len()
    }

    /// The RTS track index (`num_pes`).
    pub fn rts_track(&self) -> usize {
        self.num_pes
    }

    /// Records currently retained on a track, oldest first.
    pub fn track(&self, track: usize) -> impl Iterator<Item = &TraceRecord> {
        self.rings[track].iter()
    }

    /// Records retained on a track.
    pub fn track_len(&self, track: usize) -> usize {
        self.rings[track].buf.len()
    }

    /// Log records shed across all tracks (ring overflow, or everything
    /// when `log_capacity == 0`). Summary aggregates and streaming sinks
    /// never drop.
    pub fn dropped_events(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// PE×PE communication volume: `(bytes, messages)` routed `src → dst`.
    /// `(0, 0)` for pairs beyond the per-source fanout cap.
    pub fn comm(&self, src: usize, dst: usize) -> (u64, u64) {
        self.comm.get(src, dst)
    }

    /// Tracked remote comm pairs `(src, dst, bytes, msgs)`, hottest first.
    pub fn comm_top(&self) -> Vec<(usize, usize, u64, u64)> {
        self.comm.top()
    }

    /// Traffic shed beyond the per-source fanout cap: `(messages, bytes)`.
    pub fn comm_shed(&self) -> (u64, u64) {
        (self.comm.shed_msgs, self.comm.shed_bytes)
    }

    /// Comm pairs currently tracked by the sparse matrix.
    pub fn comm_tracked_pairs(&self) -> usize {
        self.comm.cells.len()
    }

    /// Modeled message-latency histogram (send → delivery, nanoseconds).
    pub fn msg_latency(&self) -> &LogHist {
        &self.msg_latency
    }

    /// Utilization timeline: bin width in seconds and, per PE, the busy
    /// fraction of each bin. Above [`TraceConfig::util_pe_cap`] PEs there
    /// is a single machine-wide row (see [`Tracer::util_aggregated`]).
    pub fn util_timeline(&self) -> (f64, Vec<Vec<f64>>) {
        let bin_s = self.util.bin_ns as f64 / 1e9;
        let denom = self.util.bin_ns as f64 * self.util.agg_over.max(1) as f64;
        let rows = self
            .util
            .per_pe
            .iter()
            .map(|v| v.iter().map(|&ns| ns as f64 / denom).collect())
            .collect();
        (bin_s, rows)
    }

    /// `Some(num_pes)` when the utilization timeline is one machine-wide
    /// aggregate row instead of per-PE rows.
    pub fn util_aggregated(&self) -> Option<usize> {
        (self.util.agg_over > 0).then_some(self.util.agg_over)
    }

    /// Total traced busy time summed over every entry-method profile —
    /// equals `Σ pe_busy_time` when tracing covered the whole run.
    pub fn total_entry_time(&self) -> SimTime {
        self.profiles.values().map(|a| a.total).sum()
    }

    /// LB/FT/DVFS/malleability ledger lines (time, text), oldest first —
    /// the newest [`TraceConfig::ledger_capacity`] survive.
    pub fn ledger(&self) -> &[(SimTime, String)] {
        let cap = self.cfg.ledger_capacity.max(1);
        let n = self.ledger.len();
        &self.ledger[n - n.min(cap)..]
    }

    /// Ledger lines shed beyond the retention cap.
    pub fn ledger_shed(&self) -> u64 {
        self.ledger_total - self.ledger().len() as u64
    }

    /// Per-track dropped-record counts (PE tracks then the RTS track) —
    /// the per-shard breakdown behind [`Tracer::dropped_events`].
    pub fn dropped_by_track(&self) -> Vec<u64> {
        self.rings.iter().map(|r| r.dropped).collect()
    }

    /// Delivery counters for every installed streaming sink.
    pub fn sink_stats(&self) -> Vec<SinkStats> {
        self.sinks.iter().map(|s| s.stats()).collect()
    }

    /// Flush and finalize all streaming sinks; returns their final stats.
    /// Idempotent.
    pub fn finish_sinks(&mut self) -> Vec<SinkStats> {
        if !self.sinks_finished {
            self.sinks_finished = true;
            for s in &mut self.sinks {
                s.finish(&self.names);
            }
        }
        self.sink_stats()
    }

    /// The array-name table sinks format events with.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    pub(crate) fn add_sink(&mut self, sink: Box<dyn TraceSink>) {
        // A sink added mid-stream would silently miss everything already
        // pushed, so require a completely untouched tracer.
        assert!(
            !self.sinks_begun && self.seq == 0,
            "trace sinks must be installed before the first traced event"
        );
        self.sinks.push(sink);
    }

    pub(crate) fn has_sinks(&self) -> bool {
        !self.sinks.is_empty()
    }

    pub(crate) fn cp_enabled(&self) -> bool {
        self.cp.is_some()
    }

    pub(crate) fn register_array(&mut self, id: ArrayId, name: &str) {
        self.names.register(id, name);
    }

    /// The resolved critical path, when the analyzer was enabled and at
    /// least one entry executed.
    ///
    /// The length never exceeds the makespan of a run that drains
    /// naturally (and equals it on a serial chain). When
    /// [`Ctx::exit`](crate::Ctx::exit) truncates a run, entries already
    /// under way still complete in the trace but the virtual clock stops
    /// at the exit event, so the path may overhang
    /// [`RunSummary::end_time`](crate::RunSummary::end_time) by at most
    /// one entry duration.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let best = self.cp.as_ref()?.best.as_ref()?;
        let mut by_entry: std::collections::BTreeMap<(ArrayId, EntryKind), (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut by_pe: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        let mut segments = 0usize;
        let mut wait_ns = 0u64;
        let mut cur = Some(best);
        while let Some(node) = cur {
            segments += 1;
            wait_ns += node.msg_wait_ns;
            let e = by_entry.entry((node.array, node.entry)).or_insert((0, 0));
            e.0 += node.dur_ns;
            e.1 += 1;
            *by_pe.entry(node.pe).or_insert(0) += node.dur_ns;
            cur = node.parent.as_ref();
        }
        let mut by_entry: Vec<(ArrayId, EntryKind, f64, u64)> = by_entry
            .into_iter()
            .map(|((a, e), (ns, c))| (a, e, ns as f64 / 1e9, c))
            .collect();
        by_entry.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        let mut by_pe: Vec<(usize, f64)> = by_pe
            .into_iter()
            .map(|(pe, ns)| (pe as usize, ns as f64 / 1e9))
            .collect();
        by_pe.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        Some(CriticalPath {
            len_s: best.end_ns as f64 / 1e9,
            msg_wait_s: wait_ns as f64 / 1e9,
            segments,
            by_entry,
            by_pe,
        })
    }

    /// Fold a shard tracer back in after a parallel run. The shard only
    /// recorded on the PE tracks it owned (`lo..hi`, plus possibly the RTS
    /// track on the coordinator shard), in dispatch order — so appending
    /// its records track-by-track reproduces exactly what the sequential
    /// engine would have pushed, including ring-overflow drop counts.
    /// (External sinks and the critical-path analyzer force the sequential
    /// engine, so shards never carry either.)
    pub(crate) fn absorb_shard(&mut self, shard: Tracer, lo: usize, hi: usize) {
        let Tracer {
            rings,
            profiles,
            util,
            comm,
            msg_latency,
            busy_state,
            ledger,
            ledger_total,
            cfg: shard_cfg,
            ..
        } = shard;
        for (track, ring) in rings.into_iter().enumerate() {
            let (records, dropped) = ring.into_ordered();
            for mut rec in records {
                rec.seq = self.seq;
                self.seq += 1;
                self.rings[track].push(rec);
            }
            self.rings[track].dropped += dropped;
        }
        for (k, agg) in profiles {
            self.profiles
                .entry(k)
                .or_insert_with(EntryAgg::new)
                .merge(&agg);
        }
        self.util.absorb(util);
        // Replay tracked cells through our capped add (each source PE's
        // traffic lives on exactly one shard, in sequential order, so the
        // kept-pair set matches a sequential run); shed counters carry over.
        for c in comm.cells {
            if let Some(&i) = self.comm.idx.get(&CommMatrix::key(c.src as usize, c.dst as usize)) {
                let cell = &mut self.comm.cells[i as usize];
                cell.bytes += c.bytes;
                cell.msgs += c.msgs;
            } else if self.comm.cap == 0 || (self.comm.deg[c.src as usize] as usize) < self.comm.cap
            {
                self.comm
                    .idx
                    .insert(CommMatrix::key(c.src as usize, c.dst as usize), self.comm.cells.len() as u32);
                self.comm.deg[c.src as usize] += 1;
                self.comm.cells.push(c);
            } else {
                self.comm.shed_msgs += c.msgs;
                self.comm.shed_bytes += c.bytes;
            }
        }
        self.comm.shed_msgs += comm.shed_msgs;
        self.comm.shed_bytes += comm.shed_bytes;
        self.msg_latency.merge(&msg_latency);
        let hi = hi.min(self.busy_state.len());
        self.busy_state[lo..hi].copy_from_slice(&busy_state[lo..hi]);
        // Only the shard's retained ledger lines replay; compacted-away
        // lines carry over as a count.
        let cap = shard_cfg.ledger_capacity.max(1);
        let retained = ledger.len().min(cap);
        let skip = ledger.len() - retained;
        for (t, line) in ledger.into_iter().skip(skip) {
            self.ledger_line(t, line);
        }
        self.ledger_total += ledger_total - retained as u64;
    }

    // ----- recording hooks (crate-internal) --------------------------------

    fn push(&mut self, track: usize, t: SimTime, kind: TraceEventKind) {
        let rec = TraceRecord {
            t,
            track,
            seq: self.seq,
            kind,
        };
        self.seq += 1;
        if !self.sinks.is_empty() {
            if !self.sinks_begun {
                self.sinks_begun = true;
                let n = self.rings.len();
                for s in &mut self.sinks {
                    s.begin(n, &self.names);
                }
            }
            for s in &mut self.sinks {
                s.record(&rec, &self.names);
            }
        }
        self.rings[track].push(rec);
    }

    fn ledger_line(&mut self, t: SimTime, line: String) {
        self.ledger_total += 1;
        self.ledger.push((t, line));
        let cap = self.cfg.ledger_capacity.max(1);
        if self.ledger.len() >= 2 * cap {
            let n = self.ledger.len() - cap;
            self.ledger.drain(..n);
        }
    }

    /// An entry method completed: `dur` ending at `start + dur` on `pe`.
    pub(crate) fn on_entry(&mut self, pe: usize, obj: ObjId, entry: EntryKind, start: SimTime, dur: SimTime) {
        self.profiles
            .entry((obj.array, entry))
            .or_insert_with(EntryAgg::new)
            .add(dur);
        self.util.add(pe, start, start + dur);
        self.push(pe, start, TraceEventKind::Entry { obj, entry, dur });
    }

    pub(crate) fn on_send(&mut self, t: SimTime, src_pe: usize, dst_pe: usize, dst: ObjId, bytes: usize) {
        if src_pe < self.num_pes && dst_pe < self.num_pes {
            self.comm.add(src_pe, dst_pe, bytes as u64);
        }
        self.push(
            src_pe.min(self.num_pes),
            t,
            TraceEventKind::MsgSend { dst, dst_pe, bytes },
        );
    }

    pub(crate) fn on_recv(&mut self, t: SimTime, pe: usize, src_pe: usize, dst: ObjId, bytes: usize) {
        self.push(pe, t, TraceEventKind::MsgRecv { src_pe, dst, bytes });
    }

    /// Modeled end-to-end latency of one delivered message.
    pub(crate) fn on_msg_latency(&mut self, lat: SimTime) {
        self.msg_latency.add(lat.as_nanos());
    }

    /// An entry method is about to run: extend the dependency chain ending
    /// here and return the new node (to stamp onto outgoing sends). The
    /// binding dependency is whichever finished later — the triggering
    /// message's chain (+ its latency) or the previous entry on this PE.
    pub(crate) fn cp_on_exec(
        &mut self,
        pe: usize,
        obj: ObjId,
        entry: EntryKind,
        now: SimTime,
        dur: SimTime,
        msg: Option<Box<CpMsg>>,
    ) -> Option<Arc<CpNode>> {
        let cp = self.cp.as_mut()?;
        let (mut parent, mut msg_wait, mut start) = (None, 0u64, 0u64);
        if let Some(m) = msg {
            let wait = now.as_nanos().saturating_sub(m.sent_at.as_nanos());
            start = m.cp_end + wait;
            msg_wait = wait;
            parent = m.from;
        }
        if let Some(head) = cp.heads.get(pe).and_then(|h| h.as_ref()) {
            if head.end_ns > start {
                start = head.end_ns;
                msg_wait = 0;
                parent = Some(head.clone());
            }
        }
        let node = Arc::new(CpNode {
            parent,
            pe: pe as u32,
            array: obj.array,
            entry,
            dur_ns: dur.as_nanos(),
            msg_wait_ns: msg_wait,
            end_ns: start + dur.as_nanos(),
        });
        if pe < cp.heads.len() {
            cp.heads[pe] = Some(node.clone());
        }
        if cp.best.as_ref().is_none_or(|b| node.end_ns > b.end_ns) {
            cp.best = Some(node.clone());
        }
        Some(node)
    }

    /// Record a busy/idle transition if the PE's state actually changed.
    pub(crate) fn pe_transition(&mut self, t: SimTime, pe: usize, busy: bool) {
        if pe >= self.busy_state.len() || self.busy_state[pe] == busy {
            return;
        }
        self.busy_state[pe] = busy;
        let kind = if busy { TraceEventKind::PeBusy } else { TraceEventKind::PeIdle };
        self.push(pe, t, kind);
    }

    /// Record an RTS-level event (LB, FT, DVFS, malleability) and mirror it
    /// into the ledger.
    pub(crate) fn rts(&mut self, t: SimTime, kind: TraceEventKind) {
        let line = match &kind {
            TraceEventKind::LbBegin { strategy, objs } => {
                Some(format!("LB {strategy} begin ({objs} objs)"))
            }
            TraceEventKind::LbEnd { strategy, migrations, cost } => Some(format!(
                "LB {strategy} end: {migrations} migration(s), cost {cost}"
            )),
            TraceEventKind::CkptBegin { chares, bytes } => {
                Some(format!("ckpt begin ({chares} chares, {bytes} B)"))
            }
            TraceEventKind::CkptCommit => Some("ckpt committed".to_string()),
            TraceEventKind::CkptAbort => Some("ckpt aborted by failure".to_string()),
            TraceEventKind::NodeFail { first_pe, num_pes } => {
                Some(format!("node failure: {num_pes} PE(s) from PE {first_pe}"))
            }
            TraceEventKind::Rollback { to, chares } => Some(format!(
                "rollback to checkpoint @{:.6}s ({chares} chares)",
                to.as_secs_f64()
            )),
            TraceEventKind::Unrecoverable { lost } => {
                Some(format!("UNRECOVERABLE: {lost} chare(s) lost"))
            }
            TraceEventKind::DvfsFreq { chip, freq_factor } => {
                Some(format!("DVFS chip {chip} -> {freq_factor:.3}x"))
            }
            TraceEventKind::Reconfigure { from, to } => {
                Some(format!("reconfigure {from} -> {to} PEs"))
            }
            TraceEventKind::PreemptWarning { first_pe, num_pes, deadline, proactive } => {
                Some(format!(
                    "preemption warning: {num_pes} PE(s) from PE {first_pe}, reclaim @{:.6}s ({})",
                    deadline.as_secs_f64(),
                    if *proactive { "evacuating" } else { "too short, will restart" }
                ))
            }
            TraceEventKind::Evacuation { chares, first_pe, num_pes } => Some(format!(
                "evacuated {chares} chare(s) off {num_pes} PE(s) from PE {first_pe}"
            )),
            TraceEventKind::ElasticDecision { from, to, util } => {
                Some(format!("elastic: {from} -> {to} PEs (util {util:.3})"))
            }
            TraceEventKind::DegradedCapacity { have, floor } => {
                Some(format!("DEGRADED: {have} alive PE(s) below floor {floor}"))
            }
            _ => None,
        };
        if let Some(line) = line {
            self.ledger_line(t, line);
        }
        let track = self.num_pes;
        self.push(track, t, kind);
    }
}

// ---------------------------------------------------------------------------
// Shared byte-exact formatters (in-memory exporters and streaming sinks
// funnel through these, so their outputs agree byte-for-byte).

/// Exact microseconds (`ns / 1000` with three fractional digits) — float
/// formatting is bypassed so exports are byte-deterministic.
pub(crate) fn us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

pub(crate) fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Chrome trace-event header: opening brace plus one `thread_name`
/// metadata line per track.
pub(crate) fn chrome_header(out: &mut String, num_tracks: usize, rts_track: usize) {
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for track in 0..num_tracks {
        let name = if track == rts_track {
            "RTS".to_string()
        } else {
            format!("PE {track}")
        };
        let _ = writeln!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{track},\"args\":{{\"name\":\"{name}\"}}}},"
        );
    }
}

/// One Chrome trace event (no separators). `entry_name` resolves
/// `<array>::<entry>` labels.
pub(crate) fn chrome_event(
    out: &mut String,
    rec: &TraceRecord,
    entry_name: &dyn Fn(ArrayId, EntryKind) -> String,
) {
    let ts = us(rec.t);
    let tid = rec.track;
    match &rec.kind {
        TraceEventKind::Entry { obj, entry, dur } => {
            let name = json_escape(&entry_name(obj.array, *entry));
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"entry\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\"ix\":\"{:?}\"}}}}",
                us(*dur),
                obj.ix
            );
        }
        TraceEventKind::MsgSend { dst, dst_pe, bytes } => {
            let _ = write!(
                out,
                "{{\"name\":\"send\",\"cat\":\"msg\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"to_pe\":{dst_pe},\"bytes\":{bytes},\"dst\":\"{:?}\"}}}}",
                dst.ix
            );
        }
        TraceEventKind::MsgRecv { src_pe, dst, bytes } => {
            let _ = write!(
                out,
                "{{\"name\":\"recv\",\"cat\":\"msg\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"from_pe\":{src_pe},\"bytes\":{bytes},\"dst\":\"{:?}\"}}}}",
                dst.ix
            );
        }
        TraceEventKind::PeBusy | TraceEventKind::PeIdle => {
            let v = if matches!(rec.kind, TraceEventKind::PeBusy) { 1 } else { 0 };
            let _ = write!(
                out,
                "{{\"name\":\"busy\",\"cat\":\"pe\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"busy\":{v}}}}}"
            );
        }
        other => {
            let (name, args) = rts_name_args(other);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"rts\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"s\":\"g\",\"args\":{{{args}}}}}"
            );
        }
    }
}

/// CSV header row (with trailing newline).
pub(crate) const CSV_HEADER: &str = "t_ns,track,kind,name,dur_ns,bytes,a,b\n";

/// One CSV row (no trailing newline).
pub(crate) fn csv_row(rec: &TraceRecord, entry_name: &dyn Fn(ArrayId, EntryKind) -> String) -> String {
    let t = rec.t.as_nanos();
    let track = rec.track;
    match &rec.kind {
        TraceEventKind::Entry { obj, entry, dur } => format!(
            "{t},{track},entry,{},{},0,0,0",
            entry_name(obj.array, *entry),
            dur.as_nanos()
        ),
        TraceEventKind::MsgSend { dst_pe, bytes, .. } => {
            format!("{t},{track},send,,0,{bytes},{track},{dst_pe}")
        }
        TraceEventKind::MsgRecv { src_pe, bytes, .. } => {
            format!("{t},{track},recv,,0,{bytes},{src_pe},{track}")
        }
        TraceEventKind::PeBusy => format!("{t},{track},busy,,0,0,0,0"),
        TraceEventKind::PeIdle => format!("{t},{track},idle,,0,0,0,0"),
        other => {
            let (name, _) = rts_name_args(other);
            match other {
                TraceEventKind::LbEnd { migrations, cost, .. } => format!(
                    "{t},{track},{name},,{},0,{migrations},0",
                    cost.as_nanos()
                ),
                TraceEventKind::Migration { from_pe, to_pe, .. } => {
                    format!("{t},{track},{name},,0,0,{from_pe},{to_pe}")
                }
                TraceEventKind::CkptBegin { chares, bytes } => {
                    format!("{t},{track},{name},,0,{bytes},{chares},0")
                }
                TraceEventKind::NodeFail { first_pe, num_pes } => {
                    format!("{t},{track},{name},,0,0,{first_pe},{num_pes}")
                }
                TraceEventKind::Reconfigure { from, to } => {
                    format!("{t},{track},{name},,0,0,{from},{to}")
                }
                _ => format!("{t},{track},{name},,0,0,0,0"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Export & report (on Runtime, which can resolve array names).

impl Runtime {
    /// The tracer, when tracing was enabled at build time.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Install a streaming [`TraceSink`] after construction (tracing must
    /// be enabled, and no record may have been streamed yet — install
    /// sinks before the first `run*` call).
    ///
    /// # Panics
    /// If tracing is off or the sinks already began streaming.
    pub fn add_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        let tr = self
            .tracer
            .as_mut()
            .expect("add_trace_sink requires tracing to be enabled");
        tr.add_sink(sink);
    }

    /// Flush and finalize every streaming sink (writing the Chrome-JSON
    /// tail, flushing buffers) and return their delivery stats. Idempotent;
    /// call after the last `run*` so streamed files are well-formed.
    pub fn finish_trace(&mut self) -> Vec<SinkStats> {
        match &mut self.tracer {
            Some(tr) => tr.finish_sinks(),
            None => Vec::new(),
        }
    }

    fn entry_name(&self, array: ArrayId, entry: EntryKind) -> String {
        let name = self
            .stores
            .get(array.0 as usize)
            .map(|s| s.name())
            .unwrap_or("?");
        format!("{name}::{}", entry.label())
    }

    /// Per-entry-method profiles, sorted by total time (descending, then
    /// name). Empty when tracing is off.
    pub fn trace_profiles(&self) -> Vec<TraceProfile> {
        let Some(tr) = &self.tracer else {
            return Vec::new();
        };
        let mut keys: Vec<_> = tr.profiles.keys().copied().collect();
        keys.sort_unstable();
        let mut out: Vec<TraceProfile> = keys
            .into_iter()
            .map(|(array, entry)| {
                let a = &tr.profiles[&(array, entry)];
                TraceProfile {
                    name: self.entry_name(array, entry),
                    array,
                    entry,
                    count: a.count,
                    total_s: a.total.as_secs_f64(),
                    min_s: a.min.min(a.max).as_secs_f64(),
                    max_s: a.max.as_secs_f64(),
                    p50_s: a.qhist.quantile(0.5) as f64 / 1e9,
                    p99_s: a.qhist.quantile(0.99) as f64 / 1e9,
                    p999_s: a.qhist.quantile(0.999) as f64 / 1e9,
                    hist: a
                        .hist
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| (1u64 << i, c))
                        .collect(),
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.total_s
                .partial_cmp(&a.total_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        out
    }

    /// Structured per-entry p50/p99/p999 rows — the machine-readable form
    /// of the projections report's SLO columns, also carried on every
    /// [`RunSummary`](crate::RunSummary). Sorted by total busy time
    /// (descending, then name). Empty when tracing is off.
    pub fn entry_slos(&self) -> Vec<EntrySlo> {
        let Some(tr) = &self.tracer else {
            return Vec::new();
        };
        let mut keys: Vec<_> = tr.profiles.keys().copied().collect();
        keys.sort_unstable();
        let mut out: Vec<EntrySlo> = keys
            .into_iter()
            .map(|(array, entry)| {
                let a = &tr.profiles[&(array, entry)];
                EntrySlo {
                    name: self.entry_name(array, entry),
                    count: a.count,
                    total_s: a.total.as_secs_f64(),
                    p50_s: a.qhist.quantile(0.5) as f64 / 1e9,
                    p99_s: a.qhist.quantile(0.99) as f64 / 1e9,
                    p999_s: a.qhist.quantile(0.999) as f64 / 1e9,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.total_s
                .partial_cmp(&a.total_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        out
    }

    /// Export the retained event log as Chrome trace-event JSON (open in
    /// Perfetto / `chrome://tracing`; one track per PE plus an RTS track),
    /// grouped track-by-track. `None` when tracing is off.
    pub fn trace_chrome_json(&self) -> Option<String> {
        let tr = self.tracer.as_ref()?;
        let mut out = String::new();
        chrome_header(&mut out, tr.num_tracks(), tr.rts_track());
        let name_of = |a, e| self.entry_name(a, e);
        let mut first = true;
        for track in 0..tr.num_tracks() {
            for rec in tr.track(track) {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                chrome_event(&mut out, rec, &name_of);
            }
        }
        out.push_str("\n]}\n");
        Some(out)
    }

    /// Export the retained event log as Chrome trace-event JSON in
    /// *arrival order* — byte-identical to what a [`ChromeStreamSink`]
    /// wrote, provided the rings retained every record. `None` when
    /// tracing is off.
    pub fn trace_chrome_json_arrival(&self) -> Option<String> {
        let tr = self.tracer.as_ref()?;
        let mut out = String::new();
        chrome_header(&mut out, tr.num_tracks(), tr.rts_track());
        let name_of = |a, e| self.entry_name(a, e);
        for (i, rec) in self.arrival_records(tr).into_iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            chrome_event(&mut out, rec, &name_of);
        }
        out.push_str("\n]}\n");
        Some(out)
    }

    /// Retained records across all rings, sorted back into arrival order.
    fn arrival_records<'a>(&self, tr: &'a Tracer) -> Vec<&'a TraceRecord> {
        let mut recs: Vec<&TraceRecord> = (0..tr.num_tracks()).flat_map(|t| tr.track(t)).collect();
        recs.sort_by_key(|r| r.seq);
        recs
    }

    /// Export the retained event log as CSV
    /// (`t_ns,track,kind,name,dur_ns,bytes,a,b`), grouped track-by-track.
    /// `None` when tracing is off.
    pub fn trace_csv(&self) -> Option<String> {
        let tr = self.tracer.as_ref()?;
        let mut out = String::from(CSV_HEADER);
        let name_of = |a, e| self.entry_name(a, e);
        for track in 0..tr.num_tracks() {
            for rec in tr.track(track) {
                out.push_str(&csv_row(rec, &name_of));
                out.push('\n');
            }
        }
        Some(out)
    }

    /// CSV export in *arrival order* — byte-identical to a
    /// [`CsvStreamSink`]'s file when nothing was dropped from the rings.
    pub fn trace_csv_arrival(&self) -> Option<String> {
        let tr = self.tracer.as_ref()?;
        let mut out = String::from(CSV_HEADER);
        let name_of = |a, e| self.entry_name(a, e);
        for rec in self.arrival_records(tr) {
            out.push_str(&csv_row(rec, &name_of));
            out.push('\n');
        }
        Some(out)
    }

    /// Render the projections-lite text report: top-`top_k` entry methods
    /// by total busy time (with p50/p99/p999 grainsize), the per-PE
    /// utilization profile, communication hotspots, message-latency
    /// percentiles, the critical path (when enabled), network-model
    /// totals, the LB/FT event ledger, and the trace/sink footer. `None`
    /// when tracing is off.
    pub fn projections_report(&self, top_k: usize) -> Option<String> {
        let tr = self.tracer.as_ref()?;
        let mut out = String::new();
        let profiles = self.trace_profiles();
        let total_busy: f64 = profiles.iter().map(|p| p.total_s).sum();
        let _ = writeln!(
            out,
            "== projections-lite @ {:.6}s — {} PEs, {} entry methods, {} dropped log record(s)",
            self.now().as_secs_f64(),
            tr.num_pes,
            profiles.len(),
            tr.dropped_events()
        );

        let _ = writeln!(out, "-- top entry methods by total busy time");
        let _ = writeln!(
            out,
            "  {:<36} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}",
            "entry", "count", "total", "avg", "min", "max", "p50", "p99", "p999", "%busy"
        );
        for p in profiles.iter().take(top_k) {
            let pct = if total_busy > 0.0 { 100.0 * p.total_s / total_busy } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<36} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>5.1}%",
                p.name,
                p.count,
                fmt_secs(p.total_s),
                fmt_secs(p.avg_s()),
                fmt_secs(p.min_s),
                fmt_secs(p.max_s),
                fmt_secs(p.p50_s),
                fmt_secs(p.p99_s),
                fmt_secs(p.p999_s),
                pct
            );
        }

        let (bin_s, rows) = tr.util_timeline();
        let nbins = rows.iter().map(|r| r.len()).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "-- PE utilization ({} bins of {}; sparkline digits = busy tenths)",
            nbins,
            fmt_secs(bin_s)
        );
        for (pe, row) in rows.iter().enumerate() {
            let mean = if row.is_empty() { 0.0 } else { row.iter().sum::<f64>() / nbins.max(1) as f64 };
            let spark: String = (0..nbins)
                .map(|i| {
                    let u = row.get(i).copied().unwrap_or(0.0).clamp(0.0, 1.0);
                    char::from_digit((u * 9.0).round() as u32, 10).unwrap_or('9')
                })
                .collect();
            match tr.util_aggregated() {
                Some(n) => {
                    let _ = writeln!(out, "  mean of {n} PEs {:>5.1}% |{spark}|", mean * 100.0);
                }
                None => {
                    let _ = writeln!(out, "  pe {pe:>3} {:>5.1}% |{spark}|", mean * 100.0);
                }
            }
        }

        let pairs = tr.comm_top();
        let _ = writeln!(out, "-- comm hotspots (PE -> PE, remote only)");
        for (src, dst, b, m) in pairs.iter().take(top_k) {
            let _ = writeln!(out, "  pe {src:>3} -> pe {dst:>3}  {b:>12} B  {m:>8} msg(s)");
        }
        let (shed_msgs, shed_bytes) = tr.comm_shed();
        if shed_msgs > 0 {
            let _ = writeln!(
                out,
                "  ... {shed_msgs} msg(s) / {shed_bytes} B shed beyond fanout cap {}",
                tr.config().comm_fanout_cap
            );
        }
        let lat = tr.msg_latency();
        let _ = writeln!(
            out,
            "-- msg latency (modeled): p50 {} p99 {} p999 {} over {} msg(s)",
            fmt_secs(lat.quantile(0.5) as f64 / 1e9),
            fmt_secs(lat.quantile(0.99) as f64 / 1e9),
            fmt_secs(lat.quantile(0.999) as f64 / 1e9),
            lat.count()
        );
        let c = self.net.counters();
        let _ = writeln!(
            out,
            "-- network model: {} remote msg(s), {} B remote, {} local hop(s)",
            c.remote_msgs, c.remote_bytes, c.local_msgs
        );

        if let Some(cp) = tr.critical_path() {
            let makespan = self.now().as_secs_f64();
            let pct = if makespan > 0.0 { 100.0 * cp.len_s / makespan } else { 0.0 };
            let _ = writeln!(
                out,
                "-- critical path: {} ({pct:.1}% of makespan), {} segment(s), {} msg wait",
                fmt_secs(cp.len_s),
                cp.segments,
                fmt_secs(cp.msg_wait_s)
            );
            for (array, entry, secs, count) in cp.by_entry.iter().take(top_k) {
                let _ = writeln!(
                    out,
                    "  {:<36} {:>10} {:>8} exec(s) on path",
                    self.entry_name(*array, *entry),
                    fmt_secs(*secs),
                    count
                );
            }
            for (pe, secs) in cp.by_pe.iter().take(top_k) {
                let _ = writeln!(out, "  pe {pe:>3} {:>10} busy on path", fmt_secs(*secs));
            }
        }

        let _ = writeln!(out, "-- LB/FT event ledger ({} entries)", tr.ledger().len());
        for (t, line) in tr.ledger() {
            let _ = writeln!(out, "  {:>12.6}s  {line}", t.as_secs_f64());
        }
        if tr.ledger_shed() > 0 {
            let _ = writeln!(out, "  ... {} older ledger entries shed", tr.ledger_shed());
        }

        // Trace-loss footer: ring drops and per-sink delivery stats, so a
        // truncated log is never mistaken for a complete one.
        let _ = writeln!(
            out,
            "-- trace: {} record(s) seen, {} dropped from rings, {} sink(s)",
            tr.seq,
            tr.dropped_events(),
            tr.sinks.len()
        );
        for s in tr.sink_stats() {
            let _ = writeln!(
                out,
                "  sink {}: {} record(s), {} B written, {} write error(s)",
                s.name, s.records, s.bytes_written, s.dropped
            );
        }

        // Engine-throughput footer: real time spent simulating and the
        // resulting events/sec, so every report doubles as a perf sample
        // (cf. BENCH_engine.json for the standing benchmark matrix).
        let s = self.summary();
        let _ = writeln!(
            out,
            "-- engine: {} event(s) in {:.3}s wall ({:.0} events/s)",
            s.events, s.wall_time_s, s.events_per_sec
        );
        let _ = writeln!(
            out,
            "-- queues: {} op(s); arena: {} B recycled, {} allocator call(s) bypassed",
            s.queue_ops, s.arena_bytes, s.alloc_bypass
        );
        // Window-adaptivity footer: how often the sharded engine advanced,
        // how often it actually blocked, and how many α-cell edges it
        // crossed for free — the observable for the adaptive-lookahead work.
        let _ = writeln!(
            out,
            "-- windows: {} executed, avg width {}, {} wait(s), {} barrier(s) elided",
            s.windows_executed,
            fmt_secs(s.avg_window_width / 1e9),
            s.barriers_waited,
            s.barriers_elided
        );
        Some(out)
    }
}

/// Name + JSON args for the RTS-level event kinds.
fn rts_name_args(kind: &TraceEventKind) -> (&'static str, String) {
    match kind {
        TraceEventKind::LbBegin { strategy, objs } => {
            ("lb_begin", format!("\"strategy\":\"{strategy}\",\"objs\":{objs}"))
        }
        TraceEventKind::LbEnd { strategy, migrations, cost } => (
            "lb_end",
            format!(
                "\"strategy\":\"{strategy}\",\"migrations\":{migrations},\"cost_us\":{}",
                us(*cost)
            ),
        ),
        TraceEventKind::Migration { obj, from_pe, to_pe } => (
            "migration",
            format!("\"ix\":\"{:?}\",\"from_pe\":{from_pe},\"to_pe\":{to_pe}", obj.ix),
        ),
        TraceEventKind::CkptBegin { chares, bytes } => {
            ("ckpt_begin", format!("\"chares\":{chares},\"bytes\":{bytes}"))
        }
        TraceEventKind::CkptCommit => ("ckpt_commit", String::new()),
        TraceEventKind::CkptAbort => ("ckpt_abort", String::new()),
        TraceEventKind::NodeFail { first_pe, num_pes } => {
            ("node_fail", format!("\"first_pe\":{first_pe},\"num_pes\":{num_pes}"))
        }
        TraceEventKind::Rollback { to, chares } => (
            "rollback",
            format!("\"to_us\":{},\"chares\":{chares}", us(*to)),
        ),
        TraceEventKind::Unrecoverable { lost } => ("unrecoverable", format!("\"lost\":{lost}")),
        TraceEventKind::DvfsFreq { chip, freq_factor } => (
            "dvfs_freq",
            format!("\"chip\":{chip},\"freq\":{freq_factor:.4}"),
        ),
        TraceEventKind::Reconfigure { from, to } => {
            ("reconfigure", format!("\"from\":{from},\"to\":{to}"))
        }
        TraceEventKind::PreemptWarning { first_pe, num_pes, deadline, proactive } => (
            "preempt_warning",
            format!(
                "\"first_pe\":{first_pe},\"num_pes\":{num_pes},\"deadline_us\":{},\"proactive\":{proactive}",
                us(*deadline)
            ),
        ),
        TraceEventKind::Evacuation { chares, first_pe, num_pes } => (
            "evacuation",
            format!("\"chares\":{chares},\"first_pe\":{first_pe},\"num_pes\":{num_pes}"),
        ),
        TraceEventKind::ElasticDecision { from, to, util } => (
            "elastic_decision",
            format!("\"from\":{from},\"to\":{to},\"util\":{util:.4}"),
        ),
        TraceEventKind::DegradedCapacity { have, floor } => {
            ("degraded", format!("\"have\":{have},\"floor\":{floor}"))
        }
        _ => ("event", String::new()),
    }
}

fn fmt_secs(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3}s")
    } else if v >= 1e-3 {
        format!("{:.3}ms", v * 1e3)
    } else {
        format!("{:.1}us", v * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let mut r = Ring::new(4);
        for i in 0..10u64 {
            r.push(TraceRecord {
                t: SimTime(i),
                track: 0,
                seq: i,
                kind: TraceEventKind::PeBusy,
            });
        }
        assert_eq!(r.buf.len(), 4);
        assert_eq!(r.dropped, 6);
        let kept: Vec<u64> = r.iter().map(|x| x.t.0).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "newest records are retained, in order");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = Ring::new(0);
        for i in 0..5u64 {
            r.push(TraceRecord {
                t: SimTime(i),
                track: 0,
                seq: i,
                kind: TraceEventKind::PeIdle,
            });
        }
        assert_eq!(r.buf.len(), 0);
        assert_eq!(r.dropped, 5);
    }

    #[test]
    fn util_timeline_folds_to_stay_bounded() {
        let mut u = UtilTimeline::new(SimTime::from_nanos(10), 4, 1, 4096);
        // Fill [0, 200) ns busy: needs 20 ten-ns bins, budget is 4 → folds.
        u.add(0, SimTime(0), SimTime(200));
        assert!(u.per_pe[0].len() <= 4, "bins={}", u.per_pe[0].len());
        assert_eq!(u.per_pe[0].iter().sum::<u64>(), 200, "busy ns conserved");
        assert!(u.bin_ns >= 50, "bin widened: {}", u.bin_ns);
    }

    #[test]
    fn util_timeline_splits_across_bins() {
        let mut u = UtilTimeline::new(SimTime::from_nanos(100), 64, 2, 4096);
        u.add(1, SimTime(50), SimTime(250));
        assert_eq!(u.per_pe[1], vec![50, 100, 50]);
        assert!(u.per_pe[0].is_empty());
    }

    #[test]
    fn util_timeline_aggregates_above_pe_cap() {
        // 8 PEs with a cap of 4 → one machine-wide row.
        let mut u = UtilTimeline::new(SimTime::from_nanos(100), 64, 8, 4);
        assert_eq!(u.per_pe.len(), 1);
        assert_eq!(u.agg_over, 8);
        u.add(3, SimTime(0), SimTime(100));
        u.add(7, SimTime(0), SimTime(100));
        // Both PEs' busy ns land in the single aggregate row.
        assert_eq!(u.per_pe[0], vec![200]);
    }

    #[test]
    fn entry_agg_tracks_extremes_and_histogram() {
        let mut a = EntryAgg::new();
        a.add(SimTime(100));
        a.add(SimTime(1000));
        a.add(SimTime(1));
        assert_eq!(a.count, 3);
        assert_eq!(a.total, SimTime(1101));
        assert_eq!(a.min, SimTime(1));
        assert_eq!(a.max, SimTime(1000));
        assert_eq!(a.hist.iter().sum::<u64>(), 3);
        assert_eq!(a.qhist.count(), 3);
        assert_eq!(a.qhist.quantile(0.5), LogHist::bucket_lo(LogHist::bucket_of(100)));
    }

    #[test]
    fn loghist_buckets_roundtrip_and_bound_error() {
        for v in [0u64, 1, 7, 8, 9, 100, 1023, 1024, 1 << 20, u64::MAX / 2] {
            let b = LogHist::bucket_of(v);
            let lo = LogHist::bucket_lo(b);
            assert_eq!(LogHist::bucket_of(lo), b, "bucket_lo lands in its own bucket (v={v})");
            assert!(lo <= v, "lower bound holds (v={v})");
            if v >= 8 {
                // Next bucket's lower bound is ≤ v·9/8 → relative error ≤ 1/8.
                let hi = LogHist::bucket_lo(b + 1);
                assert!(hi > v, "v={v} below next bucket");
                assert!(hi - lo <= lo / 8 + 1, "sub-bucket width bounded (v={v})");
            }
        }
    }

    #[test]
    fn loghist_quantiles_track_exact_order_statistics() {
        let mut h = LogHist::new();
        let mut samples: Vec<u64> = Vec::new();
        // Deterministic skewed stream: mostly small, a heavy tail.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = if x % 100 < 90 { x % 5_000 } else { x % 5_000_000 };
            h.add(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let est = h.quantile(q);
            assert_eq!(
                LogHist::bucket_of(est),
                LogHist::bucket_of(exact),
                "q={q}: estimate {est} shares the exact sample's bucket ({exact})"
            );
        }
    }

    #[test]
    fn comm_matrix_caps_fanout_and_sheds() {
        let mut m = CommMatrix::new(8, 2);
        m.add(0, 1, 100);
        m.add(0, 2, 50);
        m.add(0, 3, 999); // beyond cap → shed
        m.add(0, 1, 25); // existing pair still accumulates
        m.add(1, 3, 10); // different source has its own budget
        assert_eq!(m.get(0, 1), (125, 2));
        assert_eq!(m.get(0, 3), (0, 0));
        assert_eq!(m.get(1, 3), (10, 1));
        assert_eq!((m.shed_msgs, m.shed_bytes), (1, 999));
        let top = m.top();
        assert_eq!(top[0], (0, 1, 125, 2));
    }

    #[test]
    fn ledger_compaction_keeps_newest_and_counts_shed() {
        let mut tr = Tracer::new(
            TraceConfig {
                ledger_capacity: 4,
                ..TraceConfig::default()
            },
            1,
        );
        for i in 0..20u64 {
            tr.ledger_line(SimTime(i), format!("line {i}"));
        }
        let kept = tr.ledger();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].1, "line 16");
        assert_eq!(kept[3].1, "line 19");
        assert_eq!(tr.ledger_shed(), 16);
        assert!(tr.ledger.len() < 8, "buffer stays within 2x cap");
    }

    #[test]
    fn critical_path_tracks_a_serial_chain() {
        use crate::index::Ix;
        let mut tr = Tracer::new(TraceConfig::default().with_critical_path(), 4);
        let obj = |pe: u32| ObjId {
            array: ArrayId(0),
            ix: Ix::i1(pe as i64),
        };
        // A 3-hop serial chain across PEs: each exec starts when the prior
        // one's message lands.
        let mut msg: Option<Box<CpMsg>> = None;
        let mut t = SimTime(0);
        for hop in 0..3u32 {
            let pe = hop as usize;
            let dur = SimTime(100);
            let node = tr.cp_on_exec(pe, obj(hop), EntryKind::Message, t, dur, msg).unwrap();
            let send_at = t + dur;
            msg = Some(Box::new(CpMsg {
                cp_end: node.end_ns,
                from: Some(node),
                sent_at: send_at,
            }));
            t = send_at + SimTime(50); // 50 ns wire latency per hop
        }
        let cp = tr.critical_path().unwrap();
        // 3 execs of 100 ns + 2 hops of 50 ns latency = 400 ns.
        assert_eq!(cp.segments, 3);
        assert!((cp.len_s - 400e-9).abs() < 1e-15, "len {}", cp.len_s);
        assert!((cp.msg_wait_s - 100e-9).abs() < 1e-15);
        assert_eq!(cp.by_pe.len(), 3);
    }

    #[test]
    fn critical_path_long_chain_drop_does_not_overflow() {
        use crate::index::Ix;
        let mut tr = Tracer::new(TraceConfig::default().with_critical_path(), 1);
        let obj = ObjId {
            array: ArrayId(0),
            ix: Ix::i1(0),
        };
        for i in 0..200_000u64 {
            tr.cp_on_exec(0, obj, EntryKind::Message, SimTime(i * 10), SimTime(5), None);
        }
        let cp = tr.critical_path().unwrap();
        assert_eq!(cp.segments, 200_000);
        drop(tr); // iterative Drop must not blow the stack
    }

    #[test]
    fn microsecond_formatting_is_exact() {
        assert_eq!(us(SimTime(1_234_567)), "1234.567");
        assert_eq!(us(SimTime(999)), "0.999");
        assert_eq!(us(SimTime(1_000)), "1.000");
    }
}
