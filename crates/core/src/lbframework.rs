//! The measurement-based load-balancing framework (§III-A).
//!
//! The runtime instruments every chare's execution time automatically (the
//! "recent past predicts the near future" principle). At an AtSync point the
//! framework snapshots those measurements into [`LbStats`], hands them to a
//! pluggable [`Strategy`], and enacts the returned migrations. Strategies
//! themselves live in the `charm-lb` crate.

use crate::array::{ArrayId, ObjId};
use crate::index::Ix;

/// Load statistics for one migratable object.
#[derive(Debug, Clone)]
pub struct ObjStat {
    /// The object's identity.
    pub id: ObjId,
    /// PE the object currently lives on.
    pub pe: usize,
    /// Measured work (seconds of reference-speed compute) since the last
    /// collection; falls back to the chare's `load_hint` scaled into the
    /// average when nothing was measured yet.
    pub load: f64,
    /// Bytes sent by this object since the last collection.
    pub bytes_sent: u64,
    /// Messages sent by this object since the last collection.
    pub msgs_sent: u64,
}

/// Aggregate statistics handed to a [`Strategy`].
#[derive(Debug, Clone)]
pub struct LbStats {
    /// Number of PEs available for placement.
    pub num_pes: usize,
    /// Effective speed of each PE (static heterogeneity × DVFS frequency ×
    /// current interference). The paper's thermal scheme scales loads by
    /// frequency exactly this way (§III-C).
    pub pe_speed: Vec<f64>,
    /// Non-migratable background load per PE, in seconds.
    pub bg_load: Vec<f64>,
    /// Per-object measurements, in a deterministic order.
    pub objs: Vec<ObjStat>,
    /// Object-to-object communication volumes (bytes), when recorded.
    pub comm: Vec<(ObjId, ObjId, u64)>,
}

impl LbStats {
    /// Total measured object load, seconds.
    pub fn total_load(&self) -> f64 {
        self.objs.iter().map(|o| o.load).sum()
    }

    /// Current load per PE implied by the object placement (obj loads ÷ PE
    /// speed + background).
    pub fn pe_loads(&self) -> Vec<f64> {
        let mut loads = self.bg_load.clone();
        loads.resize(self.num_pes, 0.0);
        for o in &self.objs {
            if o.pe < self.num_pes {
                loads[o.pe] += o.load / self.pe_speed[o.pe].max(1e-12);
            }
        }
        loads
    }

    /// Max/avg PE load ratio — 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        let loads = self.pe_loads();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let avg = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
        if avg <= 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

/// A load-balancing strategy: given stats, produce a new PE for each object
/// (`None` = stay put). Implementations must not return PEs ≥
/// `stats.num_pes`.
pub trait Strategy: Send {
    /// Human-readable name for logs and reports.
    fn name(&self) -> &'static str;

    /// Compute the new assignment. `out[i]` corresponds to `stats.objs[i]`.
    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>>;

    /// Is this a fully distributed strategy (affects the modeled cost of
    /// stats collection: centralized strategies pay a gather/scatter,
    /// distributed ones pay gossip rounds)?
    fn is_distributed(&self) -> bool {
        false
    }

    /// Estimated decision cost in work-units, charged to the virtual clock.
    fn decision_cost(&self, num_objs: usize, num_pes: usize) -> f64 {
        // n log n comparisons at ~10 flops each, by default.
        let n = num_objs.max(2) as f64;
        let _ = num_pes;
        10.0 * n * n.log2()
    }
}

/// A strategy that never moves anything — the "NoLB" baseline in the
/// paper's figures.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullLb;

impl Strategy for NullLb {
    fn name(&self) -> &'static str {
        "NullLB"
    }
    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
        vec![None; stats.objs.len()]
    }
    fn decision_cost(&self, _num_objs: usize, _num_pes: usize) -> f64 {
        0.0
    }
}

/// The result of enacting one LB round (reported in the journal).
#[derive(Debug, Clone)]
pub struct LbRound {
    /// When the round completed (virtual time, seconds).
    pub at: f64,
    /// Strategy that ran.
    pub strategy: &'static str,
    /// Number of objects that migrated.
    pub migrations: usize,
    /// Imbalance (max/avg) measured before the round.
    pub imbalance_before: f64,
    /// Imbalance (max/avg) of the assignment the round enacted.
    pub imbalance_after: f64,
    /// Virtual seconds the round consumed (the "spike" in Figs. 5/16).
    pub cost_s: f64,
}

/// How LB stats collection is triggered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LbTrigger {
    /// Only when every AtSync element calls `at_sync` (application driven).
    AtSync,
    /// MetaLB (§III-A, paper ref 48): at AtSync points, balance only when the
    /// predicted benefit of rebalancing exceeds its cost.
    Adaptive {
        /// Minimum imbalance (max/avg) before balancing is considered.
        min_imbalance: f64,
    },
}

/// Helper shared by tests and strategies: greatest PE load divided by
/// average under a hypothetical assignment.
pub fn imbalance_of(assignment: &[usize], loads: &[f64], speeds: &[f64], num_pes: usize) -> f64 {
    let mut pe_load = vec![0.0; num_pes];
    for (&pe, &l) in assignment.iter().zip(loads) {
        pe_load[pe] += l / speeds[pe].max(1e-12);
    }
    let max = pe_load.iter().cloned().fold(0.0, f64::max);
    let avg = pe_load.iter().sum::<f64>() / num_pes.max(1) as f64;
    if avg <= 0.0 {
        1.0
    } else {
        max / avg
    }
}

/// Build a deterministic `LbStats` fixture (used by unit tests here and in
/// `charm-lb`).
pub fn synthetic_stats(num_pes: usize, loads: &[f64]) -> LbStats {
    let objs = loads
        .iter()
        .enumerate()
        .map(|(i, &load)| ObjStat {
            id: ObjId {
                array: ArrayId(0),
                ix: Ix::i1(i as i64),
            },
            pe: i % num_pes,
            load,
            bytes_sent: 0,
            msgs_sent: 0,
        })
        .collect();
    LbStats {
        num_pes,
        pe_speed: vec![1.0; num_pes],
        bg_load: vec![0.0; num_pes],
        objs,
        comm: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_loads_and_imbalance() {
        let stats = synthetic_stats(2, &[1.0, 1.0, 2.0, 0.0]);
        // pe0: objs 0,2 → 3.0 ; pe1: objs 1,3 → 1.0
        let loads = stats.pe_loads();
        assert_eq!(loads, vec![3.0, 1.0]);
        assert!((stats.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn speeds_scale_loads() {
        let mut stats = synthetic_stats(2, &[1.0, 1.0]);
        stats.pe_speed = vec![0.5, 1.0];
        let loads = stats.pe_loads();
        assert_eq!(loads, vec![2.0, 1.0]); // slow PE takes twice as long
    }

    #[test]
    fn null_lb_moves_nothing() {
        let stats = synthetic_stats(4, &[1.0; 8]);
        let mut lb = NullLb;
        let out = lb.assign(&stats);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|o| o.is_none()));
        assert_eq!(lb.decision_cost(8, 4), 0.0);
    }

    #[test]
    fn imbalance_of_helper() {
        let v = imbalance_of(&[0, 0, 1, 1], &[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0], 2);
        assert!((v - 1.0).abs() < 1e-12);
        let v = imbalance_of(&[0, 0, 0, 1], &[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0], 2);
        assert!((v - 1.5).abs() < 1e-12);
    }

    #[test]
    fn total_load_sums() {
        let stats = synthetic_stats(2, &[1.0, 2.0, 3.0]);
        assert!((stats.total_load() - 6.0).abs() < 1e-12);
    }
}
