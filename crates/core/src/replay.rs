//! Record/replay hooks — the runtime half of the `charm-replay` subsystem
//! (paper §V: Projections/BigSim-style tooling).
//!
//! Recording captures the *causal* structure of a run at the same dispatch
//! points the tracer instruments: one [`ExecRec`] per executed entry method
//! (which message it consumed, its PUP payload digest, how much work it
//! declared, what it sent), plus periodic PUP-based chare-state digests and
//! a final state digest. The log is complete enough to
//!
//! * **verify** a re-run digest-for-digest (`charm-replay`'s `verify`),
//! * **diff** a perturbed run's delivery order per chare (race hunting), and
//! * **re-simulate** the communication/computation DAG under a different
//!   [`MachineConfig`](charm_machine::MachineConfig) (what-if prediction).
//!
//! Everything here is inert unless [`RuntimeBuilder::record`] /
//! [`RuntimeBuilder::perturb`](crate::RuntimeBuilder::perturb) was called:
//! the per-message hooks reduce to a branch on `None`, exactly like tracing.

use crate::array::ObjId;
use crate::chare::{RedValue, SysEvent};
use charm_machine::SimTime;
use std::collections::{HashMap, HashSet};

/// Configuration for [`RuntimeBuilder::record`](crate::RuntimeBuilder::record).
#[derive(Debug, Clone, Default)]
pub struct ReplayConfig {
    /// Take a full chare-state digest point every this many executed entries
    /// (`None` = only the final state is digested). Periodic points make
    /// divergence *localization* possible, not just detection.
    pub digest_every: Option<u64>,
    /// Stop recording after this many executed entries (`None` = unbounded).
    /// Service-style workloads execute indefinitely, so an uncapped log
    /// grows without bound; a cap keeps the in-memory buffer fixed while
    /// [`RunSummary`](crate::RunSummary)'s `replay_shed_execs` /
    /// `replay_shed_sends` make the truncation visible. The recorded prefix
    /// is byte-identical to the same prefix of an uncapped recording; state
    /// points past the cap are suppressed (the final-state digest still
    /// reflects the true end of the run, so end-to-end `verify` only makes
    /// sense for uncapped logs).
    pub max_execs: Option<u64>,
}

impl ReplayConfig {
    /// Record with a state-digest point every `n` executed entries.
    pub fn with_digest_every(n: u64) -> Self {
        assert!(n > 0, "digest interval must be positive");
        ReplayConfig {
            digest_every: Some(n),
            ..Default::default()
        }
    }

    /// Record at most `n` executed entries (bounded service recording).
    pub fn with_max_execs(n: u64) -> Self {
        assert!(n > 0, "exec cap must be positive");
        ReplayConfig {
            max_execs: Some(n),
            ..Default::default()
        }
    }
}

/// Configuration for [`RuntimeBuilder::perturb`](crate::RuntimeBuilder::perturb):
/// seeded, causally-valid schedule perturbation. Only *extra delays* are
/// injected (never early deliveries), so every perturbed schedule is one the
/// real network could have produced; same-destination messages whose delays
/// overlap get reordered, which is exactly the race surface.
#[derive(Debug, Clone)]
pub struct PerturbConfig {
    /// Seed of the perturbation RNG (independent of the run seed).
    pub seed: u64,
    /// Probability that any one user-message delivery is delayed.
    pub prob: f64,
    /// Upper bound on the injected extra delay.
    pub max_extra: SimTime,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        PerturbConfig {
            seed: 1,
            prob: 0.25,
            max_extra: SimTime::from_micros(100),
        }
    }
}

impl PerturbConfig {
    /// A perturbation with the default intensity and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        PerturbConfig {
            seed,
            ..Default::default()
        }
    }
}

/// One recorded message send, attached to the execution that produced it
/// (or to [`ReplayLog::roots`] for host/RTS-injected messages).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SendRec {
    /// Runtime-wide message id (`Envelope::rec_id`).
    pub msg_id: u64,
    /// Wire size including the envelope.
    pub bytes: u64,
    /// PE the send was issued from.
    pub src_pe: u32,
    /// PE the delivery was scheduled to (post location-resolution).
    pub dst_pe: u32,
    /// Spanning-tree depth charged for collective deliveries (0 = plain
    /// point-to-point).
    pub tree_depth: u32,
    /// Control-message size of the home-PE location query round trip that
    /// preceded this send (0 = cache hit / local).
    pub rtt_bytes: u64,
}

charm_pup::impl_pup_struct!(SendRec {
    msg_id,
    bytes,
    src_pe,
    dst_pe,
    tree_depth,
    rtt_bytes
});

/// One executed entry method: the unit of the recorded DAG. `seq` is the
/// global execution order (the total order the deterministic scheduler
/// produced); `msg_id`/`sends` stitch executions into a causal graph.
#[derive(Debug, Clone, Default)]
pub struct ExecRec {
    /// Global execution index (0-based).
    pub seq: u64,
    /// PE it ran on.
    pub pe: u32,
    /// Virtual start time (ns).
    pub start_ns: u64,
    /// Modeled duration (ns): work + scheduling overhead + send costs.
    pub dur_ns: u64,
    /// The chare that ran.
    pub dst: ObjId,
    /// Index into [`ReplayLog::entry_names`].
    pub entry: u32,
    /// Id of the consumed message.
    pub msg_id: u64,
    /// The chare whose execution produced the consumed message (`None` for
    /// host sends and RTS-origin events).
    pub msg_src: Option<ObjId>,
    /// PUP digest of the consumed payload.
    pub msg_digest: u64,
    /// Wire size of the consumed message.
    pub msg_bytes: u64,
    /// Declared work in FLOP (speed-independent, so what-if can re-cost it).
    pub work: f64,
    /// Sends charged at remote-injection cost.
    pub n_remote: u32,
    /// Sends charged at local-delivery cost.
    pub n_local: u32,
    /// Messages this execution produced.
    pub sends: Vec<SendRec>,
}

charm_pup::impl_pup_struct!(ExecRec {
    seq,
    pe,
    start_ns,
    dur_ns,
    dst,
    entry,
    msg_id,
    msg_src,
    msg_digest,
    msg_bytes,
    work,
    n_remote,
    n_local,
    sends
});

/// A full chare-state digest at one point of the execution order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DigestPoint {
    /// Number of entries executed when the point was taken.
    pub seq: u64,
    /// Virtual time (ns).
    pub t_ns: u64,
    /// `(chare, PUP state digest)`, sorted by chare id.
    pub digests: Vec<(ObjId, u64)>,
}

charm_pup::impl_pup_struct!(DigestPoint { seq, t_ns, digests });

/// The complete record of one run. Produced by
/// [`Runtime::take_replay_log`](crate::Runtime::take_replay_log); persisted
/// and consumed by the `charm-replay` crate.
#[derive(Debug, Clone, Default)]
pub struct ReplayLog {
    /// Free-form application label (set by the recording driver).
    pub app: String,
    /// Machine preset name the run executed on.
    pub machine: String,
    /// PE count of the recording run.
    pub num_pes: u64,
    /// Run seed.
    pub seed: u64,
    /// Per-entry scheduling overhead (ns) of the recording run.
    pub sched_overhead_ns: u64,
    /// Spanning-tree arity of the recording run's collectives.
    pub collective_arity: u64,
    /// Reference FLOP/s of the recording machine.
    pub flops_per_sec: f64,
    /// Interned entry-method names (`ExecRec::entry` indexes this).
    pub entry_names: Vec<String>,
    /// Every executed entry, in execution order.
    pub execs: Vec<ExecRec>,
    /// Messages injected from outside any execution (host sends, RTS).
    pub roots: Vec<SendRec>,
    /// Periodic state-digest points (when configured).
    pub state_points: Vec<DigestPoint>,
    /// Digest of every chare's state at the end of the run.
    pub final_state: DigestPoint,
    /// Final virtual time (ns).
    pub end_ns: u64,
}

charm_pup::impl_pup_struct!(ReplayLog {
    app,
    machine,
    num_pes,
    seed,
    sched_overhead_ns,
    collective_arity,
    flops_per_sec,
    entry_names,
    execs,
    roots,
    state_points,
    final_state,
    end_ns
});

/// Digest a system event the way user payloads are digested — manually,
/// since `SysEvent` deliberately has no wire `Pup` (it never crosses a
/// checkpoint boundary). Folds the kind name plus every field.
pub(crate) fn sys_event_digest(ev: &SysEvent) -> u64 {
    let mut p = charm_pup::Puper::digester();
    let mut name = ev.kind_name().to_string();
    p.p(&mut name);
    match ev {
        SysEvent::Reduction { tag, value } => {
            p.p(&mut { *tag });
            red_value_digest(&mut p, value);
        }
        SysEvent::Migrated { from_pe } => p.p(&mut { *from_pe }),
        SysEvent::Restarted { failed_pe } => p.p(&mut { *failed_pe }),
        SysEvent::ResumeFromSync
        | SysEvent::QuiescenceDetected
        | SysEvent::CheckpointDone
        | SysEvent::Inserted => {}
    }
    p.digest()
}

fn red_value_digest(p: &mut charm_pup::Puper, v: &RedValue) {
    match v {
        RedValue::F64(x) => p.p(&mut { *x }),
        RedValue::I64(x) => p.p(&mut { *x }),
        RedValue::VecF64(xs) => p.p(&mut xs.clone()),
        RedValue::VecI64(xs) => p.p(&mut xs.clone()),
        RedValue::Bytes(xs) => p.p(&mut xs.clone()),
    }
}

/// Where a recorded message came from.
#[derive(Clone, Copy)]
enum Origin {
    /// Host send or RTS-origin event: becomes a [`ReplayLog::roots`] entry.
    External,
    /// Produced by the exec at this local index.
    Exec(usize),
    /// Produced on behalf of the exec with this scheduler dispatch key —
    /// used by the window-boundary reduction fold, which runs outside any
    /// exec (and, in parallel mode, possibly on a different shard than the
    /// producing exec). Resolved to an exec index when the log is built.
    Dispatch((u64, u64)),
}

/// The in-flight recording state. Lives inside the [`Runtime`](crate::Runtime)
/// behind an `Option`, tracer-style.
pub(crate) struct Recorder {
    pub(crate) cfg: ReplayConfig,
    entry_names: Vec<String>,
    entry_ix: HashMap<String, u32>,
    execs: Vec<ExecRec>,
    /// Scheduler dispatch key `(t_ns, heap_key)` of each exec, parallel to
    /// `execs`. This is the total order the windowed engine executes in —
    /// shard recorders are merged back into one log by sorting on it
    /// (heap keys are globally unique: each shard allocates from the slots
    /// it owns).
    dispatch_keys: Vec<(u64, u64)>,
    roots: Vec<SendRec>,
    state_points: Vec<DigestPoint>,
    /// msg id → producing exec. Lookup-only; never iterated.
    origin: HashMap<u64, Origin>,
    /// msg ids whose routing was already recorded (re-routes after limbo
    /// flushes and stale-cache forwards must not duplicate the send).
    routed: HashSet<u64>,
    /// Index of the exec currently applying its actions.
    current: Option<usize>,
    /// While set, new messages are attributed to the exec with this
    /// dispatch key instead of `current` (reduction-fold callbacks).
    pub(crate) origin_dispatch: Option<(u64, u64)>,
    /// Sends whose producing exec is identified by dispatch key; attached
    /// to the right exec (any shard's) when the log is finalized.
    deferred: Vec<((u64, u64), SendRec)>,
    /// Entry executions dropped past [`ReplayConfig::max_execs`].
    shed_execs: u64,
    /// Sends dropped because their producing exec was shed.
    shed_sends: u64,
}

impl Recorder {
    pub(crate) fn new(cfg: ReplayConfig) -> Self {
        Recorder {
            cfg,
            entry_names: Vec::new(),
            entry_ix: HashMap::new(),
            execs: Vec::new(),
            dispatch_keys: Vec::new(),
            roots: Vec::new(),
            state_points: Vec::new(),
            origin: HashMap::new(),
            routed: HashSet::new(),
            current: None,
            origin_dispatch: None,
            deferred: Vec::new(),
            shed_execs: 0,
            shed_sends: 0,
        }
    }

    /// Has the exec cap been reached?
    fn capped(&self) -> bool {
        self.cfg
            .max_execs
            .is_some_and(|m| self.execs.len() as u64 >= m)
    }

    /// Entry executions shed past the cap.
    pub(crate) fn shed_execs(&self) -> u64 {
        self.shed_execs
    }

    /// Sends shed because their producing exec was shed.
    pub(crate) fn shed_sends(&self) -> u64 {
        self.shed_sends
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.entry_ix.get(name) {
            return i;
        }
        let i = self.entry_names.len() as u32;
        self.entry_names.push(name.to_string());
        self.entry_ix.insert(name.to_string(), i);
        i
    }

    /// Number of entries executed so far.
    pub(crate) fn execs_len(&self) -> u64 {
        self.execs.len() as u64
    }

    /// A new message was created; remember which exec (if any) produced it.
    pub(crate) fn note_origin(&mut self, msg_id: u64) {
        let origin = match (self.origin_dispatch, self.current) {
            (Some(dk), _) => Origin::Dispatch(dk),
            (None, Some(i)) => Origin::Exec(i),
            // Past the exec cap nothing executes on the record, so a
            // message without a current exec has no recordable producer:
            // skip the origin table (it must not grow unbounded either)
            // and count the send when it routes.
            (None, None) if self.capped() => return,
            (None, None) => Origin::External,
        };
        self.origin.insert(msg_id, origin);
    }

    /// A message's delivery was scheduled (first routing only; later
    /// forwards and limbo re-flushes are extra hops of the same send).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_routed(
        &mut self,
        msg_id: u64,
        bytes: usize,
        src_pe: usize,
        dst_pe: usize,
        tree_depth: u64,
        rtt_bytes: usize,
    ) {
        if !self.routed.insert(msg_id) {
            return;
        }
        let rec = SendRec {
            msg_id,
            bytes: bytes as u64,
            src_pe: src_pe as u32,
            dst_pe: dst_pe as u32,
            tree_depth: tree_depth as u32,
            rtt_bytes: rtt_bytes as u64,
        };
        match self.origin.get(&msg_id).copied() {
            Some(Origin::Exec(i)) => self.execs[i].sends.push(rec),
            Some(Origin::Dispatch(dk)) => self.deferred.push((dk, rec)),
            // An untracked message under a capped recording was produced
            // past the cap: shed it (visibly) instead of growing `roots`.
            None if self.capped() => self.shed_sends += 1,
            Some(Origin::External) | None => self.roots.push(rec),
        }
    }

    /// An entry method is about to apply its actions; every send recorded
    /// until [`Recorder::end_exec`] belongs to it. Returns the exec seq.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn begin_exec(
        &mut self,
        pe: usize,
        start: SimTime,
        dur: SimTime,
        dst: ObjId,
        entry_name: &str,
        msg_id: u64,
        msg_src: Option<ObjId>,
        msg_digest: u64,
        msg_bytes: usize,
        work: f64,
        n_remote: u32,
        n_local: u32,
        dispatch: (u64, u64),
    ) {
        if self.capped() {
            self.shed_execs += 1;
            self.current = None;
            return;
        }
        let entry = self.intern(entry_name);
        let seq = self.execs.len() as u64;
        self.dispatch_keys.push(dispatch);
        self.execs.push(ExecRec {
            seq,
            pe: pe as u32,
            start_ns: start.0,
            dur_ns: dur.0,
            dst,
            entry,
            msg_id,
            msg_src,
            msg_digest,
            msg_bytes: msg_bytes as u64,
            work,
            n_remote,
            n_local,
            sends: Vec::new(),
        });
        self.current = Some(self.execs.len() - 1);
    }

    pub(crate) fn end_exec(&mut self) {
        self.current = None;
    }

    pub(crate) fn push_state_point(&mut self, t: SimTime, digests: Vec<(ObjId, u64)>) {
        let seq = self.execs.len() as u64;
        self.push_state_point_at(seq, t, digests);
    }

    /// A state-digest point with an explicit global seq — the parallel
    /// coordinator computes `seq` from the published per-shard exec counts
    /// (a shard-local `execs.len()` would be meaningless there).
    pub(crate) fn push_state_point_at(&mut self, seq: u64, t: SimTime, digests: Vec<(ObjId, u64)>) {
        // Past the cap the digest would describe state the log's exec
        // prefix cannot reproduce; keep the truncated log self-consistent.
        if self.capped() {
            return;
        }
        self.state_points.push(DigestPoint {
            seq,
            t_ns: t.0,
            digests,
        });
    }

    /// Fold shard recorders back into this (pre-split) recorder after a
    /// parallel run. Execs from all sources are re-sorted by scheduler
    /// dispatch key — exactly the order the sequential engine would have
    /// executed them in — then renumbered; entry names are re-interned,
    /// origin indices remapped, and roots/state points appended.
    pub(crate) fn absorb_shards(&mut self, shards: Vec<Recorder>) {
        let mut sources: Vec<Recorder> = Vec::with_capacity(shards.len() + 1);
        sources.push(std::mem::replace(self, Recorder::new(self.cfg.clone())));
        sources.extend(shards);

        // Global execution order: dispatch keys are unique across sources.
        let mut order: Vec<((u64, u64), usize, usize)> = Vec::new();
        for (si, src) in sources.iter().enumerate() {
            debug_assert_eq!(src.execs.len(), src.dispatch_keys.len());
            for (li, &dk) in src.dispatch_keys.iter().enumerate() {
                order.push((dk, si, li));
            }
        }
        order.sort_unstable_by_key(|&(dk, _, _)| dk);

        // Move execs out so they can be re-owned in sorted order.
        let mut pools: Vec<Vec<Option<ExecRec>>> = sources
            .iter_mut()
            .map(|s| s.execs.drain(..).map(Some).collect())
            .collect();
        let mut remap: Vec<Vec<usize>> = pools.iter().map(|p| vec![usize::MAX; p.len()]).collect();
        let entry_maps: Vec<Vec<String>> = sources
            .iter_mut()
            .map(|s| std::mem::take(&mut s.entry_names))
            .collect();

        for (gi, &(dk, si, li)) in order.iter().enumerate() {
            let mut e = pools[si][li].take().expect("exec consumed twice");
            e.seq = gi as u64;
            e.entry = self.intern(&entry_maps[si][e.entry as usize]);
            remap[si][li] = gi;
            self.dispatch_keys.push(dk);
            self.execs.push(e);
        }

        for (si, src) in sources.into_iter().enumerate() {
            for (msg_id, org) in src.origin {
                let org = match org {
                    Origin::Exec(li) => Origin::Exec(remap[si][li]),
                    other => other,
                };
                self.origin.insert(msg_id, org);
            }
            self.routed.extend(src.routed);
            self.roots.extend(src.roots);
            self.state_points.extend(src.state_points);
            self.shed_execs += src.shed_execs;
            self.shed_sends += src.shed_sends;
            // Only shard 0 folds reductions, so deferred sends arrive here
            // already in chronological fold order — same as sequential.
            self.deferred.extend(src.deferred);
        }
        self.state_points.sort_by_key(|p| (p.seq, p.t_ns));
        self.current = None;
    }

    /// Consume the recorder into a finished log.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn into_log(
        mut self,
        machine: String,
        num_pes: usize,
        seed: u64,
        sched_overhead: SimTime,
        collective_arity: u64,
        flops_per_sec: f64,
        end: SimTime,
        final_digests: Vec<(ObjId, u64)>,
    ) -> ReplayLog {
        // Attach dispatch-keyed sends (reduction-fold callbacks) to their
        // producing execs, in fold order.
        let by_key: HashMap<(u64, u64), usize> = self
            .dispatch_keys
            .iter()
            .enumerate()
            .map(|(i, &dk)| (dk, i))
            .collect();
        for (dk, rec) in self.deferred.drain(..) {
            match by_key.get(&dk) {
                Some(&i) => self.execs[i].sends.push(rec),
                None => self.roots.push(rec),
            }
        }
        let final_state = DigestPoint {
            seq: self.execs.len() as u64,
            t_ns: end.0,
            digests: final_digests,
        };
        ReplayLog {
            app: String::new(),
            machine,
            num_pes: num_pes as u64,
            seed,
            sched_overhead_ns: sched_overhead.0,
            collective_arity,
            flops_per_sec,
            entry_names: self.entry_names,
            execs: self.execs,
            roots: self.roots,
            state_points: self.state_points,
            final_state,
            end_ns: end.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ix;

    #[test]
    fn log_roundtrips_through_pup() {
        let mut log = ReplayLog {
            app: "t".into(),
            machine: "homog".into(),
            num_pes: 4,
            seed: 7,
            sched_overhead_ns: 250,
            collective_arity: 2,
            flops_per_sec: 1e9,
            entry_names: vec!["A::on_message".into()],
            execs: vec![ExecRec {
                seq: 0,
                pe: 1,
                start_ns: 10,
                dur_ns: 20,
                dst: ObjId {
                    array: crate::ArrayId(0),
                    ix: Ix::I1(3),
                },
                entry: 0,
                msg_id: 1,
                msg_src: None,
                msg_digest: 0xdead,
                msg_bytes: 48,
                work: 1000.0,
                n_remote: 1,
                n_local: 0,
                sends: vec![SendRec {
                    msg_id: 2,
                    bytes: 48,
                    src_pe: 1,
                    dst_pe: 2,
                    tree_depth: 0,
                    rtt_bytes: 40,
                }],
            }],
            roots: vec![SendRec::default()],
            state_points: vec![],
            final_state: DigestPoint {
                seq: 1,
                t_ns: 30,
                digests: vec![(
                    ObjId {
                        array: crate::ArrayId(0),
                        ix: Ix::I1(3),
                    },
                    9,
                )],
            },
            end_ns: 30,
        };
        let bytes = charm_pup::to_bytes(&mut log);
        let back: ReplayLog = charm_pup::from_bytes_exact(&bytes).unwrap();
        assert_eq!(back.execs.len(), 1);
        assert_eq!(back.execs[0].sends, log.execs[0].sends);
        assert_eq!(back.final_state, log.final_state);
        assert_eq!(back.entry_names, log.entry_names);
        assert_eq!(back.machine, "homog");
    }

    #[test]
    fn sys_digests_distinguish_events() {
        let a = sys_event_digest(&SysEvent::Reduction {
            tag: 1,
            value: RedValue::F64(1.0),
        });
        let b = sys_event_digest(&SysEvent::Reduction {
            tag: 1,
            value: RedValue::F64(2.0),
        });
        let c = sys_event_digest(&SysEvent::Inserted);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a,
            sys_event_digest(&SysEvent::Reduction {
                tag: 1,
                value: RedValue::F64(1.0),
            })
        );
    }
}
