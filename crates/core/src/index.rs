//! Chare-array indices.
//!
//! The paper (§II-D) lets an index "vary from being a one-dimensional to
//! six-dimensional structure or be a user defined name"; AMR3D (§IV-A)
//! additionally uses *bit-vector* indices encoding a position in an
//! oct-tree. [`Ix`] covers all of these.

use charm_pup::{Pup, Puper};

/// A chare-array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ix {
    /// One-dimensional index.
    I1(i64),
    /// Two-dimensional index.
    I2([i32; 2]),
    /// Three-dimensional index.
    I3([i32; 3]),
    /// Four-dimensional index.
    I4([i32; 4]),
    /// Six-dimensional index (LeanMD's pairwise `Computes`, §IV-B).
    I6([i32; 6]),
    /// Bit-vector index: a path in a tree, 3 bits per oct-tree level
    /// (AMR3D, §IV-A). `len` is the number of significant bits.
    Bits {
        /// The path bits, least-significant bits first.
        bits: u64,
        /// Number of significant bits (≤ 63).
        len: u8,
    },
    /// A user-defined name, pre-hashed to 64 bits.
    Named(u64),
}

impl Default for Ix {
    fn default() -> Self {
        Ix::I1(0)
    }
}

impl Ix {
    /// The root of a bit-vector (tree) index space.
    pub const ROOT: Ix = Ix::Bits { bits: 0, len: 0 };

    /// Construct a 1-D index.
    pub fn i1(a: i64) -> Ix {
        Ix::I1(a)
    }

    /// Construct a 2-D index.
    pub fn i2(a: i32, b: i32) -> Ix {
        Ix::I2([a, b])
    }

    /// Construct a 3-D index.
    pub fn i3(a: i32, b: i32, c: i32) -> Ix {
        Ix::I3([a, b, c])
    }

    /// Construct a 6-D index (e.g. a pair of 3-D cell coordinates).
    pub fn i6(a: [i32; 3], b: [i32; 3]) -> Ix {
        Ix::I6([a[0], a[1], a[2], b[0], b[1], b[2]])
    }

    /// Tree depth of a bit-vector index (levels of `bits_per_level` bits).
    ///
    /// # Panics
    /// Panics when called on a non-bitvector index.
    pub fn tree_depth(&self, bits_per_level: u8) -> u8 {
        match self {
            Ix::Bits { len, .. } => len / bits_per_level,
            other => panic!("tree_depth on non-bitvector index {other:?}"),
        }
    }

    /// Child `c` of a bit-vector index (appends `bits_per_level` bits).
    ///
    /// This is the "simple local operation on its own index" the paper uses
    /// in place of a replicated tree structure.
    pub fn tree_child(&self, c: u64, bits_per_level: u8) -> Ix {
        match self {
            Ix::Bits { bits, len } => {
                debug_assert!(c < (1 << bits_per_level));
                assert!(len + bits_per_level <= 63, "bitvector index overflow");
                Ix::Bits {
                    bits: bits | (c << len),
                    len: len + bits_per_level,
                }
            }
            other => panic!("tree_child on non-bitvector index {other:?}"),
        }
    }

    /// Parent of a bit-vector index; `None` at the root.
    pub fn tree_parent(&self, bits_per_level: u8) -> Option<Ix> {
        match self {
            Ix::Bits { bits, len } => {
                if *len < bits_per_level {
                    None
                } else {
                    let nl = len - bits_per_level;
                    Some(Ix::Bits {
                        bits: bits & ((1u64 << nl) - 1),
                        len: nl,
                    })
                }
            }
            other => panic!("tree_parent on non-bitvector index {other:?}"),
        }
    }

    /// The child slot (0..2^bits_per_level) this index occupies under its
    /// parent; `None` at the root.
    pub fn tree_child_slot(&self, bits_per_level: u8) -> Option<u64> {
        match self {
            Ix::Bits { bits, len } => {
                if *len < bits_per_level {
                    None
                } else {
                    Some((bits >> (len - bits_per_level)) & ((1 << bits_per_level) - 1))
                }
            }
            other => panic!("tree_child_slot on non-bitvector index {other:?}"),
        }
    }

    /// A stable 64-bit hash of the index (FNV-1a over the discriminant and
    /// payload), used for default home-PE assignment. Independent of the
    /// process's hash seeds so runs replay identically.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv::new();
        match self {
            Ix::I1(a) => {
                h.byte(1);
                h.u64(*a as u64);
            }
            Ix::I2(v) => {
                h.byte(2);
                for x in v {
                    h.u64(*x as u64);
                }
            }
            Ix::I3(v) => {
                h.byte(3);
                for x in v {
                    h.u64(*x as u64);
                }
            }
            Ix::I4(v) => {
                h.byte(4);
                for x in v {
                    h.u64(*x as u64);
                }
            }
            Ix::I6(v) => {
                h.byte(6);
                for x in v {
                    h.u64(*x as u64);
                }
            }
            Ix::Bits { bits, len } => {
                h.byte(7);
                h.u64(*bits);
                h.byte(*len);
            }
            Ix::Named(n) => {
                h.byte(8);
                h.u64(*n);
            }
        }
        h.finish()
    }

    /// Hash a string into a [`Ix::Named`] index.
    pub fn named(s: &str) -> Ix {
        let mut h = Fnv::new();
        for b in s.bytes() {
            h.byte(b);
        }
        Ix::Named(h.finish())
    }
}

/// Minimal FNV-1a hasher (stable across runs and platforms, unlike the
/// std `DefaultHasher` whose keys are unspecified).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

impl Pup for Ix {
    fn pup(&mut self, p: &mut Puper) {
        let mut tag: u8 = match self {
            Ix::I1(_) => 0,
            Ix::I2(_) => 1,
            Ix::I3(_) => 2,
            Ix::I4(_) => 3,
            Ix::I6(_) => 4,
            Ix::Bits { .. } => 5,
            Ix::Named(_) => 6,
        };
        p.p(&mut tag);
        if p.is_unpacking() {
            *self = match tag {
                0 => Ix::I1(0),
                1 => Ix::I2([0; 2]),
                2 => Ix::I3([0; 3]),
                3 => Ix::I4([0; 4]),
                4 => Ix::I6([0; 6]),
                5 => Ix::Bits { bits: 0, len: 0 },
                6 => Ix::Named(0),
                t => panic!("invalid Ix tag {t}"),
            };
        }
        match self {
            Ix::I1(a) => p.p(a),
            Ix::I2(v) => charm_pup::pup_array(p, v),
            Ix::I3(v) => charm_pup::pup_array(p, v),
            Ix::I4(v) => charm_pup::pup_array(p, v),
            Ix::I6(v) => charm_pup::pup_array(p, v),
            Ix::Bits { bits, len } => {
                p.p(bits);
                p.p(len);
            }
            Ix::Named(n) => p.p(n),
        }
    }
}

impl std::fmt::Display for Ix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ix::I1(a) => write!(f, "[{a}]"),
            Ix::I2(v) => write!(f, "[{},{}]", v[0], v[1]),
            Ix::I3(v) => write!(f, "[{},{},{}]", v[0], v[1], v[2]),
            Ix::I4(v) => write!(f, "[{},{},{},{}]", v[0], v[1], v[2], v[3]),
            Ix::I6(v) => write!(f, "[{},{},{};{},{},{}]", v[0], v[1], v[2], v[3], v[4], v[5]),
            Ix::Bits { bits, len } => write!(f, "[bits:{bits:b}/{len}]"),
            Ix::Named(n) => write!(f, "[name:{n:x}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_pup::roundtrip;

    #[test]
    fn pup_roundtrip_all_variants() {
        for mut ix in [
            Ix::i1(-7),
            Ix::i2(3, 4),
            Ix::i3(1, -2, 3),
            Ix::I4([9, 8, 7, 6]),
            Ix::i6([1, 2, 3], [4, 5, 6]),
            Ix::Bits {
                bits: 0b101_110,
                len: 6,
            },
            Ix::named("cells"),
        ] {
            assert_eq!(roundtrip(&mut ix), ix);
        }
    }

    #[test]
    fn tree_navigation() {
        let root = Ix::ROOT;
        assert_eq!(root.tree_depth(3), 0);
        assert_eq!(root.tree_parent(3), None);
        let c5 = root.tree_child(5, 3);
        assert_eq!(c5.tree_depth(3), 1);
        assert_eq!(c5.tree_parent(3), Some(root));
        assert_eq!(c5.tree_child_slot(3), Some(5));
        let gc2 = c5.tree_child(2, 3);
        assert_eq!(gc2.tree_depth(3), 2);
        assert_eq!(gc2.tree_parent(3), Some(c5));
        assert_eq!(gc2.tree_child_slot(3), Some(2));
    }

    #[test]
    fn tree_children_are_distinct() {
        let root = Ix::ROOT;
        let kids: Vec<Ix> = (0..8).map(|c| root.tree_child(c, 3)).collect();
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert_ne!(kids[i], kids[j]);
                }
            }
        }
    }

    #[test]
    fn stable_hash_is_stable_and_spread() {
        // Fixed expectations guard against accidental hash changes that
        // would silently re-map every home PE between versions.
        let h1 = Ix::i1(42).stable_hash();
        let h2 = Ix::i1(42).stable_hash();
        assert_eq!(h1, h2);
        // Different variants with the same numeric payload hash apart.
        assert_ne!(Ix::i1(1).stable_hash(), Ix::Named(1).stable_hash());
        // Reasonable spread over a bucket count.
        let mut buckets = [0u32; 16];
        for i in 0..1600 {
            buckets[(Ix::i1(i).stable_hash() % 16) as usize] += 1;
        }
        for b in buckets {
            assert!(b > 40, "home hashing badly skewed: {buckets:?}");
        }
    }

    #[test]
    fn named_indices_differ() {
        assert_ne!(Ix::named("a"), Ix::named("b"));
        assert_eq!(Ix::named("cells"), Ix::named("cells"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ix::i1(3).to_string(), "[3]");
        assert_eq!(Ix::i3(1, 2, 3).to_string(), "[1,2,3]");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn deep_bitvector_overflow_guard() {
        let mut ix = Ix::ROOT;
        for _ in 0..22 {
            ix = ix.tree_child(0, 3);
        }
    }
}
