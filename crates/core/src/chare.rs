//! The chare abstraction: migratable message-driven objects.

use crate::index::Ix;
use crate::Ctx;
use charm_pup::{Pup, Puper};

/// A migratable, message-driven object (paper §II-D).
///
/// A chare's entire behaviour is reacting to messages ([`Chare::on_message`])
/// and to runtime events ([`Chare::on_event`]); its entire state is what
/// [`Pup::pup`] traverses, which is what makes it migratable, checkpointable,
/// and recoverable. `Default` plays the role of Charm++'s migration
/// constructor: the runtime default-constructs and then unpacks.
///
/// `Send` (on the chare and its message type) is what lets the parallel
/// engine shard arrays across OS worker threads; chare state is plain data
/// (it must be, to be `Pup`), so the bound is structural rather than
/// restrictive.
pub trait Chare: Pup + Default + Send + 'static {
    /// The message type this chare's entry method accepts.
    type Msg: Pup + Send + 'static;

    /// The asynchronous entry method: invoked by the scheduler when a
    /// message for this chare is picked from the PE's queue.
    fn on_message(&mut self, msg: Self::Msg, ctx: &mut Ctx<'_>);

    /// Runtime-originated events (reduction results, load-balancing resume,
    /// migration notification, restart after failure…). Default: ignore.
    fn on_event(&mut self, event: SysEvent, ctx: &mut Ctx<'_>) {
        let _ = (event, ctx);
    }

    /// Optional load hint used by model-based balancers before any
    /// measurement exists. Measured load always takes precedence.
    fn load_hint(&self) -> f64 {
        1.0
    }
}

/// Events delivered by the runtime itself rather than by another chare.
#[derive(Debug, Clone)]
pub enum SysEvent {
    /// A reduction this chare is the target of has completed.
    Reduction {
        /// The tag passed to `contribute`.
        tag: u32,
        /// The combined value.
        value: RedValue,
    },
    /// All chares reached `at_sync`, the balancer ran, migrations are done —
    /// continue (Charm++'s `ResumeFromSync`).
    ResumeFromSync,
    /// This chare has just been unpacked on a new PE after migration.
    Migrated {
        /// PE the chare departed from.
        from_pe: usize,
    },
    /// Quiescence was detected after this chare requested detection.
    QuiescenceDetected,
    /// A checkpoint this chare participated in has completed.
    CheckpointDone,
    /// The system rolled back to the last in-memory checkpoint after a
    /// failure; chare state has been restored. Re-drive the application.
    Restarted {
        /// PE that failed and was replaced.
        failed_pe: usize,
    },
    /// Delivered on a fresh insertion (dynamic array growth) so the new
    /// element can initialize its communication.
    Inserted,
}

impl SysEvent {
    /// Stable variant name — the entry-method label tracing uses to
    /// distinguish `on_event` invocations in profiles and timelines.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SysEvent::Reduction { .. } => "Reduction",
            SysEvent::ResumeFromSync => "ResumeFromSync",
            SysEvent::Migrated { .. } => "Migrated",
            SysEvent::QuiescenceDetected => "QuiescenceDetected",
            SysEvent::CheckpointDone => "CheckpointDone",
            SysEvent::Restarted { .. } => "Restarted",
            SysEvent::Inserted => "Inserted",
        }
    }
}

/// Value carried through a reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum RedValue {
    /// A single floating-point number.
    F64(f64),
    /// A single integer.
    I64(i64),
    /// An element-wise combined vector of floats.
    VecF64(Vec<f64>),
    /// An element-wise combined vector of integers.
    VecI64(Vec<i64>),
    /// Concatenated opaque bytes (only valid with [`RedOp::Concat`]).
    Bytes(Vec<u8>),
}

impl RedValue {
    /// Extract an `F64`, panicking with context otherwise.
    pub fn as_f64(&self) -> f64 {
        match self {
            RedValue::F64(v) => *v,
            other => panic!("reduction value is {other:?}, expected F64"),
        }
    }

    /// Extract an `I64`, panicking with context otherwise.
    pub fn as_i64(&self) -> i64 {
        match self {
            RedValue::I64(v) => *v,
            other => panic!("reduction value is {other:?}, expected I64"),
        }
    }

    /// Extract a `VecF64`, panicking with context otherwise.
    pub fn as_vec_f64(&self) -> &[f64] {
        match self {
            RedValue::VecF64(v) => v,
            other => panic!("reduction value is {other:?}, expected VecF64"),
        }
    }

    /// Extract a `VecI64`, panicking with context otherwise.
    pub fn as_vec_i64(&self) -> &[i64] {
        match self {
            RedValue::VecI64(v) => v,
            other => panic!("reduction value is {other:?}, expected VecI64"),
        }
    }

    /// Approximate wire size in bytes, for network cost accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            RedValue::F64(_) | RedValue::I64(_) => 8,
            RedValue::VecF64(v) => 8 + v.len() * 8,
            RedValue::VecI64(v) => 8 + v.len() * 8,
            RedValue::Bytes(b) => 8 + b.len(),
        }
    }
}

/// How two reduction contributions combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Byte concatenation (gather); contribution order is the runtime's
    /// deterministic combine order, not index order.
    Concat,
}

impl RedOp {
    /// Combine `b` into `a`.
    ///
    /// # Panics
    /// Panics when the two values' shapes are incompatible (mixing scalar
    /// and vector contributions in one reduction is a program error).
    pub fn combine(self, a: RedValue, b: &RedValue) -> RedValue {
        use RedValue::*;
        match (self, a, b) {
            (RedOp::Sum, F64(x), F64(y)) => F64(x + y),
            (RedOp::Min, F64(x), F64(y)) => F64(x.min(*y)),
            (RedOp::Max, F64(x), F64(y)) => F64(x.max(*y)),
            (RedOp::Sum, I64(x), I64(y)) => I64(x + y),
            (RedOp::Min, I64(x), I64(y)) => I64(x.min(*y)),
            (RedOp::Max, I64(x), I64(y)) => I64(x.max(*y)),
            (op, VecF64(mut x), VecF64(y)) => {
                assert_eq!(x.len(), y.len(), "vector reduction length mismatch");
                for (xi, yi) in x.iter_mut().zip(y) {
                    *xi = match op {
                        RedOp::Sum => *xi + yi,
                        RedOp::Min => xi.min(*yi),
                        RedOp::Max => xi.max(*yi),
                        RedOp::Concat => panic!("Concat is not element-wise"),
                    };
                }
                VecF64(x)
            }
            (op, VecI64(mut x), VecI64(y)) => {
                assert_eq!(x.len(), y.len(), "vector reduction length mismatch");
                for (xi, yi) in x.iter_mut().zip(y) {
                    *xi = match op {
                        RedOp::Sum => *xi + yi,
                        RedOp::Min => (*xi).min(*yi),
                        RedOp::Max => (*xi).max(*yi),
                        RedOp::Concat => panic!("Concat is not element-wise"),
                    };
                }
                VecI64(x)
            }
            (RedOp::Concat, Bytes(mut x), Bytes(y)) => {
                x.extend_from_slice(y);
                Bytes(x)
            }
            (op, a, b) => panic!("incompatible reduction: {op:?} over {a:?} and {b:?}"),
        }
    }
}

/// Where a reduction result (or other runtime notification) is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callback {
    /// Deliver as a [`SysEvent`] to one chare.
    ToChare {
        /// Target array.
        array: crate::array::ArrayId,
        /// Target element.
        ix: Ix,
    },
    /// Deliver as a [`SysEvent`] to every element of an array.
    BroadcastTo {
        /// Target array.
        array: crate::array::ArrayId,
    },
    /// Discard the result.
    Ignore,
}

impl Pup for SysEvent {
    fn pup(&mut self, _p: &mut Puper) {
        // SysEvents are runtime-internal and never serialized; they are
        // regenerated after restarts rather than persisted.
        unreachable!("SysEvent is not serializable");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        use RedValue::*;
        assert_eq!(RedOp::Sum.combine(F64(1.5), &F64(2.0)), F64(3.5));
        assert_eq!(RedOp::Min.combine(F64(1.5), &F64(2.0)), F64(1.5));
        assert_eq!(RedOp::Max.combine(I64(1), &I64(2)), I64(2));
        assert_eq!(RedOp::Sum.combine(I64(-1), &I64(2)), I64(1));
    }

    #[test]
    fn vector_reductions() {
        use RedValue::*;
        let r = RedOp::Sum.combine(VecF64(vec![1.0, 2.0]), &VecF64(vec![10.0, 20.0]));
        assert_eq!(r, VecF64(vec![11.0, 22.0]));
        let r = RedOp::Min.combine(VecI64(vec![5, -3]), &VecI64(vec![2, 0]));
        assert_eq!(r, VecI64(vec![2, -3]));
    }

    #[test]
    fn concat_gathers_bytes() {
        use RedValue::*;
        let r = RedOp::Concat.combine(Bytes(vec![1, 2]), &Bytes(vec![3]));
        assert_eq!(r, Bytes(vec![1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_vectors_panic() {
        RedOp::Sum.combine(RedValue::VecF64(vec![1.0]), &RedValue::VecF64(vec![1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn mixed_shapes_panic() {
        RedOp::Sum.combine(RedValue::F64(1.0), &RedValue::I64(1));
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(RedValue::F64(0.0).wire_size(), 8);
        assert_eq!(RedValue::VecF64(vec![0.0; 4]).wire_size(), 40);
        assert_eq!(RedValue::Bytes(vec![0; 3]).wire_size(), 11);
    }

    #[test]
    fn accessors() {
        assert_eq!(RedValue::F64(2.5).as_f64(), 2.5);
        assert_eq!(RedValue::I64(-2).as_i64(), -2);
        assert_eq!(RedValue::VecF64(vec![1.0]).as_vec_f64(), &[1.0]);
        assert_eq!(RedValue::VecI64(vec![3]).as_vec_i64(), &[3]);
    }
}
