//! # charm-core — a migratable-objects parallel runtime in Rust
//!
//! A from-scratch implementation of the programming model and runtime
//! described in *"Parallel Programming with Migratable Objects: Charm++ in
//! Practice"* (SC 2014):
//!
//! * **Over-decomposition** (§II-A): work lives in many more
//!   [`Chare`]s than PEs, organized into indexed [`ArrayProxy`] collections
//!   with 1-D…6-D, bit-vector, and named indices.
//! * **Asynchronous message-driven execution** (§II-B): entry methods run
//!   when a message arrives; each PE's scheduler picks the
//!   highest-priority queued message; senders never block.
//! * **Migratability** (§II-C): every chare is serializable via the PUP
//!   framework (`charm-pup`), so the runtime can move it for load balance,
//!   checkpoint it, recover it after a failure, evacuate it on shrink.
//!
//! On top of these the runtime provides the paper's §III feature set:
//! measurement-based load balancing with pluggable strategies
//! ([`lbframework`]), double in-memory and disk checkpoint/restart ([`ft`]),
//! temperature-aware DVFS control ([`power`]), malleable shrink/expand
//! (`malleable`, via [`Runtime::schedule_reconfigure`]), an introspective
//! control-point tuner ([`ctrl`]), host-program interoperation
//! ([`interop`]), and a Projections-lite tracing & metrics subsystem
//! ([`trace`]) with Chrome-trace export and per-entry-method profiles.
//!
//! Execution happens on the deterministic machine simulator from
//! `charm-machine`; see that crate and DESIGN.md for the
//! hardware-substitution rationale.
//!
//! ## A minimal program
//!
//! ```
//! use charm_core::{Chare, Ctx, Runtime, Ix};
//! use charm_pup::{Pup, Puper};
//!
//! #[derive(Default)]
//! struct Hello { greeted: u64 }
//!
//! impl Pup for Hello {
//!     fn pup(&mut self, p: &mut Puper) { p.p(&mut self.greeted); }
//! }
//!
//! impl Chare for Hello {
//!     type Msg = String;
//!     fn on_message(&mut self, msg: String, ctx: &mut Ctx<'_>) {
//!         self.greeted += 1;
//!         ctx.work(1e6); // one megaflop of pretend work
//!         ctx.log_metric("greetings", self.greeted as f64);
//!         if msg == "stop" { ctx.exit(); }
//!     }
//! }
//!
//! let mut rt = Runtime::homogeneous(4);
//! let arr = rt.create_array::<Hello>("hello");
//! for i in 0..8 { rt.insert(arr, Ix::i1(i), Hello::default(), None); }
//! rt.send(arr, Ix::i1(3), "hi".to_string());
//! rt.run(); // message-driven: runs until the queue drains
//! rt.send(arr, Ix::i1(3), "stop".to_string());
//! let summary = rt.run();
//! assert_eq!(rt.metric("greetings").len(), 2);
//! assert!(summary.end_time.as_secs_f64() > 0.0);
//! ```

pub mod arena;
mod array;
mod chare;
pub mod ctrl;
mod ctx;
pub mod elastic;
pub mod ft;
mod index;
pub mod interop;
pub mod lbframework;
mod malleable;
mod parallel;
pub mod power;
pub mod replay;
mod runtime;
pub mod trace;
pub mod tsink;

pub use array::{ArrayId, ArrayProxy, ObjId, Payload};
pub use chare::{Callback, Chare, RedOp, RedValue, SysEvent};
pub use ctx::Ctx;
pub use elastic::{
    Degraded, ElasticConfig, ElasticObs, ElasticPolicy, HysteresisPolicy, NoopPolicy, RunOutcome,
};
pub use ft::{buddy_pe, DiskCkptInfo, MemCheckpoint, RestoreError};
pub use index::Ix;
pub use interop::CharmLib;
pub use lbframework::{LbRound, LbStats, LbTrigger, NullLb, ObjStat, Strategy};
pub use parallel::{default_threads, lookahead, set_default_threads};
pub use power::DvfsScheme;
pub use replay::{DigestPoint, ExecRec, PerturbConfig, ReplayConfig, ReplayLog, SendRec};
pub use runtime::{HomeMap, RunSummary, Runtime, RuntimeBuilder, Unrecoverable, ENVELOPE_BYTES};
pub use trace::{
    CriticalPath, EntryKind, EntrySlo, LogHist, NameTable, SinkStats, TraceConfig, TraceEventKind,
    TraceProfile, TraceRecord, TraceSink, Tracer,
};
pub use tsink::{ChromeStreamSink, CountingSink, CsvStreamSink};

// Re-exported so applications depending on charm-core alone can name the
// machine substrate.
pub use charm_machine as machine;
pub use charm_machine::{MachineConfig, SimTime};
