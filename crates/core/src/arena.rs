//! Arena allocation for the dispatch hot path.
//!
//! Every message the engine moves used to cost two global-allocator round
//! trips: one `Box<Envelope>` and one boxed user payload, allocated at the
//! send and freed at the execute. This module recycles both through a
//! thread-local pool of raw blocks keyed by layout, so steady-state dispatch
//! performs **zero** global-allocator calls (verified by the
//! counting-allocator test in `tests/steady_state_alloc.rs`).
//!
//! The pool hands out and takes back memory with exactly the layout `Box`
//! itself would use, so pooled and plain boxes are fully interchangeable: a
//! pooled box dropped normally is freed correctly by the global allocator,
//! and a plain box consumed by [`take_box`] is recycled correctly into the
//! pool. That property is what lets the `classic_hotpath` builder knob (and
//! any cold path that just drops an envelope) opt out per call site without
//! any global mode switch.
//!
//! Thread-local by design: the sharded engine's workers each warm their own
//! pool, and no synchronization ever appears on the dispatch path.

use std::alloc::Layout;
use std::cell::RefCell;
use std::ptr::NonNull;

/// Free blocks retained per layout class. Bounds worst-case retained memory
/// while comfortably covering the in-flight high-water mark of the bench
/// workloads (tens of thousands of envelopes).
const PER_CLASS_MAX: usize = 1 << 15;

struct ClassPool {
    layout: Layout,
    free: Vec<NonNull<u8>>,
}

#[derive(Default)]
struct Pool {
    /// Layout classes, found by linear scan: real workloads use a handful
    /// of distinct (size, align) pairs (envelope + a few message types), so
    /// a scan beats hashing.
    classes: Vec<ClassPool>,
    /// Bytes handed out from the pool instead of the allocator.
    bytes_served: u64,
    /// Allocator calls avoided: pool hits on allocation plus frees absorbed
    /// into the pool.
    bypass: u64,
}

impl Pool {
    fn class(&mut self, layout: Layout) -> &mut ClassPool {
        if let Some(i) = self.classes.iter().position(|c| c.layout == layout) {
            return &mut self.classes[i];
        }
        self.classes.push(ClassPool {
            layout,
            free: Vec::new(),
        });
        self.classes.last_mut().expect("just pushed")
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for c in &self.classes {
            for &p in &c.free {
                // SAFETY: every pointer in `free` was obtained from
                // `std::alloc::alloc` (directly or via a `Box` with this
                // exact layout) and is returned to the allocator once.
                unsafe { std::alloc::dealloc(p.as_ptr(), c.layout) };
            }
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Cumulative arena counters for the current thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes served from the pool instead of the global allocator.
    pub bytes_served: u64,
    /// Global-allocator calls avoided (pool hits + absorbed frees).
    pub bypass: u64,
}

/// Snapshot this thread's cumulative arena counters.
pub fn stats() -> ArenaStats {
    POOL.with(|p| {
        let p = p.borrow();
        ArenaStats {
            bytes_served: p.bytes_served,
            bypass: p.bypass,
        }
    })
}

/// `Box::new(val)`, but served from the thread-local pool when a block of
/// the right layout is free. The returned box is indistinguishable from a
/// plain one (identical layout), so it may be dropped normally anywhere.
pub(crate) fn alloc_box<T>(val: T) -> Box<T> {
    let layout = Layout::new::<T>();
    if layout.size() == 0 {
        return Box::new(val);
    }
    let recycled = POOL.with(|p| {
        let mut p = p.borrow_mut();
        let c = p.class(layout);
        let hit = c.free.pop();
        if hit.is_some() {
            p.bytes_served += layout.size() as u64;
            p.bypass += 1;
        }
        hit
    });
    match recycled {
        Some(ptr) => {
            let ptr = ptr.as_ptr() as *mut T;
            // SAFETY: `ptr` is a live, exclusively-owned block of exactly
            // `Layout::new::<T>()`; writing moves `val` in without reading
            // the (uninitialized) destination.
            unsafe {
                std::ptr::write(ptr, val);
                Box::from_raw(ptr)
            }
        }
        None => Box::new(val),
    }
}

/// Consume a box, returning its value by move and recycling its allocation
/// into the thread-local pool (instead of calling the global allocator's
/// free). Works on any box whose block layout is `Layout::new::<T>()` —
/// i.e. every `Box<T>` regardless of where it was allocated.
pub(crate) fn take_box<T>(b: Box<T>) -> T {
    let layout = Layout::new::<T>();
    if layout.size() == 0 {
        return *b;
    }
    let ptr = Box::into_raw(b);
    // SAFETY: `ptr` came from `Box::into_raw`, so it is valid for reads of
    // `T` and uniquely owned; after `read` the value lives on the stack and
    // the block is plain memory we may recycle.
    let val = unsafe { std::ptr::read(ptr) };
    let keep = POOL.with(|p| {
        let mut p = p.borrow_mut();
        let c = p.class(layout);
        if c.free.len() < PER_CLASS_MAX {
            c.free.push(NonNull::new(ptr as *mut u8).expect("box pointer"));
            p.bypass += 1;
            true
        } else {
            false
        }
    });
    if !keep {
        // SAFETY: the block is unowned raw memory of `layout`, allocated by
        // the global allocator (every `Box<T>` block is).
        unsafe { std::alloc::dealloc(ptr as *mut u8, layout) };
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_recycles_blocks() {
        let before = stats();
        let b1 = alloc_box([7u64; 8]);
        let addr1 = &*b1 as *const _ as usize;
        let v = take_box(b1);
        assert_eq!(v[0], 7);
        // Next allocation of the same layout reuses the recycled block.
        let b2 = alloc_box([9u64; 8]);
        assert_eq!(&*b2 as *const _ as usize, addr1);
        assert_eq!(b2[3], 9);
        let after = stats();
        assert!(after.bypass >= before.bypass + 2, "absorbed free + pool hit");
        assert!(after.bytes_served >= before.bytes_served + 64);
        drop(b2); // pooled box dropped normally: freed by the global allocator
    }

    #[test]
    fn zero_sized_types_are_plain_boxes() {
        let b = alloc_box(());
        take_box(b);
    }

    #[test]
    fn plain_boxes_can_be_taken() {
        let b = Box::new(1234u32);
        assert_eq!(take_box(b), 1234);
    }

    #[test]
    fn distinct_layouts_get_distinct_classes() {
        let a = alloc_box(1u8);
        let b = alloc_box(1u64);
        let pa = &*a as *const u8 as usize;
        take_box(a);
        let c = alloc_box(2u64);
        // The u8 block must not satisfy the u64 request.
        assert_ne!(&*c as *const u64 as usize, pa);
        take_box(b);
        take_box(c);
    }
}
