//! Introspective control system (§III-E).
//!
//! Applications and the runtime register *control points* — named integer
//! knobs with a range and an expected effect. The control system observes a
//! scalar objective (typically the step time) reported via
//! [`Ctx::report_objective`](crate::Ctx::report_objective) and adjusts the
//! knobs between observations with a hill-climbing search, reproducing the
//! pipelined-ping tuning experiment of Fig. 6.

use std::collections::HashMap;

/// A registered tunable parameter.
#[derive(Debug, Clone)]
pub struct ControlPoint {
    /// Unique name, e.g. `"pipeline_messages"` or `"stencil_block"`.
    pub name: String,
    /// Smallest admissible value.
    pub min: i64,
    /// Largest admissible value.
    pub max: i64,
    /// Current value.
    pub value: i64,
}

/// Read-only snapshot of control-point values, visible to entry methods.
#[derive(Debug, Clone, Default)]
pub struct ControlValues {
    values: HashMap<String, i64>,
}

impl ControlValues {
    /// Value of a control point, if registered.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.values.get(name).copied()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Probing in `dir`; `tried_reverse` records whether the other
    /// direction has already failed from the current best.
    Exploring { dir: i64, tried_reverse: bool },
    /// Search converged; hold the best value.
    Settled,
}

#[derive(Debug, Clone)]
struct PointState {
    best_value: i64,
    best_obj: f64,
    step: i64,
    phase: Phase,
}

/// The introspective tuner: one hill climb per control point, tuned one
/// point at a time (round-robin on settle).
#[derive(Debug, Default)]
pub struct ControlRegistry {
    points: Vec<ControlPoint>,
    states: Vec<Option<PointState>>,
    active: usize,
    /// Relative improvement required to accept a new best (noise guard).
    epsilon: f64,
    history: Vec<(f64, Vec<i64>)>,
}

impl ControlRegistry {
    /// An empty registry with a 2 % improvement threshold.
    pub fn new() -> Self {
        ControlRegistry {
            points: Vec::new(),
            states: Vec::new(),
            active: 0,
            epsilon: 0.02,
            history: Vec::new(),
        }
    }

    /// Register a control point with an initial value.
    ///
    /// # Panics
    /// Panics on duplicate names or an empty/inverted range.
    pub fn register(&mut self, name: &str, min: i64, max: i64, initial: i64) {
        assert!(min <= max, "control point '{name}': empty range");
        assert!(
            (min..=max).contains(&initial),
            "control point '{name}': initial {initial} outside [{min}, {max}]"
        );
        assert!(
            self.points.iter().all(|p| p.name != name),
            "control point '{name}' registered twice"
        );
        self.points.push(ControlPoint {
            name: name.to_string(),
            min,
            max,
            value: initial,
        });
        self.states.push(None);
    }

    /// Current values as a snapshot for `Ctx`.
    pub fn snapshot(&self) -> ControlValues {
        ControlValues {
            values: self
                .points
                .iter()
                .map(|p| (p.name.clone(), p.value))
                .collect(),
        }
    }

    /// Current value of one point.
    pub fn value(&self, name: &str) -> Option<i64> {
        self.points.iter().find(|p| p.name == name).map(|p| p.value)
    }

    /// Number of registered points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The (objective, values) observations so far.
    pub fn history(&self) -> &[(f64, Vec<i64>)] {
        &self.history
    }

    /// True when every control point's search has converged.
    pub fn all_settled(&self) -> bool {
        !self.points.is_empty()
            && self
                .states
                .iter()
                .all(|s| matches!(s, Some(st) if st.phase == Phase::Settled))
    }

    /// Feed one objective observation (smaller is better) taken with the
    /// *current* values; the tuner may adjust one control point for the
    /// next observation period.
    pub fn observe(&mut self, objective: f64) {
        self.history
            .push((objective, self.points.iter().map(|p| p.value).collect()));
        if self.points.is_empty() {
            return;
        }
        if self.all_settled() {
            return;
        }
        // Skip settled points.
        while matches!(&self.states[self.active], Some(st) if st.phase == Phase::Settled) {
            self.active = (self.active + 1) % self.points.len();
        }
        let idx = self.active;
        let (min, max) = (self.points[idx].min, self.points[idx].max);
        let cur = self.points[idx].value;

        let st = self.states[idx].get_or_insert(PointState {
            best_value: cur,
            best_obj: objective,
            step: 1,
            phase: Phase::Exploring {
                dir: 1,
                tried_reverse: false,
            },
        });

        let improved = objective < st.best_obj * (1.0 - self.epsilon);
        if improved {
            st.best_obj = objective;
            st.best_value = cur;
        } else if objective < st.best_obj {
            // Small improvement: keep as best but don't accelerate.
            st.best_obj = objective;
            st.best_value = cur;
        }

        match st.phase {
            Phase::Settled => {}
            Phase::Exploring { dir, tried_reverse } => {
                if improved || cur == st.best_value {
                    // Keep moving in the same direction, growing the step.
                    st.step = (st.step * 2).min((max - min).max(1));
                    let next = (cur + dir * st.step).clamp(min, max);
                    if next == cur {
                        // Hit the boundary: try the other side or settle.
                        if tried_reverse {
                            st.phase = Phase::Settled;
                        } else {
                            st.phase = Phase::Exploring {
                                dir: -dir,
                                tried_reverse: true,
                            };
                            st.step = 1;
                            let v = (st.best_value - dir).clamp(min, max);
                            self.points[idx].value = v;
                            return;
                        }
                    } else {
                        self.points[idx].value = next;
                        return;
                    }
                } else {
                    // Worse than best: back off.
                    if !tried_reverse {
                        st.phase = Phase::Exploring {
                            dir: -dir,
                            tried_reverse: true,
                        };
                        st.step = 1;
                        let v = (st.best_value - dir).clamp(min, max);
                        if v != cur {
                            self.points[idx].value = v;
                            return;
                        }
                        st.phase = Phase::Settled;
                    } else {
                        st.phase = Phase::Settled;
                    }
                }
                if st.phase == Phase::Settled {
                    self.points[idx].value = st.best_value;
                    self.active = (self.active + 1) % self.points.len();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convex objective with minimum at v = 20.
    fn objective(v: i64) -> f64 {
        let d = (v - 20) as f64;
        1.0 + d * d * 0.01
    }

    #[test]
    fn hill_climb_finds_minimum_region() {
        let mut reg = ControlRegistry::new();
        reg.register("pipeline", 1, 64, 2);
        for _ in 0..60 {
            let v = reg.value("pipeline").unwrap();
            reg.observe(objective(v));
            if reg.all_settled() {
                break;
            }
        }
        let v = reg.value("pipeline").unwrap();
        assert!(
            (8..=34).contains(&v),
            "settled far from optimum 20: {v} (history: {:?})",
            reg.history().len()
        );
        // The settled objective must beat the starting objective decisively.
        assert!(objective(v) < objective(2) * 0.5);
    }

    #[test]
    fn settles_eventually() {
        let mut reg = ControlRegistry::new();
        reg.register("k", 1, 100, 50);
        for _ in 0..200 {
            let v = reg.value("k").unwrap();
            reg.observe(objective(v));
        }
        assert!(reg.all_settled());
    }

    #[test]
    fn respects_bounds() {
        let mut reg = ControlRegistry::new();
        reg.register("k", 4, 8, 6);
        for _ in 0..50 {
            let v = reg.value("k").unwrap();
            assert!((4..=8).contains(&v));
            reg.observe(1.0 / v as f64); // favors larger v
        }
        assert_eq!(reg.value("k").unwrap(), 8);
    }

    #[test]
    fn snapshot_reflects_values() {
        let mut reg = ControlRegistry::new();
        reg.register("a", 0, 10, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.get("a"), Some(3));
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = ControlRegistry::new();
        reg.register("a", 0, 1, 0);
        reg.register("a", 0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_initial_panics() {
        let mut reg = ControlRegistry::new();
        reg.register("a", 0, 1, 5);
    }

    #[test]
    fn history_records_observations() {
        let mut reg = ControlRegistry::new();
        reg.register("a", 1, 4, 1);
        reg.observe(5.0);
        reg.observe(4.0);
        assert_eq!(reg.history().len(), 2);
        assert_eq!(reg.history()[0].0, 5.0);
    }
}
