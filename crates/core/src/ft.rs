//! Checkpoint/restart and fault tolerance (§III-B).
//!
//! Two mechanisms, both built on the PUP framework:
//!
//! * **Double in-memory checkpoint** (`CkStartMemCheckpoint`): every chare is
//!   packed; the bytes are kept in the local PE's memory and mirrored on a
//!   *buddy* PE. When an injected failure kills a PE, the whole application
//!   rolls back: all chare state is restored from the checkpoint (the failed
//!   PE's chares come from their buddy copies), message state is discarded,
//!   and every chare receives [`SysEvent::Restarted`] to re-drive execution.
//! * **Disk checkpoint** (`CkStartCheckpoint` + `+restart`): chare state is
//!   written to real files and can be restored into a *new* runtime with a
//!   *different* PE count — split execution, exactly as the paper describes.

use crate::array::ObjId;
use crate::chare::{Callback, SysEvent};
use crate::runtime::{Ev, Runtime, ENVELOPE_BYTES};
use charm_machine::SimTime;
use std::collections::HashMap;

use std::path::Path;

/// Number of barrier phases in the restart protocol. The paper observes
/// restart time *growing* with PE count "due to the effect of barriers";
/// these are those barriers.
const RESTART_BARRIERS: u64 = 6;

/// An in-memory snapshot of the entire application.
pub struct MemCheckpoint {
    /// Packed state of every chare, keyed by identity.
    pub(crate) bytes: HashMap<ObjId, Vec<u8>>,
    /// PE each chare lived on at checkpoint time.
    pub(crate) placement: HashMap<ObjId, usize>,
    /// Virtual time the checkpoint was taken.
    pub(crate) taken_at: SimTime,
    /// Per-PE checkpoint volume (drives the buddy-transfer cost model).
    pub(crate) per_pe_bytes: Vec<usize>,
}

impl MemCheckpoint {
    /// Total bytes across all chares.
    pub fn total_bytes(&self) -> usize {
        self.bytes.values().map(|b| b.len()).sum()
    }

    /// Number of chares captured.
    pub fn num_chares(&self) -> usize {
        self.bytes.len()
    }

    /// When the checkpoint was taken.
    pub fn taken_at(&self) -> SimTime {
        self.taken_at
    }
}

/// Buddy of a PE in the double in-memory scheme: the PE half the machine
/// away, so a node failure never takes out both copies.
pub(crate) fn buddy_pe(pe: usize, num_pes: usize) -> usize {
    (pe + num_pes / 2) % num_pes
}

impl Runtime {
    /// Take the double in-memory checkpoint now. Called from
    /// [`Ctx::start_mem_checkpoint`](crate::Ctx::start_mem_checkpoint)
    /// action application.
    pub(crate) fn start_mem_checkpoint(&mut self, cb: Callback, at: SimTime) {
        let mut bytes = HashMap::new();
        let mut placement = HashMap::new();
        let mut per_pe = vec![0usize; self.machine.num_pes];
        for s in self.stores.iter_mut() {
            let id = s.id();
            for ix in s.indices() {
                let pe = s.element_pe(&ix).expect("listed element");
                let b = s.pack_element(&ix).expect("listed element");
                per_pe[pe] += b.len();
                let obj = ObjId { array: id, ix };
                placement.insert(obj, pe);
                bytes.insert(obj, b);
            }
        }

        // Cost: each PE streams its checkpoint to its buddy concurrently
        // (max over PEs), plus one barrier to agree the checkpoint is
        // complete. Checkpoint time *decreases* with PE count because the
        // per-PE volume shrinks (paper Fig. 8-right, Fig. 10).
        let max_bytes = per_pe.iter().copied().max().unwrap_or(0);
        let transfer = if self.live_pes > 1 {
            self.net.delay(0, 1, max_bytes + ENVELOPE_BYTES)
        } else {
            SimTime::ZERO
        };
        let barrier = self.barrier_cost();
        let total = transfer + barrier;

        self.mem_ckpt = Some(MemCheckpoint {
            bytes,
            placement,
            taken_at: at,
            per_pe_bytes: per_pe,
        });

        let done = at + total;
        self.block_all_pes(done);
        self.metrics
            .entry("ckpt_time_s".into())
            .or_default()
            .push((at.as_secs_f64(), total.as_secs_f64()));
        self.deliver_callback(cb, SysEvent::CheckpointDone, done);
    }

    /// Cost of one spanning-tree barrier over the live PEs.
    pub(crate) fn barrier_cost(&mut self) -> SimTime {
        let depth = self.tree_depth();
        let hop = self.net.delay(0, 1.min(self.live_pes - 1), ENVELOPE_BYTES);
        SimTime(hop.0 * depth)
    }

    /// Block every live PE from starting new work until `until`, and make
    /// sure idle PEs with queued work wake up then.
    pub(crate) fn block_all_pes(&mut self, until: SimTime) {
        for pe in 0..self.live_pes {
            self.pes[pe].blocked_until = self.pes[pe].blocked_until.max(until);
            self.events.push(until, Ev::PeRetry { pe });
        }
    }

    /// Handle an injected node failure: roll the application back to the
    /// last in-memory checkpoint (§III-B, [7]).
    pub(crate) fn on_node_failure(&mut self, pe: usize) {
        if pe >= self.pes.len() || !self.pes[pe].alive {
            return;
        }
        let Some(ckpt) = self.mem_ckpt.take() else {
            // No checkpoint: the process and everything on it is simply
            // lost; messages to it vanish. (The paper always checkpoints
            // before injecting failures.)
            self.pes[pe].alive = false;
            self.queued -= self.pes[pe].pending.len() as u64;
            self.pes[pe].pending.clear();
            if self.pes[pe].busy {
                self.pes[pe].busy = false;
                self.busy_pes -= 1;
            }
            self.metrics
                .entry("unrecovered_failures".into())
                .or_default()
                .push((self.now.as_secs_f64(), pe as f64));
            return;
        };

        // ---- rollback: discard all execution/message state -----------------
        self.purge_volatile_events();
        for p in self.pes.iter_mut() {
            p.pending.clear();
            p.busy = false;
            p.current = None;
            p.blocked_until = SimTime::ZERO;
            p.alive = true; // the crashed process is replaced by a fresh one
        }
        self.queued = 0;
        self.inflight = 0;
        self.busy_pes = 0;
        self.limbo.clear();
        self.reductions.clear();
        self.qd = None;
        self.at_sync_seen = 0;
        for c in self.loc_cache.iter_mut() {
            c.clear();
        }

        // ---- restore chare state from the checkpoint ------------------------
        for s in self.stores.iter_mut() {
            s.clear();
        }
        for (obj, bytes) in &ckpt.bytes {
            let pe = ckpt.placement[obj];
            self.stores[obj.array.0 as usize].unpack_insert(obj.ix, pe, bytes);
        }

        // ---- cost model ------------------------------------------------------
        // The buddy streams the dead PE's checkpoint to the replacement;
        // every PE then restores locally; several barriers synchronize the
        // protocol (this is the term that grows with P — Fig. 10 restart).
        let failed_bytes = ckpt.per_pe_bytes.get(pe).copied().unwrap_or(0);
        let resend = if self.live_pes > 1 {
            self.net.delay(buddy_pe(pe, self.live_pes), pe, failed_bytes + ENVELOPE_BYTES)
        } else {
            SimTime::ZERO
        };
        let barriers = SimTime(self.barrier_cost().0 * RESTART_BARRIERS);
        let total = resend + barriers;
        let done = self.now + total;
        self.block_all_pes(done);

        self.metrics
            .entry("restart_time_s".into())
            .or_default()
            .push((self.now.as_secs_f64(), total.as_secs_f64()));
        self.metrics
            .entry("failures_recovered".into())
            .or_default()
            .push((self.now.as_secs_f64(), pe as f64));

        // Keep the checkpoint for further failures.
        self.mem_ckpt = Some(ckpt);

        // Tell everyone to resume from checkpointed state.
        let arrays: Vec<_> = self.stores.iter().map(|s| s.id()).collect();
        for array in arrays {
            for ix in self.stores[array.0 as usize].indices() {
                self.deliver_sys(
                    ObjId { array, ix },
                    SysEvent::Restarted { failed_pe: pe },
                    done,
                );
            }
        }
    }

    /// Drop Deliver/PeFree/PeRetry/MigrateArrive events (message & execution
    /// state), keeping hardware-driven events (failures, DVFS ticks,
    /// reconfigurations).
    fn purge_volatile_events(&mut self) {
        let mut keep = Vec::new();
        while let Some((t, ev)) = self.events.pop() {
            match ev {
                Ev::Deliver { .. } | Ev::PeFree { .. } | Ev::PeRetry { .. } | Ev::MigrateArrive { .. } => {}
                other => keep.push((t, other)),
            }
        }
        for (t, ev) in keep {
            self.events.push(t, ev);
        }
    }

    // ----- disk checkpointing -------------------------------------------------

    /// Write the full application state to `path` (a real file). Returns the
    /// modeled virtual-time cost of the parallel write and the byte volume.
    ///
    /// Chare-based checkpointing means the restart PE count is independent of
    /// this run's PE count (§III-B).
    pub fn checkpoint_to_disk(&mut self, path: &Path) -> std::io::Result<DiskCkptInfo> {
        let mut out: Vec<u8> = Vec::new();
        out.extend_from_slice(b"CHMCKPT1");
        let arrays: Vec<_> = self.stores.iter().map(|s| s.id()).collect();
        write_u64(&mut out, arrays.len() as u64);
        let mut per_pe = vec![0usize; self.machine.num_pes];
        for id in arrays {
            let name = self.stores[id.0 as usize].name().to_string();
            write_bytes(&mut out, name.as_bytes());
            let indices = self.stores[id.0 as usize].indices();
            write_u64(&mut out, indices.len() as u64);
            for ix in indices {
                let pe = self.stores[id.0 as usize].element_pe(&ix).expect("listed");
                let body = self.stores[id.0 as usize]
                    .pack_element(&ix)
                    .expect("listed");
                per_pe[pe] += body.len();
                let mut ixc = ix;
                let ix_bytes = charm_pup::to_bytes(&mut ixc);
                write_bytes(&mut out, &ix_bytes);
                write_bytes(&mut out, &body);
            }
        }
        std::fs::write(path, &out)?;
        let max_pe_bytes = per_pe.iter().copied().max().unwrap_or(0);
        let cost = self.machine.disk.write_time(self.live_pes, max_pe_bytes);
        self.metrics
            .entry("disk_ckpt_time_s".into())
            .or_default()
            .push((self.now.as_secs_f64(), cost.as_secs_f64()));
        Ok(DiskCkptInfo {
            virtual_cost: cost,
            bytes: out.len(),
        })
    }

    /// Restore application state from a disk checkpoint written by
    /// [`Runtime::checkpoint_to_disk`]. All arrays must already be
    /// registered (by name, with matching chare types) on this runtime.
    /// Elements are placed by the home map of *this* runtime's PE count —
    /// restart on any number of PEs.
    pub fn restore_from_disk(&mut self, path: &Path) -> Result<DiskCkptInfo, String> {
        let data = std::fs::read(path).map_err(|e| format!("read checkpoint: {e}"))?;
        let mut r = Reader { data: &data, pos: 0 };
        let magic = r.take(8)?;
        if magic != b"CHMCKPT1" {
            return Err("bad checkpoint magic".into());
        }
        let n_arrays = r.u64()?;
        let mut max_pe_bytes = vec![0usize; self.live_pes];
        for _ in 0..n_arrays {
            let name = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| "invalid array name".to_string())?;
            let id = self
                .array_id(&name)
                .ok_or_else(|| format!("array '{name}' not registered before restore"))?;
            let n_elems = r.u64()?;
            for _ in 0..n_elems {
                let ix_bytes = r.bytes()?;
                let ix: crate::Ix = charm_pup::from_bytes(ix_bytes);
                let body = r.bytes()?;
                let pe = self.home_pe(id, &ix);
                max_pe_bytes[pe] += body.len();
                self.stores[id.0 as usize].unpack_insert(ix, pe, body);
            }
        }
        let max_bytes = max_pe_bytes.iter().copied().max().unwrap_or(0);
        let cost = self.machine.disk.read_time(self.live_pes, max_bytes);
        self.metrics
            .entry("disk_restore_time_s".into())
            .or_default()
            .push((self.now.as_secs_f64(), cost.as_secs_f64()));
        Ok(DiskCkptInfo {
            virtual_cost: cost,
            bytes: data.len(),
        })
    }

    /// The last in-memory checkpoint, if any.
    pub fn mem_checkpoint(&self) -> Option<&MemCheckpoint> {
        self.mem_ckpt.as_ref()
    }

    /// Inject a failure of `pe` at virtual time `at` (on top of any failures
    /// already in the machine's `FailurePlan`).
    pub fn schedule_failure(&mut self, at: SimTime, pe: usize) {
        self.events.push(at, Ev::NodeFail { pe });
    }
}

/// Result of a disk checkpoint or restore.
#[derive(Debug, Clone, Copy)]
pub struct DiskCkptInfo {
    /// Modeled parallel I/O time on the simulated machine.
    pub virtual_cost: SimTime,
    /// Real bytes written/read on the host filesystem.
    pub bytes: usize,
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err(format!(
                "checkpoint truncated at offset {} (need {n} bytes)",
                self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.u64()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buddy_is_half_machine_away() {
        assert_eq!(buddy_pe(0, 8), 4);
        assert_eq!(buddy_pe(5, 8), 1);
        assert_eq!(buddy_pe(3, 4), 1);
        // buddy never maps to self for P >= 2
        for p in 2..64 {
            for pe in 0..p {
                assert_ne!(buddy_pe(pe, p), pe, "pe={pe} P={p}");
            }
        }
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut r = Reader {
            data: &[1, 2, 3],
            pos: 0,
        };
        assert!(r.take(2).is_ok());
        assert!(r.take(2).is_err());
    }
}
