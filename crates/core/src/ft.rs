//! Checkpoint/restart and fault tolerance (§III-B).
//!
//! Two mechanisms, both built on the PUP framework:
//!
//! * **Double in-memory checkpoint** (`CkStartMemCheckpoint`): every chare is
//!   packed; the bytes are kept in the local PE's memory and mirrored on a
//!   *buddy* PE. The snapshot only becomes the recovery point once buddy
//!   replication finishes ([`Ev::CkptCommit`]); a failure inside that window
//!   aborts it and rolls back to the previous committed checkpoint. When an
//!   injected failure kills a node, every PE in the node's range dies and the
//!   whole application rolls back: all chare state is restored from the
//!   checkpoint (the failed PEs' chares come from their buddy copies),
//!   message state is discarded, and every chare receives
//!   [`SysEvent::Restarted`] to re-drive execution. If a failure — or a
//!   cascade landing before copies are rebuilt — destroys *both* copies of
//!   some chare, the run is [`Unrecoverable`](crate::Unrecoverable): that is
//!   surfaced as a typed outcome, never a silent partial restore.
//! * **Disk checkpoint** (`CkStartCheckpoint` + `+restart`): chare state is
//!   written to real files (CRC32-checksummed, written atomically via a
//!   temp file + rename) and can be restored into a *new* runtime with a
//!   *different* PE count — split execution, exactly as the paper describes.
//!   Corrupted files are rejected with a structured [`RestoreError`].

use crate::array::ObjId;
use crate::chare::{Callback, SysEvent};
use crate::runtime::{Ev, Runtime, Unrecoverable, ENVELOPE_BYTES, TOKEN_AUX};
use crate::trace::TraceEventKind;
use charm_machine::SimTime;
use std::collections::{BTreeMap, HashSet};

use std::path::Path;

/// Number of barrier phases in the restart protocol. The paper observes
/// restart time *growing* with PE count "due to the effect of barriers";
/// these are those barriers.
const RESTART_BARRIERS: u64 = 6;

/// Magic prefix of the on-disk checkpoint format (version 2: adds a
/// length + CRC32 header over the payload).
const DISK_MAGIC: &[u8; 8] = b"CHMCKPT2";

/// An in-memory snapshot of the entire application.
pub struct MemCheckpoint {
    /// Packed state of every chare, keyed by identity. Ordered map: restore
    /// iterates it, and record/replay requires that order to be
    /// deterministic across runs.
    pub(crate) bytes: BTreeMap<ObjId, Vec<u8>>,
    /// PE each chare lived on at checkpoint time — where the *local* copy
    /// resides; the second copy lives on that PE's [`buddy_pe`].
    pub(crate) placement: BTreeMap<ObjId, usize>,
    /// Virtual time the checkpoint was taken.
    pub(crate) taken_at: SimTime,
    /// Per-PE checkpoint volume (drives the buddy-transfer cost model).
    pub(crate) per_pe_bytes: Vec<usize>,
    /// PE count when the checkpoint was taken (fixes the buddy mapping).
    pub(crate) num_pes: usize,
}

impl MemCheckpoint {
    /// Total bytes across all chares.
    pub fn total_bytes(&self) -> usize {
        self.bytes.values().map(|b| b.len()).sum()
    }

    /// Number of chares captured.
    pub fn num_chares(&self) -> usize {
        self.bytes.len()
    }

    /// When the checkpoint was taken.
    pub fn taken_at(&self) -> SimTime {
        self.taken_at
    }

    /// The two PEs holding a chare's checkpoint copies: (owner, buddy).
    /// Returns `None` for chares the checkpoint does not cover.
    pub fn copy_pes(&self, obj: &ObjId) -> Option<(usize, usize)> {
        let owner = *self.placement.get(obj)?;
        Some((owner, buddy_pe(owner, self.num_pes)))
    }
}

/// A checkpoint whose buddy replication is still in flight (§III-B: the
/// snapshot is usable only once both copies exist everywhere).
pub(crate) struct PendingCkpt {
    pub(crate) ckpt: MemCheckpoint,
    pub(crate) cb: Callback,
    /// When replication finishes and the checkpoint commits.
    pub(crate) done: SimTime,
}

/// Buddy of a PE in the double in-memory scheme: the PE half the machine
/// away, so a node failure never takes out both copies.
pub fn buddy_pe(pe: usize, num_pes: usize) -> usize {
    (pe + num_pes / 2) % num_pes
}

impl Runtime {
    /// Take the double in-memory checkpoint now. Called from
    /// [`Ctx::start_mem_checkpoint`](crate::Ctx::start_mem_checkpoint)
    /// action application and from the automatic checkpoint tick.
    pub(crate) fn start_mem_checkpoint(&mut self, cb: Callback, at: SimTime) {
        if let Some(p) = &self.ckpt_pending {
            // A checkpoint is already replicating; coalesce into it.
            let done = p.done;
            self.deliver_callback(cb, SysEvent::CheckpointDone, done);
            return;
        }
        let mut bytes = BTreeMap::new();
        let mut placement = BTreeMap::new();
        let mut per_pe = vec![0usize; self.machine.num_pes];
        for s in self.stores.iter_mut() {
            let id = s.id();
            for ix in s.indices() {
                let pe = s.element_pe(&ix).expect("listed element");
                let b = s.pack_element(&ix).expect("listed element");
                per_pe[pe] += b.len();
                let obj = ObjId { array: id, ix };
                placement.insert(obj, pe);
                bytes.insert(obj, b);
            }
        }

        // Cost: each PE streams its checkpoint to its buddy concurrently
        // (max over PEs), plus one barrier to agree the checkpoint is
        // complete. Checkpoint time *decreases* with PE count because the
        // per-PE volume shrinks (paper Fig. 8-right, Fig. 10).
        let max_bytes = per_pe.iter().copied().max().unwrap_or(0);
        let transfer = if self.live_pes > 1 {
            self.net
                .delay(0, 1, max_bytes + ENVELOPE_BYTES, self.cur_dispatch.1 ^ TOKEN_AUX)
        } else {
            SimTime::ZERO
        };
        let barrier = self.barrier_cost();
        let total = transfer + barrier;
        let done = at + total;

        if let Some(tr) = &mut self.tracer {
            tr.rts(
                at,
                TraceEventKind::CkptBegin {
                    chares: bytes.len(),
                    bytes: per_pe.iter().sum(),
                },
            );
        }
        self.ckpt_pending = Some(PendingCkpt {
            ckpt: MemCheckpoint {
                bytes,
                placement,
                taken_at: at,
                per_pe_bytes: per_pe,
                num_pes: self.live_pes,
            },
            cb,
            done,
        });
        self.push_ev(done, Ev::CkptCommit);
        self.block_all_pes(done);
        self.metrics
            .entry("ckpt_time_s".into())
            .or_default()
            .push((at.as_secs_f64(), total.as_secs_f64()));
    }

    /// Buddy replication finished: the pending snapshot becomes the
    /// recovery point and the requester learns the checkpoint succeeded.
    pub(crate) fn on_ckpt_commit(&mut self) {
        let Some(p) = self.ckpt_pending.take() else {
            // The checkpoint this commit belonged to was aborted by a
            // failure; nothing to do.
            return;
        };
        if p.done != self.now {
            // A stale commit event for an aborted checkpoint; the live
            // pending one commits at its own time.
            self.ckpt_pending = Some(p);
            return;
        }
        // Both copies of every chare are now in place; rebuild windows
        // from any earlier restart are superseded.
        self.copy_missing.clear();
        self.mem_ckpt = Some(p.ckpt);
        if let Some(tr) = &mut self.tracer {
            tr.rts(self.now, TraceEventKind::CkptCommit);
        }
        self.metrics
            .entry("ckpt_committed".into())
            .or_default()
            .push((self.now.as_secs_f64(), 1.0));
        self.deliver_callback(p.cb, SysEvent::CheckpointDone, self.now);
    }

    /// Automatic periodic checkpoint tick: checkpoint if the application
    /// still has work outstanding, and re-arm only in that case so the run
    /// terminates once the job drains.
    pub(crate) fn on_auto_ckpt(&mut self) {
        let Some(interval) = self.auto_ckpt_interval else {
            return;
        };
        let outstanding = self.inflight > 0 || self.queued > 0 || self.busy_pes > 0;
        if !outstanding || self.exit_requested {
            return;
        }
        if self.ckpt_pending.is_none() {
            self.start_mem_checkpoint(Callback::Ignore, self.now);
        }
        let at = self.now + interval;
        self.push_ev(at, Ev::AutoCkpt);
    }

    /// Cost of one spanning-tree barrier over the live PEs.
    pub(crate) fn barrier_cost(&mut self) -> SimTime {
        let depth = self.tree_depth();
        let hop = self.net.delay(
            0,
            1.min(self.live_pes - 1),
            ENVELOPE_BYTES,
            self.cur_dispatch.1 ^ TOKEN_AUX,
        );
        SimTime(hop.0 * depth)
    }

    /// Block every live PE from starting new work until `until`, and make
    /// sure idle PEs with queued work wake up then.
    pub(crate) fn block_all_pes(&mut self, until: SimTime) {
        for pe in 0..self.live_pes {
            self.pes[pe].blocked_until = self.pes[pe].blocked_until.max(until);
            self.push_ev(until, Ev::PeRetry { pe });
        }
    }

    /// Handle a spot-preemption announcement: the node containing `pe` will
    /// be reclaimed at `deadline` (§IV-F cloud story). When the remaining
    /// warning covers the modeled evacuation cost, every chare is drained
    /// off the doomed PEs *before* the kill — the later [`Ev::NodeFail`]
    /// then finds no alive PE on the node and becomes a no-op, so the run
    /// pays migration cost instead of a rollback. Too-short warnings
    /// degrade gracefully to the ordinary checkpoint/restart path.
    pub(crate) fn on_preempt_warn(&mut self, pe: usize, deadline: SimTime) {
        if pe >= self.pes.len() {
            return;
        }
        let node = self.machine.node_of(pe);
        let doomed: Vec<usize> = self
            .machine
            .node_pe_range(node)
            .filter(|&p| p < self.live_pes && self.pes[p].alive && !self.retired[p])
            .collect();
        if doomed.is_empty() {
            return;
        }
        // The platform never hands a preempted instance back: retire the
        // PEs now so neither a restart nor a later expand resurrects them.
        for &p in &doomed {
            self.retired[p] = true;
        }
        let survivors: Vec<usize> = (0..self.live_pes)
            .filter(|&p| self.pes[p].alive && !doomed.contains(&p))
            .collect();

        // Evacuation cost model: each doomed PE streams its chares to the
        // survivors concurrently (max over doomed PEs), plus one barrier to
        // agree the node is drained.
        let mut evac: Vec<(ObjId, Vec<u8>)> = Vec::new();
        let mut per_pe_bytes = vec![0usize; self.machine.num_pes];
        for s in self.stores.iter_mut() {
            let id = s.id();
            for &p in &doomed {
                for ix in s.indices_on_pe(p) {
                    let b = s.pack_element(&ix).expect("listed element");
                    per_pe_bytes[p] += b.len();
                    evac.push((ObjId { array: id, ix }, b));
                }
            }
        }
        let max_bytes = doomed
            .iter()
            .map(|&p| per_pe_bytes[p])
            .max()
            .unwrap_or(0);
        let transfer = if !survivors.is_empty() && max_bytes > 0 {
            self.net.delay(
                doomed[0],
                survivors[0],
                max_bytes + ENVELOPE_BYTES,
                self.cur_dispatch.1 ^ TOKEN_AUX,
            )
        } else {
            SimTime::ZERO
        };
        let evac_cost = transfer + self.barrier_cost();
        let proactive = !survivors.is_empty() && self.now + evac_cost <= deadline;

        if let Some(tr) = &mut self.tracer {
            tr.rts(
                self.now,
                TraceEventKind::PreemptWarning {
                    first_pe: doomed[0],
                    num_pes: doomed.len(),
                    deadline,
                    proactive,
                },
            );
        }
        if !proactive {
            // Warning too short (or nowhere to go): let the scheduled
            // NodeFail take the buddy-checkpoint restart path.
            self.metrics
                .entry("preempt_short".into())
                .or_default()
                .push((self.now.as_secs_f64(), doomed.len() as f64));
            return;
        }

        // ---- proactive drain: migrate every chare off the node --------------
        let n_chares = evac.len();
        for (rr, (obj, bytes)) in evac.into_iter().enumerate() {
            let target = survivors[rr % survivors.len()];
            let store = &mut self.stores[obj.array.0 as usize];
            store.remove_element(&obj.ix);
            store.unpack_insert(obj.ix, target, &bytes);
            self.bytes_moved += (bytes.len() + ENVELOPE_BYTES) as u64;
        }
        // Take the doomed PEs down: requeue their stranded envelopes (the
        // evacuated chares will receive them at their new homes), release
        // the busy accounting, and mark them dead.
        let mut stranded = Vec::new();
        for &p in &doomed {
            let st = &mut self.pes[p];
            self.queued -= st.pending.len() as u64;
            while let Some(env) = st.pending.pop() {
                stranded.push(env);
            }
            if st.busy {
                st.busy = false;
                st.current = None;
                self.busy_pes -= 1;
            }
            st.alive = false;
            if let Some(tr) = &mut self.tracer {
                tr.pe_transition(self.now, p, false);
            }
        }
        for c in self.loc_cache.iter_mut() {
            c.clear();
        }
        for env in stranded {
            self.route_and_schedule(env, self.now);
        }
        let done = self.now + evac_cost;
        self.block_all_pes(done);

        if let Some(tr) = &mut self.tracer {
            tr.rts(
                self.now,
                TraceEventKind::Evacuation {
                    chares: n_chares,
                    first_pe: doomed[0],
                    num_pes: doomed.len(),
                },
            );
        }
        self.metrics
            .entry("evacuations".into())
            .or_default()
            .push((self.now.as_secs_f64(), doomed.len() as f64));
        self.metrics
            .entry("evacuation_cost_s".into())
            .or_default()
            .push((self.now.as_secs_f64(), evac_cost.as_secs_f64()));
        self.note_capacity("spot preemption evacuated the node");
    }

    /// Handle an injected node failure: every PE on the node containing
    /// `pe` dies, and the application rolls back to the last *committed*
    /// in-memory checkpoint (§III-B, [7]) — or is declared
    /// [`Unrecoverable`] when no surviving copy covers some chare.
    pub(crate) fn on_node_failure(&mut self, pe: usize) {
        if pe >= self.pes.len() {
            return;
        }
        let node = self.machine.node_of(pe);
        let failed: Vec<usize> = self
            .machine
            .node_pe_range(node)
            .filter(|&p| p < self.live_pes && self.pes[p].alive)
            .collect();
        if failed.is_empty() {
            return;
        }
        if let Some(tr) = &mut self.tracer {
            tr.rts(
                self.now,
                TraceEventKind::NodeFail {
                    first_pe: failed[0],
                    num_pes: failed.len(),
                },
            );
        }

        // A checkpoint still replicating to buddies can no longer commit:
        // abort it and fall back to the previous committed checkpoint.
        if let Some(pending) = self.ckpt_pending.take() {
            if let Some(tr) = &mut self.tracer {
                tr.rts(self.now, TraceEventKind::CkptAbort);
            }
            self.metrics
                .entry("ckpt_aborted".into())
                .or_default()
                .push((self.now.as_secs_f64(), pending.ckpt.taken_at.as_secs_f64()));
        }
        // Restart windows that have completed by now are fully rebuilt.
        let now = self.now;
        self.copy_missing.retain(|_, until| *until > now);

        let Some(ckpt) = self.mem_ckpt.take() else {
            // No committed checkpoint: the processes and everything on
            // them are simply lost; messages to them vanish. Survivors
            // keep running.
            let lost = self.live_chares_on(&failed);
            self.kill_pes(&failed);
            if lost > 0 {
                self.mark_unrecoverable(
                    &failed,
                    lost,
                    "no committed checkpoint existed at failure time".to_string(),
                );
            }
            return;
        };

        // ---- is the checkpoint still whole? --------------------------------
        // A chare survives iff at least one of its two copies (owner PE,
        // buddy PE) sits on a PE that is neither newly dead nor still
        // rebuilding its copies after an earlier restart.
        let mut dead: HashSet<usize> = failed.iter().copied().collect();
        dead.extend(self.copy_missing.keys().copied());
        // PEs already down (earlier preemptions/unrecovered kills) hold no
        // checkpoint copies either.
        dead.extend((0..self.live_pes).filter(|&p| !self.pes[p].alive));
        let lost = ckpt
            .placement
            .values()
            .filter(|&&p| dead.contains(&p) && dead.contains(&buddy_pe(p, ckpt.num_pes)))
            .count();
        if lost > 0 {
            self.mem_ckpt = Some(ckpt); // keep for post-mortem inspection
            self.metrics
                .entry("unrecoverable_failures".into())
                .or_default()
                .push((self.now.as_secs_f64(), lost as f64));
            self.kill_pes(&failed);
            self.mark_unrecoverable(
                &failed,
                lost,
                format!("{lost} chare(s) lost both checkpoint copies"),
            );
            return;
        }

        // ---- rollback: discard all execution/message state -----------------
        if let Some(tr) = &mut self.tracer {
            tr.rts(
                self.now,
                TraceEventKind::Rollback {
                    to: ckpt.taken_at,
                    chares: ckpt.num_chares(),
                },
            );
        }
        self.purge_volatile_events();
        for pe in 0..self.live_pes {
            let p = &mut self.pes[pe];
            p.pending.clear();
            p.busy = false;
            p.current = None;
            p.blocked_until = SimTime::ZERO;
            // Crashed processes are replaced by fresh ones — except PEs the
            // platform reclaimed outright (spot preemptions): those stay
            // retired and the run continues on reduced capacity.
            p.alive = !self.retired[pe];
        }
        if let Some(tr) = &mut self.tracer {
            for pe in 0..self.live_pes {
                tr.pe_transition(now, pe, false);
            }
        }
        self.queued = 0;
        self.inflight = 0;
        self.busy_pes = 0;
        self.limbo.clear();
        self.reductions.clear();
        self.qd = None;
        self.at_sync_seen = 0;
        for c in self.loc_cache.iter_mut() {
            c.clear();
        }

        // ---- restore chare state from the checkpoint ------------------------
        // Chares whose checkpoint home is a retired PE are diverted: to the
        // buddy that holds the surviving copy when it is alive, else round-
        // robin over the alive PEs (deterministic: BTreeMap order).
        let alive_targets: Vec<usize> = (0..self.live_pes)
            .filter(|&p| self.pes[p].alive)
            .collect();
        if alive_targets.is_empty() {
            let lost = ckpt.num_chares();
            self.mem_ckpt = Some(ckpt);
            self.mark_unrecoverable(&failed, lost, "no alive PE left to restore onto".to_string());
            return;
        }
        for s in self.stores.iter_mut() {
            s.clear();
        }
        let mut rr = 0usize;
        for (obj, bytes) in &ckpt.bytes {
            let mut pe = ckpt.placement[obj];
            if pe >= self.live_pes || !self.pes[pe].alive {
                let b = buddy_pe(pe, ckpt.num_pes);
                pe = if b < self.live_pes && self.pes[b].alive {
                    b
                } else {
                    let t = alive_targets[rr % alive_targets.len()];
                    rr += 1;
                    t
                };
            }
            self.stores[obj.array.0 as usize].unpack_insert(obj.ix, pe, bytes);
        }

        // ---- cost model ------------------------------------------------------
        // Each dead PE's buddy streams its checkpoint to the replacement
        // concurrently (max over failed PEs); every PE then restores
        // locally; several barriers synchronize the protocol (this is the
        // term that grows with P — Fig. 10 restart).
        let resend = failed
            .iter()
            .map(|&p| {
                let bytes = ckpt.per_pe_bytes.get(p).copied().unwrap_or(0);
                if self.live_pes > 1 {
                    self.net.delay(
                        buddy_pe(p, ckpt.num_pes),
                        p,
                        bytes + ENVELOPE_BYTES,
                        self.cur_dispatch.1 ^ TOKEN_AUX,
                    )
                } else {
                    SimTime::ZERO
                }
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        let barriers = SimTime(self.barrier_cost().0 * RESTART_BARRIERS);
        let total = resend + barriers;
        let done = self.now + total;
        self.block_all_pes(done);

        // Until the restart protocol completes, the replacement processes
        // hold no checkpoint copies: a failure overlapping them before
        // `done` can still destroy both copies of a chare.
        for &p in &failed {
            self.copy_missing.insert(p, done);
        }

        self.metrics
            .entry("restart_time_s".into())
            .or_default()
            .push((self.now.as_secs_f64(), total.as_secs_f64()));
        for &p in &failed {
            self.metrics
                .entry("failures_recovered".into())
                .or_default()
                .push((self.now.as_secs_f64(), p as f64));
        }
        self.note_capacity("node failure rolled the run back");

        // Keep the checkpoint for further failures.
        self.mem_ckpt = Some(ckpt);

        // Tell everyone to resume from checkpointed state.
        let first_failed = failed[0];
        let arrays: Vec<_> = self.stores.iter().map(|s| s.id()).collect();
        for array in arrays {
            for ix in self.stores[array.0 as usize].indices() {
                self.deliver_sys(
                    ObjId { array, ix },
                    SysEvent::Restarted {
                        failed_pe: first_failed,
                    },
                    done,
                );
            }
        }
    }

    /// Count live chares currently hosted on any of `pes`.
    fn live_chares_on(&self, pes: &[usize]) -> usize {
        self.stores
            .iter()
            .map(|s| {
                s.indices()
                    .into_iter()
                    .filter(|ix| s.element_pe(ix).is_some_and(|p| pes.contains(&p)))
                    .count()
            })
            .sum()
    }

    /// Kill PEs without recovery: drop their queues, release the busy
    /// accounting, and record the per-PE `unrecovered_failures` metric.
    fn kill_pes(&mut self, failed: &[usize]) {
        for &pe in failed {
            let p = &mut self.pes[pe];
            p.alive = false;
            self.queued -= p.pending.len() as u64;
            p.pending.clear();
            if p.busy {
                p.busy = false;
                p.current = None;
                self.busy_pes -= 1;
            }
            if let Some(tr) = &mut self.tracer {
                tr.pe_transition(self.now, pe, false);
            }
            self.metrics
                .entry("unrecovered_failures".into())
                .or_default()
                .push((self.now.as_secs_f64(), pe as f64));
        }
        self.note_capacity("node failure killed PEs without recovery");
    }

    /// Record the (sticky) fatal outcome — the first fatal failure wins.
    fn mark_unrecoverable(&mut self, failed: &[usize], lost_chares: usize, reason: String) {
        if let Some(tr) = &mut self.tracer {
            tr.rts(self.now, TraceEventKind::Unrecoverable { lost: lost_chares });
        }
        if self.unrecoverable.is_none() {
            self.unrecoverable = Some(Unrecoverable {
                at: self.now,
                failed_pes: failed.to_vec(),
                lost_chares,
                reason,
            });
        }
    }

    /// Drop Deliver/PeFree/PeRetry/MigrateArrive/CkptCommit events (message,
    /// execution, and in-flight checkpoint state), keeping hardware-driven
    /// events (failures, DVFS ticks, reconfigurations, checkpoint ticks).
    fn purge_volatile_events(&mut self) {
        // Preserve each surviving event's heap key: keys encode the
        // producer slot and feed the deterministic tie-break order.
        for (t, k, ev) in self.events.drain_entries() {
            match ev {
                Ev::Deliver { .. }
                | Ev::PeFree { .. }
                | Ev::PeRetry { .. }
                | Ev::MigrateArrive(_)
                | Ev::CkptCommit => {}
                other => self.events.push_keyed(t, k, other),
            }
        }
    }

    // ----- disk checkpointing -------------------------------------------------

    /// Write the full application state to `path` (a real file). Returns the
    /// modeled virtual-time cost of the parallel write and the byte volume.
    ///
    /// The image carries a version magic, the payload length, and a CRC32
    /// over the payload, and is written to a temp file in the same
    /// directory then renamed into place — a torn write can at worst leave
    /// a stale temp file, never a half-written checkpoint under `path`.
    ///
    /// Chare-based checkpointing means the restart PE count is independent of
    /// this run's PE count (§III-B).
    pub fn checkpoint_to_disk(&mut self, path: &Path) -> std::io::Result<DiskCkptInfo> {
        let mut payload: Vec<u8> = Vec::new();
        let arrays: Vec<_> = self.stores.iter().map(|s| s.id()).collect();
        write_u64(&mut payload, arrays.len() as u64);
        let mut per_pe = vec![0usize; self.machine.num_pes];
        for id in arrays {
            let name = self.stores[id.0 as usize].name().to_string();
            write_bytes(&mut payload, name.as_bytes());
            let indices = self.stores[id.0 as usize].indices();
            write_u64(&mut payload, indices.len() as u64);
            for ix in indices {
                let pe = self.stores[id.0 as usize].element_pe(&ix).expect("listed");
                let body = self.stores[id.0 as usize]
                    .pack_element(&ix)
                    .expect("listed");
                per_pe[pe] += body.len();
                let mut ixc = ix;
                let ix_bytes = charm_pup::to_bytes(&mut ixc);
                write_bytes(&mut payload, &ix_bytes);
                write_bytes(&mut payload, &body);
            }
        }

        let mut out: Vec<u8> = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(DISK_MAGIC);
        write_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);

        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, path)?;

        let max_pe_bytes = per_pe.iter().copied().max().unwrap_or(0);
        let cost = self.machine.disk.write_time(self.live_pes, max_pe_bytes);
        self.metrics
            .entry("disk_ckpt_time_s".into())
            .or_default()
            .push((self.now.as_secs_f64(), cost.as_secs_f64()));
        Ok(DiskCkptInfo {
            virtual_cost: cost,
            bytes: out.len(),
        })
    }

    /// Restore application state from a disk checkpoint written by
    /// [`Runtime::checkpoint_to_disk`]. All arrays must already be
    /// registered (by name, with matching chare types) on this runtime.
    /// Elements are placed by the home map of *this* runtime's PE count —
    /// restart on any number of PEs.
    ///
    /// The header and CRC32 are validated *before* any state is touched:
    /// a truncated, torn, or bit-flipped image is rejected with a
    /// [`RestoreError`] and the runtime is left unmodified.
    pub fn restore_from_disk(&mut self, path: &Path) -> Result<DiskCkptInfo, RestoreError> {
        let data = std::fs::read(path).map_err(|e| RestoreError::Io(e.to_string()))?;
        let mut r = Reader { data: &data, pos: 0 };
        let magic = r.take(8)?;
        if magic != DISK_MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(RestoreError::BadMagic { found });
        }
        let payload_len = r.u64()? as usize;
        let expected_crc = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
        let payload = r.take(payload_len)?;
        let actual_crc = crc32(payload);
        if actual_crc != expected_crc {
            return Err(RestoreError::ChecksumMismatch {
                expected: expected_crc,
                actual: actual_crc,
            });
        }

        let mut r = Reader { data: payload, pos: 0 };
        let n_arrays = r.u64()?;
        let mut max_pe_bytes = vec![0usize; self.live_pes];
        for _ in 0..n_arrays {
            let name = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| RestoreError::Malformed("invalid array name".into()))?;
            let id = self
                .array_id(&name)
                .ok_or(RestoreError::MissingArray { name })?;
            let n_elems = r.u64()?;
            for _ in 0..n_elems {
                let ix_bytes = r.bytes()?;
                let ix: crate::Ix = charm_pup::from_bytes(ix_bytes);
                let body = r.bytes()?;
                let pe = self.home_pe(id, &ix);
                max_pe_bytes[pe] += body.len();
                self.stores[id.0 as usize].unpack_insert(ix, pe, body);
            }
        }
        let max_bytes = max_pe_bytes.iter().copied().max().unwrap_or(0);
        let cost = self.machine.disk.read_time(self.live_pes, max_bytes);
        self.metrics
            .entry("disk_restore_time_s".into())
            .or_default()
            .push((self.now.as_secs_f64(), cost.as_secs_f64()));
        Ok(DiskCkptInfo {
            virtual_cost: cost,
            bytes: data.len(),
        })
    }

    /// The last *committed* in-memory checkpoint, if any.
    pub fn mem_checkpoint(&self) -> Option<&MemCheckpoint> {
        self.mem_ckpt.as_ref()
    }

    /// Inject a failure of the node containing `pe` at virtual time `at`
    /// (on top of any failures already in the machine's `FailurePlan`).
    pub fn schedule_failure(&mut self, at: SimTime, pe: usize) {
        let k = self.fresh_key(self.host_slot());
        self.events.push_keyed(at, k, Ev::NodeFail { pe });
    }

    /// Inject a spot preemption: the node containing `pe` is reclaimed at
    /// `at`, announced `warning` earlier. The warn event's key is allocated
    /// before the kill's, so a zero-warning announcement still precedes the
    /// kill on the same timestamp.
    pub fn schedule_preemption(&mut self, at: SimTime, pe: usize, warning: SimTime) {
        let visible = at.saturating_sub(warning);
        let kw = self.fresh_key(self.host_slot());
        self.events
            .push_keyed(visible, kw, Ev::PreemptWarn { pe, deadline: at });
        let kf = self.fresh_key(self.host_slot());
        self.events.push_keyed(at, kf, Ev::NodeFail { pe });
    }
}

/// Result of a disk checkpoint or restore.
#[derive(Debug, Clone, Copy)]
pub struct DiskCkptInfo {
    /// Modeled parallel I/O time on the simulated machine.
    pub virtual_cost: SimTime,
    /// Real bytes written/read on the host filesystem.
    pub bytes: usize,
}

/// Why a disk checkpoint could not be restored. Every corruption mode the
/// disk-fault injector produces maps to one of these — restore never
/// panics and never applies a partially-validated image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The file could not be read at all.
    Io(String),
    /// The file does not start with the checkpoint magic (not a
    /// checkpoint, a previous-generation format, or a corrupted header).
    BadMagic {
        /// The first 8 bytes actually found.
        found: [u8; 8],
    },
    /// The file ends before the declared payload does.
    Truncated {
        /// Offset at which the read ran out of bytes.
        offset: usize,
        /// How many bytes the reader needed there.
        need: usize,
    },
    /// The payload does not match its recorded CRC32 (bit rot, torn write).
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the payload as read.
        actual: u32,
    },
    /// The checkpoint names an array this runtime has not registered.
    MissingArray {
        /// The unregistered array's name.
        name: String,
    },
    /// Structurally invalid payload despite a matching checksum.
    Malformed(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "read checkpoint: {e}"),
            RestoreError::BadMagic { found } => write!(f, "bad checkpoint magic {found:02x?}"),
            RestoreError::Truncated { offset, need } => write!(
                f,
                "checkpoint truncated at offset {offset} (need {need} bytes)"
            ),
            RestoreError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected:#010x}, payload is {actual:#010x}"
            ),
            RestoreError::MissingArray { name } => {
                write!(f, "array '{name}' not registered before restore")
            }
            RestoreError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`), implemented
/// here because the build environment has no registry access for a crc
/// crate.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        if self.pos + n > self.data.len() {
            return Err(RestoreError::Truncated {
                offset: self.pos,
                need: n,
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u64(&mut self) -> Result<u64, RestoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    fn bytes(&mut self) -> Result<&'a [u8], RestoreError> {
        let n = self.u64()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buddy_is_half_machine_away() {
        assert_eq!(buddy_pe(0, 8), 4);
        assert_eq!(buddy_pe(5, 8), 1);
        assert_eq!(buddy_pe(3, 4), 1);
        // buddy never maps to self for P >= 2
        for p in 2..64 {
            for pe in 0..p {
                assert_ne!(buddy_pe(pe, p), pe, "pe={pe} P={p}");
            }
        }
    }

    #[test]
    fn buddy_on_odd_pe_counts() {
        // Odd P: the offset floor(P/2) never divides P, so the mapping is
        // a fixed rotation — in range, never self, and exhaustive when
        // iterated (every PE is some PE's buddy).
        for p in [3usize, 5, 7, 9, 31, 63] {
            let mut seen = vec![false; p];
            for pe in 0..p {
                let b = buddy_pe(pe, p);
                assert!(b < p);
                assert_ne!(b, pe);
                seen[b] = true;
            }
            assert!(seen.iter().all(|&s| s), "buddy not a bijection for P={p}");
        }
        assert_eq!(buddy_pe(0, 7), 3);
        assert_eq!(buddy_pe(4, 7), 0);
        assert_eq!(buddy_pe(6, 7), 2);
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut r = Reader {
            data: &[1, 2, 3],
            pos: 0,
        };
        assert!(r.take(2).is_ok());
        assert!(matches!(
            r.take(2),
            Err(RestoreError::Truncated { offset: 2, need: 2 })
        ));
    }

    #[test]
    fn crc32_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
