//! Malleable jobs: shrink and expand the PE set at run time (§III-D).
//!
//! A shrink evacuates every chare from the PEs being retired (the runtime's
//! object-centric model makes this a rebalancing problem, not an
//! application-code problem), then retires them — no residual processes.
//! An expand brings new PEs up (paying the modeled process-restart and
//! reconnection cost that dominates the paper's 7.2 s figure) and
//! redistributes chares across the larger set.

use crate::runtime::Runtime;
use crate::trace::TraceEventKind;
use charm_machine::SimTime;

impl Runtime {
    /// Handle a scheduled reconfiguration command (from the CCS-like
    /// external channel, §III-D).
    pub(crate) fn on_reconfigure(&mut self, to: usize) {
        // With buddy checkpointing in play, one PE is not enough: owner and
        // buddy copies would co-locate (`buddy_pe(0, 1) == 0`) and the next
        // failure would be unrecoverable by construction. Reject by
        // clamping to the checkpoint floor.
        let floor = if self.ckpt_active() { 2 } else { 1 };
        let requested = to;
        let to = to.clamp(floor, self.machine.num_pes);
        if to != requested {
            self.metrics
                .entry("reconfigure_rejected".into())
                .or_default()
                .push((self.now.as_secs_f64(), requested as f64));
        }
        if to == self.live_pes {
            return;
        }
        let shrinking = to < self.live_pes;
        let old = self.live_pes;

        if shrinking {
            // Evacuate chares from retiring PEs (round-robin over the
            // *alive* survivors — preempted PEs inside the new boundary
            // must not receive state; a follow-up LB round at the next
            // AtSync will refine placement with real measurements).
            let survivors: Vec<usize> = (0..to).filter(|&p| self.pes[p].alive).collect();
            if survivors.is_empty() {
                // Every PE that would remain is already dead; shrinking
                // would strand all evacuated chares. Refuse.
                self.metrics
                    .entry("reconfigure_rejected".into())
                    .or_default()
                    .push((self.now.as_secs_f64(), requested as f64));
                return;
            }
            let mut rr = 0usize;
            let arrays: Vec<_> = self.stores.iter().map(|s| s.id()).collect();
            let mut moved_bytes_max = 0usize;
            for array in arrays {
                for pe in to..old {
                    for ix in self.stores[array.0 as usize].indices_on_pe(pe) {
                        let bytes = self.stores[array.0 as usize]
                            .pack_element(&ix)
                            .expect("listed element");
                        moved_bytes_max = moved_bytes_max.max(bytes.len());
                        let target = survivors[rr % survivors.len()];
                        rr += 1;
                        self.stores[array.0 as usize].remove_element(&ix);
                        self.stores[array.0 as usize].unpack_insert(ix, target, &bytes);
                    }
                }
            }
            // Requeue messages stranded on retiring PEs.
            let mut stranded = Vec::new();
            for pe in to..old {
                self.queued -= self.pes[pe].pending.len() as u64;
                while let Some(env) = self.pes[pe].pending.pop() {
                    stranded.push(env);
                }
                if self.pes[pe].busy {
                    // The process is torn down mid-entry: its PeFree event
                    // still fires but finds the PE dead, so release the
                    // busy accounting here or `busy_pes` leaks forever
                    // (which would keep periodic ticks re-arming and the
                    // run from ever draining).
                    self.pes[pe].busy = false;
                    self.pes[pe].current = None;
                    self.busy_pes -= 1;
                }
                self.pes[pe].alive = false;
            }
            self.live_pes = to;
            for c in self.loc_cache.iter_mut() {
                c.clear();
            }
            for env in stranded {
                self.route_and_schedule(env, self.now);
            }
            let transfer = if moved_bytes_max > 0 {
                let token = self.cur_dispatch.1 ^ crate::runtime::TOKEN_AUX;
                self.net.delay(old - 1, 0, moved_bytes_max, token)
            } else {
                SimTime::ZERO
            };
            let done = self.now + self.reconfig_overhead_shrink + transfer;
            self.block_all_pes(done);
            self.journal_reconfig(old, to, done);
        } else {
            // Expand: revive PEs, then spread load with an LB round. PEs
            // the platform reclaimed (spot preemptions) never come back.
            for pe in old..to {
                if self.retired[pe] {
                    continue;
                }
                self.pes[pe].alive = true;
                self.pes[pe].blocked_until = SimTime::ZERO;
            }
            self.live_pes = to;
            for c in self.loc_cache.iter_mut() {
                c.clear();
            }
            let done = self.now + self.reconfig_overhead_expand;
            self.block_all_pes(done);
            self.rts_triggered_lb();
            self.journal_reconfig(old, to, done);
        }
    }

    fn journal_reconfig(&mut self, from: usize, to: usize, done: SimTime) {
        let cost = done.saturating_sub(self.now).as_secs_f64();
        if let Some(tr) = &mut self.tracer {
            tr.rts(self.now, TraceEventKind::Reconfigure { from, to });
        }
        self.metrics
            .entry("reconfigure".into())
            .or_default()
            .push((self.now.as_secs_f64(), to as f64));
        self.metrics
            .entry("reconfigure_cost_s".into())
            .or_default()
            .push((self.now.as_secs_f64(), cost));
        self.note_capacity("malleable reconfiguration");
    }
}
