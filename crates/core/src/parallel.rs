//! The parallel multi-worker engine: shard the simulated PEs across OS
//! worker threads, synchronized by conservative lookahead windows.
//!
//! Two synchronization cores share the same sharding, exchange, and merge
//! machinery:
//!
//! * the **adaptive engine** (default): every shard owns an atomic window
//!   clock and publishes its earliest pending virtual time; a shard's next
//!   safe horizon is `min over peers (peer pending + pairwise lookahead)`,
//!   where the pairwise lookahead matrix is the all-pairs closure of the
//!   per-shard-pair minimum network latency computed at plan time. Shards
//!   free-run many windows ahead of each other with no barrier at all;
//!   cross-shard messages flow continuously through per-pair mailboxes
//!   whose floor timestamps keep in-flight work visible to every horizon.
//!   Blocking happens only when a horizon is actually exhausted (parked
//!   wait, counted in [`RunSummary::barriers_waited`]) or when a boundary
//!   obligation — a reduction fold's completion callback, an exit vote —
//!   forces a soft rendezvous at one specific window edge.
//! * the **global-window engine** ([`crate::RuntimeBuilder::global_window`],
//!   and any run that records periodic state digests): all shards drain the
//!   same α-sized window and meet at a full condvar barrier per edge — the
//!   PR-5 core, kept as an A/B fallback against the same goldens.
//!
//! ## How it stays byte-identical to sequential execution
//!
//! The sequential engine already executes in windows of width α (the
//! minimum cross-PE network latency, [`Runtime::win_ns`]): all events with
//! `t < W` run before any window-boundary work (reduction folds, state
//! digests) at `W`. Because every cross-PE message is delayed by at least
//! α, an event executing inside window `[W-α, W)` can only schedule
//! *remote* work at `t ≥ W` — after the boundary. That lookahead is the
//! license to parallelize: shard the PEs, let each worker drain the same
//! window on its own event heap, and exchange cross-shard messages at the
//! barrier. Nothing a shard does inside a window can affect another shard
//! within that window.
//!
//! Determinism then reduces to ordering. Every event carries a globally
//! unique key allocated from its *producer's* key slot
//! ([`Runtime::fresh_key`]): shards own disjoint slots, so they allocate
//! exactly the keys the sequential engine would, with no coordination.
//! Each shard's heap pops in `(time, key)` order — the same total order the
//! sequential heap uses — so merging shard streams by `(time, key)`
//! reproduces the sequential dispatch sequence exactly. Reductions fold at
//! window boundaries in `(dispatch time, dispatch key)` order of their
//! contributing entries, on shard 0, which owns the reduction key slot.
//!
//! Everything observable — chare states, event keys, virtual times, trace
//! buffers, replay logs, metric journals — is merged back in that dispatch
//! order after the run, so `run()` with N workers produces bit-for-bit the
//! state and artifacts of `run()` with one.
//!
//! ## What parallel mode refuses
//!
//! Features that move or create chares mid-run (migration, LB, dynamic
//! insertion), observe global instantaneous state (quiescence detection),
//! or drive RTS machinery from timers (DVFS, auto-checkpointing, injected
//! failures) are sequential-only. [`Runtime::parallel_plan`] detects them
//! up front and falls back to the sequential engine silently; mid-run
//! attempts (e.g. a chare calling `at_sync`) panic with a pointed message.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::array::{AnyArray, ObjId};
use crate::ctrl::ControlRegistry;
use crate::replay::Recorder;
use crate::runtime::{ContribRec, Envelope, Ev, PeState, RunSummary, Runtime, SLOT_HOST};
use crate::trace::Tracer;
use crate::Ix;
use charm_machine::{EventQueue, SimTime};
use fxhash::FxHashMap;

/// Process-wide default for [`crate::RuntimeBuilder::threads`].
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Default worker-thread count new runtimes start with (1 = sequential).
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed).max(1)
}

/// Set the process-wide default worker-thread count picked up by
/// [`crate::RuntimeBuilder`]s constructed afterwards. Lets drivers and
/// tests opt whole programs into parallel execution without threading a
/// parameter through every builder call site.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Frozen global element-location table shared by every shard. Locations
/// cannot change during a parallel run (migration and insertion are
/// sequential-only), so one immutable snapshot answers all routing,
/// broadcast-enumeration, and reduction-size queries.
pub(crate) struct LocTable {
    locs: FxHashMap<ObjId, (usize, u32)>,
    /// Element count per array (indexed by array id).
    lens: Vec<usize>,
    /// Sorted `(index, pe)` pairs per array (indexed by array id).
    targets: Vec<Vec<(Ix, usize)>>,
}

impl LocTable {
    pub(crate) fn locate(&self, obj: ObjId) -> Option<(usize, u32)> {
        self.locs.get(&obj).copied()
    }

    pub(crate) fn array_len(&self, array: crate::ArrayId) -> usize {
        self.lens.get(array.0 as usize).copied().unwrap_or(0)
    }

    pub(crate) fn targets(&self, array: crate::ArrayId) -> Vec<(Ix, usize)> {
        self.targets
            .get(array.0 as usize)
            .cloned()
            .unwrap_or_default()
    }
}

/// Per-shard state hung off a shard runtime's `par` field. Its presence is
/// what switches [`Runtime`] internals into shard mode.
pub(crate) struct ParShard {
    /// This shard's index.
    pub(crate) shard: usize,
    /// First PE this shard owns.
    pub(crate) lo: usize,
    /// One past the last PE this shard owns.
    pub(crate) hi: usize,
    /// Every shard's `[lo, hi)` range, for routing outbound deliveries.
    bounds: Arc<Vec<(usize, usize)>>,
    /// The run-global frozen location table.
    pub(crate) loc: Arc<LocTable>,
    /// Cross-shard deliveries produced this window, per destination shard;
    /// moved into the shared exchange at the window barrier.
    pub(crate) outbox: Vec<Vec<(SimTime, usize, Box<Envelope>)>>,
}

impl ParShard {
    /// Which shard owns a PE.
    pub(crate) fn shard_of(&self, pe: usize) -> usize {
        self.bounds
            .iter()
            .position(|&(lo, hi)| pe >= lo && pe < hi)
            .expect("PE outside every shard")
    }
}

/// Everything [`Runtime::run_parallel`] needs that eligibility analysis
/// already computed.
pub(crate) struct ParPlan {
    shards: usize,
    bounds: Vec<(usize, usize)>,
    loc: Arc<LocTable>,
    /// Closed shard-pair lookahead matrix ([`lookahead::close`]).
    dist: Vec<Vec<u64>>,
}

/// Plan-time lookahead computation for the adaptive engine, exposed as
/// pure functions so property tests can drive them with synthetic latency
/// matrices and send schedules.
pub mod lookahead {
    use charm_machine::NetworkModel;

    /// Above this PE count the exact O(n²) pairwise scan is skipped and
    /// every cross-shard pair falls back to the global minimum latency
    /// (the adaptive engine then still elides barriers, it just grants
    /// uniform-width horizons).
    pub const EXACT_PAIR_LIMIT: usize = 4096;

    /// Shard-pair latency floor matrix: `m[a][b]` is the minimum delay (ns)
    /// of any message a shard-`a` PE can send to a shard-`b` PE. Diagonal
    /// entries are `u64::MAX` placeholders for [`close`] to fill with round
    /// trips (intra-shard latency drops out of the lookahead entirely —
    /// that is the point of per-pair horizons).
    pub fn pair_matrix(net: &NetworkModel, bounds: &[(usize, usize)]) -> Vec<Vec<u64>> {
        let k = bounds.len();
        let n = bounds.last().map_or(0, |&(_, hi)| hi);
        let global = net.min_remote_delay().0.max(1);
        let mut m = vec![vec![u64::MAX; k]; k];
        for a in 0..k {
            for b in 0..k {
                if a == b {
                    continue;
                }
                m[a][b] = if n <= EXACT_PAIR_LIMIT {
                    let (alo, ahi) = bounds[a];
                    let (blo, bhi) = bounds[b];
                    let mut best = u64::MAX;
                    for p in alo..ahi {
                        for q in blo..bhi {
                            best = best.min(net.min_pair_delay(p, q).0);
                        }
                    }
                    best.max(global)
                } else {
                    global
                };
            }
        }
        m
    }

    /// All-pairs closure (Floyd–Warshall) of a pair floor matrix: after
    /// closing, `m[a][b]` lower-bounds the arrival of *any* causal chain
    /// that starts from shard `a`'s next pending event and ends with a
    /// delivery into shard `b` — including chains relayed through shards
    /// whose published progress is stale. The diagonal becomes the minimum
    /// round trip, the lookahead a shard holds against its own echoes.
    pub fn close(mut m: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        let k = m.len();
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = u64::MAX;
        }
        for via in 0..k {
            let through: Vec<u64> = m[via].clone();
            for row in m.iter_mut() {
                let d_av = row[via];
                if d_av == u64::MAX {
                    continue;
                }
                for (cur, &tail) in row.iter_mut().zip(&through) {
                    let d = d_av.saturating_add(tail);
                    if d < *cur {
                        *cur = d;
                    }
                }
            }
        }
        m
    }

    /// The horizon the adaptive engine grants shard `me`: every event
    /// strictly before it is safe to execute, because nothing any peer has
    /// pending (`pending[j]`, `u64::MAX` = idle) can reach `me` sooner than
    /// its closed pairwise lookahead.
    pub fn horizon(dist: &[Vec<u64>], pending: &[u64], me: usize) -> u64 {
        let mut b = u64::MAX;
        for (j, &p) in pending.iter().enumerate() {
            b = b.min(p.saturating_add(dist[j][me]));
        }
        b
    }

    /// The global-α reference horizon (what the lockstep engine grants
    /// every shard): the end of the α-cell containing the global minimum
    /// pending time.
    pub fn global_horizon(pending: &[u64], win: u64) -> u64 {
        let t_min = pending.iter().copied().min().unwrap_or(u64::MAX);
        if t_min == u64::MAX {
            return u64::MAX;
        }
        (t_min / win.max(1))
            .saturating_add(1)
            .saturating_mul(win.max(1))
    }

    /// Contiguous shard bounds over `n` PEs, topology-aware: when the
    /// fabric is a torus whose dimensions tile the PE range exactly, shard
    /// cuts snap to the nearest row multiple. A mid-row cut places 1-hop
    /// row neighbours in different shards; a row-aligned cut makes the
    /// closest cross-shard pair a full row apart, widening pairwise α.
    pub fn plan_bounds(n: usize, shards: usize, net: &NetworkModel) -> Vec<(usize, usize)> {
        let mut cuts: Vec<usize> = (0..=shards).map(|s| s * n / shards).collect();
        let p = net.params();
        if let Some(dims) = &p.torus_dims {
            let row = dims.first().copied().unwrap_or(0);
            if row >= 2
                && p.per_hop.0 > 0
                && dims.iter().product::<usize>() == n
                && n / row >= shards
            {
                let snapped: Vec<usize> = cuts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        if i == 0 || i == shards {
                            c
                        } else {
                            ((c + row / 2) / row) * row
                        }
                    })
                    .collect();
                if snapped.windows(2).all(|w| w[0] < w[1]) {
                    cuts = snapped;
                }
            }
        }
        cuts.windows(2).map(|w| (w[0], w[1])).collect()
    }
}

/// A [`Condvar`] barrier with poisoning: when a worker panics it poisons
/// the barrier instead of leaving the others blocked forever, so the panic
/// (e.g. "at_sync is sequential-only") propagates to the caller promptly.
struct PoisonBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// Marker returned from [`PoisonBarrier::wait`] when another worker died.
struct Poisoned;

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        PoisonBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    fn wait(&self) -> Result<(), Poisoned> {
        let mut g = self.state.lock().expect("barrier lock");
        if g.poisoned {
            return Err(Poisoned);
        }
        g.arrived += 1;
        if g.arrived == self.n {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = g.generation;
        while g.generation == gen && !g.poisoned {
            g = self.cv.wait(g).expect("barrier wait");
        }
        if g.poisoned {
            Err(Poisoned)
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        self.state.lock().expect("barrier lock").poisoned = true;
        self.cv.notify_all();
    }
}

/// Shared inter-worker exchange for one parallel run.
struct Shared {
    /// `inbox[to][from]`: cross-shard deliveries moved out of `from`'s
    /// outbox at its window barrier, awaiting ingestion by `to`.
    #[allow(clippy::type_complexity)]
    inbox: Vec<Vec<Mutex<Vec<(SimTime, usize, Box<Envelope>)>>>>,
    /// Per shard: earliest pending virtual time (own heap ∪ own outbox) as
    /// of its last publish; `u64::MAX` = nothing pending.
    next_time: Vec<AtomicU64>,
    /// Per shard: entries executed so far (drives digest-point scheduling).
    execs: Vec<AtomicU64>,
    /// Per shard: buffered reduction contributions were published this round.
    has_contribs: Vec<AtomicBool>,
    /// Per shard: a chare requested exit during the last window.
    wants_exit: Vec<AtomicBool>,
    /// Contributions awaiting the boundary fold (consumed by shard 0).
    contrib_slots: Vec<Mutex<Vec<ContribRec>>>,
    /// Per-shard state digests of one due digest point (merged by shard 0).
    digest_slots: Vec<Mutex<Vec<(ObjId, u64)>>>,
    /// Global executed-entry count at the last emitted digest point.
    last_digest: AtomicU64,
    barrier: PoisonBarrier,

    // ----- adaptive engine (barrier-free) --------------------------------
    /// Per shard: window clock — every local event strictly before it has
    /// executed, and its sends/contributions are flushed. Monotone.
    clock: Vec<AtomicU64>,
    /// Per shard: publish/ingest counter; the termination detector's
    /// double scan declares the run drained only if no epoch moved.
    epoch: Vec<AtomicU64>,
    /// `mbox_min[to][from]`: floor timestamp of the un-ingested messages in
    /// `inbox[to][from]` (`u64::MAX` = empty). Written only while holding
    /// the corresponding inbox mutex, so floor and contents never disagree;
    /// keeps in-flight work visible to every horizon even while neither
    /// endpoint's published pending time covers it.
    mbox_min: Vec<Vec<AtomicU64>>,
    /// Floor on the merge time of any reduction contribution the folder
    /// has not folded yet (buffered or still in flight). Horizons stay
    /// below `red_floor + cb_min` so no shard can outrun a completion
    /// callback that has not been scheduled yet.
    red_floor: AtomicU64,
    /// Earliest α-cell end holding an outstanding fold-produced callback
    /// delivery; every horizon caps here until all shards reach it, which
    /// makes callback-driven exits (the apps' only exit pattern) stop the
    /// run at exactly the sequential cell. `u64::MAX` = no obligation.
    cb_hold: AtomicU64,
    /// End of the α-cell in which some shard executed `ctx.exit()` — the
    /// sequential engine stops there; no shard drains a cell past it.
    exit_cut: AtomicU64,
    /// Run-over flag (drained, exit complete, or a worker panicked).
    done: AtomicBool,
    /// Parking lot for horizon-starved shards. Publishes notify only when
    /// `waiters > 0`, keeping the free-run fast path syscall-free.
    park: Mutex<()>,
    park_cv: Condvar,
    waiters: AtomicUsize,
}

impl Shared {
    /// Wake every parked shard (cheap no-op when nobody is parked).
    fn notify(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.park.lock().expect("park lock");
            self.park_cv.notify_all();
        }
    }

    /// Flag the run as over and wake everyone.
    fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
        let _g = self.park.lock().expect("park lock");
        self.park_cv.notify_all();
    }
}

impl Runtime {
    /// Decide whether the pending run can execute on the sharded engine,
    /// and build the frozen location table and shard layout if so. `None`
    /// means "fall back to the sequential engine" — always safe, because
    /// both engines produce identical results when both can run.
    pub(crate) fn parallel_plan(&mut self) -> Option<ParPlan> {
        let n = self.machine.num_pes;
        let shards = self.threads.min(n);
        if shards < 2 || n < 2 || self.live_pes != n {
            return None;
        }
        // The conservative window is the minimum cross-PE latency; a
        // zero-latency fabric leaves no lookahead to exploit.
        if self.net.min_remote_delay().0 == 0 {
            return None;
        }
        // External sinks write files in arrival order and the critical-path
        // analyzer chains Arc nodes across sends — both are sequential-only
        // (the silent-fallback contract keeps results byte-identical).
        if self
            .tracer
            .as_ref()
            .is_some_and(|t| t.has_sinks() || t.cp_enabled())
        {
            return None;
        }
        // A capped recording sheds by *global* exec order, which shard
        // recorders don't know; run it sequentially.
        if self
            .recorder
            .as_ref()
            .is_some_and(|r| r.cfg.max_execs.is_some())
        {
            return None;
        }
        if self.thermal.is_some()
            || self.perturb.is_some()
            || self.elastic.is_some()
            || self.qd.is_some()
            || self.ckpt_pending.is_some()
            || self.auto_ckpt_interval.is_some()
            || self.track_comm
            || self.exit_requested
            || self.max_events != u64::MAX
            || !self.limbo.is_empty()
            || !self.pending_contribs.is_empty()
            || self.queued != 0
            || self.busy_pes != 0
        {
            return None;
        }
        if self.pes[..n].iter().any(|p| {
            !p.alive
                || p.busy
                || p.current.is_some()
                || !p.pending.is_empty()
                || p.blocked_until > self.now
        }) {
            return None;
        }
        if self.events.is_empty() {
            return None;
        }
        // The heap must hold only plain deliveries: scheduled failures,
        // DVFS ticks, reconfigurations, LB rounds, and in-flight
        // migrations/checkpoints are all sequential-only machinery.
        let entries = self.events.drain_entries();
        let all_deliver = entries
            .iter()
            .all(|(_, _, ev)| matches!(ev, Ev::Deliver { .. }));
        for (t, k, ev) in entries {
            self.events.push_keyed(t, k, ev);
        }
        if !all_deliver {
            return None;
        }
        // Freeze the location table.
        let mut locs = FxHashMap::default();
        let mut lens = Vec::with_capacity(self.stores.len());
        let mut targets = Vec::with_capacity(self.stores.len());
        for s in &self.stores {
            let id = s.id();
            let mut tv = Vec::new();
            for ix in s.indices() {
                let (pe, ep) = s.locate(&ix)?;
                locs.insert(ObjId { array: id, ix }, (pe, ep));
                tv.push((ix, pe));
            }
            lens.push(s.len());
            targets.push(tv);
        }
        // Stale location-cache entries would need the sequential
        // forwarding path (deliver to the old PE, re-route from there);
        // a shard cannot host that dance for elements it doesn't own.
        for cache in &self.loc_cache {
            for (obj, (pe, ep)) in cache.iter() {
                if locs.get(&obj) != Some(&(pe, ep)) {
                    return None;
                }
            }
        }
        let bounds = lookahead::plan_bounds(n, shards, &self.net);
        let dist = lookahead::close(lookahead::pair_matrix(&self.net, &bounds));
        Some(ParPlan {
            shards,
            bounds,
            loc: Arc::new(LocTable {
                locs,
                lens,
                targets,
            }),
            dist,
        })
    }

    /// Execute a deadline-free run on `plan.shards` worker threads.
    /// Produces bit-identical state and artifacts to [`Runtime::run_seq_until`]
    /// with `deadline == SimTime::MAX`.
    pub(crate) fn run_parallel(&mut self, plan: ParPlan) -> RunSummary {
        let wall_start = std::time::Instant::now();
        let ParPlan {
            shards,
            bounds,
            loc,
            dist,
        } = plan;
        let n = self.machine.num_pes;
        self.ctrl_snapshot = self.ctrl.snapshot();

        // The run's first boundary happens here, exactly as the sequential
        // loop's first iteration would: no contributions can be pending
        // (eligibility), but a state-digest point may be due from before.
        let t0 = self.events.peek_time().expect("plan requires events");
        let w0 = if t0 >= self.cur_win_end {
            self.boundary_work();
            self.win_end_after(t0)
        } else {
            // Resuming inside a partially drained window (a previous
            // deadline-bounded run stopped mid-window): finish it first.
            self.cur_win_end
        };

        let digest_every = self.recorder.as_ref().and_then(|r| r.cfg.digest_every);
        let exec_offset = self.recorder.as_ref().map_or(0, |r| r.execs_len());

        // ----- split ---------------------------------------------------------
        let bounds_arc = Arc::new(bounds.clone());
        let mut shard_events: Vec<Vec<(SimTime, u64, Ev)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (t, k, ev) in self.events.drain_entries() {
            let Ev::Deliver { pe, env } = ev else {
                unreachable!("plan admitted a non-delivery event");
            };
            let s = bounds
                .iter()
                .position(|&(lo, hi)| pe >= lo && pe < hi)
                .expect("PE in some shard");
            shard_events[s].push((t, k, Ev::Deliver { pe, env }));
        }
        self.inflight = 0; // redistributed to the shards; restored at merge

        let mut reductions_all = Some(std::mem::take(&mut self.reductions));
        let mut shard_rts: Vec<Runtime> = Vec::with_capacity(shards);
        for (s, evs) in shard_events.into_iter().enumerate() {
            let (lo, hi) = bounds[s];
            // Shards inherit the parent's backend choice so a classic-hotpath
            // A/B run is classic end to end.
            let mut events = if self.events.is_heap_backed() {
                EventQueue::heap_backed_with_capacity(evs.len().max(8))
            } else {
                EventQueue::with_capacity(evs.len().max(8))
            };
            for (t, k, ev) in evs {
                events.push_keyed(t, k, ev);
            }
            let inflight = events.len() as u64;
            let mut pes: Vec<PeState> = (0..n).map(|_| PeState::new()).collect();
            for (pe, slot) in pes.iter_mut().enumerate().take(hi).skip(lo) {
                *slot = std::mem::replace(&mut self.pes[pe], PeState::new());
            }
            let stores: Vec<Box<dyn AnyArray>> = self
                .stores
                .iter_mut()
                .map(|st| st.split_off_pes(lo, hi))
                .collect();
            shard_rts.push(Runtime {
                machine: self.machine.clone(),
                net: self.net.fresh_counters_clone(),
                now: self.now,
                events,
                pes,
                live_pes: n,
                stores,
                home_maps: self.home_maps.clone(),
                array_names: self.array_names.clone(),
                rngs: self.rngs.clone(),
                ctrl: ControlRegistry::new(),
                ctrl_snapshot: self.ctrl_snapshot.clone(),
                loc_cache: self.loc_cache.clone(),
                limbo: FxHashMap::default(),
                // Shard 0 owns reduction state: it performs the boundary
                // folds and allocates from the reduction key slot.
                reductions: if s == 0 {
                    reductions_all.take().expect("taken once")
                } else {
                    FxHashMap::default()
                },
                qd: None,
                inflight,
                queued: 0,
                busy_pes: 0,
                lb: None,
                lb_trigger: self.lb_trigger,
                at_sync_seen: 0,
                lb_rounds: Vec::new(),
                mem_ckpt: None,
                ckpt_pending: None,
                copy_missing: FxHashMap::default(),
                auto_ckpt_interval: None,
                unrecoverable: None,
                elastic: None,
                retired: vec![false; n],
                degraded: None,
                thermal: None,
                dvfs: self.dvfs,
                dvfs_period: self.dvfs_period,
                last_rts_lb: self.last_rts_lb,
                chip_busy: vec![SimTime::ZERO; self.chip_busy.len()],
                sched_overhead: self.sched_overhead,
                metrics: FxHashMap::default(),
                entries: 0,
                messages: 0,
                bytes_moved: 0,
                events_processed: 0,
                wall_run: std::time::Duration::ZERO,
                action_scratch: Vec::new(),
                exit_requested: false,
                max_events: u64::MAX,
                seed: self.seed,
                location_cache: self.location_cache,
                collective_arity: self.collective_arity,
                track_comm: false,
                comm: FxHashMap::default(),
                tracer: self
                    .tracer
                    .as_ref()
                    .map(|tr| Tracer::new(tr.config().clone(), n)),
                cur_cp: None,
                cp_carry: None,
                recorder: self.recorder.as_ref().map(|r| Recorder::new(r.cfg.clone())),
                perturb: None,
                keys: self.keys.clone(),
                cur_slot: n + SLOT_HOST,
                cur_dispatch: (0, 0),
                pending_contribs: Vec::new(),
                cur_win_end: w0,
                win_ns: self.win_ns,
                last_digest_seq: 0,
                par: Some(Box::new(ParShard {
                    shard: s,
                    lo,
                    hi,
                    bounds: bounds_arc.clone(),
                    loc: loc.clone(),
                    outbox: (0..shards).map(|_| Vec::new()).collect(),
                })),
                threads: 1,
                metrics_buf: Vec::new(),
                last_run_parallel: false,
                reconfig_overhead_shrink: self.reconfig_overhead_shrink,
                reconfig_overhead_expand: self.reconfig_overhead_expand,
                arena_enabled: self.arena_enabled,
                // Workers recycle through their own thread-local pools; the
                // base snapshot is meaningless across threads, so shard
                // summaries report arena deltas as best-effort only.
                arena_base: crate::arena::ArenaStats::default(),
                entry_name_cache: FxHashMap::default(),
                global_window: false,
                sync_windows: 0,
                sync_width_ns: 0,
                sync_waits: 0,
                sync_elided: 0,
                cb_log: None,
            });
        }

        // ----- run -----------------------------------------------------------
        // The adaptive (barrier-free) engine handles every plain run; the
        // lockstep engine remains for runs that record periodic state
        // digests (those need an exact global cut at specific α-cells) and
        // for explicit A/B fallback via `RuntimeBuilder::global_window`.
        let adaptive = digest_every.is_none() && !self.global_window;
        // Lower bound on (completion-callback delivery − contribution merge
        // time): the fold prices log_k(P) tree hops of ≥ α each.
        let cb_min = self.tree_depth().saturating_mul(self.win_ns).max(self.win_ns);
        // All events sit at or after t0, so "everything before t0's cell
        // start has executed" is vacuously true on every shard.
        let w_base = (t0.0 / self.win_ns) * self.win_ns;
        let shared = Shared {
            inbox: (0..shards)
                .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            next_time: shard_rts
                .iter()
                .map(|rt| AtomicU64::new(rt.events.peek_time().map_or(u64::MAX, |t| t.0)))
                .collect(),
            execs: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            has_contribs: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            wants_exit: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            contrib_slots: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            digest_slots: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            last_digest: AtomicU64::new(self.last_digest_seq),
            barrier: PoisonBarrier::new(shards),
            clock: (0..shards).map(|_| AtomicU64::new(w_base)).collect(),
            epoch: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            mbox_min: (0..shards)
                .map(|_| (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect())
                .collect(),
            red_floor: AtomicU64::new(t0.0),
            cb_hold: AtomicU64::new(u64::MAX),
            exit_cut: AtomicU64::new(u64::MAX),
            done: AtomicBool::new(false),
            park: Mutex::new(()),
            park_cv: Condvar::new(),
            waiters: AtomicUsize::new(0),
        };

        let results: Vec<std::thread::Result<Runtime>> = std::thread::scope(|scope| {
            let shared = &shared;
            let dist = &dist;
            let handles: Vec<_> = shard_rts
                .into_iter()
                .enumerate()
                .map(|(s, rt)| {
                    scope.spawn(move || {
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            if adaptive {
                                worker_adaptive(rt, shared, shards, s, dist, cb_min)
                            } else {
                                worker(rt, shared, shards, s, exec_offset, digest_every)
                            }
                        }));
                        if out.is_err() {
                            shared.barrier.poison();
                            shared.finish();
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread itself never panics"))
                .collect()
        });
        let mut shard_results = Vec::with_capacity(shards);
        let mut panic_payload = None;
        for r in results {
            match r {
                Ok(rt) => shard_results.push(rt),
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            // Re-raise the worker's panic (e.g. "at_sync is sequential-
            // only") with its original message.
            std::panic::resume_unwind(p);
        }

        // ----- merge ---------------------------------------------------------
        let mut any_exit = false;
        let mut final_now = self.now;
        let mut final_win = self.cur_win_end;
        let mut shard_recorders = Vec::new();
        for mut rt in shard_results {
            let par = rt.par.take().expect("shard mode");
            let (lo, hi) = (par.lo, par.hi);
            for pe in lo..hi {
                self.pes[pe] = std::mem::replace(&mut rt.pes[pe], PeState::new());
                std::mem::swap(&mut self.rngs[pe], &mut rt.rngs[pe]);
                std::mem::swap(&mut self.loc_cache[pe], &mut rt.loc_cache[pe]);
                self.keys[pe] = rt.keys[pe];
            }
            if par.shard == 0 {
                let red = self.red_slot();
                self.keys[red] = rt.keys[red];
                self.reductions = std::mem::take(&mut rt.reductions);
            }
            for (a, st) in rt.stores.drain(..).enumerate() {
                self.stores[a].absorb(st);
            }
            // Any residual outbox items (possible only on an exit break)
            // re-enter the global heap like every other pending delivery.
            for ob in par.outbox {
                for (t, pe, env) in ob {
                    self.inflight += 1;
                    let k = env.rec_id;
                    self.events.push_keyed(t, k, Ev::Deliver { pe, env });
                }
            }
            for (t, k, ev) in rt.events.drain_entries() {
                self.events.push_keyed(t, k, ev);
            }
            self.inflight += rt.inflight;
            self.queued += rt.queued;
            self.busy_pes += rt.busy_pes;
            self.entries += rt.entries;
            self.messages += rt.messages;
            self.bytes_moved += rt.bytes_moved;
            self.events_processed += rt.events_processed;
            self.sync_windows += rt.sync_windows;
            self.sync_width_ns += rt.sync_width_ns;
            self.sync_waits += rt.sync_waits;
            self.sync_elided += rt.sync_elided;
            for (c, b) in self.chip_busy.iter_mut().zip(&rt.chip_busy) {
                *c += *b;
            }
            self.net.absorb_counters(&rt.net);
            self.metrics_buf.append(&mut rt.metrics_buf);
            self.pending_contribs.append(&mut rt.pending_contribs);
            any_exit |= rt.exit_requested;
            final_now = final_now.max(rt.now);
            final_win = final_win.max(rt.cur_win_end);
            if let Some(tr) = rt.tracer.take() {
                self.tracer
                    .as_mut()
                    .expect("split was symmetric")
                    .absorb_shard(tr, lo, hi);
            }
            if let Some(r) = rt.recorder.take() {
                shard_recorders.push(r);
            }
        }
        // Cross-shard deliveries still parked in the exchange (exit break).
        for row in &shared.inbox {
            for cell in row {
                for (t, pe, env) in cell.lock().expect("inbox lock").drain(..) {
                    self.inflight += 1;
                    let k = env.rec_id;
                    self.events.push_keyed(t, k, Ev::Deliver { pe, env });
                }
            }
        }
        // Contributions published but never folded (exit break).
        for slot in &shared.contrib_slots {
            self.pending_contribs
                .append(&mut slot.lock().expect("contrib lock"));
        }
        if let Some(r) = &mut self.recorder {
            r.absorb_shards(shard_recorders);
        }
        // Replay the buffered metric samples in global dispatch order — the
        // order the sequential engine would have journaled them. The sort
        // is stable, so samples from one entry keep their program order.
        let mut buf = std::mem::take(&mut self.metrics_buf);
        buf.sort_by_key(|m| m.dispatch);
        for m in buf {
            self.metrics
                .entry(m.name)
                .or_default()
                .push((m.at_secs, m.value));
        }
        self.now = final_now;
        self.cur_win_end = final_win;
        self.exit_requested = any_exit;
        self.last_digest_seq = shared.last_digest.load(Ordering::Relaxed);
        self.last_run_parallel = true;
        self.wall_run += wall_start.elapsed();
        self.summary()
    }
}

/// One worker: repeatedly drain a conservative window on the shard's own
/// heap, then synchronize. Per round:
///
/// 1. **Publish** — compute the shard's earliest pending time (heap head ∪
///    outbox) *before* moving the outbox into the shared exchange, so every
///    in-flight message is counted by exactly one published horizon; post
///    exec counts and contribution/exit flags.
/// 2. **Barrier A**, then every worker reads all published values and
///    derives identical decisions (exit? fold? digest? next window?).
/// 3. **Boundary work** (only if some shard buffered contributions or a
///    digest point is due): shard 0 folds all contributions in dispatch
///    order and emits the merged digest point, then republishes its horizon
///    (folding schedules callbacks). Bracketed by barriers B and C.
/// 4. **Barrier D** ends the read phase — after it, no worker reads the
///    published values again this round, so the next round's publishes
///    cannot race them.
/// 5. **Ingest** cross-shard deliveries and advance to the window after the
///    global minimum time.
///
/// Cross-shard arrivals always land at or after the *end* of the window
/// that produced them (delay ≥ α), so ingesting between barriers — even one
/// round late on a racy interleaving of steps 5 and 1 — can never introduce
/// an event into a window that has already been drained.
fn worker(
    mut rt: Runtime,
    sh: &Shared,
    shards: usize,
    s: usize,
    exec_offset: u64,
    digest_every: Option<u64>,
) -> Runtime {
    let mut batch: Vec<(u64, Ev)> = Vec::new();
    let mut w_end = rt.cur_win_end;
    loop {
        rt.drain_window(w_end, &mut batch);

        // --- publish ---------------------------------------------------------
        let mut local_min = rt.events.peek_time().map_or(u64::MAX, |t| t.0);
        {
            let par = rt.par.as_mut().expect("shard mode");
            for (dst, ob) in par.outbox.iter_mut().enumerate() {
                if ob.is_empty() {
                    continue;
                }
                for (t, _, _) in ob.iter() {
                    local_min = local_min.min(t.0);
                }
                sh.inbox[dst][s].lock().expect("inbox lock").append(ob);
            }
        }
        let contribs_here = !rt.pending_contribs.is_empty();
        if contribs_here {
            sh.contrib_slots[s]
                .lock()
                .expect("contrib lock")
                .append(&mut rt.pending_contribs);
        }
        sh.next_time[s].store(local_min, Ordering::Relaxed);
        sh.execs[s].store(rt.entries, Ordering::Relaxed);
        sh.has_contribs[s].store(contribs_here, Ordering::Relaxed);
        sh.wants_exit[s].store(rt.exit_requested, Ordering::Relaxed);
        rt.sync_waits += 1;
        if sh.barrier.wait().is_err() {
            return rt; // another worker panicked; unwind quietly
        }

        // --- read + decide (identically on every worker) ---------------------
        // A requested exit stops the run at the end of the current window,
        // before any boundary work — the sequential loop's exact rule.
        if (0..shards).any(|i| sh.wants_exit[i].load(Ordering::Relaxed)) {
            return rt;
        }
        let any_contrib = (0..shards).any(|i| sh.has_contribs[i].load(Ordering::Relaxed));
        let total_execs =
            exec_offset + (0..shards).map(|i| sh.execs[i].load(Ordering::Relaxed)).sum::<u64>();
        let digest_due = digest_every
            .is_some_and(|every| total_execs - sh.last_digest.load(Ordering::Relaxed) >= every);
        let mut t_min = (0..shards)
            .map(|i| sh.next_time[i].load(Ordering::Relaxed))
            .min()
            .expect("at least one shard");

        // --- boundary work ---------------------------------------------------
        if any_contrib || digest_due {
            if digest_due {
                let d = rt.state_digest();
                *sh.digest_slots[s].lock().expect("digest lock") = d;
            }
            rt.sync_waits += 1;
            if sh.barrier.wait().is_err() {
                return rt;
            }
            if s == 0 {
                let mut recs = Vec::new();
                for slot in &sh.contrib_slots {
                    recs.append(&mut slot.lock().expect("contrib lock"));
                }
                rt.pending_contribs = recs;
                rt.fold_contributions();
                if digest_due {
                    let mut digests = Vec::new();
                    for slot in &sh.digest_slots {
                        digests.append(&mut slot.lock().expect("digest lock"));
                    }
                    // Global (array, index) order == the order the
                    // sequential `state_digest` enumerates.
                    digests.sort_unstable_by_key(|&(obj, _)| obj);
                    if let Some(r) = &mut rt.recorder {
                        r.push_state_point_at(total_execs, SimTime(w_end.0), digests);
                    }
                    sh.last_digest.store(total_execs, Ordering::Relaxed);
                }
                // Folding scheduled completion callbacks — to this shard's
                // heap and to the outbox. Flush and republish the horizon.
                let mut m = rt.events.peek_time().map_or(u64::MAX, |t| t.0);
                let par = rt.par.as_mut().expect("shard mode");
                for (dst, ob) in par.outbox.iter_mut().enumerate() {
                    if ob.is_empty() {
                        continue;
                    }
                    for (t, _, _) in ob.iter() {
                        m = m.min(t.0);
                    }
                    sh.inbox[dst][0].lock().expect("inbox lock").append(ob);
                }
                sh.next_time[0].store(m, Ordering::Relaxed);
            }
            rt.sync_waits += 1;
            if sh.barrier.wait().is_err() {
                return rt;
            }
            t_min = t_min.min(sh.next_time[0].load(Ordering::Relaxed));
        }

        // --- end of read phase -----------------------------------------------
        rt.sync_waits += 1;
        if sh.barrier.wait().is_err() {
            return rt;
        }
        if t_min == u64::MAX {
            return rt; // globally drained
        }

        // --- ingest + advance ------------------------------------------------
        for from in 0..shards {
            let mut items = sh.inbox[s][from].lock().expect("inbox lock");
            for (t, pe, env) in items.drain(..) {
                rt.inflight += 1;
                let k = env.rec_id;
                rt.events.push_keyed(t, k, Ev::Deliver { pe, env });
            }
        }
        let next = SimTime(
            (t_min / rt.win_ns)
                .saturating_add(1)
                .saturating_mul(rt.win_ns),
        );
        // Window accounting on shard 0 only: all shards advance the same
        // global window, so per-shard counts would just multiply by the
        // shard count.
        if s == 0 {
            rt.sync_windows += 1;
            rt.sync_width_ns += next.0.saturating_sub(w_end.0);
        }
        w_end = next;
    }
}

// ----- the adaptive (barrier-free) engine ------------------------------------

/// How many `yield_now` rounds a starved shard spins before parking on the
/// condvar. On oversubscribed hosts the yield usually *is* the wakeup (it
/// schedules the peer whose publish we are waiting for).
const SPIN_YIELDS: u32 = 8;

/// Backstop for parked shards: horizons can also widen through folder-side
/// state (red_floor, hold lifts) whose publishes could race a registration,
/// so never sleep unbounded.
const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_micros(500);

fn epoch_sum(sh: &Shared, shards: usize) -> u64 {
    (0..shards)
        .map(|j| sh.epoch[j].load(Ordering::SeqCst))
        .fold(0u64, u64::wrapping_add)
}

/// Flush shard `s`'s outboxes and buffered contributions, then publish its
/// pending time, window clock, and exec count. The order is the adaptive
/// engine's core invariant: *flush before publish*, so any state a peer
/// reads already accounts for everything this shard pushed toward it.
fn publish_adaptive(rt: &mut Runtime, sh: &Shared, s: usize, clock: u64) {
    let par = rt.par.as_mut().expect("shard mode");
    for (dst, ob) in par.outbox.iter_mut().enumerate() {
        if ob.is_empty() {
            continue;
        }
        let mut floor = u64::MAX;
        for (t, _, _) in ob.iter() {
            floor = floor.min(t.0);
        }
        // Floor and contents update under the same lock, so they never
        // disagree; `fetch_min` because the receiver may not have drained
        // our previous batch yet.
        let mut mb = sh.inbox[dst][s].lock().expect("inbox lock");
        sh.mbox_min[dst][s].fetch_min(floor, Ordering::SeqCst);
        mb.append(ob);
    }
    if !rt.pending_contribs.is_empty() {
        let mut slot = sh.contrib_slots[s].lock().expect("contrib lock");
        slot.append(&mut rt.pending_contribs);
        // Flag set under the slot lock: the folder clears it under the
        // same lock, so a concurrent append can never be orphaned.
        sh.has_contribs[s].store(true, Ordering::SeqCst);
    }
    let n = rt.events.peek_time().map_or(u64::MAX, |t| t.0);
    sh.next_time[s].store(n, Ordering::SeqCst);
    sh.clock[s].store(clock, Ordering::SeqCst);
    sh.execs[s].store(rt.entries, Ordering::SeqCst);
    sh.epoch[s].fetch_add(1, Ordering::SeqCst);
    sh.notify();
}

/// Folder-only (shard 0) state for the adaptive engine.
#[derive(Default)]
struct Folder {
    /// Contributions collected from every shard, not yet folded.
    buf: Vec<ContribRec>,
    /// α-cell ends holding outstanding fold-produced callback deliveries,
    /// sorted ascending; `sh.cb_hold` mirrors the front.
    holds: Vec<u64>,
    /// Scratch for the termination detector's epoch double scan.
    epochs: Vec<u64>,
}

/// Fold a batch of contributions on shard 0, registering an α-cell hold for
/// every completion-callback delivery the folds schedule, and flushing
/// cross-shard callbacks immediately. Hold registration *precedes* any
/// `red_floor` advance (the caller's job), so no horizon can widen past a
/// callback cell before the hold is visible.
fn fold_batch(
    rt: &mut Runtime,
    sh: &Shared,
    recs: Vec<ContribRec>,
    win: u64,
    st: &mut Folder,
) -> u64 {
    debug_assert!(rt.pending_contribs.is_empty());
    rt.pending_contribs = recs;
    rt.cb_log = Some(Vec::new());
    rt.fold_contributions();
    let log = rt.cb_log.take().expect("just set");
    let mut fresh = false;
    let mut sched_min = u64::MAX;
    for t in log {
        sched_min = sched_min.min(t);
        let cell = (t / win).saturating_add(1).saturating_mul(win);
        if let Err(i) = st.holds.binary_search(&cell) {
            st.holds.insert(i, cell);
            fresh = true;
        }
    }
    if fresh {
        sh.cb_hold.fetch_min(st.holds[0], Ordering::SeqCst);
    }
    // Completion callbacks for remote shards leave now, not at shard 0's
    // next grant: every horizon already admits them (they sit at or above
    // `red_floor + cb_min`), and the mailbox floors keep them visible.
    let par = rt.par.as_mut().expect("shard mode");
    for (dst, ob) in par.outbox.iter_mut().enumerate() {
        if ob.is_empty() {
            continue;
        }
        let mut floor = u64::MAX;
        for (t, _, _) in ob.iter() {
            floor = floor.min(t.0);
        }
        let mut mb = sh.inbox[dst][0].lock().expect("inbox lock");
        sh.mbox_min[dst][0].fetch_min(floor, Ordering::SeqCst);
        mb.append(ob);
    }
    // Callbacks delivered to shard 0's own heap lower its pending time.
    let n = rt.events.peek_time().map_or(u64::MAX, |t| t.0);
    let prev = sh.next_time[0].load(Ordering::SeqCst);
    if n < prev {
        sh.next_time[0].store(n, Ordering::SeqCst);
    }
    sched_min
}

/// One folder pass (shard 0, every iteration): collect flushed
/// contributions, fold the complete prefix, advance the reduction floor,
/// lift satisfied callback holds, and detect termination.
fn folder_step(rt: &mut Runtime, sh: &Shared, shards: usize, win: u64, st: &mut Folder) {
    // Peer pending times, read BEFORE collecting slots: contributions
    // flush before the pending-time store, so anything not collected below
    // comes from an exec at or after some pending time read here — which
    // makes the derived `red_floor` a true floor on every future callback
    // origin. Same double-read discipline as the worker's horizon scan.
    let mut min_p = u64::MAX;
    for j in 0..shards {
        min_p = min_p.min(sh.next_time[j].load(Ordering::SeqCst));
    }
    for j in 0..shards {
        for from in 0..shards {
            min_p = min_p.min(sh.mbox_min[j][from].load(Ordering::SeqCst));
        }
    }
    for j in 0..shards {
        min_p = min_p.min(sh.next_time[j].load(Ordering::SeqCst));
    }
    // Clocks BEFORE slots: every publish flushes contributions before it
    // stores the clock, so any contribution from below a clock value read
    // here is guaranteed to be sitting in a slot by the time we collect.
    // Reading in the other order races: a shard could flush + advance its
    // clock between our collection and our clock read, and the fold
    // frontier below would run past a contribution we never saw.
    let min_w = (0..shards)
        .map(|j| sh.clock[j].load(Ordering::SeqCst))
        .min()
        .unwrap_or(0);
    // Read the cut AFTER the clocks: an exiting shard stores the cut
    // before publishing the clock that could satisfy a hold at the exit
    // cell, so a lift can never sneak past a just-requested exit.
    let cut = sh.exit_cut.load(Ordering::SeqCst);
    for j in 0..shards {
        if sh.has_contribs[j].load(Ordering::SeqCst) {
            let mut slot = sh.contrib_slots[j].lock().expect("contrib lock");
            st.buf.append(&mut slot);
            sh.has_contribs[j].store(false, Ordering::SeqCst);
        }
    }
    let mut changed = false;

    // Fold every contribution whose merge time is complete: all clocks
    // have passed it (nothing can contribute below a published clock).
    // Under an exit cut, contributions from the exit cell itself stay
    // unfolded — the sequential engine breaks before that boundary.
    let mut frontier = min_w;
    if cut != u64::MAX {
        frontier = frontier.min(cut.saturating_sub(win));
    }
    let mut sched_min = u64::MAX;
    if st.buf.iter().any(|r| r.merge_t < frontier) {
        let mut pre = Vec::new();
        let mut rest = Vec::with_capacity(st.buf.len());
        for r in st.buf.drain(..) {
            if r.merge_t < frontier {
                pre.push(r);
            } else {
                rest.push(r);
            }
        }
        st.buf = rest;
        sched_min = fold_batch(rt, sh, pre, win, st);
        changed = true;
    }

    // Advance the reduction floor: no unfolded or future contribution can
    // sit below min(buffered floor, global pending floor). Monotone, and
    // always AFTER hold registration (see `fold_batch`). `min_p` was read
    // before any fold this pass ran, so it cannot account for the callbacks
    // the fold just scheduled — cap by their minimum delivery time, or an
    // idle between-windows moment (every published time MAX) would advance
    // the floor to MAX and, being monotone, poison every later window.
    let buf_min = st.buf.iter().map(|r| r.merge_t).min().unwrap_or(u64::MAX);
    let floor = buf_min.min(min_p).min(sched_min);
    if floor > sh.red_floor.load(Ordering::SeqCst) {
        sh.red_floor.store(floor, Ordering::SeqCst);
        changed = true;
    }

    // Lift holds every shard has reached. If the callback requested exit,
    // the cut was published before the satisfying clock, so the read
    // order above guarantees `cut` already bounds every horizon here.
    while let Some(&h) = st.holds.first() {
        if min_w >= h {
            st.holds.remove(0);
            sh.cb_hold
                .store(st.holds.first().copied().unwrap_or(u64::MAX), Ordering::SeqCst);
            changed = true;
        } else {
            break;
        }
    }

    if cut != u64::MAX {
        // Exit: over once every shard's clock reaches the cut cell.
        if min_w >= cut {
            sh.finish();
            return;
        }
    } else {
        // Natural termination: nothing pending anywhere, double-checked
        // against the epoch counters (an ingest or publish in the scan
        // window moves an epoch before it can hide work).
        st.epochs.clear();
        st.epochs
            .extend((0..shards).map(|j| sh.epoch[j].load(Ordering::SeqCst)));
        let quiet = (0..shards).all(|j| {
            sh.next_time[j].load(Ordering::SeqCst) == u64::MAX
                && !sh.has_contribs[j].load(Ordering::SeqCst)
                && (0..shards)
                    .all(|from| sh.mbox_min[j][from].load(Ordering::SeqCst) == u64::MAX)
        });
        if quiet {
            let stable = (0..shards)
                .all(|j| sh.epoch[j].load(Ordering::SeqCst) == st.epochs[j])
                && (0..shards).all(|j| sh.next_time[j].load(Ordering::SeqCst) == u64::MAX);
            if stable {
                if !st.buf.is_empty() {
                    // Every heap is quiet but contributions remain: the
                    // sequential engine folds them all at its quiet-heap
                    // boundary (completions re-seed the heaps; incomplete
                    // reductions just accumulate).
                    let recs = std::mem::take(&mut st.buf);
                    let _ = fold_batch(rt, sh, recs, win, st);
                    changed = true;
                } else if st.holds.is_empty() {
                    sh.finish();
                    return;
                }
            }
        }
    }
    if changed {
        sh.epoch[0].fetch_add(1, Ordering::SeqCst);
        sh.notify();
    }
}

/// One adaptive worker. Per iteration: snapshot every peer's published
/// progress (double-reading around the mailbox floors), ingest this
/// shard's mailboxes, grant itself the horizon
///
/// ```text
/// B = min( min_j  pending_j + dist[j][s],   // lookahead closure
///          red_floor + cb_min,              // unscheduled fold callbacks
///          cb_hold,                         // scheduled fold callbacks
///          exit_cut )                       // a shard saw ctx.exit()
/// ```
///
/// then drain complete α-cells below `B`, publishing mid-grant whenever
/// cross-shard traffic or contributions accumulate. A shard that cannot
/// advance spins briefly, then parks until a peer's publish moves an epoch
/// (counted as [`RunSummary::barriers_waited`]). There is no barrier:
/// shards free-run for as many cells as their horizons allow, and
/// [`RunSummary::barriers_elided`] counts every cell edge crossed without
/// blocking.
fn worker_adaptive(
    mut rt: Runtime,
    sh: &Shared,
    shards: usize,
    s: usize,
    dist: &[Vec<u64>],
    cb_min: u64,
) -> Runtime {
    let win = rt.win_ns;
    let mut batch: Vec<(u64, Ev)> = Vec::new();
    let mut my_w = sh.clock[s].load(Ordering::SeqCst);
    let mut pend: Vec<u64> = vec![u64::MAX; shards];
    let mut spins = 0u32;
    let mut parked = false;
    let mut fold = (s == 0).then(Folder::default);

    loop {
        if sh.done.load(Ordering::SeqCst) {
            break;
        }
        let epoch_before = epoch_sum(sh, shards);
        if let Some(st) = fold.as_mut() {
            folder_step(&mut rt, sh, shards, win, st);
            if sh.done.load(Ordering::SeqCst) {
                break;
            }
        }

        // --- snapshot --------------------------------------------------------
        // `red_floor` before `cb_hold`: the folder stores new holds before
        // advancing the floor, so a floor that licenses a wider horizon is
        // always read together with the holds that cap it.
        let floor = sh.red_floor.load(Ordering::SeqCst);
        let hold = sh.cb_hold.load(Ordering::SeqCst);
        let cut = sh.exit_cut.load(Ordering::SeqCst);
        for (j, p) in pend.iter_mut().enumerate() {
            *p = sh.next_time[j].load(Ordering::SeqCst);
        }
        for (j, p) in pend.iter_mut().enumerate() {
            for from in 0..shards {
                *p = (*p).min(sh.mbox_min[j][from].load(Ordering::SeqCst));
            }
        }
        // Re-read the pending times: a peer that just drained a mailbox
        // covered the batch with its own pending time *before* clearing
        // the floor, so one of the two passes always sees those messages.
        for (j, p) in pend.iter_mut().enumerate() {
            *p = (*p).min(sh.next_time[j].load(Ordering::SeqCst));
        }

        // --- ingest ----------------------------------------------------------
        for from in 0..shards {
            if sh.mbox_min[s][from].load(Ordering::SeqCst) == u64::MAX {
                continue;
            }
            // Epoch first: a termination scan that observes the cleared
            // floor is forced to also observe this bump.
            sh.epoch[s].fetch_add(1, Ordering::SeqCst);
            let mut mb = sh.inbox[s][from].lock().expect("inbox lock");
            let mut floor_in = u64::MAX;
            for (t, _, _) in mb.iter() {
                floor_in = floor_in.min(t.0);
            }
            // Cover the batch with our published pending time before
            // clearing the floor: concurrent horizon readers see the
            // messages through one field or the other.
            let n_now = sh.next_time[s].load(Ordering::SeqCst).min(floor_in);
            sh.next_time[s].store(n_now, Ordering::SeqCst);
            sh.mbox_min[s][from].store(u64::MAX, Ordering::SeqCst);
            for (t, pe, env) in mb.drain(..) {
                rt.inflight += 1;
                let k = env.rec_id;
                rt.events.push_keyed(t, k, Ev::Deliver { pe, env });
            }
        }

        // --- horizon ---------------------------------------------------------
        pend[s] = rt.events.peek_time().map_or(u64::MAX, |t| t.0);
        let mut b = lookahead::horizon(dist, &pend, s);
        b = b.min(floor.saturating_add(cb_min)).min(hold).min(cut);

        // --- drain complete α-cells under the horizon ------------------------
        let mut drained = false;
        let mut sent = false;
        while let Some(t) = rt.events.peek_time() {
            let cell_end = rt.win_end_after(t).0;
            if cell_end > b {
                break; // incomplete cell: needs a wider grant
            }
            rt.drain_window(SimTime(cell_end), &mut batch);
            drained = true;
            if rt.exit_requested {
                // Sequential stops at the end of the cell that requested
                // exit. Publish the cut BEFORE any clock that could
                // satisfy a hold at this cell, then stop draining.
                sh.exit_cut.fetch_min(cell_end, Ordering::SeqCst);
                break;
            }
            // Keep cross-traffic and contributions flowing mid-grant:
            // peers compute horizons from what we publish, not what we
            // hoard.
            let flush = {
                let par = rt.par.as_ref().expect("shard mode");
                par.outbox.iter().any(|ob| !ob.is_empty()) || !rt.pending_contribs.is_empty()
            };
            if flush {
                publish_adaptive(&mut rt, sh, s, cell_end);
                sent = true;
            }
        }

        // --- commit ----------------------------------------------------------
        let new_n = rt.events.peek_time().map_or(u64::MAX, |t| t.0);
        let new_clock = my_w.max(new_n.min(b));
        let clock_moved = new_clock > my_w;
        if clock_moved {
            rt.sync_windows += 1;
            rt.sync_width_ns += new_clock - my_w;
            if !parked {
                // Every α-cell edge crossed without blocking is a barrier
                // the lockstep engine would have paid four waits for.
                rt.sync_elided += new_clock / win - my_w / win;
            }
            parked = false;
            my_w = new_clock;
        }
        if drained || sent || clock_moved || new_n != sh.next_time[s].load(Ordering::SeqCst) {
            publish_adaptive(&mut rt, sh, s, my_w);
            spins = 0;
            continue;
        }

        // --- starved: spin, then park ----------------------------------------
        spins += 1;
        if spins <= SPIN_YIELDS {
            std::thread::yield_now();
            continue;
        }
        spins = 0;
        parked = true;
        rt.sync_waits += 1;
        sh.waiters.fetch_add(1, Ordering::SeqCst);
        {
            let g = sh.park.lock().expect("park lock");
            // Re-check under the lock; publishes notify while holding it,
            // so a wakeup between our scan and this registration cannot
            // be lost.
            let moved =
                sh.done.load(Ordering::SeqCst) || epoch_sum(sh, shards) != epoch_before;
            if !moved {
                let _ = sh
                    .park_cv
                    .wait_timeout(g, PARK_TIMEOUT)
                    .expect("park wait");
            }
        }
        sh.waiters.fetch_sub(1, Ordering::SeqCst);
    }
    // Unfolded residue (exit-cell contributions, or an incomplete final
    // reduction interrupted by a peer's panic) re-enters the merge like any
    // shard-local pending contribution.
    if let Some(st) = fold {
        rt.pending_contribs.extend(st.buf);
    }
    rt
}
