//! The parallel multi-worker engine: shard the simulated PEs across OS
//! worker threads, synchronized by conservative lookahead windows.
//!
//! ## How it stays byte-identical to sequential execution
//!
//! The sequential engine already executes in windows of width α (the
//! minimum cross-PE network latency, [`Runtime::win_ns`]): all events with
//! `t < W` run before any window-boundary work (reduction folds, state
//! digests) at `W`. Because every cross-PE message is delayed by at least
//! α, an event executing inside window `[W-α, W)` can only schedule
//! *remote* work at `t ≥ W` — after the boundary. That lookahead is the
//! license to parallelize: shard the PEs, let each worker drain the same
//! window on its own event heap, and exchange cross-shard messages at the
//! barrier. Nothing a shard does inside a window can affect another shard
//! within that window.
//!
//! Determinism then reduces to ordering. Every event carries a globally
//! unique key allocated from its *producer's* key slot
//! ([`Runtime::fresh_key`]): shards own disjoint slots, so they allocate
//! exactly the keys the sequential engine would, with no coordination.
//! Each shard's heap pops in `(time, key)` order — the same total order the
//! sequential heap uses — so merging shard streams by `(time, key)`
//! reproduces the sequential dispatch sequence exactly. Reductions fold at
//! window boundaries in `(dispatch time, dispatch key)` order of their
//! contributing entries, on shard 0, which owns the reduction key slot.
//!
//! Everything observable — chare states, event keys, virtual times, trace
//! buffers, replay logs, metric journals — is merged back in that dispatch
//! order after the run, so `run()` with N workers produces bit-for-bit the
//! state and artifacts of `run()` with one.
//!
//! ## What parallel mode refuses
//!
//! Features that move or create chares mid-run (migration, LB, dynamic
//! insertion), observe global instantaneous state (quiescence detection),
//! or drive RTS machinery from timers (DVFS, auto-checkpointing, injected
//! failures) are sequential-only. [`Runtime::parallel_plan`] detects them
//! up front and falls back to the sequential engine silently; mid-run
//! attempts (e.g. a chare calling `at_sync`) panic with a pointed message.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::array::{AnyArray, ObjId};
use crate::ctrl::ControlRegistry;
use crate::replay::Recorder;
use crate::runtime::{ContribRec, Envelope, Ev, PeState, RunSummary, Runtime, SLOT_HOST};
use crate::trace::Tracer;
use crate::Ix;
use charm_machine::{EventQueue, SimTime};
use fxhash::FxHashMap;

/// Process-wide default for [`crate::RuntimeBuilder::threads`].
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Default worker-thread count new runtimes start with (1 = sequential).
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed).max(1)
}

/// Set the process-wide default worker-thread count picked up by
/// [`crate::RuntimeBuilder`]s constructed afterwards. Lets drivers and
/// tests opt whole programs into parallel execution without threading a
/// parameter through every builder call site.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Frozen global element-location table shared by every shard. Locations
/// cannot change during a parallel run (migration and insertion are
/// sequential-only), so one immutable snapshot answers all routing,
/// broadcast-enumeration, and reduction-size queries.
pub(crate) struct LocTable {
    locs: FxHashMap<ObjId, (usize, u32)>,
    /// Element count per array (indexed by array id).
    lens: Vec<usize>,
    /// Sorted `(index, pe)` pairs per array (indexed by array id).
    targets: Vec<Vec<(Ix, usize)>>,
}

impl LocTable {
    pub(crate) fn locate(&self, obj: ObjId) -> Option<(usize, u32)> {
        self.locs.get(&obj).copied()
    }

    pub(crate) fn array_len(&self, array: crate::ArrayId) -> usize {
        self.lens.get(array.0 as usize).copied().unwrap_or(0)
    }

    pub(crate) fn targets(&self, array: crate::ArrayId) -> Vec<(Ix, usize)> {
        self.targets
            .get(array.0 as usize)
            .cloned()
            .unwrap_or_default()
    }
}

/// Per-shard state hung off a shard runtime's `par` field. Its presence is
/// what switches [`Runtime`] internals into shard mode.
pub(crate) struct ParShard {
    /// This shard's index.
    pub(crate) shard: usize,
    /// First PE this shard owns.
    pub(crate) lo: usize,
    /// One past the last PE this shard owns.
    pub(crate) hi: usize,
    /// Every shard's `[lo, hi)` range, for routing outbound deliveries.
    bounds: Arc<Vec<(usize, usize)>>,
    /// The run-global frozen location table.
    pub(crate) loc: Arc<LocTable>,
    /// Cross-shard deliveries produced this window, per destination shard;
    /// moved into the shared exchange at the window barrier.
    pub(crate) outbox: Vec<Vec<(SimTime, usize, Box<Envelope>)>>,
}

impl ParShard {
    /// Which shard owns a PE.
    pub(crate) fn shard_of(&self, pe: usize) -> usize {
        self.bounds
            .iter()
            .position(|&(lo, hi)| pe >= lo && pe < hi)
            .expect("PE outside every shard")
    }
}

/// Everything [`Runtime::run_parallel`] needs that eligibility analysis
/// already computed.
pub(crate) struct ParPlan {
    shards: usize,
    bounds: Vec<(usize, usize)>,
    loc: Arc<LocTable>,
}

/// A [`Condvar`] barrier with poisoning: when a worker panics it poisons
/// the barrier instead of leaving the others blocked forever, so the panic
/// (e.g. "at_sync is sequential-only") propagates to the caller promptly.
struct PoisonBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// Marker returned from [`PoisonBarrier::wait`] when another worker died.
struct Poisoned;

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        PoisonBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    fn wait(&self) -> Result<(), Poisoned> {
        let mut g = self.state.lock().expect("barrier lock");
        if g.poisoned {
            return Err(Poisoned);
        }
        g.arrived += 1;
        if g.arrived == self.n {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = g.generation;
        while g.generation == gen && !g.poisoned {
            g = self.cv.wait(g).expect("barrier wait");
        }
        if g.poisoned {
            Err(Poisoned)
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        self.state.lock().expect("barrier lock").poisoned = true;
        self.cv.notify_all();
    }
}

/// Shared inter-worker exchange for one parallel run.
struct Shared {
    /// `inbox[to][from]`: cross-shard deliveries moved out of `from`'s
    /// outbox at its window barrier, awaiting ingestion by `to`.
    #[allow(clippy::type_complexity)]
    inbox: Vec<Vec<Mutex<Vec<(SimTime, usize, Box<Envelope>)>>>>,
    /// Per shard: earliest pending virtual time (own heap ∪ own outbox) as
    /// of its last publish; `u64::MAX` = nothing pending.
    next_time: Vec<AtomicU64>,
    /// Per shard: entries executed so far (drives digest-point scheduling).
    execs: Vec<AtomicU64>,
    /// Per shard: buffered reduction contributions were published this round.
    has_contribs: Vec<AtomicBool>,
    /// Per shard: a chare requested exit during the last window.
    wants_exit: Vec<AtomicBool>,
    /// Contributions awaiting the boundary fold (consumed by shard 0).
    contrib_slots: Vec<Mutex<Vec<ContribRec>>>,
    /// Per-shard state digests of one due digest point (merged by shard 0).
    digest_slots: Vec<Mutex<Vec<(ObjId, u64)>>>,
    /// Global executed-entry count at the last emitted digest point.
    last_digest: AtomicU64,
    barrier: PoisonBarrier,
}

impl Runtime {
    /// Decide whether the pending run can execute on the sharded engine,
    /// and build the frozen location table and shard layout if so. `None`
    /// means "fall back to the sequential engine" — always safe, because
    /// both engines produce identical results when both can run.
    pub(crate) fn parallel_plan(&mut self) -> Option<ParPlan> {
        let n = self.machine.num_pes;
        let shards = self.threads.min(n);
        if shards < 2 || n < 2 || self.live_pes != n {
            return None;
        }
        // The conservative window is the minimum cross-PE latency; a
        // zero-latency fabric leaves no lookahead to exploit.
        if self.net.min_remote_delay().0 == 0 {
            return None;
        }
        // External sinks write files in arrival order and the critical-path
        // analyzer chains Arc nodes across sends — both are sequential-only
        // (the silent-fallback contract keeps results byte-identical).
        if self
            .tracer
            .as_ref()
            .is_some_and(|t| t.has_sinks() || t.cp_enabled())
        {
            return None;
        }
        // A capped recording sheds by *global* exec order, which shard
        // recorders don't know; run it sequentially.
        if self
            .recorder
            .as_ref()
            .is_some_and(|r| r.cfg.max_execs.is_some())
        {
            return None;
        }
        if self.thermal.is_some()
            || self.perturb.is_some()
            || self.elastic.is_some()
            || self.qd.is_some()
            || self.ckpt_pending.is_some()
            || self.auto_ckpt_interval.is_some()
            || self.track_comm
            || self.exit_requested
            || self.max_events != u64::MAX
            || !self.limbo.is_empty()
            || !self.pending_contribs.is_empty()
            || self.queued != 0
            || self.busy_pes != 0
        {
            return None;
        }
        if self.pes[..n].iter().any(|p| {
            !p.alive
                || p.busy
                || p.current.is_some()
                || !p.pending.is_empty()
                || p.blocked_until > self.now
        }) {
            return None;
        }
        if self.events.is_empty() {
            return None;
        }
        // The heap must hold only plain deliveries: scheduled failures,
        // DVFS ticks, reconfigurations, LB rounds, and in-flight
        // migrations/checkpoints are all sequential-only machinery.
        let entries = self.events.drain_entries();
        let all_deliver = entries
            .iter()
            .all(|(_, _, ev)| matches!(ev, Ev::Deliver { .. }));
        for (t, k, ev) in entries {
            self.events.push_keyed(t, k, ev);
        }
        if !all_deliver {
            return None;
        }
        // Freeze the location table.
        let mut locs = FxHashMap::default();
        let mut lens = Vec::with_capacity(self.stores.len());
        let mut targets = Vec::with_capacity(self.stores.len());
        for s in &self.stores {
            let id = s.id();
            let mut tv = Vec::new();
            for ix in s.indices() {
                let (pe, ep) = s.locate(&ix)?;
                locs.insert(ObjId { array: id, ix }, (pe, ep));
                tv.push((ix, pe));
            }
            lens.push(s.len());
            targets.push(tv);
        }
        // Stale location-cache entries would need the sequential
        // forwarding path (deliver to the old PE, re-route from there);
        // a shard cannot host that dance for elements it doesn't own.
        for cache in &self.loc_cache {
            for (obj, (pe, ep)) in cache.iter() {
                if locs.get(&obj) != Some(&(pe, ep)) {
                    return None;
                }
            }
        }
        let bounds: Vec<(usize, usize)> = (0..shards)
            .map(|s| (s * n / shards, (s + 1) * n / shards))
            .collect();
        Some(ParPlan {
            shards,
            bounds,
            loc: Arc::new(LocTable {
                locs,
                lens,
                targets,
            }),
        })
    }

    /// Execute a deadline-free run on `plan.shards` worker threads.
    /// Produces bit-identical state and artifacts to [`Runtime::run_seq_until`]
    /// with `deadline == SimTime::MAX`.
    pub(crate) fn run_parallel(&mut self, plan: ParPlan) -> RunSummary {
        let wall_start = std::time::Instant::now();
        let ParPlan {
            shards,
            bounds,
            loc,
        } = plan;
        let n = self.machine.num_pes;
        self.ctrl_snapshot = self.ctrl.snapshot();

        // The run's first boundary happens here, exactly as the sequential
        // loop's first iteration would: no contributions can be pending
        // (eligibility), but a state-digest point may be due from before.
        let t0 = self.events.peek_time().expect("plan requires events");
        let w0 = if t0 >= self.cur_win_end {
            self.boundary_work();
            self.win_end_after(t0)
        } else {
            // Resuming inside a partially drained window (a previous
            // deadline-bounded run stopped mid-window): finish it first.
            self.cur_win_end
        };

        let digest_every = self.recorder.as_ref().and_then(|r| r.cfg.digest_every);
        let exec_offset = self.recorder.as_ref().map_or(0, |r| r.execs_len());

        // ----- split ---------------------------------------------------------
        let bounds_arc = Arc::new(bounds.clone());
        let mut shard_events: Vec<Vec<(SimTime, u64, Ev)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (t, k, ev) in self.events.drain_entries() {
            let Ev::Deliver { pe, env } = ev else {
                unreachable!("plan admitted a non-delivery event");
            };
            let s = bounds
                .iter()
                .position(|&(lo, hi)| pe >= lo && pe < hi)
                .expect("PE in some shard");
            shard_events[s].push((t, k, Ev::Deliver { pe, env }));
        }
        self.inflight = 0; // redistributed to the shards; restored at merge

        let mut reductions_all = Some(std::mem::take(&mut self.reductions));
        let mut shard_rts: Vec<Runtime> = Vec::with_capacity(shards);
        for (s, evs) in shard_events.into_iter().enumerate() {
            let (lo, hi) = bounds[s];
            // Shards inherit the parent's backend choice so a classic-hotpath
            // A/B run is classic end to end.
            let mut events = if self.events.is_heap_backed() {
                EventQueue::heap_backed_with_capacity(evs.len().max(8))
            } else {
                EventQueue::with_capacity(evs.len().max(8))
            };
            for (t, k, ev) in evs {
                events.push_keyed(t, k, ev);
            }
            let inflight = events.len() as u64;
            let mut pes: Vec<PeState> = (0..n).map(|_| PeState::new()).collect();
            for (pe, slot) in pes.iter_mut().enumerate().take(hi).skip(lo) {
                *slot = std::mem::replace(&mut self.pes[pe], PeState::new());
            }
            let stores: Vec<Box<dyn AnyArray>> = self
                .stores
                .iter_mut()
                .map(|st| st.split_off_pes(lo, hi))
                .collect();
            shard_rts.push(Runtime {
                machine: self.machine.clone(),
                net: self.net.fresh_counters_clone(),
                now: self.now,
                events,
                pes,
                live_pes: n,
                stores,
                home_maps: self.home_maps.clone(),
                array_names: self.array_names.clone(),
                rngs: self.rngs.clone(),
                ctrl: ControlRegistry::new(),
                ctrl_snapshot: self.ctrl_snapshot.clone(),
                loc_cache: self.loc_cache.clone(),
                limbo: FxHashMap::default(),
                // Shard 0 owns reduction state: it performs the boundary
                // folds and allocates from the reduction key slot.
                reductions: if s == 0 {
                    reductions_all.take().expect("taken once")
                } else {
                    FxHashMap::default()
                },
                qd: None,
                inflight,
                queued: 0,
                busy_pes: 0,
                lb: None,
                lb_trigger: self.lb_trigger,
                at_sync_seen: 0,
                lb_rounds: Vec::new(),
                mem_ckpt: None,
                ckpt_pending: None,
                copy_missing: FxHashMap::default(),
                auto_ckpt_interval: None,
                unrecoverable: None,
                elastic: None,
                retired: vec![false; n],
                degraded: None,
                thermal: None,
                dvfs: self.dvfs,
                dvfs_period: self.dvfs_period,
                last_rts_lb: self.last_rts_lb,
                chip_busy: vec![SimTime::ZERO; self.chip_busy.len()],
                sched_overhead: self.sched_overhead,
                metrics: FxHashMap::default(),
                entries: 0,
                messages: 0,
                bytes_moved: 0,
                events_processed: 0,
                wall_run: std::time::Duration::ZERO,
                action_scratch: Vec::new(),
                exit_requested: false,
                max_events: u64::MAX,
                seed: self.seed,
                location_cache: self.location_cache,
                collective_arity: self.collective_arity,
                track_comm: false,
                comm: FxHashMap::default(),
                tracer: self
                    .tracer
                    .as_ref()
                    .map(|tr| Tracer::new(tr.config().clone(), n)),
                cur_cp: None,
                cp_carry: None,
                recorder: self.recorder.as_ref().map(|r| Recorder::new(r.cfg.clone())),
                perturb: None,
                keys: self.keys.clone(),
                cur_slot: n + SLOT_HOST,
                cur_dispatch: (0, 0),
                pending_contribs: Vec::new(),
                cur_win_end: w0,
                win_ns: self.win_ns,
                last_digest_seq: 0,
                par: Some(Box::new(ParShard {
                    shard: s,
                    lo,
                    hi,
                    bounds: bounds_arc.clone(),
                    loc: loc.clone(),
                    outbox: (0..shards).map(|_| Vec::new()).collect(),
                })),
                threads: 1,
                metrics_buf: Vec::new(),
                last_run_parallel: false,
                reconfig_overhead_shrink: self.reconfig_overhead_shrink,
                reconfig_overhead_expand: self.reconfig_overhead_expand,
                arena_enabled: self.arena_enabled,
                // Workers recycle through their own thread-local pools; the
                // base snapshot is meaningless across threads, so shard
                // summaries report arena deltas as best-effort only.
                arena_base: crate::arena::ArenaStats::default(),
                entry_name_cache: FxHashMap::default(),
            });
        }

        // ----- run -----------------------------------------------------------
        let shared = Shared {
            inbox: (0..shards)
                .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            next_time: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            execs: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            has_contribs: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            wants_exit: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            contrib_slots: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            digest_slots: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            last_digest: AtomicU64::new(self.last_digest_seq),
            barrier: PoisonBarrier::new(shards),
        };

        let results: Vec<std::thread::Result<Runtime>> = std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = shard_rts
                .into_iter()
                .enumerate()
                .map(|(s, rt)| {
                    scope.spawn(move || {
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            worker(rt, shared, shards, s, exec_offset, digest_every)
                        }));
                        if out.is_err() {
                            shared.barrier.poison();
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread itself never panics"))
                .collect()
        });
        let mut shard_results = Vec::with_capacity(shards);
        let mut panic_payload = None;
        for r in results {
            match r {
                Ok(rt) => shard_results.push(rt),
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            // Re-raise the worker's panic (e.g. "at_sync is sequential-
            // only") with its original message.
            std::panic::resume_unwind(p);
        }

        // ----- merge ---------------------------------------------------------
        let mut any_exit = false;
        let mut final_now = self.now;
        let mut final_win = self.cur_win_end;
        let mut shard_recorders = Vec::new();
        for mut rt in shard_results {
            let par = rt.par.take().expect("shard mode");
            let (lo, hi) = (par.lo, par.hi);
            for pe in lo..hi {
                self.pes[pe] = std::mem::replace(&mut rt.pes[pe], PeState::new());
                std::mem::swap(&mut self.rngs[pe], &mut rt.rngs[pe]);
                std::mem::swap(&mut self.loc_cache[pe], &mut rt.loc_cache[pe]);
                self.keys[pe] = rt.keys[pe];
            }
            if par.shard == 0 {
                let red = self.red_slot();
                self.keys[red] = rt.keys[red];
                self.reductions = std::mem::take(&mut rt.reductions);
            }
            for (a, st) in rt.stores.drain(..).enumerate() {
                self.stores[a].absorb(st);
            }
            // Any residual outbox items (possible only on an exit break)
            // re-enter the global heap like every other pending delivery.
            for ob in par.outbox {
                for (t, pe, env) in ob {
                    self.inflight += 1;
                    let k = env.rec_id;
                    self.events.push_keyed(t, k, Ev::Deliver { pe, env });
                }
            }
            for (t, k, ev) in rt.events.drain_entries() {
                self.events.push_keyed(t, k, ev);
            }
            self.inflight += rt.inflight;
            self.queued += rt.queued;
            self.busy_pes += rt.busy_pes;
            self.entries += rt.entries;
            self.messages += rt.messages;
            self.bytes_moved += rt.bytes_moved;
            self.events_processed += rt.events_processed;
            for (c, b) in self.chip_busy.iter_mut().zip(&rt.chip_busy) {
                *c += *b;
            }
            self.net.absorb_counters(&rt.net);
            self.metrics_buf.append(&mut rt.metrics_buf);
            self.pending_contribs.append(&mut rt.pending_contribs);
            any_exit |= rt.exit_requested;
            final_now = final_now.max(rt.now);
            final_win = final_win.max(rt.cur_win_end);
            if let Some(tr) = rt.tracer.take() {
                self.tracer
                    .as_mut()
                    .expect("split was symmetric")
                    .absorb_shard(tr, lo, hi);
            }
            if let Some(r) = rt.recorder.take() {
                shard_recorders.push(r);
            }
        }
        // Cross-shard deliveries still parked in the exchange (exit break).
        for row in &shared.inbox {
            for cell in row {
                for (t, pe, env) in cell.lock().expect("inbox lock").drain(..) {
                    self.inflight += 1;
                    let k = env.rec_id;
                    self.events.push_keyed(t, k, Ev::Deliver { pe, env });
                }
            }
        }
        // Contributions published but never folded (exit break).
        for slot in &shared.contrib_slots {
            self.pending_contribs
                .append(&mut slot.lock().expect("contrib lock"));
        }
        if let Some(r) = &mut self.recorder {
            r.absorb_shards(shard_recorders);
        }
        // Replay the buffered metric samples in global dispatch order — the
        // order the sequential engine would have journaled them. The sort
        // is stable, so samples from one entry keep their program order.
        let mut buf = std::mem::take(&mut self.metrics_buf);
        buf.sort_by_key(|m| m.dispatch);
        for m in buf {
            self.metrics
                .entry(m.name)
                .or_default()
                .push((m.at_secs, m.value));
        }
        self.now = final_now;
        self.cur_win_end = final_win;
        self.exit_requested = any_exit;
        self.last_digest_seq = shared.last_digest.load(Ordering::Relaxed);
        self.last_run_parallel = true;
        self.wall_run += wall_start.elapsed();
        self.summary()
    }
}

/// One worker: repeatedly drain a conservative window on the shard's own
/// heap, then synchronize. Per round:
///
/// 1. **Publish** — compute the shard's earliest pending time (heap head ∪
///    outbox) *before* moving the outbox into the shared exchange, so every
///    in-flight message is counted by exactly one published horizon; post
///    exec counts and contribution/exit flags.
/// 2. **Barrier A**, then every worker reads all published values and
///    derives identical decisions (exit? fold? digest? next window?).
/// 3. **Boundary work** (only if some shard buffered contributions or a
///    digest point is due): shard 0 folds all contributions in dispatch
///    order and emits the merged digest point, then republishes its horizon
///    (folding schedules callbacks). Bracketed by barriers B and C.
/// 4. **Barrier D** ends the read phase — after it, no worker reads the
///    published values again this round, so the next round's publishes
///    cannot race them.
/// 5. **Ingest** cross-shard deliveries and advance to the window after the
///    global minimum time.
///
/// Cross-shard arrivals always land at or after the *end* of the window
/// that produced them (delay ≥ α), so ingesting between barriers — even one
/// round late on a racy interleaving of steps 5 and 1 — can never introduce
/// an event into a window that has already been drained.
fn worker(
    mut rt: Runtime,
    sh: &Shared,
    shards: usize,
    s: usize,
    exec_offset: u64,
    digest_every: Option<u64>,
) -> Runtime {
    let mut batch: Vec<(u64, Ev)> = Vec::new();
    let mut w_end = rt.cur_win_end;
    loop {
        rt.drain_window(w_end, &mut batch);

        // --- publish ---------------------------------------------------------
        let mut local_min = rt.events.peek_time().map_or(u64::MAX, |t| t.0);
        {
            let par = rt.par.as_mut().expect("shard mode");
            for (dst, ob) in par.outbox.iter_mut().enumerate() {
                if ob.is_empty() {
                    continue;
                }
                for (t, _, _) in ob.iter() {
                    local_min = local_min.min(t.0);
                }
                sh.inbox[dst][s].lock().expect("inbox lock").append(ob);
            }
        }
        let contribs_here = !rt.pending_contribs.is_empty();
        if contribs_here {
            sh.contrib_slots[s]
                .lock()
                .expect("contrib lock")
                .append(&mut rt.pending_contribs);
        }
        sh.next_time[s].store(local_min, Ordering::Relaxed);
        sh.execs[s].store(rt.entries, Ordering::Relaxed);
        sh.has_contribs[s].store(contribs_here, Ordering::Relaxed);
        sh.wants_exit[s].store(rt.exit_requested, Ordering::Relaxed);
        if sh.barrier.wait().is_err() {
            return rt; // another worker panicked; unwind quietly
        }

        // --- read + decide (identically on every worker) ---------------------
        // A requested exit stops the run at the end of the current window,
        // before any boundary work — the sequential loop's exact rule.
        if (0..shards).any(|i| sh.wants_exit[i].load(Ordering::Relaxed)) {
            return rt;
        }
        let any_contrib = (0..shards).any(|i| sh.has_contribs[i].load(Ordering::Relaxed));
        let total_execs =
            exec_offset + (0..shards).map(|i| sh.execs[i].load(Ordering::Relaxed)).sum::<u64>();
        let digest_due = digest_every
            .is_some_and(|every| total_execs - sh.last_digest.load(Ordering::Relaxed) >= every);
        let mut t_min = (0..shards)
            .map(|i| sh.next_time[i].load(Ordering::Relaxed))
            .min()
            .expect("at least one shard");

        // --- boundary work ---------------------------------------------------
        if any_contrib || digest_due {
            if digest_due {
                let d = rt.state_digest();
                *sh.digest_slots[s].lock().expect("digest lock") = d;
            }
            if sh.barrier.wait().is_err() {
                return rt;
            }
            if s == 0 {
                let mut recs = Vec::new();
                for slot in &sh.contrib_slots {
                    recs.append(&mut slot.lock().expect("contrib lock"));
                }
                rt.pending_contribs = recs;
                rt.fold_contributions();
                if digest_due {
                    let mut digests = Vec::new();
                    for slot in &sh.digest_slots {
                        digests.append(&mut slot.lock().expect("digest lock"));
                    }
                    // Global (array, index) order == the order the
                    // sequential `state_digest` enumerates.
                    digests.sort_unstable_by_key(|&(obj, _)| obj);
                    if let Some(r) = &mut rt.recorder {
                        r.push_state_point_at(total_execs, SimTime(w_end.0), digests);
                    }
                    sh.last_digest.store(total_execs, Ordering::Relaxed);
                }
                // Folding scheduled completion callbacks — to this shard's
                // heap and to the outbox. Flush and republish the horizon.
                let mut m = rt.events.peek_time().map_or(u64::MAX, |t| t.0);
                let par = rt.par.as_mut().expect("shard mode");
                for (dst, ob) in par.outbox.iter_mut().enumerate() {
                    if ob.is_empty() {
                        continue;
                    }
                    for (t, _, _) in ob.iter() {
                        m = m.min(t.0);
                    }
                    sh.inbox[dst][0].lock().expect("inbox lock").append(ob);
                }
                sh.next_time[0].store(m, Ordering::Relaxed);
            }
            if sh.barrier.wait().is_err() {
                return rt;
            }
            t_min = t_min.min(sh.next_time[0].load(Ordering::Relaxed));
        }

        // --- end of read phase -----------------------------------------------
        if sh.barrier.wait().is_err() {
            return rt;
        }
        if t_min == u64::MAX {
            return rt; // globally drained
        }

        // --- ingest + advance ------------------------------------------------
        for from in 0..shards {
            let mut items = sh.inbox[s][from].lock().expect("inbox lock");
            for (t, pe, env) in items.drain(..) {
                rt.inflight += 1;
                let k = env.rec_id;
                rt.events.push_keyed(t, k, Ev::Deliver { pe, env });
            }
        }
        w_end = SimTime(
            (t_min / rt.win_ns)
                .saturating_add(1)
                .saturating_mul(rt.win_ns),
        );
    }
}
