//! Interoperation with host (MPI-style) programs (§III-G).
//!
//! A charm-rs module can be invoked from an ordinary control-flow program
//! the way `CharmLibInit` exposes Charm++ modules to MPI codes: the host
//! retains control, calls into the runtime, the runtime drives its event
//! loop until the module signals completion (a chare calls `exit` or the
//! system quiesces), and control returns to the host with the results.

use crate::runtime::{RunSummary, Runtime};
use charm_machine::SimTime;

/// Handle the host program keeps while a charm module is loaded —
/// the `CharmLibInit`/`CharmLibExit` bracket.
pub struct CharmLib {
    rt: Runtime,
    /// Virtual time consumed by host (non-charm) phases, charged via
    /// [`CharmLib::host_compute`].
    host_time: SimTime,
}

impl CharmLib {
    /// Initialize the library runtime (CharmLibInit).
    pub fn init(rt: Runtime) -> Self {
        CharmLib {
            rt,
            host_time: SimTime::ZERO,
        }
    }

    /// Mutable access to the runtime between invocations (to create arrays,
    /// insert chares, send kick-off messages).
    pub fn runtime(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// Charge a bulk-synchronous host phase: every PE computes for
    /// `seconds_per_pe` of virtual time (the "useful computation" / MPI
    /// portions of an interop program).
    pub fn host_compute(&mut self, seconds_per_pe: f64) {
        self.host_time += SimTime::from_secs_f64(seconds_per_pe);
    }

    /// Transfer control to the charm module: runs the event loop until the
    /// module finishes. Returns the module's virtual-time cost for this
    /// invocation.
    pub fn invoke(&mut self) -> (SimTime, RunSummary) {
        let start = self.rt.now();
        let summary = self.rt.run();
        self.rt.clear_exit();
        (self.rt.now().saturating_sub(start), summary)
    }

    /// Total virtual time of the interop program so far: host phases plus
    /// charm-module phases.
    pub fn total_time(&self) -> SimTime {
        self.host_time + self.rt.now()
    }

    /// Tear down and recover the runtime (CharmLibExit).
    pub fn exit(self) -> Runtime {
        self.rt
    }
}

impl Runtime {
    /// Reset the exit flag so the runtime can be re-entered by a later
    /// library invocation.
    pub fn clear_exit(&mut self) {
        self.exit_requested = false;
    }
}
