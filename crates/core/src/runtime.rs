//! The runtime system: message-driven scheduling over the simulated
//! machine, location management, collectives, quiescence detection, and the
//! AtSync load-balancing protocol. Fault tolerance, power management, and
//! malleability extend [`Runtime`] from sibling modules.

use crate::array::{AnyArray, ArrayId, ArrayProxy, ArrayStore, ObjId, Payload};
use crate::chare::{Callback, Chare, RedOp, RedValue, SysEvent};
use crate::ctrl::{ControlRegistry, ControlValues};
use crate::ctx::{Action, Ctx};
use crate::ft::{MemCheckpoint, PendingCkpt};
use crate::lbframework::{LbRound, LbStats, LbTrigger, ObjStat, Strategy};
use crate::power::DvfsScheme;
use crate::replay::{sys_event_digest, PerturbConfig, Recorder, ReplayConfig, ReplayLog};
use crate::trace::{EntryKind, TraceConfig, TraceEventKind, Tracer};
use charm_machine::thermal::ThermalModel;
use charm_machine::{EventQueue, MachineConfig, NetworkModel, PrioQueue, SimTime};
use fxhash::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Fixed per-message envelope overhead added to every payload's wire size.
pub const ENVELOPE_BYTES: usize = 40;

/// Event keys are `(slot << KEY_SLOT_SHIFT) | counter`: the producer slot
/// in the high bits, a per-slot monotonic counter in the low 40. Because a
/// shard owns exactly the slots of its PEs, shards allocate keys with no
/// coordination and the combined key space is identical to sequential.
pub(crate) const KEY_SLOT_SHIFT: u32 = 40;
/// Key-slot offset (past `num_pes`) for host-side sends before/between runs.
pub(crate) const SLOT_HOST: usize = 0;
/// Key-slot offset for events produced while folding reductions.
pub(crate) const SLOT_RED: usize = 1;
/// Key-slot offset for runtime-system events (failures, DVFS, checkpoints…).
pub(crate) const SLOT_RTS: usize = 2;

/// Largest machine (simulated PEs) that gets dense location-cache lanes.
/// A dense lane costs memory proportional to the highest cached slot
/// (up to ~512 KB per source PE per array) — a clear win on bench-sized
/// machines, but at 128K–1M PEs it would dominate the engine's otherwise
/// O(PE) footprint, so bigger machines keep the entry-proportional spill
/// map for every cached location. Representation-only: lookups return
/// identical results either way.
pub(crate) const LOC_CACHE_DENSE_MAX_PES: usize = 256;

/// Jitter-token salts distinguishing the several delay draws one event can
/// make (location-query round trips, tree hops, forwards). Same convention
/// as the DAG re-simulator's edge tokens.
pub(crate) const TOKEN_RTT_REQ: u64 = 1 << 62;
pub(crate) const TOKEN_RTT_RESP: u64 = 2 << 62;
pub(crate) const TOKEN_AUX: u64 = 3 << 62;

/// A buffered reduction contribution, folded at window boundaries.
pub(crate) struct ContribRec {
    /// Dispatch time of the entry method that contributed — the fold sorts
    /// by `(merge_t, merge_key)` to reproduce sequential combine order.
    pub merge_t: u64,
    /// Dispatch key of the contributing entry (see [`Envelope::rec_id`]).
    pub merge_key: u64,
    /// When the contributing entry completed (the contribution's own time).
    pub at: SimTime,
    pub array: ArrayId,
    pub tag: u32,
    pub value: RedValue,
    pub op: RedOp,
    pub cb: Callback,
    /// Critical-path end (ns) and chain of the contributing entry, when the
    /// analyzer is on (always `(0, None)` in shard mode — the analyzer
    /// forces the sequential engine).
    pub cp_end: u64,
    pub cp_node: Option<std::sync::Arc<crate::trace::CpNode>>,
}

/// A metric sample tagged with its producer's dispatch order so parallel
/// shards can merge samples back into sequential order.
pub(crate) struct MetricSample {
    pub dispatch: (u64, u64),
    pub name: String,
    pub at_secs: f64,
    pub value: f64,
}

/// How an array maps indices to *home PEs* — the PEs responsible for
/// tracking element locations (§II-D: "Several default schemes are provided
/// … Programmers can also define their own scheme").
#[derive(Clone, Copy)]
pub enum HomeMap {
    /// Stable hash of the index over the live PEs (the default).
    Hash,
    /// Contiguous blocks for 1-D indices: `ix · P / total`. Indices outside
    /// `0..total` (or non-1-D indices) fall back to hashing.
    Blocked {
        /// Expected number of 1-D elements.
        total: u64,
    },
    /// A user-defined scheme: `(index, live_pes) -> pe`.
    Custom(fn(&crate::Ix, usize) -> usize),
}

impl std::fmt::Debug for HomeMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HomeMap::Hash => write!(f, "HomeMap::Hash"),
            HomeMap::Blocked { total } => write!(f, "HomeMap::Blocked({total})"),
            HomeMap::Custom(_) => write!(f, "HomeMap::Custom(..)"),
        }
    }
}

/// Simulator events. Bulky payloads (envelopes, migration data) are boxed
/// so the event heap sifts pointer-sized entries, not 100-byte structs —
/// the allocation happens once at message creation and the box is reused
/// through every re-route, forward, limbo park, and queue hop.
pub(crate) enum Ev {
    /// A message arrives at a PE's scheduler queue.
    Deliver { pe: usize, env: Box<Envelope> },
    /// The PE finishes its current entry method.
    PeFree { pe: usize },
    /// A PE blocked by a global operation re-checks its queue.
    PeRetry { pe: usize },
    /// A migrating chare's data arrives at its new PE.
    MigrateArrive(Box<MigrateArrive>),
    /// Periodic temperature sampling / DVFS control.
    DvfsTick,
    /// A node crashes, killing every PE in its range (the `pe` names any PE
    /// on the failing node).
    NodeFail { pe: usize },
    /// The in-flight double in-memory checkpoint finishes replicating and
    /// becomes the recovery point.
    CkptCommit,
    /// Automatic periodic checkpoint tick.
    AutoCkpt,
    /// Malleable reconfiguration to a new PE count (§III-D).
    Reconfigure { to: usize },
    /// An RTS-scheduled load-balancing round (cloud/thermal triggers).
    RtsLb,
    /// Elastic-controller sampling/decision tick.
    ElasticTick,
    /// A spot preemption was announced: the node containing `pe` will be
    /// reclaimed at `deadline` (the matching [`Ev::NodeFail`] is already
    /// scheduled there).
    PreemptWarn { pe: usize, deadline: SimTime },
}

/// A migrating chare's serialized state en route to its new PE.
pub(crate) struct MigrateArrive {
    pub dst: ObjId,
    pub to_pe: usize,
    pub from_pe: usize,
    pub bytes: Vec<u8>,
}

/// A message (or system event) in flight or queued.
pub(crate) struct Envelope {
    pub dst: ObjId,
    pub payload: Payload,
    pub bytes: usize,
    pub prio: i64,
    pub src_pe: usize,
    /// Runtime-wide message key, assigned at creation. Always allocated
    /// (recording on or off) so enabling the recorder cannot shift any
    /// other deterministic state. Doubles as the event-heap tie-break for
    /// the delivery event, which is what makes the parallel engine's
    /// cross-shard merge order identical to sequential dispatch order.
    pub rec_id: u64,
    /// The chare whose entry method produced this message (`None` for host
    /// sends and runtime-origin events). Carried on the envelope — rather
    /// than recovered through the recorder's origin map — so a shard can
    /// attribute a message that was produced on a different shard.
    pub src_obj: Option<ObjId>,
    /// Critical-path provenance: the dependency chain ending at the send
    /// that produced this message. Only populated when the tracer's
    /// critical-path analyzer is on (sequential engine); `None` otherwise,
    /// so the common path stays allocation-free.
    pub cp: Option<Box<crate::trace::CpMsg>>,
}

/// Per-PE scheduler state.
///
/// `pending` orders envelopes by `(prio, arrival)`: the pushes into any one
/// PE's queue carry globally monotone sequence numbers (the `messages`
/// counter), so the FIFO-within-priority [`PrioQueue`] reproduces the old
/// `BinaryHeap<(prio, seq)>` pop order exactly, in O(1) per operation.
pub(crate) struct PeState {
    pub(crate) pending: PrioQueue<Box<Envelope>>,
    pub(crate) busy: bool,
    pub(crate) alive: bool,
    /// PEs blocked by a global operation (LB, checkpoint, reconfigure)
    /// may not start new work before this time.
    pub(crate) blocked_until: SimTime,
    pub(crate) busy_time: SimTime,
    pub(crate) msgs_executed: u64,
    pub(crate) current: Option<(ObjId, SimTime, EntryKind)>,
}

impl PeState {
    pub(crate) fn new() -> Self {
        PeState {
            pending: PrioQueue::new(),
            busy: false,
            alive: true,
            blocked_until: SimTime::ZERO,
            busy_time: SimTime::ZERO,
            msgs_executed: 0,
            current: None,
        }
    }
}

/// Whether [`Runtime::collect_lb_stats`] resets the measurement windows
/// (`Drain`, at the head of an LB round) or leaves them intact (`Peek`,
/// for trigger logic that only inspects the imbalance).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum StatsMode {
    Peek,
    Drain,
}

pub(crate) struct RedState {
    expected: usize,
    count: usize,
    acc: Option<RedValue>,
    op: RedOp,
    cb: Callback,
    bytes: usize,
    /// Latest-finishing contributor's critical-path `(end_ns, chain)` — the
    /// reduction completes no earlier than its slowest contributor, so the
    /// completion callback chains from it. `(0, None)` when the analyzer is
    /// off.
    cp: (u64, Option<std::sync::Arc<crate::trace::CpNode>>),
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Final virtual time.
    pub end_time: SimTime,
    /// Events the simulator processed.
    pub events: u64,
    /// Entry methods executed.
    pub entries: u64,
    /// Messages delivered (including forwards).
    pub messages: u64,
    /// Total bytes moved over the network.
    pub bytes: u64,
    /// Mean PE utilization (busy / elapsed) over live PEs.
    pub avg_utilization: f64,
    /// Real (wall-clock) seconds spent inside `run*` calls so far.
    pub wall_time_s: f64,
    /// Simulator throughput: events processed per wall-clock second
    /// (0 when no wall time has accumulated yet).
    pub events_per_sec: f64,
    /// Trace log records shed from ring buffers (0 when tracing is off).
    /// Streamed sinks and summary aggregates never drop.
    pub trace_dropped: u64,
    /// Delivery stats for every installed streaming trace sink.
    pub trace_sinks: Vec<crate::trace::SinkStats>,
    /// Per-entry-method latency SLOs (p50/p99/p999), sorted by total busy
    /// time. Empty when tracing is off.
    pub entry_slos: Vec<crate::trace::EntrySlo>,
    /// Entry executions shed from a capped replay recording
    /// ([`ReplayConfig::max_execs`](crate::ReplayConfig)); 0 when recording
    /// is off or unbounded.
    pub replay_shed_execs: u64,
    /// Message sends shed from a capped replay recording.
    pub replay_shed_sends: u64,
    /// Event-queue and PE-scheduler-queue operations (pushes + pops)
    /// performed so far. Together with `events_per_sec` this separates
    /// "fewer/cheaper queue ops" wins from everything else. Best-effort in
    /// parallel mode (per-shard queue ops are not merged back).
    pub queue_ops: u64,
    /// Bytes served from the envelope/payload arena instead of the global
    /// allocator (this thread, since the runtime was built).
    pub arena_bytes: u64,
    /// Global-allocator calls the arena absorbed (pool hits on allocation
    /// plus recycled frees). Zero when built with `classic_hotpath(true)`.
    pub alloc_bypass: u64,
    /// Lookahead windows committed by the engine: every time a drain
    /// horizon advanced (sequential window jumps, parallel per-shard
    /// horizon grants). Summed over shards in parallel mode.
    pub windows_executed: u64,
    /// Blocking synchronizations actually paid: condvar barrier arrivals
    /// in the global-window engine, parked waits in the adaptive engine.
    /// Always 0 for a sequential run.
    pub barriers_waited: u64,
    /// Window edges crossed *without* blocking: horizon advances the
    /// adaptive engine granted from peer clocks alone where the
    /// global-window engine would have paid a barrier. 0 sequentially.
    pub barriers_elided: u64,
    /// Mean committed-horizon advance in ns (total virtual time covered by
    /// windows / `windows_executed`). The global worst case is `win_ns`
    /// (one α cell); adaptive windows should be wider on sparse traffic.
    pub avg_window_width: f64,
}

/// A failure (or cascade) destroyed state that no surviving checkpoint
/// copy covers: the run cannot be rolled back to a consistent snapshot.
///
/// Returned by [`Runtime::run_checked`]; surviving PEs keep draining their
/// work, but lost chares are gone and the result is not trustworthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unrecoverable {
    /// Virtual time of the fatal failure.
    pub at: SimTime,
    /// PEs that died in the fatal event (the whole node range).
    pub failed_pes: Vec<usize>,
    /// Chares whose state was lost outright.
    pub lost_chares: usize,
    /// Why recovery was impossible.
    pub reason: String,
}

impl std::fmt::Display for Unrecoverable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecoverable failure at {:.6}s (PEs {:?}, {} chare(s) lost): {}",
            self.at.as_secs_f64(),
            self.failed_pes,
            self.lost_chares,
            self.reason
        )
    }
}

impl std::error::Error for Unrecoverable {}

/// Configures and constructs a [`Runtime`].
pub struct RuntimeBuilder {
    machine: MachineConfig,
    seed: u64,
    lb: Option<Box<dyn Strategy>>,
    lb_trigger: LbTrigger,
    dvfs: DvfsScheme,
    dvfs_period: SimTime,
    sched_overhead: SimTime,
    max_events: u64,
    location_cache: bool,
    collective_arity: u64,
    track_comm: bool,
    auto_ckpt: Option<SimTime>,
    trace: Option<TraceConfig>,
    trace_sinks: Vec<Box<dyn crate::trace::TraceSink>>,
    record: Option<ReplayConfig>,
    perturb: Option<PerturbConfig>,
    threads: usize,
    elastic: Option<crate::elastic::ElasticConfig>,
    classic_hotpath: bool,
    global_window: bool,
}

impl RuntimeBuilder {
    /// Set the RNG seed for the whole run (defaults to 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a load-balancing strategy (AtSync-triggered by default).
    pub fn strategy(mut self, s: Box<dyn Strategy>) -> Self {
        self.lb = Some(s);
        self
    }

    /// Select when load balancing runs.
    pub fn lb_trigger(mut self, t: LbTrigger) -> Self {
        self.lb_trigger = t;
        self
    }

    /// Select the DVFS/temperature scheme (requires a thermal model on the
    /// machine to have any effect).
    pub fn dvfs(mut self, scheme: DvfsScheme) -> Self {
        self.dvfs = scheme;
        self
    }

    /// Temperature sampling / DVFS control period (default 1 s).
    pub fn dvfs_period(mut self, p: SimTime) -> Self {
        self.dvfs_period = p;
        self
    }

    /// Per-entry scheduling overhead (default 250 ns).
    pub fn sched_overhead(mut self, t: SimTime) -> Self {
        self.sched_overhead = t;
        self
    }

    /// Safety cap on processed events (default `u64::MAX`).
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Enable/disable per-PE location caching (§II-D). With caching off,
    /// every remote send pays the home-PE query round trip — the ablation
    /// that shows why the paper's protocol caches.
    pub fn location_cache(mut self, enabled: bool) -> Self {
        self.location_cache = enabled;
        self
    }

    /// Branching factor of the spanning trees used by broadcasts,
    /// reductions, barriers, and quiescence waves (default 2).
    pub fn collective_arity(mut self, k: u64) -> Self {
        assert!(k >= 2, "spanning trees need arity >= 2");
        self.collective_arity = k;
        self
    }

    /// Record object-to-object communication volumes and hand them to the
    /// balancer ([`LbStats::comm`]) — required by comm-aware strategies.
    pub fn track_comm(mut self, enabled: bool) -> Self {
        self.track_comm = enabled;
        self
    }

    /// Enable the Projections-lite tracing subsystem (see
    /// [`crate::trace`]): bounded per-PE event logs plus always-cheap
    /// summary aggregates. Off by default — when off, no events are
    /// recorded and the per-message hooks reduce to a branch on `None`.
    pub fn tracing(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Install a streaming [`TraceSink`](crate::trace::TraceSink): every
    /// traced record is fanned out to it as it is produced, so full event
    /// logs flow to disk instead of accumulating in memory. Requires
    /// [`RuntimeBuilder::tracing`]; forces the sequential engine. Call
    /// [`Runtime::finish_trace`] after the run to flush and finalize.
    pub fn trace_sink(mut self, sink: Box<dyn crate::trace::TraceSink>) -> Self {
        self.trace_sinks.push(sink);
        self
    }

    /// Record a causal replay log (see [`crate::replay`]): one record per
    /// executed entry with its consumed-message PUP digest and produced
    /// sends, plus periodic chare-state digest points. Retrieve the log
    /// with [`Runtime::take_replay_log`] after the run. Off by default —
    /// when off, the per-message hooks reduce to a branch on `None`.
    pub fn record(mut self, cfg: ReplayConfig) -> Self {
        self.record = Some(cfg);
        self
    }

    /// Perturb the delivery schedule with seeded, causally-valid extra
    /// delays (see [`PerturbConfig`]). Combine with [`RuntimeBuilder::record`]
    /// and diff the logs to hunt message races.
    pub fn perturb(mut self, cfg: PerturbConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.prob),
            "perturbation probability must be in [0, 1]"
        );
        self.perturb = Some(cfg);
        self
    }

    /// Install the closed-loop elastic controller: sample utilization every
    /// `cfg.cadence` of virtual time and let `cfg.policy` issue shrink or
    /// expand decisions through the malleability path. Decisions are pure
    /// functions of simulation state, so controlled runs replay
    /// bit-identically. Sequential-only: runs fall back to one worker.
    pub fn elastic(mut self, cfg: crate::elastic::ElasticConfig) -> Self {
        self.elastic = Some(cfg);
        self
    }

    /// Take a double in-memory checkpoint automatically every `interval`
    /// of virtual time (§III-B). Ticks re-arm only while application work
    /// is outstanding, so the run still terminates when the job drains.
    pub fn auto_checkpoint(mut self, interval: SimTime) -> Self {
        assert!(interval > SimTime::ZERO, "checkpoint interval must be positive");
        self.auto_ckpt = Some(interval);
        self
    }

    /// Number of OS worker threads for the parallel execution mode
    /// (default: [`crate::default_threads`], itself 1 unless overridden).
    /// With `n > 1`, deadline-free runs that use only parallel-safe
    /// features shard the PEs across `n` workers; results are byte-
    /// identical to sequential execution. Runs that use sequential-only
    /// features (fault injection, DVFS, perturbation, …) silently fall
    /// back to the sequential engine.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Run on the pre-overhaul hot path: the classic `BinaryHeap` event
    /// queue and plain global-allocator boxing instead of the calendar
    /// queue + arena recycling. Ordering and results are identical by
    /// contract — this knob exists so regression tests (and bisection) can
    /// A/B the two hot paths against the same golden recordings.
    pub fn classic_hotpath(mut self, classic: bool) -> Self {
        self.classic_hotpath = classic;
        self
    }

    /// Run parallel workers on the PR-5-era global-window engine: every
    /// shard drains the same α-sized window and synchronizes at a full
    /// condvar barrier per window edge, instead of the adaptive per-shard
    /// horizons with elided barriers. Results are byte-identical by
    /// contract — the knob exists so regression tests (and bisection) can
    /// A/B the two synchronization cores against the same goldens, exactly
    /// like [`classic_hotpath`](Self::classic_hotpath) does for the event
    /// queue. No effect on sequential runs.
    pub fn global_window(mut self, global: bool) -> Self {
        self.global_window = global;
        self
    }

    /// Construct the runtime.
    pub fn build(self) -> Runtime {
        let n = self.machine.num_pes;
        // Slot-partitioned event keys: one counter per PE plus the three
        // runtime slots (host, reductions, RTS). See [`Runtime::fresh_key`].
        let mut keys = vec![0u64; n + 3];
        let rts = n + SLOT_RTS;
        let rts_key = |keys: &mut Vec<u64>| {
            let k = ((rts as u64) << KEY_SLOT_SHIFT) | keys[rts];
            keys[rts] += 1;
            k
        };
        // Pre-size for a few in-flight events per PE; saves the first
        // handful of heap reallocations on every run.
        let mut events = if self.classic_hotpath {
            EventQueue::heap_backed_with_capacity(8 * n)
        } else {
            EventQueue::with_capacity(8 * n)
        };
        // Schedule injected failures and the DVFS sampler. A preemption
        // becomes visible at its announcement time (warning before the
        // kill); its warn key is allocated before its kill key, so a
        // zero-warning announcement still pops before the kill on ties.
        for f in self.machine.failures.events() {
            if let charm_machine::FailureKind::Preemption { .. } = f.kind {
                let k = rts_key(&mut keys);
                events.push_keyed(
                    f.visible_at(),
                    k,
                    Ev::PreemptWarn {
                        pe: f.pe,
                        deadline: f.time,
                    },
                );
            }
            let k = rts_key(&mut keys);
            events.push_keyed(f.time, k, Ev::NodeFail { pe: f.pe });
        }
        let thermal = self
            .machine
            .thermal
            .as_ref()
            .map(|cfg| ThermalModel::new(cfg.clone(), self.machine.num_chips()));
        if thermal.is_some() {
            let k = rts_key(&mut keys);
            events.push_keyed(self.dvfs_period, k, Ev::DvfsTick);
        }
        if let Some(interval) = self.auto_ckpt {
            let k = rts_key(&mut keys);
            events.push_keyed(interval, k, Ev::AutoCkpt);
        }
        let elastic = self.elastic.map(|cfg| {
            let k = rts_key(&mut keys);
            events.push_keyed(cfg.cadence, k, Ev::ElasticTick);
            crate::elastic::ElasticCtl::new(cfg, n)
        });
        let net = NetworkModel::new(self.machine.network.clone(), self.seed);
        let net_min_remote = net.min_remote_delay().0;
        let num_chips = self.machine.num_chips();
        let rngs = (0..n)
            .map(|pe| StdRng::seed_from_u64(self.seed ^ (pe as u64).wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        assert!(
            self.trace_sinks.is_empty() || self.trace.is_some(),
            "trace_sink requires tracing to be enabled"
        );
        let tracer = self.trace.map(|cfg| {
            let mut tr = Tracer::new(cfg, n);
            for sink in self.trace_sinks {
                tr.add_sink(sink);
            }
            tr
        });
        let recorder = self.record.map(Recorder::new);
        let perturb = self.perturb.map(|cfg| {
            let rng = StdRng::seed_from_u64(cfg.seed ^ 0x0070_6572_7475_7262); // "perturb"
            (cfg, rng)
        });
        Runtime {
            machine: self.machine,
            net,
            now: SimTime::ZERO,
            events,
            pes: (0..n).map(|_| PeState::new()).collect(),
            live_pes: n,
            stores: Vec::new(),
            home_maps: Vec::new(),
            array_names: FxHashMap::default(),
            rngs,
            ctrl: ControlRegistry::new(),
            ctrl_snapshot: ControlValues::default(),
            loc_cache: vec![
                crate::array::LocCache::with_dense(n <= LOC_CACHE_DENSE_MAX_PES);
                n
            ],
            limbo: FxHashMap::default(),
            reductions: FxHashMap::default(),
            qd: None,
            inflight: 0,
            queued: 0,
            busy_pes: 0,
            lb: self.lb,
            lb_trigger: self.lb_trigger,
            at_sync_seen: 0,
            lb_rounds: Vec::new(),
            mem_ckpt: None,
            ckpt_pending: None,
            copy_missing: FxHashMap::default(),
            auto_ckpt_interval: self.auto_ckpt,
            unrecoverable: None,
            elastic,
            retired: vec![false; n],
            degraded: None,
            thermal,
            dvfs: self.dvfs,
            dvfs_period: self.dvfs_period,
            last_rts_lb: SimTime::ZERO,
            chip_busy: vec![SimTime::ZERO; num_chips],
            sched_overhead: self.sched_overhead,
            metrics: FxHashMap::default(),
            entries: 0,
            messages: 0,
            bytes_moved: 0,
            events_processed: 0,
            wall_run: std::time::Duration::ZERO,
            action_scratch: Vec::new(),
            exit_requested: false,
            max_events: self.max_events,
            seed: self.seed,
            location_cache: self.location_cache,
            collective_arity: self.collective_arity,
            track_comm: self.track_comm,
            comm: FxHashMap::default(),
            tracer,
            cur_cp: None,
            cp_carry: None,
            recorder,
            perturb,
            keys,
            cur_slot: n + SLOT_HOST,
            cur_dispatch: (0, 0),
            pending_contribs: Vec::new(),
            cur_win_end: SimTime::ZERO,
            win_ns: net_min_remote.max(1),
            last_digest_seq: 0,
            par: None,
            threads: self.threads,
            metrics_buf: Vec::new(),
            last_run_parallel: false,
            reconfig_overhead_shrink: SimTime::from_secs_f64(2.0),
            reconfig_overhead_expand: SimTime::from_secs_f64(6.5),
            arena_enabled: !self.classic_hotpath,
            arena_base: crate::arena::stats(),
            entry_name_cache: FxHashMap::default(),
            global_window: self.global_window,
            sync_windows: 0,
            sync_width_ns: 0,
            sync_waits: 0,
            sync_elided: 0,
            cb_log: None,
        }
    }
}

/// The charm-rs runtime: one instance simulates one parallel job.
pub struct Runtime {
    pub(crate) machine: MachineConfig,
    pub(crate) net: NetworkModel,
    pub(crate) now: SimTime,
    pub(crate) events: EventQueue<Ev>,
    pub(crate) pes: Vec<PeState>,
    /// PEs currently participating (≤ machine.num_pes under shrink).
    pub(crate) live_pes: usize,
    pub(crate) stores: Vec<Box<dyn AnyArray>>,
    /// Per-array home-mapping scheme (parallel to `stores`).
    pub(crate) home_maps: Vec<HomeMap>,
    pub(crate) array_names: FxHashMap<String, ArrayId>,
    pub(crate) rngs: Vec<StdRng>,
    pub(crate) ctrl: ControlRegistry,
    pub(crate) ctrl_snapshot: ControlValues,
    /// Per-PE location caches: ObjId → (pe, epoch). Looked up once per
    /// send on the routing hot path; dense indices bypass hashing entirely
    /// (see [`crate::array::LocCache`]).
    pub(crate) loc_cache: Vec<crate::array::LocCache>,
    /// Messages for not-yet-existing elements (dynamic insertion races,
    /// in-transit migrations). Envelopes stay boxed so parking and
    /// re-routing move a pointer, not the ~120-byte payload.
    #[allow(clippy::vec_box)]
    pub(crate) limbo: FxHashMap<ObjId, Vec<Box<Envelope>>>,
    pub(crate) reductions: FxHashMap<(ArrayId, u32), RedState>,
    pub(crate) qd: Option<Callback>,
    /// Deliver/MigrateArrive events in flight.
    pub(crate) inflight: u64,
    /// Envelopes sitting in PE queues.
    pub(crate) queued: u64,
    pub(crate) busy_pes: usize,
    pub(crate) lb: Option<Box<dyn Strategy>>,
    pub(crate) lb_trigger: LbTrigger,
    pub(crate) at_sync_seen: usize,
    pub(crate) lb_rounds: Vec<LbRound>,
    pub(crate) mem_ckpt: Option<MemCheckpoint>,
    /// A checkpoint whose buddy replication is still in flight; it becomes
    /// `mem_ckpt` only when the matching [`Ev::CkptCommit`] fires. A failure
    /// before then aborts it (rollback uses the previous `mem_ckpt`).
    pub(crate) ckpt_pending: Option<PendingCkpt>,
    /// PEs whose held checkpoint copies are invalid until the given time
    /// (the restart protocol is still re-replicating them). A failure that
    /// lands inside such a window widens the effective dead set.
    pub(crate) copy_missing: FxHashMap<usize, SimTime>,
    /// Automatic checkpoint period, when enabled.
    pub(crate) auto_ckpt_interval: Option<SimTime>,
    /// Set (once, sticky) when a failure destroys state beyond recovery.
    pub(crate) unrecoverable: Option<Unrecoverable>,
    /// The elastic controller, when installed ([`RuntimeBuilder::elastic`]).
    pub(crate) elastic: Option<crate::elastic::ElasticCtl>,
    /// PEs permanently reclaimed by the platform (spot preemptions). A
    /// retired PE is never revived by restart or expand.
    pub(crate) retired: Vec<bool>,
    /// Set (once, sticky) when alive capacity fell through the floor; the
    /// run still completes, with a [`crate::elastic::Degraded`] outcome.
    pub(crate) degraded: Option<crate::elastic::Degraded>,
    pub(crate) thermal: Option<ThermalModel>,
    pub(crate) dvfs: DvfsScheme,
    pub(crate) dvfs_period: SimTime,
    /// Last time an RTS-triggered (non-AtSync) LB round ran.
    pub(crate) last_rts_lb: SimTime,
    /// Busy time per chip accumulated since the last DVFS tick.
    pub(crate) chip_busy: Vec<SimTime>,
    pub(crate) sched_overhead: SimTime,
    pub(crate) metrics: FxHashMap<String, Vec<(f64, f64)>>,
    pub(crate) entries: u64,
    pub(crate) messages: u64,
    pub(crate) bytes_moved: u64,
    pub(crate) events_processed: u64,
    /// Wall-clock time accumulated inside `run*` calls (not virtual time).
    pub(crate) wall_run: std::time::Duration,
    /// Reusable buffer for the actions a `Ctx` collects during one entry
    /// method — saves a heap allocation per executed message.
    pub(crate) action_scratch: Vec<Action>,
    pub(crate) exit_requested: bool,
    pub(crate) max_events: u64,
    pub(crate) seed: u64,
    /// Location caching enabled? (ablation toggle; default true)
    pub(crate) location_cache: bool,
    /// Spanning-tree branching factor for collectives.
    pub(crate) collective_arity: u64,
    /// Record obj→obj communication for the LB?
    pub(crate) track_comm: bool,
    /// Aggregated obj→obj bytes since the last LB round (when tracked).
    pub(crate) comm: FxHashMap<(ObjId, ObjId), u64>,
    /// Projections-lite tracing, when enabled ([`RuntimeBuilder::tracing`]).
    pub(crate) tracer: Option<Tracer>,
    /// Critical-path node of the entry method currently executing (set for
    /// the span of `apply_actions`, so its sends inherit the chain). Only
    /// ever `Some` when the tracer's critical-path analyzer is on.
    pub(crate) cur_cp: Option<std::sync::Arc<crate::trace::CpNode>>,
    /// `(end_ns, chain)` of the latest-finishing contributor of a completed
    /// reduction, set around the completion-callback delivery so the
    /// callback's critical path chains through the reduction.
    pub(crate) cp_carry: Option<(u64, Option<std::sync::Arc<crate::trace::CpNode>>)>,
    /// Replay recording, when enabled ([`RuntimeBuilder::record`]).
    pub(crate) recorder: Option<Recorder>,
    /// Schedule perturbation, when enabled ([`RuntimeBuilder::perturb`]).
    pub(crate) perturb: Option<(PerturbConfig, StdRng)>,
    /// Slot-partitioned event-key counters: index `pe` for events produced
    /// while dispatching on that PE, then [`SLOT_HOST`]/[`SLOT_RED`]/
    /// [`SLOT_RTS`] offsets past `num_pes`. Partitioning by producer is what
    /// lets each parallel shard allocate keys independently yet identically
    /// to the sequential run (see [`Runtime::fresh_key`]).
    pub(crate) keys: Vec<u64>,
    /// Which key slot new events are charged to right now; maintained by
    /// [`Runtime::dispatch`], the host APIs, and the reduction fold.
    pub(crate) cur_slot: usize,
    /// `(time_ns, key)` of the event currently being dispatched — the
    /// global total order used to tag contributions, metrics, and replay
    /// records so shards can merge them back in sequential order.
    pub(crate) cur_dispatch: (u64, u64),
    /// Reduction contributions buffered since the last window boundary;
    /// folded in deterministic `(dispatch time, dispatch key)` order at the
    /// boundary (identically in sequential and parallel mode).
    pub(crate) pending_contribs: Vec<ContribRec>,
    /// End of the conservative lookahead window currently executing.
    pub(crate) cur_win_end: SimTime,
    /// Window quantum: the minimum cross-PE network latency (α) in ns.
    pub(crate) win_ns: u64,
    /// Recorder exec count at the last emitted state-digest point.
    pub(crate) last_digest_seq: u64,
    /// Present iff this runtime is one shard of a parallel run.
    pub(crate) par: Option<Box<crate::parallel::ParShard>>,
    /// Worker threads requested for deadline-free runs (1 = sequential).
    pub(crate) threads: usize,
    /// Metric samples tagged with their dispatch order, buffered in shard
    /// mode and merged deterministically at the end of a parallel run.
    pub(crate) metrics_buf: Vec<MetricSample>,
    /// Did the most recent `run_until` actually execute in parallel?
    pub(crate) last_run_parallel: bool,
    /// Modeled process tear-down/reconnect cost on shrink (paper: 2.7 s).
    pub reconfig_overhead_shrink: SimTime,
    /// Modeled process start-up/reconnect cost on expand (paper: 7.2 s).
    pub reconfig_overhead_expand: SimTime,
    /// Recycle envelopes and payload boxes through [`crate::arena`]
    /// (default on; [`RuntimeBuilder::classic_hotpath`] turns it off).
    pub(crate) arena_enabled: bool,
    /// This thread's arena counters when the runtime was built; `summary()`
    /// reports the delta.
    pub(crate) arena_base: crate::arena::ArenaStats,
    /// Recorder entry names per (array, entry kind), built once instead of
    /// `format!`-allocated on every recorded execution.
    pub(crate) entry_name_cache: FxHashMap<(u32, &'static str), String>,
    /// Force parallel workers onto the global-window (full-barrier) engine
    /// ([`RuntimeBuilder::global_window`]); A/B fallback for the adaptive
    /// per-shard-pair lookahead core.
    pub(crate) global_window: bool,
    /// Lookahead windows committed (drain-horizon advances) — see
    /// [`RunSummary::windows_executed`].
    pub(crate) sync_windows: u64,
    /// Total committed-horizon advance in ns, for `avg_window_width`.
    pub(crate) sync_width_ns: u64,
    /// Blocking waits paid (barrier arrivals / parked waits).
    pub(crate) sync_waits: u64,
    /// Window edges crossed without blocking (adaptive engine only).
    pub(crate) sync_elided: u64,
    /// When `Some`, [`Runtime::deliver_sys_tree`] logs every scheduled
    /// delivery time into it. The adaptive parallel folder arms this
    /// around reduction folds to learn which α-cells hold completion
    /// callbacks (its soft-rendezvous points); `None` everywhere else.
    pub(crate) cb_log: Option<Vec<u64>>,
}

impl Runtime {
    /// Start building a runtime for `machine`.
    pub fn builder(machine: MachineConfig) -> RuntimeBuilder {
        RuntimeBuilder {
            machine,
            seed: 42,
            lb: None,
            lb_trigger: LbTrigger::AtSync,
            dvfs: DvfsScheme::Off,
            dvfs_period: SimTime::from_secs(1),
            sched_overhead: SimTime::from_nanos(250),
            max_events: u64::MAX,
            location_cache: true,
            collective_arity: 2,
            track_comm: false,
            auto_ckpt: None,
            trace: None,
            trace_sinks: Vec::new(),
            record: None,
            perturb: None,
            threads: crate::parallel::default_threads(),
            elastic: None,
            classic_hotpath: false,
            global_window: false,
        }
    }

    /// Shorthand: a runtime on a homogeneous machine with default settings.
    pub fn homogeneous(num_pes: usize) -> Runtime {
        Runtime::builder(MachineConfig::homogeneous(num_pes)).build()
    }

    // ----- array management -------------------------------------------------

    /// Create (register) a chare array. The name is the stable identity used
    /// by disk checkpoints.
    pub fn create_array<C: Chare>(&mut self, name: &str) -> ArrayProxy<C> {
        assert!(
            !self.array_names.contains_key(name),
            "array '{name}' already exists"
        );
        let id = ArrayId(self.stores.len() as u32);
        self.stores.push(Box::new(ArrayStore::<C>::new(id, name)));
        self.home_maps.push(HomeMap::Hash);
        self.array_names.insert(name.to_string(), id);
        if let Some(tr) = self.tracer.as_mut() {
            tr.register_array(id, name);
        }
        ArrayProxy::new(id)
    }

    /// Install a home-mapping scheme for an array (before inserting
    /// elements). The default is [`HomeMap::Hash`].
    pub fn set_home_map<C: Chare>(&mut self, proxy: ArrayProxy<C>, map: HomeMap) {
        self.home_maps[proxy.id.0 as usize] = map;
    }

    /// Opt an array into AtSync load balancing (its elements both call
    /// `at_sync` and are migratable by the balancer).
    pub fn set_at_sync<C: Chare>(&mut self, proxy: ArrayProxy<C>, enabled: bool) {
        self.stores[proxy.id.0 as usize].set_uses_at_sync(enabled);
    }

    /// Insert an element at an explicit PE, or at its hashed home PE when
    /// `pe` is `None`.
    pub fn insert<C: Chare>(&mut self, proxy: ArrayProxy<C>, ix: crate::Ix, chare: C, pe: Option<usize>) {
        let pe = pe.unwrap_or_else(|| self.home_pe(proxy.id, &ix));
        assert!(pe < self.live_pes, "insert at dead/absent PE {pe}");
        self.stores[proxy.id.0 as usize].insert_boxed(ix, pe, Box::new(chare));
    }

    /// Number of elements in an array.
    pub fn array_len(&self, id: ArrayId) -> usize {
        self.stores[id.0 as usize].len()
    }

    /// Sorted indices of an array's current elements.
    pub fn array_indices(&self, id: ArrayId) -> Vec<crate::Ix> {
        self.stores[id.0 as usize].indices()
    }

    /// PE currently hosting an element.
    pub fn element_pe(&self, id: ArrayId, ix: &crate::Ix) -> Option<usize> {
        self.stores[id.0 as usize].element_pe(ix)
    }

    /// Look up an array id by name (for checkpoint restore paths).
    pub fn array_id(&self, name: &str) -> Option<ArrayId> {
        self.array_names.get(name).copied()
    }

    /// Host-side inspection of a chare's state (read-only). Returns `None`
    /// if the element doesn't exist. Useful for extracting results after a
    /// run and for tests; entry methods cannot use this (they only see
    /// their own chare), so it does not break the isolation model.
    pub fn inspect<C: Chare, R>(
        &self,
        proxy: ArrayProxy<C>,
        ix: &crate::Ix,
        f: impl FnOnce(&C) -> R,
    ) -> Option<R> {
        let store = self.stores[proxy.id.0 as usize]
            .as_any()
            .downcast_ref::<ArrayStore<C>>()
            .expect("proxy type matches store type");
        store.peek(ix).map(f)
    }

    // ----- host-side sends --------------------------------------------------

    /// Send a message into the system from the host program (arrives after
    /// one network latency). This is how a `main` kicks off execution.
    pub fn send<C: Chare>(&mut self, proxy: ArrayProxy<C>, ix: crate::Ix, mut msg: C::Msg) {
        let bytes = charm_pup::packed_size(&mut msg) + ENVELOPE_BYTES;
        self.cur_slot = self.host_slot();
        let rec_id = self.fresh_rec_id();
        if let Some(r) = &mut self.recorder {
            r.note_origin(rec_id); // external origin: no current exec
        }
        let env = self.alloc_env(Envelope {
            dst: ObjId {
                array: proxy.id,
                ix,
            },
            payload: Payload::User(Box::new(msg)),
            bytes,
            prio: 0,
            src_pe: 0,
            rec_id,
            src_obj: None,
            cp: None,
        });
        self.route_and_schedule(env, self.now);
    }

    /// Broadcast a message to every element of an array from the host.
    ///
    /// The wire size is computed once (the clones are PUP-identical), not
    /// once per element — on a large array the sizing pass used to dominate
    /// the host-side cost. Each element still receives its own point-to-
    /// point delivery; see [`broadcast_tree`](Self::broadcast_tree) for the
    /// spanning-tree collective.
    pub fn broadcast<C: Chare>(&mut self, proxy: ArrayProxy<C>, mut msg: C::Msg)
    where
        C::Msg: Clone,
    {
        let bytes = charm_pup::packed_size(&mut msg) + ENVELOPE_BYTES;
        self.cur_slot = self.host_slot();
        let targets = self.stores[proxy.id.0 as usize].indices();
        for ix in targets {
            let rec_id = self.fresh_rec_id();
            if let Some(r) = &mut self.recorder {
                r.note_origin(rec_id);
            }
            let env = self.alloc_env(Envelope {
                dst: ObjId {
                    array: proxy.id,
                    ix,
                },
                payload: Payload::User(Box::new(msg.clone())),
                bytes,
                prio: 0,
                src_pe: 0,
                rec_id,
                src_obj: None,
                cp: None,
            });
            self.route_and_schedule(env, self.now);
        }
    }

    /// Broadcast through the `collective_arity`-ary spanning tree, matching
    /// the Charm++ collective: every element receives the message exactly
    /// once, after `tree_depth()` small-message hops rather than after one
    /// independent point-to-point delivery per element. Opt-in because the
    /// tree adds latency for tiny arrays; throughput-bound fan-outs should
    /// prefer it.
    pub fn broadcast_tree<C: Chare>(&mut self, proxy: ArrayProxy<C>, mut msg: C::Msg)
    where
        C::Msg: Clone,
    {
        let bytes = charm_pup::packed_size(&mut msg) + ENVELOPE_BYTES;
        let array = proxy.id;
        self.cur_slot = self.host_slot();
        // Identical tree-cost model to chare-initiated broadcasts
        // (`do_broadcast`): each tree level adds one message latency.
        let depth = self.tree_depth();
        let level_cost = self
            .net
            .delay(0, 1.min(self.live_pes - 1), bytes, (array.0 as u64) ^ TOKEN_AUX);
        let tree_delay = SimTime(level_cost.0 * depth);
        let targets = self.stores[array.0 as usize].indices();
        for ix in targets {
            let dst = ObjId { array, ix };
            let Some(pe) = self.stores[array.0 as usize].element_pe(&ix) else {
                continue;
            };
            let rec_id = self.fresh_rec_id();
            if let Some(r) = &mut self.recorder {
                r.note_origin(rec_id);
                r.on_routed(rec_id, bytes, 0, pe, depth, 0);
            }
            let env = self.alloc_env(Envelope {
                dst,
                payload: Payload::User(Box::new(msg.clone())),
                bytes,
                prio: 0,
                src_pe: 0,
                rec_id,
                src_obj: None,
                cp: self.cp_msg(self.now),
            });
            self.bytes_moved += bytes as u64;
            if let Some(tr) = &mut self.tracer {
                tr.on_send(self.now, 0, pe, dst, bytes);
                tr.on_msg_latency(tree_delay);
            }
            self.sched_deliver(self.now + tree_delay, pe, env);
        }
    }

    // ----- clock & introspection ---------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live PEs.
    pub fn num_pes(&self) -> usize {
        self.live_pes
    }

    /// PUP digest of every chare's state, sorted by `(array, ix)` — the
    /// `StateDigest` walk record/replay compares run-to-run. Deterministic:
    /// stores are visited in `ArrayId` order and elements in sorted index
    /// order.
    pub fn state_digest(&mut self) -> Vec<(ObjId, u64)> {
        let mut out = Vec::new();
        for s in self.stores.iter_mut() {
            let id = s.id();
            for ix in s.indices() {
                if let Some(d) = s.digest_element(&ix) {
                    out.push((ObjId { array: id, ix }, d));
                }
            }
        }
        out
    }

    /// Finish recording and take the replay log (once; `None` when
    /// recording was never enabled). Appends the final state digest.
    pub fn take_replay_log(&mut self) -> Option<ReplayLog> {
        self.recorder.as_ref()?;
        let final_digests = self.state_digest();
        let rec = self.recorder.take()?;
        Some(rec.into_log(
            self.machine.name.clone(),
            self.machine.num_pes,
            self.seed,
            self.sched_overhead,
            self.collective_arity,
            self.machine.flops_per_sec,
            self.now,
            final_digests,
        ))
    }

    /// A recorded metric series (`ctx.log_metric`): (seconds, value) pairs.
    pub fn metric(&self, name: &str) -> &[(f64, f64)] {
        self.metrics.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Names of all recorded metrics.
    pub fn metric_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.metrics.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// The run's RNG seed (replays are bit-identical for equal seeds).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Messages parked for not-yet-existing elements (diagnostic). A
    /// steady-state nonzero value usually means a send to a wrong index.
    pub fn limbo_messages(&self) -> Vec<(ObjId, usize)> {
        let mut v: Vec<(ObjId, usize)> = self
            .limbo
            .iter()
            .map(|(k, q)| (*k, q.len()))
            .collect();
        v.sort_by_key(|(k, _)| (k.array, k.ix));
        v
    }

    /// Completed load-balancing rounds.
    pub fn lb_rounds(&self) -> &[LbRound] {
        &self.lb_rounds
    }

    /// Busy time of a PE so far.
    pub fn pe_busy_time(&self, pe: usize) -> SimTime {
        self.pes[pe].busy_time
    }

    /// Control-point registry (register knobs here before running).
    pub fn control_registry(&mut self) -> &mut ControlRegistry {
        &mut self.ctrl
    }

    /// The thermal model, when the machine has one.
    pub fn thermal(&self) -> Option<&ThermalModel> {
        self.thermal.as_ref()
    }

    /// Did the most recent [`Runtime::run_until`] actually execute on the
    /// parallel sharded engine? `false` after a sequential run — including
    /// the silent fallback taken when some feature in use (dynamic
    /// insertion, quiescence detection, thermal/DVFS, comm tracking…)
    /// is sequential-only.
    pub fn last_run_parallel(&self) -> bool {
        self.last_run_parallel
    }

    /// Worker-thread count for subsequent runs (1 = sequential). Builder
    /// equivalent: [`RuntimeBuilder::threads`].
    pub fn set_parallel_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// Force the sharded engine onto the global-window lockstep fallback
    /// (the pre-adaptive synchronization scheme). A/B knob: both engines
    /// are byte-identical to sequential, so flipping this may only change
    /// wall-clock time and the window counters, never results.
    pub fn set_global_window(&mut self, on: bool) {
        self.global_window = on;
    }

    /// Schedule a malleable reconfiguration (shrink or expand) at `at`.
    pub fn schedule_reconfigure(&mut self, at: SimTime, to_pes: usize) {
        assert!(to_pes >= 1 && to_pes <= self.machine.num_pes);
        let k = self.fresh_key(self.host_slot());
        self.events.push_keyed(at, k, Ev::Reconfigure { to: to_pes });
    }

    // ----- the event loop ----------------------------------------------------

    /// Run until the event queue drains, a chare calls `exit`, or the event
    /// cap is hit. Returns a summary.
    pub fn run(&mut self) -> RunSummary {
        self.run_until(SimTime::MAX)
    }

    /// Run until virtual time `deadline` (events after it stay queued), a
    /// chare calls `exit`, or the event cap is hit.
    ///
    /// With [`RuntimeBuilder::threads`] > 1 and no deadline, the run is
    /// sharded across OS worker threads when every feature in use is
    /// parallel-safe (see [`Runtime::last_run_parallel`]); results are
    /// byte-identical to sequential execution either way.
    pub fn run_until(&mut self, deadline: SimTime) -> RunSummary {
        if self.threads > 1 && deadline == SimTime::MAX && self.par.is_none() {
            if let Some(plan) = self.parallel_plan() {
                return self.run_parallel(plan);
            }
        }
        self.last_run_parallel = false;
        self.run_seq_until(deadline)
    }

    /// The sequential engine: conservative lookahead windows over one event
    /// heap. Events execute in windows of width `win_ns` (the minimum
    /// cross-PE latency α); reduction folds and state-digest points happen
    /// at window boundaries. Parallel workers run this same loop per shard
    /// (via [`Runtime::drain_window`]) with identical window geometry —
    /// that shared geometry is what makes parallel results byte-identical.
    pub(crate) fn run_seq_until(&mut self, deadline: SimTime) -> RunSummary {
        self.ctrl_snapshot = self.ctrl.snapshot();
        let wall_start = std::time::Instant::now();
        let mut batch: Vec<(u64, Ev)> = Vec::new();
        while self.events_processed < self.max_events {
            let Some(t) = self.events.peek_time() else {
                // Quiet heap, but buffered contributions can still complete
                // a reduction whose callback re-seeds the heap.
                if !self.pending_contribs.is_empty() && !self.exit_requested {
                    self.boundary_work();
                    continue;
                }
                break;
            };
            if t > deadline {
                break;
            }
            if t >= self.cur_win_end {
                // `exit` drains the current window, then stops (parallel
                // shards can't stop mid-window, so sequential must not
                // either).
                if self.exit_requested {
                    break;
                }
                // Idle boundary (no buffered contributions, no digest due):
                // nothing observable happens, so jump the window straight
                // to the one containing `t`. With α-sized windows this is
                // the common case and keeps boundary cost off the hot path.
                if self.pending_contribs.is_empty() && !self.digest_due() {
                    let w = self.win_end_after(t);
                    self.sync_windows += 1;
                    self.sync_width_ns += w.0.saturating_sub(self.cur_win_end.0);
                    self.cur_win_end = w;
                } else {
                    self.boundary_work();
                    // The fold may have scheduled callbacks earlier than
                    // `t`; re-aim the window at the true next event.
                    if let Some(t2) = self.events.peek_time() {
                        let w = self.win_end_after(t2);
                        self.sync_windows += 1;
                        self.sync_width_ns += w.0.saturating_sub(self.cur_win_end.0);
                        self.cur_win_end = w;
                    }
                    continue;
                }
            }
            self.drain_batch_at(t, deadline, &mut batch);
        }
        if deadline != SimTime::MAX && !self.exit_requested {
            self.now = self.now.max(deadline);
        }
        self.wall_run += wall_start.elapsed();
        self.summary()
    }

    /// Pop and dispatch the whole event batch at timestamp `t`. All events
    /// sharing the head timestamp are popped in one batch (one buffer,
    /// reused across timesteps) instead of a peek+pop pair per event, in
    /// ascending key order — the same total `(time, key)` order whether the
    /// events were produced by one shard or by the sequential engine.
    fn drain_batch_at(&mut self, t: SimTime, deadline: SimTime, batch: &mut Vec<(u64, Ev)>) {
        debug_assert!(t >= self.now, "time went backwards");
        debug_assert!(t <= deadline);
        self.now = t;
        self.events.pop_batch_at_seq_into(t, batch);
        let mut drain = batch.drain(..);
        for (key, ev) in drain.by_ref() {
            self.events_processed += 1;
            self.cur_dispatch = (t.0, key);
            self.dispatch(ev);
            self.maybe_detect_quiescence();
            if self.events_processed >= self.max_events {
                break;
            }
        }
        // Event-cap stop mid-batch: unprocessed ties go back under their
        // original keys, so a later resumed run (interop's `clear_exit`)
        // pops them in the exact pre-batch order.
        for (key, ev) in drain {
            self.events.restore(t, key, ev);
        }
    }

    /// Process every queued event strictly before `w_end` (one conservative
    /// window). The parallel worker loop drives this per shard.
    pub(crate) fn drain_window(&mut self, w_end: SimTime, batch: &mut Vec<(u64, Ev)>) {
        while let Some(t) = self.events.peek_time() {
            if t >= w_end {
                break;
            }
            self.drain_batch_at(t, SimTime::MAX, batch);
        }
        self.cur_win_end = w_end;
    }

    /// Window-boundary bookkeeping: fold buffered reduction contributions
    /// and emit a state-digest point when one is due. The boundary sequence
    /// (and thus the fold and digest points) is identical in sequential and
    /// parallel mode.
    /// Is a periodic state-digest point due at the next window boundary?
    fn digest_due(&self) -> bool {
        self.recorder.as_ref().is_some_and(|r| {
            r.cfg
                .digest_every
                .is_some_and(|n| r.execs_len() - self.last_digest_seq >= n)
        })
    }

    pub(crate) fn boundary_work(&mut self) {
        let boundary = self.cur_win_end;
        self.fold_contributions();
        let due = self.recorder.as_ref().and_then(|r| {
            let n = r.cfg.digest_every?;
            let execs = r.execs_len();
            (execs - self.last_digest_seq >= n).then_some(execs)
        });
        if let Some(execs) = due {
            self.last_digest_seq = execs;
            let digests = self.state_digest();
            if let Some(r) = &mut self.recorder {
                r.push_state_point(boundary, digests);
            }
        }
    }

    /// End of the lookahead window containing `t`: the next multiple of
    /// `win_ns` strictly after it.
    pub(crate) fn win_end_after(&self, t: SimTime) -> SimTime {
        let w = self.win_ns;
        SimTime((t.0 / w).saturating_add(1).saturating_mul(w))
    }

    /// Run for `span` more virtual time.
    pub fn run_for(&mut self, span: SimTime) -> RunSummary {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Like [`run`](Self::run), but surfaces fatal state loss: if any
    /// failure (or cascade) destroyed chare state that no surviving
    /// checkpoint copy covered, the run outcome is [`Unrecoverable`]
    /// instead of a summary that silently omits the lost work.
    pub fn run_checked(&mut self) -> Result<RunSummary, Unrecoverable> {
        self.run_until_checked(SimTime::MAX)
    }

    /// [`run_checked`](Self::run_checked) with a virtual-time budget.
    pub fn run_until_checked(&mut self, deadline: SimTime) -> Result<RunSummary, Unrecoverable> {
        let summary = self.run_until(deadline);
        match &self.unrecoverable {
            Some(u) => Err(u.clone()),
            None => Ok(summary),
        }
    }

    /// The fatal-failure record, if a failure destroyed unrecoverable state.
    pub fn unrecoverable(&self) -> Option<&Unrecoverable> {
        self.unrecoverable.as_ref()
    }

    /// Summary of progress so far.
    pub fn summary(&self) -> RunSummary {
        let elapsed = self.now.as_secs_f64();
        let live = self.live_pes.max(1);
        let util = if elapsed > 0.0 {
            self.pes[..self.live_pes]
                .iter()
                .map(|p| p.busy_time.as_secs_f64() / elapsed)
                .sum::<f64>()
                / live as f64
        } else {
            0.0
        };
        let wall = self.wall_run.as_secs_f64();
        RunSummary {
            end_time: self.now,
            events: self.events_processed,
            entries: self.entries,
            messages: self.messages,
            bytes: self.bytes_moved,
            avg_utilization: util,
            wall_time_s: wall,
            events_per_sec: if wall > 0.0 {
                self.events_processed as f64 / wall
            } else {
                0.0
            },
            trace_dropped: self.tracer.as_ref().map_or(0, |t| t.dropped_events()),
            trace_sinks: self
                .tracer
                .as_ref()
                .map_or_else(Vec::new, |t| t.sink_stats()),
            entry_slos: self.entry_slos(),
            replay_shed_execs: self.recorder.as_ref().map_or(0, |r| r.shed_execs()),
            replay_shed_sends: self.recorder.as_ref().map_or(0, |r| r.shed_sends()),
            queue_ops: self.events.ops()
                + self.pes.iter().map(|p| p.pending.ops()).sum::<u64>(),
            arena_bytes: crate::arena::stats()
                .bytes_served
                .saturating_sub(self.arena_base.bytes_served),
            alloc_bypass: crate::arena::stats()
                .bypass
                .saturating_sub(self.arena_base.bypass),
            windows_executed: self.sync_windows,
            barriers_waited: self.sync_waits,
            barriers_elided: self.sync_elided,
            avg_window_width: if self.sync_windows > 0 {
                self.sync_width_ns as f64 / self.sync_windows as f64
            } else {
                0.0
            },
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        // Events produced while handling this one are charged to the
        // handling PE's key slot (RTS slot for runtime-system events), so a
        // shard that owns the PE allocates exactly the keys the sequential
        // engine would.
        self.cur_slot = match &ev {
            Ev::Deliver { pe, .. } | Ev::PeFree { pe } | Ev::PeRetry { pe } => *pe,
            Ev::MigrateArrive(m) => m.to_pe,
            _ => self.rts_slot(),
        };
        match ev {
            Ev::Deliver { pe, env } => {
                self.inflight -= 1;
                if !self.pes[pe].alive {
                    // The process is gone. If its chares were evacuated
                    // (graceful shrink) the envelope chases them; if the
                    // element died with the process (crash without
                    // checkpoint), `route_and_schedule` drops it.
                    self.route_and_schedule(env, self.now);
                    return;
                }
                // Idle-PE fast path: nothing queued and nothing running, so
                // the envelope would be heap-pushed and immediately popped.
                // Its `seq` (= pre-increment `messages`) is assigned then
                // discarded on the slow path too, so skipping the priority
                // heap is unobservable — counters, tracing, and execution
                // order are identical.
                let p = &self.pes[pe];
                if !p.busy && p.pending.is_empty() && self.now >= p.blocked_until {
                    self.messages += 1;
                    if let Some(tr) = &mut self.tracer {
                        tr.on_recv(self.now, pe, env.src_pe, env.dst, env.bytes);
                    }
                    // A false return means parked/forwarded; with an empty
                    // queue there is nothing further to start either way.
                    self.execute(pe, env);
                    return;
                }
                self.enqueue_local(pe, env);
                self.try_start(pe);
            }
            Ev::PeFree { pe } => {
                if !self.pes[pe].alive {
                    // The PE died mid-entry; the completion never happens.
                    return;
                }
                let (dst, dur, entry) = self.pes[pe]
                    .current
                    .take()
                    .expect("PeFree without a running entry");
                self.pes[pe].busy = false;
                self.busy_pes -= 1;
                self.pes[pe].busy_time += dur;
                let chip = self.machine.chip_of(pe);
                if chip < self.chip_busy.len() {
                    self.chip_busy[chip] += dur;
                }
                // Entry spans are traced here, at completion — the same
                // place `busy_time` accrues — so traced per-entry totals
                // agree exactly with `pe_busy_time` even when failures or
                // rollbacks cancel in-flight completions.
                if let Some(tr) = &mut self.tracer {
                    tr.on_entry(pe, dst, entry, self.now.saturating_sub(dur), dur);
                }
                self.try_start(pe);
                if let Some(tr) = &mut self.tracer {
                    tr.pe_transition(self.now, pe, self.pes[pe].busy);
                }
            }
            Ev::PeRetry { pe } => {
                self.try_start(pe);
            }
            Ev::MigrateArrive(m) => {
                let MigrateArrive {
                    dst,
                    to_pe,
                    from_pe,
                    bytes,
                } = *m;
                self.inflight -= 1;
                self.stores[dst.array.0 as usize].unpack_insert(dst.ix, to_pe, &bytes);
                // Tell the chare it moved, then flush any messages parked
                // while it was in transit.
                self.deliver_sys(dst, SysEvent::Migrated { from_pe }, self.now);
                self.flush_limbo(dst);
            }
            Ev::DvfsTick => self.on_dvfs_tick(),
            Ev::NodeFail { pe } => self.on_node_failure(pe),
            Ev::CkptCommit => self.on_ckpt_commit(),
            Ev::AutoCkpt => self.on_auto_ckpt(),
            Ev::Reconfigure { to } => self.on_reconfigure(to),
            Ev::RtsLb => self.rts_triggered_lb(),
            Ev::ElasticTick => self.on_elastic_tick(),
            Ev::PreemptWarn { pe, deadline } => self.on_preempt_warn(pe, deadline),
        }
    }

    fn enqueue_local(&mut self, pe: usize, env: Box<Envelope>) {
        // Arrival order within a priority lane is the old `seq` tiebreak:
        // `messages` is bumped once per enqueue, so FIFO-per-lane in the
        // [`PrioQueue`] reproduces the former `(prio, seq)` heap order.
        self.messages += 1;
        self.queued += 1;
        if let Some(tr) = &mut self.tracer {
            tr.on_recv(self.now, pe, env.src_pe, env.dst, env.bytes);
        }
        self.pes[pe].pending.push(env.prio, env);
    }

    /// Begin executing the next queued message on `pe` if it is idle.
    /// Loops (rather than recursing) past messages that only need
    /// re-routing, so deep queues of stale envelopes can't blow the stack.
    fn try_start(&mut self, pe: usize) {
        loop {
            let p = &mut self.pes[pe];
            if p.busy || !p.alive || p.pending.is_empty() {
                return;
            }
            if self.now < p.blocked_until {
                let when = p.blocked_until;
                self.push_ev(when, Ev::PeRetry { pe });
                return;
            }
            let env = p.pending.pop().expect("non-empty");
            self.queued -= 1;
            if self.execute(pe, env) {
                return;
            }
        }
    }

    /// Key-slot index for host-side sends.
    pub(crate) fn host_slot(&self) -> usize {
        self.machine.num_pes + SLOT_HOST
    }

    /// Key-slot index for reduction-fold deliveries.
    pub(crate) fn red_slot(&self) -> usize {
        self.machine.num_pes + SLOT_RED
    }

    /// Key-slot index for runtime-system events.
    pub(crate) fn rts_slot(&self) -> usize {
        self.machine.num_pes + SLOT_RTS
    }

    /// Allocate the next event key in `slot`.
    pub(crate) fn fresh_key(&mut self, slot: usize) -> u64 {
        let k = ((slot as u64) << KEY_SLOT_SHIFT) | self.keys[slot];
        self.keys[slot] += 1;
        debug_assert!(self.keys[slot] < 1 << KEY_SLOT_SHIFT, "key slot overflow");
        k
    }

    /// Allocate a runtime-wide message id (always, so recording is inert),
    /// charged to the current producer slot.
    pub(crate) fn fresh_rec_id(&mut self) -> u64 {
        let slot = self.cur_slot;
        self.fresh_key(slot)
    }

    /// Push a non-delivery event under a fresh key from the current slot.
    pub(crate) fn push_ev(&mut self, t: SimTime, ev: Ev) {
        debug_assert!(!matches!(ev, Ev::Deliver { .. }), "deliveries go through sched_deliver");
        let k = self.fresh_rec_id();
        self.events.push_keyed(t, k, ev);
    }

    /// Box an envelope, recycling a pooled block when the arena is on.
    /// Paired with the `take_box` in [`Runtime::execute`]: together they
    /// make steady-state dispatch free of global-allocator calls.
    #[inline]
    pub(crate) fn alloc_env(&self, env: Envelope) -> Box<Envelope> {
        if self.arena_enabled {
            crate::arena::alloc_box(env)
        } else {
            Box::new(env)
        }
    }

    /// Schedule a message delivery under its envelope key. In shard mode,
    /// deliveries to PEs owned by another shard are buffered in the outbox
    /// and exchanged at the next window barrier; the ingesting shard counts
    /// them in flight.
    pub(crate) fn sched_deliver(&mut self, t: SimTime, pe: usize, env: Box<Envelope>) {
        if let Some(par) = &mut self.par {
            if pe < par.lo || pe >= par.hi {
                let shard = par.shard_of(pe);
                par.outbox[shard].push((t, pe, env));
                return;
            }
        }
        self.inflight += 1;
        let k = env.rec_id;
        self.events.push_keyed(t, k, Ev::Deliver { pe, env });
    }

    /// Execute one envelope on `pe` at `self.now`. Returns false when the
    /// envelope was parked or forwarded instead of executed.
    fn execute(&mut self, pe: usize, env: Box<Envelope>) -> bool {
        let aid = env.dst.array;
        let ix = env.dst.ix;
        let store = &mut self.stores[aid.0 as usize];

        // The element may have moved (stale cache delivered here) or may not
        // exist yet (dynamic insertion / migration in transit).
        match store.locate(&ix) {
            None => {
                assert!(
                    self.par.is_none(),
                    "message for nonexistent element {:?} in parallel mode \
                     (dynamic insertion is sequential-only)",
                    env.dst
                );
                self.limbo.entry(env.dst).or_default().push(env);
                return false;
            }
            Some((actual, epoch)) if actual != pe => {
                // Forward along and update the original sender's cache.
                let delay = self.net.delay(pe, actual, env.bytes, env.rec_id ^ TOKEN_AUX);
                self.loc_cache[env.src_pe].insert(env.dst, (actual, epoch));
                self.bytes_moved += env.bytes as u64;
                self.sched_deliver(self.now + delay, actual, env);
                return false;
            }
            Some(_) => {}
        }

        // The envelope is definitely consumed here: take it apart by value,
        // recycling its heap block into the arena (the per-message free —
        // and the matching alloc at the next send — bypass the global
        // allocator entirely; see `crate::arena`).
        let Envelope {
            dst,
            mut payload,
            bytes,
            prio: _,
            src_pe: _,
            rec_id,
            src_obj,
            cp,
        } = if self.arena_enabled {
            crate::arena::take_box(env)
        } else {
            *env
        };

        let entry_kind = match &payload {
            Payload::User(_) => EntryKind::Message,
            Payload::Sys(ev) => EntryKind::Event(ev.kind_name()),
        };
        // Digest the consumed payload *before* execution moves it into the
        // chare. Only pay the cost when recording. The recorder entry name
        // (`array::kind`) is interned in `entry_name_cache` at use below —
        // the old per-exec `format!` was a measurable share of recorded-run
        // dispatch cost.
        let rec_consumed = if self.recorder.is_some() {
            Some(match &mut payload {
                Payload::User(boxed) => (store.user_msg_digest(boxed), "on_message"),
                Payload::Sys(ev) => (sys_event_digest(ev), ev.kind_name()),
            })
        } else {
            None
        };
        let mut ctx = Ctx {
            now: self.now,
            pe,
            num_pes: self.live_pes,
            self_id: dst,
            work_units: 0.0,
            // Reuse one buffer across entry executions (allocation-free
            // steady state); returned to the scratch slot below.
            actions: std::mem::take(&mut self.action_scratch),
            rng: &mut self.rngs[pe],
            ctrl: &self.ctrl_snapshot,
            arena: self.arena_enabled,
        };
        let ok = store.execute(&ix, payload, &mut ctx);
        debug_assert!(ok, "element existed a moment ago");
        self.entries += 1;

        let work_units = ctx.work_units;
        let actions = std::mem::take(&mut ctx.actions);
        drop(ctx);

        // Entry duration: declared work at the PE's effective speed, plus
        // scheduling overhead, plus send-side software overhead per message.
        let speed = self.effective_speed(pe);
        let work_time = SimTime::from_secs_f64(work_units / (self.machine.flops_per_sec * speed));
        // Send-side software overhead: a remote send costs the full
        // injection overhead; a same-PE send is a queue push (~an order of
        // magnitude cheaper) — the asymmetry TRAM exploits (§III-F).
        let mut send_cost = SimTime::ZERO;
        let (mut n_remote, mut n_local) = (0u32, 0u32);
        for a in &actions {
            match a {
                Action::Send { dst, .. } => {
                    let local = self.stores[dst.array.0 as usize]
                        .element_pe(&dst.ix)
                        .map(|p| p == pe)
                        .unwrap_or(false);
                    send_cost += if local {
                        n_local += 1;
                        self.net.params().local_delivery
                    } else {
                        n_remote += 1;
                        self.net.send_overhead()
                    };
                }
                Action::Broadcast { .. } => {
                    n_remote += 1;
                    send_cost += self.net.send_overhead();
                }
                _ => {}
            }
        }
        let duration = work_time + self.sched_overhead + send_cost;

        // Instrument the chare's load (reference-speed seconds, so the LB
        // can divide by PE speed itself).
        let ref_load = work_units / self.machine.flops_per_sec;
        self.stores[aid.0 as usize].add_load(&ix, ref_load);

        let end = self.now + duration;
        self.pes[pe].busy = true;
        self.busy_pes += 1;
        self.pes[pe].msgs_executed += 1;
        self.pes[pe].current = Some((dst, duration, entry_kind));
        if let Some(tr) = &mut self.tracer {
            tr.pe_transition(self.now, pe, true);
        }
        self.push_ev(end, Ev::PeFree { pe });

        let dispatch = self.cur_dispatch;
        if let Some((digest, kind)) = rec_consumed {
            // Disjoint-field borrows: the interned name borrows
            // `entry_name_cache` while the recorder is borrowed mutably.
            let stores = &self.stores;
            let entry_name = self
                .entry_name_cache
                .entry((aid.0, kind))
                .or_insert_with(|| format!("{}::{}", stores[aid.0 as usize].name(), kind));
            if let Some(r) = self.recorder.as_mut() {
                r.begin_exec(
                    pe,
                    self.now,
                    duration,
                    dst,
                    entry_name,
                    rec_id,
                    src_obj,
                    digest,
                    bytes,
                    work_units,
                    n_remote,
                    n_local,
                    dispatch,
                );
            }
        }
        // Extend the critical-path chain through this execution; outgoing
        // sends (applied below) inherit the node via `cur_cp`.
        self.cur_cp = match &mut self.tracer {
            Some(tr) => tr.cp_on_exec(pe, dst, entry_kind, self.now, duration, cp),
            None => None,
        };
        let mut actions = actions;
        self.apply_actions(dst, pe, end, &mut actions);
        self.action_scratch = actions;
        self.cur_cp = None;
        if let Some(r) = &mut self.recorder {
            r.end_exec();
        }
        // State-digest points are taken at window boundaries (see
        // `boundary_work`), not here: a mid-window digest would observe a
        // state no parallel schedule can reproduce.
        true
    }

    /// Depth of a `collective_arity`-ary spanning tree over the live PEs.
    pub(crate) fn tree_depth(&self) -> u64 {
        let p = self.live_pes.max(2) as f64;
        p.log(self.collective_arity.max(2) as f64).ceil().max(1.0) as u64
    }

    /// Effective speed of a PE: static heterogeneity × interference × DVFS.
    pub(crate) fn effective_speed(&self, pe: usize) -> f64 {
        let mut s = self.machine.speed.speed_at(pe, self.now);
        if let Some(th) = &self.thermal {
            let chip = self.machine.chip_of(pe);
            if chip < th.num_chips() {
                s *= th.freq_factor(chip);
            }
        }
        s
    }

    /// Critical-path stamp for a message sent at `sent_at`: the current
    /// execution's chain, or a fresh root at the send time (host / RTS
    /// origin). `None` whenever the analyzer is off — the common case.
    pub(crate) fn cp_msg(&self, sent_at: SimTime) -> Option<Box<crate::trace::CpMsg>> {
        if !self.tracer.as_ref().is_some_and(|t| t.cp_enabled()) {
            return None;
        }
        Some(Box::new(crate::trace::CpMsg {
            cp_end: self.cur_cp.as_ref().map_or(sent_at.as_nanos(), |n| n.end_ns),
            from: self.cur_cp.clone(),
            sent_at,
        }))
    }

    pub(crate) fn apply_actions(
        &mut self,
        src: ObjId,
        src_pe: usize,
        at: SimTime,
        actions: &mut Vec<Action>,
    ) {
        for action in actions.drain(..) {
            if self.par.is_some() {
                let unsupported = match &action {
                    Action::AtSync => Some("at_sync"),
                    Action::MigrateMe { .. } => Some("migrate_me"),
                    Action::Insert { .. } => Some("insert"),
                    Action::DestroyMe => Some("destroy_me"),
                    Action::CtrlFeedback { .. } => Some("ctrl_feedback"),
                    Action::MemCheckpoint { .. } => Some("mem_checkpoint"),
                    Action::RequestLb => Some("request_lb"),
                    Action::RequestQuiescence { .. } => Some("request_quiescence"),
                    _ => None,
                };
                if let Some(name) = unsupported {
                    panic!(
                        "`{name}` is sequential-only; run with threads = 1 \
                         (the parallel engine shards chare locations and \
                         cannot move or create elements mid-run)"
                    );
                }
            }
            match action {
                Action::Send {
                    dst,
                    payload,
                    bytes,
                    prio,
                    delay,
                } => {
                    if self.track_comm {
                        *self.comm.entry((src, dst)).or_default() += bytes as u64;
                    }
                    let rec_id = self.fresh_rec_id();
                    if let Some(r) = &mut self.recorder {
                        r.note_origin(rec_id);
                    }
                    let env = self.alloc_env(Envelope {
                        dst,
                        payload: Payload::User(payload),
                        bytes,
                        prio,
                        src_pe,
                        rec_id,
                        src_obj: Some(src),
                        cp: None,
                    });
                    self.route_and_schedule(env, at + delay);
                }
                Action::Broadcast {
                    array,
                    make,
                    bytes,
                    prio,
                } => {
                    self.do_broadcast(array, &*make, bytes, prio, src, src_pe, at);
                }
                Action::Contribute {
                    array,
                    tag,
                    value,
                    op,
                    cb,
                } => self.do_contribute(array, tag, value, op, cb, at),
                Action::AtSync => {
                    self.at_sync_seen += 1;
                    self.check_at_sync(at);
                }
                Action::MigrateMe { to } => self.start_migration(src, to, at),
                Action::Insert {
                    array,
                    ix,
                    chare,
                    pe,
                } => {
                    let pe = pe.unwrap_or_else(|| self.home_pe(array, &ix));
                    let pe = pe.min(self.live_pes - 1);
                    self.stores[array.0 as usize].insert_boxed(ix, pe, chare);
                    let dst = ObjId { array, ix };
                    self.deliver_sys(dst, SysEvent::Inserted, at);
                    self.flush_limbo(dst);
                }
                Action::DestroyMe => {
                    self.stores[src.array.0 as usize].remove_element(&src.ix);
                }
                Action::Exit => self.exit_requested = true,
                Action::Metric { name, value } => {
                    if self.par.is_some() {
                        // Buffered with the producing dispatch order; merged
                        // back into sequential order after the run.
                        self.metrics_buf.push(MetricSample {
                            dispatch: self.cur_dispatch,
                            name,
                            at_secs: at.as_secs_f64(),
                            value,
                        });
                    } else {
                        self.metrics
                            .entry(name)
                            .or_default()
                            .push((at.as_secs_f64(), value));
                    }
                }
                Action::RequestQuiescence { cb } => {
                    assert!(self.qd.is_none(), "concurrent quiescence detections");
                    self.qd = Some(cb);
                }
                Action::CtrlFeedback { objective } => {
                    self.ctrl.observe(objective);
                    self.ctrl_snapshot = self.ctrl.snapshot();
                }
                Action::MemCheckpoint { cb } => self.start_mem_checkpoint(cb, at),
                Action::RequestLb => self.rts_triggered_lb(),
            }
        }
    }

    /// Resolve an envelope's destination through the location-management
    /// protocol (§II-D) and schedule its delivery.
    ///
    /// Cache hit → direct send. Stale cache → the stale PE forwards (cost
    /// modeled in `execute`, which re-routes). Miss → home-PE query round
    /// trip precedes the send.
    pub(crate) fn route_and_schedule(&mut self, mut env: Box<Envelope>, at: SimTime) {
        let src = env.src_pe;
        let dst = env.dst;
        let Some((true_pe, epoch)) = self.locate_global(dst) else {
            assert!(
                self.par.is_none(),
                "send to nonexistent element {dst:?} in parallel mode \
                 (dynamic insertion is sequential-only)"
            );
            self.limbo.entry(dst).or_default().push(env);
            return;
        };
        if !self.pes[true_pe].alive {
            // Element lost with a crashed, unrecovered process.
            return;
        }

        let (target_pe, extra) = if true_pe == src {
            (true_pe, SimTime::ZERO)
        } else if !self.location_cache {
            // Ablation: no caching — every remote send queries the home PE.
            let home = self.home_pe(dst.array, &dst.ix);
            let rtt = self.net.delay(src, home, ENVELOPE_BYTES, env.rec_id ^ TOKEN_RTT_REQ)
                + self.net.delay(home, src, ENVELOPE_BYTES, env.rec_id ^ TOKEN_RTT_RESP);
            (true_pe, rtt)
        } else {
            match self.loc_cache[src].get(&dst) {
                Some((pe, _ep)) => {
                    // Send to the cached PE; if stale, `execute` forwards.
                    (pe, SimTime::ZERO)
                }
                None => {
                    // Query the home PE first: request + response round trip.
                    let home = self.home_pe(dst.array, &dst.ix);
                    let rtt = self.net.delay(src, home, ENVELOPE_BYTES, env.rec_id ^ TOKEN_RTT_REQ)
                        + self.net.delay(home, src, ENVELOPE_BYTES, env.rec_id ^ TOKEN_RTT_RESP);
                    self.loc_cache[src].insert(dst, (true_pe, epoch));
                    (true_pe, rtt)
                }
            }
        };
        let target_pe = if self.pes[target_pe].alive {
            target_pe
        } else {
            true_pe
        };
        let delay = self.net.delay(src, target_pe, env.bytes, env.rec_id);
        self.bytes_moved += env.bytes as u64;
        if env.cp.is_none() {
            env.cp = self.cp_msg(at);
        }
        if let Some(tr) = &mut self.tracer {
            tr.on_send(at, src, target_pe, dst, env.bytes);
        }
        if let Some(r) = &mut self.recorder {
            // A home-PE query round trip was charged iff `extra > 0`; its
            // control messages are envelope-sized.
            let rtt_bytes = if extra > SimTime::ZERO { ENVELOPE_BYTES } else { 0 };
            r.on_routed(env.rec_id, env.bytes, src, target_pe, 0, rtt_bytes);
        }
        // Schedule perturbation: seeded extra delay on user messages only
        // (delays are always causally valid — the network could have been
        // this slow). System events keep their exact timing.
        let jitter = match &mut self.perturb {
            Some((cfg, rng)) if matches!(env.payload, Payload::User(_)) => {
                if rng.gen_bool(cfg.prob) {
                    SimTime(rng.gen_range(0..=cfg.max_extra.0))
                } else {
                    SimTime::ZERO
                }
            }
            _ => SimTime::ZERO,
        };
        if let Some(tr) = &mut self.tracer {
            tr.on_msg_latency(extra + delay + jitter);
        }
        self.sched_deliver(at + extra + delay + jitter, target_pe, env);
    }

    /// Home PE of an index under its array's home map.
    pub(crate) fn home_pe(&self, array: ArrayId, ix: &crate::Ix) -> usize {
        let p = self.live_pes;
        match self.home_maps.get(array.0 as usize).copied().unwrap_or(HomeMap::Hash) {
            HomeMap::Hash => (ix.stable_hash() % p as u64) as usize,
            HomeMap::Blocked { total } => match ix {
                crate::Ix::I1(i) if *i >= 0 && (*i as u64) < total && total > 0 => {
                    ((*i as u64) * p as u64 / total) as usize
                }
                _ => (ix.stable_hash() % p as u64) as usize,
            },
            HomeMap::Custom(f) => f(ix, p).min(p - 1),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_broadcast(
        &mut self,
        array: ArrayId,
        make: &dyn Fn() -> Box<dyn std::any::Any + Send>,
        bytes: usize,
        prio: i64,
        src: ObjId,
        src_pe: usize,
        at: SimTime,
    ) {
        // Spanning-tree cost: each level adds one small-message latency; all
        // leaves receive after depth hops (idealized balanced tree).
        let depth = self.tree_depth();
        let level_cost = self
            .net
            .delay(0, 1.min(self.live_pes - 1), bytes, self.cur_dispatch.1 ^ TOKEN_AUX);
        let tree_delay = SimTime(level_cost.0 * depth);
        for (ix, pe) in self.broadcast_targets(array) {
            let dst = ObjId { array, ix };
            let rec_id = self.fresh_rec_id();
            if let Some(r) = &mut self.recorder {
                r.note_origin(rec_id);
                r.on_routed(rec_id, bytes, src_pe, pe, depth, 0);
            }
            let env = self.alloc_env(Envelope {
                dst,
                payload: Payload::User(make()),
                bytes,
                prio,
                src_pe,
                rec_id,
                src_obj: Some(src),
                cp: self.cp_msg(at),
            });
            self.bytes_moved += bytes as u64;
            if let Some(tr) = &mut self.tracer {
                tr.on_send(at, src_pe, pe, dst, bytes);
                tr.on_msg_latency(tree_delay);
            }
            self.sched_deliver(at + tree_delay, pe, env);
        }
    }

    /// Buffer a contribution; reductions fold at window boundaries (in both
    /// engines) so contributions from different shards combine in the exact
    /// order the sequential engine dispatched the contributing entries.
    fn do_contribute(
        &mut self,
        array: ArrayId,
        tag: u32,
        value: RedValue,
        op: RedOp,
        cb: Callback,
        at: SimTime,
    ) {
        self.pending_contribs.push(ContribRec {
            merge_t: self.cur_dispatch.0,
            merge_key: self.cur_dispatch.1,
            at,
            array,
            tag,
            value,
            op,
            cb,
            cp_end: self.cur_cp.as_ref().map_or(0, |n| n.end_ns),
            cp_node: self.cur_cp.clone(),
        });
    }

    /// Fold every buffered contribution in dispatch order. Completion
    /// callbacks allocate keys from the reduction slot, so the callback's
    /// delivery order is reproducible regardless of which shard folds.
    pub(crate) fn fold_contributions(&mut self) {
        if self.pending_contribs.is_empty() {
            return;
        }
        let saved_slot = self.cur_slot;
        self.cur_slot = self.red_slot();
        let mut recs = std::mem::take(&mut self.pending_contribs);
        recs.sort_by_key(|r| (r.merge_t, r.merge_key));
        for rec in recs {
            self.fold_one(rec);
        }
        self.cur_slot = saved_slot;
    }

    fn fold_one(&mut self, rec: ContribRec) {
        let ContribRec {
            merge_t: rec_merge_t,
            merge_key,
            at,
            array,
            tag,
            value,
            op,
            cb,
            cp_end,
            cp_node,
        } = rec;
        let expected = self.array_len_global(array);
        let done = {
            let entry = self
                .reductions
                .entry((array, tag))
                .or_insert_with(|| RedState {
                    expected,
                    count: 0,
                    acc: None,
                    op,
                    cb,
                    bytes: value.wire_size(),
                    cp: (0, None),
                });
            assert_eq!(entry.op, op, "mixed reduction ops for tag {tag}");
            entry.count += 1;
            entry.acc = Some(match entry.acc.take() {
                None => value,
                Some(acc) => entry.op.combine(acc, &value),
            });
            if cp_end >= entry.cp.0 && cp_node.is_some() {
                entry.cp = (cp_end, cp_node);
            }
            entry.count >= entry.expected
        };
        if done {
            let st = self.reductions.remove(&(array, tag)).expect("just there");
            let value = st.acc.expect("at least one contribution");
            // k-ary spanning tree: log_k(P) combine hops of the value size.
            let depth = self.tree_depth();
            let hop = self.net.delay(
                0,
                1.min(self.live_pes - 1),
                st.bytes + ENVELOPE_BYTES,
                merge_key ^ TOKEN_AUX,
            );
            let done = at + SimTime(hop.0 * depth);
            // Attribute the callback sends to the completing contributor's
            // exec (identified by dispatch key — shard-independent), not to
            // whatever exec happens to surround this boundary fold.
            if let Some(r) = &mut self.recorder {
                r.origin_dispatch = Some((rec_merge_t, merge_key));
            }
            // The callback's critical path chains from the latest-finishing
            // contributor (the reduction could not complete before it).
            if st.cp.1.is_some() {
                self.cp_carry = Some((st.cp.0, st.cp.1));
            }
            self.deliver_callback_tree(st.cb, SysEvent::Reduction { tag, value }, done, depth);
            self.cp_carry = None;
            if let Some(r) = &mut self.recorder {
                r.origin_dispatch = None;
            }
        }
    }

    pub(crate) fn deliver_callback(&mut self, cb: Callback, ev: SysEvent, at: SimTime) {
        self.deliver_callback_tree(cb, ev, at, 0);
    }

    /// Like [`Runtime::deliver_callback`], but tags the delivery with the
    /// spanning-tree depth whose latency the caller folded into `at`, so a
    /// recorded what-if replay can re-price the collective on a different
    /// network.
    pub(crate) fn deliver_callback_tree(
        &mut self,
        cb: Callback,
        ev: SysEvent,
        at: SimTime,
        tree_depth: u64,
    ) {
        match cb {
            Callback::ToChare { array, ix } => {
                self.deliver_sys_tree(ObjId { array, ix }, ev, at, tree_depth);
            }
            Callback::BroadcastTo { array } => {
                for (ix, _pe) in self.broadcast_targets(array) {
                    self.deliver_sys_tree(ObjId { array, ix }, ev.clone(), at, tree_depth);
                }
            }
            Callback::Ignore => {}
        }
    }

    /// Deliver a system event to one chare at `at` (local-queue cost only;
    /// collective costs are charged by callers).
    pub(crate) fn deliver_sys(&mut self, dst: ObjId, ev: SysEvent, at: SimTime) {
        self.deliver_sys_tree(dst, ev, at, 0);
    }

    pub(crate) fn deliver_sys_tree(
        &mut self,
        dst: ObjId,
        ev: SysEvent,
        at: SimTime,
        tree_depth: u64,
    ) {
        let Some(pe) = self.element_pe_global(dst) else {
            return;
        };
        let rec_id = self.fresh_rec_id();
        if let Some(r) = &mut self.recorder {
            r.note_origin(rec_id);
            r.on_routed(rec_id, ENVELOPE_BYTES, pe, pe, tree_depth, 0);
        }
        // Reduction-completion callbacks chain from the latest-finishing
        // contributor (`cp_carry`); other system events root a fresh chain
        // at their scheduled time.
        let cp = if self.tracer.as_ref().is_some_and(|t| t.cp_enabled()) {
            Some(Box::new(crate::trace::CpMsg {
                from: self.cp_carry.as_ref().and_then(|(_, n)| n.clone()),
                cp_end: self.cp_carry.as_ref().map_or(at.as_nanos(), |(e, _)| *e),
                sent_at: at,
            }))
        } else {
            None
        };
        let env = self.alloc_env(Envelope {
            dst,
            payload: Payload::Sys(ev),
            bytes: ENVELOPE_BYTES,
            prio: i64::MIN + 1, // system events run promptly
            src_pe: pe,
            rec_id,
            src_obj: None,
            cp,
        });
        let local = self.net.params().local_delivery;
        if let Some(tr) = &mut self.tracer {
            tr.on_msg_latency(local);
        }
        if let Some(log) = &mut self.cb_log {
            log.push((at + local).0);
        }
        self.sched_deliver(at + local, pe, env);
    }

    // ----- location views (sequential store vs. shared parallel table) -------

    /// Locate an element. Sequentially this is the store's live location;
    /// in shard mode it is the run-global location table (locations are
    /// frozen for the duration of a parallel run).
    pub(crate) fn locate_global(&self, obj: ObjId) -> Option<(usize, u32)> {
        match &self.par {
            Some(par) => par.loc.locate(obj),
            None => self.stores[obj.array.0 as usize].locate(&obj.ix),
        }
    }

    /// PE hosting an element (global view; see [`Runtime::locate_global`]).
    pub(crate) fn element_pe_global(&self, obj: ObjId) -> Option<usize> {
        self.locate_global(obj).map(|(pe, _)| pe)
    }

    /// Number of elements in an array (global view).
    pub(crate) fn array_len_global(&self, array: ArrayId) -> usize {
        match &self.par {
            Some(par) => par.loc.array_len(array),
            None => self.stores[array.0 as usize].len(),
        }
    }

    /// Sorted `(index, pe)` pairs of an array's elements (global view).
    pub(crate) fn broadcast_targets(&self, array: ArrayId) -> Vec<(crate::Ix, usize)> {
        match &self.par {
            Some(par) => par.loc.targets(array),
            None => {
                let store = &self.stores[array.0 as usize];
                store
                    .indices()
                    .into_iter()
                    .filter_map(|ix| store.element_pe(&ix).map(|pe| (ix, pe)))
                    .collect()
            }
        }
    }

    fn flush_limbo(&mut self, dst: ObjId) {
        if let Some(envs) = self.limbo.remove(&dst) {
            for env in envs {
                self.route_and_schedule(env, self.now);
            }
        }
    }

    fn start_migration(&mut self, src: ObjId, to: usize, at: SimTime) {
        let store = &mut self.stores[src.array.0 as usize];
        let Some(from_pe) = store.element_pe(&src.ix) else {
            return;
        };
        let to = to.min(self.live_pes - 1);
        if to == from_pe {
            return;
        }
        let bytes = store
            .pack_element(&src.ix)
            .expect("packing an existing element");
        store.remove_element(&src.ix);
        let delay = self.net.delay(
            from_pe,
            to,
            bytes.len() + ENVELOPE_BYTES,
            self.cur_dispatch.1 ^ TOKEN_AUX,
        );
        self.bytes_moved += (bytes.len() + ENVELOPE_BYTES) as u64;
        self.inflight += 1;
        if let Some(tr) = &mut self.tracer {
            tr.rts(at, TraceEventKind::Migration { obj: src, from_pe, to_pe: to });
        }
        self.push_ev(
            at + delay,
            Ev::MigrateArrive(Box::new(MigrateArrive {
                dst: src,
                to_pe: to,
                from_pe,
                bytes,
            })),
        );
    }

    // ----- quiescence ---------------------------------------------------------

    fn maybe_detect_quiescence(&mut self) {
        // Shard counters are shard-local, so quiescence is undetectable from
        // inside a shard; `request_quiescence` is sequential-only anyway.
        if self.qd.is_none() || self.par.is_some() {
            return;
        }
        // `pending_contribs` guard: a buffered (not-yet-folded) reduction is
        // outstanding work even though no message carries it yet.
        if self.inflight == 0
            && self.queued == 0
            && self.busy_pes == 0
            && self.pending_contribs.is_empty()
        {
            let cb = self.qd.take().expect("checked");
            // Two waves of a spanning-tree counting algorithm.
            let depth = self.tree_depth();
            let hop = self.net.delay(
                0,
                1.min(self.live_pes - 1),
                ENVELOPE_BYTES,
                self.cur_dispatch.1 ^ TOKEN_AUX,
            );
            let done = self.now + SimTime(hop.0 * depth * 2);
            self.deliver_callback_tree(cb, SysEvent::QuiescenceDetected, done, depth * 2);
        }
    }

    // ----- AtSync load balancing ----------------------------------------------

    fn at_sync_expected(&self) -> usize {
        self.stores
            .iter()
            .filter(|s| s.uses_at_sync())
            .map(|s| s.len())
            .sum()
    }

    fn check_at_sync(&mut self, at: SimTime) {
        let expected = self.at_sync_expected();
        if expected == 0 || self.at_sync_seen < expected {
            return;
        }
        self.at_sync_seen = 0;
        let skip = match self.lb_trigger {
            LbTrigger::AtSync => false,
            LbTrigger::Adaptive { min_imbalance } => {
                let stats = self.collect_stats_peek();
                stats.imbalance() < min_imbalance
            }
        };
        if skip || self.lb.is_none() {
            // Resume immediately: a barrier's worth of cost only.
            let depth = self.tree_depth();
            let hop = self.net.delay(
                0,
                1.min(self.live_pes - 1),
                ENVELOPE_BYTES,
                self.cur_dispatch.1 ^ TOKEN_AUX,
            );
            let resume = at + SimTime(hop.0 * depth);
            // Loads must still be drained so the next window is fresh.
            for s in self.stores.iter_mut() {
                if s.uses_at_sync() {
                    s.drain_loads();
                }
            }
            self.resume_from_sync(resume);
            return;
        }
        self.run_lb_round(at, true);
    }

    /// Non-destructive stats snapshot (loads not reset) for trigger logic.
    pub(crate) fn collect_stats_peek(&mut self) -> LbStats {
        self.collect_lb_stats(StatsMode::Peek)
    }

    /// The single stats-collection path: both the LB-trigger peek and the
    /// destructive collection at the head of an LB round go through here, so
    /// instrumentation and load-accounting rules can't drift apart.
    ///
    /// `Peek` leaves the load windows intact and skips the communication
    /// journal; `Drain` resets both (the round consumes the window).
    pub(crate) fn collect_lb_stats(&mut self, mode: StatsMode) -> LbStats {
        // Drain the communication journal (if tracked) in a deterministic
        // order and aggregate per-sender totals.
        let (comm, sent_by) = match mode {
            StatsMode::Peek => (Vec::new(), HashMap::new()),
            StatsMode::Drain => {
                let mut comm: Vec<(ObjId, ObjId, u64)> = self
                    .comm
                    .drain()
                    .map(|((a, b), v)| (a, b, v))
                    .collect();
                comm.sort_unstable_by(|x, y| {
                    (x.0.array, x.0.ix, x.1.array, x.1.ix)
                        .cmp(&(y.0.array, y.0.ix, y.1.array, y.1.ix))
                });
                let mut sent_by: HashMap<ObjId, u64> = HashMap::new();
                for (a, _, v) in &comm {
                    *sent_by.entry(*a).or_default() += v;
                }
                (comm, sent_by)
            }
        };

        let mut objs = Vec::new();
        for s in self.stores.iter_mut() {
            if !s.uses_at_sync() {
                continue;
            }
            let id = s.id();
            let drained = s.drain_loads();
            for (ix, pe, load, hint) in &drained {
                let obj = ObjId { array: id, ix: *ix };
                objs.push(ObjStat {
                    id: obj,
                    pe: *pe,
                    load: if *load > 0.0 { *load } else { *hint * 1e-6 },
                    bytes_sent: sent_by.get(&obj).copied().unwrap_or(0),
                    msgs_sent: 0,
                });
            }
            if matches!(mode, StatsMode::Peek) {
                // Put the loads back (peek semantics).
                for (ix, _pe, load, _h) in drained {
                    s.add_load(&ix, load);
                }
            }
        }
        LbStats {
            num_pes: self.live_pes,
            pe_speed: (0..self.live_pes).map(|p| self.effective_speed(p)).collect(),
            bg_load: vec![0.0; self.live_pes],
            objs,
            comm,
        }
    }

    /// Collect stats (destructive), run the strategy, enact migrations, and
    /// (optionally) deliver ResumeFromSync. Charges the modeled cost of the
    /// whole round. Used by AtSync, RTS-triggered (thermal/cloud) LB, and
    /// reconfiguration.
    pub(crate) fn run_lb_round(&mut self, at: SimTime, resume: bool) {
        let stats = self.collect_lb_stats(StatsMode::Drain);
        let imbalance_before = stats.imbalance();

        let Some(lb) = self.lb.as_mut() else {
            if resume {
                self.resume_from_sync(at);
            }
            return;
        };
        let assignment = lb.assign(&stats);
        assert_eq!(assignment.len(), stats.objs.len());
        let strategy_name = lb.name();
        let distributed = lb.is_distributed();
        let decision_work = lb.decision_cost(stats.objs.len(), self.live_pes);
        if let Some(tr) = &mut self.tracer {
            tr.rts(
                at,
                TraceEventKind::LbBegin {
                    strategy: strategy_name,
                    objs: stats.objs.len(),
                },
            );
        }

        // --- modeled cost of the LB round -----------------------------------
        let depth = self.tree_depth();
        let small_hop = self.net.delay(
            0,
            1.min(self.live_pes - 1),
            ENVELOPE_BYTES,
            self.cur_dispatch.1 ^ TOKEN_AUX,
        );
        let stats_bytes = stats.objs.len() * 32;
        let collect_cost = if distributed {
            // Gossip rounds exchange O(1)-size summaries.
            SimTime(small_hop.0 * depth * 2)
        } else {
            // Centralized gather of all stats, then a scatter of decisions.
            let gather = self.net.delay(
                0,
                1.min(self.live_pes - 1),
                stats_bytes,
                self.cur_dispatch.1 ^ TOKEN_AUX,
            );
            SimTime(gather.0 + small_hop.0 * depth * 2)
        };
        let decision_cost = SimTime::from_secs_f64(decision_work / self.machine.flops_per_sec);

        // --- enact migrations -------------------------------------------------
        let mut migrations = 0usize;
        let mut per_pe_out = vec![0usize; self.machine.num_pes];
        let mut new_assignment: Vec<usize> = Vec::with_capacity(stats.objs.len());
        for (obj, new_pe) in stats.objs.iter().zip(&assignment) {
            let target = match new_pe {
                Some(pe) => {
                    assert!(*pe < self.live_pes, "{strategy_name} assigned dead PE {pe}");
                    // Strategies see the live boundary, not liveness holes
                    // left by preemptions; keep the chare put rather than
                    // migrate it onto a dead PE.
                    if self.pes[*pe].alive { *pe } else { obj.pe }
                }
                None => obj.pe,
            };
            new_assignment.push(target);
            if target != obj.pe {
                migrations += 1;
                let store = &mut self.stores[obj.id.array.0 as usize];
                let bytes = store
                    .pack_element(&obj.id.ix)
                    .expect("LB object exists");
                per_pe_out[obj.pe] += bytes.len();
                // Real state round trip: what migration actually does.
                store.remove_element(&obj.id.ix);
                store.unpack_insert(obj.id.ix, target, &bytes);
                self.bytes_moved += bytes.len() as u64;
                if let Some(tr) = &mut self.tracer {
                    tr.rts(
                        at,
                        TraceEventKind::Migration {
                            obj: obj.id,
                            from_pe: obj.pe,
                            to_pe: target,
                        },
                    );
                }
            }
        }
        let max_out = per_pe_out.iter().copied().max().unwrap_or(0);
        let migrate_cost = if max_out > 0 {
            self.net.delay(
                0,
                1.min(self.live_pes - 1),
                max_out,
                self.cur_dispatch.1 ^ TOKEN_AUX,
            )
        } else {
            SimTime::ZERO
        };
        let barrier = SimTime(small_hop.0 * depth);
        let total = collect_cost + decision_cost + migrate_cost + barrier;

        // All PEs pause for the round; idle PEs with queued work must be
        // re-examined when the block lifts.
        let resume_at = at + total;
        for pe in 0..self.live_pes {
            self.pes[pe].blocked_until = self.pes[pe].blocked_until.max(resume_at);
            self.push_ev(resume_at, Ev::PeRetry { pe });
        }

        let imbalance_after = crate::lbframework::imbalance_of(
            &new_assignment,
            &stats.objs.iter().map(|o| o.load).collect::<Vec<_>>(),
            &stats.pe_speed,
            self.live_pes,
        );
        if let Some(tr) = &mut self.tracer {
            tr.rts(
                resume_at,
                TraceEventKind::LbEnd {
                    strategy: strategy_name,
                    migrations,
                    cost: total,
                },
            );
        }
        self.lb_rounds.push(LbRound {
            at: resume_at.as_secs_f64(),
            strategy: strategy_name,
            migrations,
            imbalance_before,
            imbalance_after,
            cost_s: total.as_secs_f64(),
        });

        if resume {
            self.resume_from_sync(resume_at);
        }
    }

    fn resume_from_sync(&mut self, at: SimTime) {
        let arrays: Vec<ArrayId> = self
            .stores
            .iter()
            .filter(|s| s.uses_at_sync())
            .map(|s| s.id())
            .collect();
        for array in arrays {
            for ix in self.stores[array.0 as usize].indices() {
                self.deliver_sys(ObjId { array, ix }, SysEvent::ResumeFromSync, at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ix;
    use charm_pup::Puper;

    /// A chare that counts pings and replies with pongs.
    #[derive(Default)]
    struct Ping {
        count: u64,
        peer: Option<i64>,
        limit: u64,
    }
    impl charm_pup::Pup for Ping {
        fn pup(&mut self, p: &mut Puper) {
            p.p(&mut self.count);
            p.p(&mut self.peer);
            p.p(&mut self.limit);
        }
    }
    #[derive(Default, Clone)]
    struct PingMsg;
    impl charm_pup::Pup for PingMsg {
        fn pup(&mut self, _p: &mut Puper) {}
    }
    impl Chare for Ping {
        type Msg = PingMsg;
        fn on_message(&mut self, _m: PingMsg, ctx: &mut Ctx<'_>) {
            self.count += 1;
            ctx.work(1000.0);
            if self.count < self.limit {
                if let Some(peer) = self.peer {
                    let proxy = ArrayProxy::<Ping>::new(ctx.my_id().array);
                    ctx.send(proxy, Ix::i1(peer), PingMsg);
                }
            } else {
                ctx.exit();
            }
        }
    }

    fn ping_setup(pes: usize) -> (Runtime, ArrayProxy<Ping>) {
        let mut rt = Runtime::homogeneous(pes);
        let arr = rt.create_array::<Ping>("ping");
        rt.insert(
            arr,
            Ix::i1(0),
            Ping {
                count: 0,
                peer: Some(1),
                limit: 10,
            },
            Some(0),
        );
        rt.insert(
            arr,
            Ix::i1(1),
            Ping {
                count: 0,
                peer: Some(0),
                limit: 10,
            },
            Some(pes - 1),
        );
        (rt, arr)
    }

    #[test]
    fn ping_pong_advances_time_and_terminates() {
        let (mut rt, arr) = ping_setup(4);
        rt.send(arr, Ix::i1(0), PingMsg);
        let sum = rt.run();
        assert!(sum.end_time > SimTime::ZERO);
        assert!(sum.entries >= 10, "entries={}", sum.entries);
        assert!(sum.messages >= 10);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut rt, arr) = ping_setup(4);
            rt.send(arr, Ix::i1(0), PingMsg);
            let s = rt.run();
            (s.end_time, s.entries, s.messages, s.bytes)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn remote_costs_more_than_local() {
        // Same-PE ping-pong finishes faster than cross-machine.
        let mut local = {
            let mut rt = Runtime::homogeneous(2);
            let arr = rt.create_array::<Ping>("ping");
            rt.insert(arr, Ix::i1(0), Ping { count: 0, peer: Some(1), limit: 10 }, Some(0));
            rt.insert(arr, Ix::i1(1), Ping { count: 0, peer: Some(0), limit: 10 }, Some(0));
            rt.send(arr, Ix::i1(0), PingMsg);
            rt
        };
        let t_local = local.run().end_time;
        let (mut remote, arr) = ping_setup(2);
        remote.send(arr, Ix::i1(0), PingMsg);
        let t_remote = remote.run().end_time;
        assert!(t_remote > t_local, "remote {t_remote} local {t_local}");
    }

    /// Chare that migrates itself to PE 1 on first message and checks state
    /// survives, then exits.
    #[derive(Default)]
    struct Mover {
        payload: Vec<u64>,
        moved: bool,
    }
    impl charm_pup::Pup for Mover {
        fn pup(&mut self, p: &mut Puper) {
            p.p(&mut self.payload);
            p.p(&mut self.moved);
        }
    }
    impl Chare for Mover {
        type Msg = u8;
        fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
            assert!(!self.moved);
            ctx.migrate_me(1);
        }
        fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
            if let SysEvent::Migrated { from_pe } = ev {
                assert_eq!(from_pe, 0);
                assert_eq!(ctx.my_pe(), 1);
                assert_eq!(self.payload, vec![7, 8, 9], "state survives migration");
                self.moved = true;
                ctx.exit();
            }
        }
    }

    #[test]
    fn migration_moves_state() {
        let mut rt = Runtime::homogeneous(2);
        let arr = rt.create_array::<Mover>("mover");
        rt.insert(
            arr,
            Ix::i1(0),
            Mover {
                payload: vec![7, 8, 9],
                moved: false,
            },
            Some(0),
        );
        rt.send(arr, Ix::i1(0), 0u8);
        rt.run();
        assert_eq!(rt.element_pe(arr.id(), &Ix::i1(0)), Some(1));
    }

    /// Reduction test: N contributors sum their indices to a root chare.
    #[derive(Default)]
    struct Summer {
        n: i64,
        is_root: bool,
        got: Option<f64>,
    }
    impl charm_pup::Pup for Summer {
        fn pup(&mut self, p: &mut Puper) {
            p.p(&mut self.n);
            p.p(&mut self.is_root);
        }
    }
    impl Chare for Summer {
        type Msg = u8;
        fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
            let proxy = ArrayProxy::<Summer>::new(ctx.my_id().array);
            ctx.contribute(
                proxy,
                1,
                RedValue::F64(self.n as f64),
                RedOp::Sum,
                Callback::ToChare {
                    array: ctx.my_id().array,
                    ix: Ix::i1(0),
                },
            );
        }
        fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
            if let SysEvent::Reduction { tag, value } = ev {
                assert_eq!(tag, 1);
                assert!(self.is_root);
                self.got = Some(value.as_f64());
                ctx.log_metric("sum", value.as_f64());
                ctx.exit();
            }
        }
    }

    #[test]
    fn reduction_sums_all_contributions() {
        let mut rt = Runtime::homogeneous(4);
        let arr = rt.create_array::<Summer>("sum");
        for i in 0..10 {
            rt.insert(
                arr,
                Ix::i1(i),
                Summer {
                    n: i,
                    is_root: i == 0,
                    got: None,
                },
                None,
            );
        }
        rt.broadcast(arr, 0u8);
        rt.run();
        let m = rt.metric("sum");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, 45.0);
    }

    #[test]
    fn priorities_order_execution() {
        // Two messages delivered at the same instant to a busy PE: the
        // lower-priority-value one must run first.
        #[derive(Default)]
        struct Order {
            seen: Vec<i64>,
        }
        impl charm_pup::Pup for Order {
            fn pup(&mut self, p: &mut Puper) {
                p.p(&mut self.seen);
            }
        }
        impl Chare for Order {
            type Msg = i64;
            fn on_message(&mut self, m: i64, ctx: &mut Ctx<'_>) {
                if m == 100 {
                    // filler: keeps the PE busy while the others queue up
                    ctx.work(1e6);
                    return;
                }
                self.seen.push(m);
                ctx.log_metric("seen", m as f64);
            }
        }
        let mut rt = Runtime::homogeneous(1);
        let arr = rt.create_array::<Order>("order");
        rt.insert(arr, Ix::i1(0), Order::default(), Some(0));
        // Three sends from the host land together; prios 5, -1, 2.
        // Host sends don't let us set prio, so drive via a first message.
        #[derive(Default)]
        struct Driver;
        impl charm_pup::Pup for Driver {
            fn pup(&mut self, _p: &mut Puper) {}
        }
        impl Chare for Driver {
            type Msg = u8;
            fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
                let arr = ArrayProxy::<Order>::new(ArrayId(0));
                // A long filler keeps the PE busy so the prioritized
                // messages are *queued* together before any executes.
                ctx.send_prio(arr, Ix::i1(0), 100, 0);
                ctx.send_prio(arr, Ix::i1(0), 5, 5);
                ctx.send_prio(arr, Ix::i1(0), -1, -1);
                ctx.send_prio(arr, Ix::i1(0), 2, 2);
            }
        }
        let drv = rt.create_array::<Driver>("driver");
        rt.insert(drv, Ix::i1(0), Driver, Some(0));
        rt.send(drv, Ix::i1(0), 0u8);
        rt.run();
        let seen: Vec<f64> = rt.metric("seen").iter().map(|x| x.1).collect();
        assert_eq!(seen, vec![-1.0, 2.0, 5.0]);
    }

    #[test]
    fn quiescence_detected_after_messages_drain() {
        #[derive(Default)]
        struct Q {
            waiting: bool,
        }
        impl charm_pup::Pup for Q {
            fn pup(&mut self, p: &mut Puper) {
                p.p(&mut self.waiting);
            }
        }
        impl Chare for Q {
            type Msg = u8;
            fn on_message(&mut self, m: u8, ctx: &mut Ctx<'_>) {
                if m == 1 {
                    // fan out some work, then request QD
                    let proxy = ArrayProxy::<Q>::new(ctx.my_id().array);
                    for i in 1..5 {
                        ctx.send(proxy, Ix::i1(i), 0u8);
                    }
                    self.waiting = true;
                    ctx.request_quiescence(ctx.cb_self());
                } else {
                    ctx.work(10_000.0);
                }
            }
            fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
                if matches!(ev, SysEvent::QuiescenceDetected) {
                    assert!(self.waiting);
                    ctx.log_metric("qd", 1.0);
                    ctx.exit();
                }
            }
        }
        let mut rt = Runtime::homogeneous(2);
        let arr = rt.create_array::<Q>("q");
        for i in 0..5 {
            rt.insert(arr, Ix::i1(i), Q::default(), None);
        }
        rt.send(arr, Ix::i1(0), 1u8);
        rt.run();
        assert_eq!(rt.metric("qd").len(), 1);
    }

    #[test]
    fn dynamic_insert_receives_parked_messages() {
        #[derive(Default)]
        struct Node {
            hits: u64,
        }
        impl charm_pup::Pup for Node {
            fn pup(&mut self, p: &mut Puper) {
                p.p(&mut self.hits);
            }
        }
        impl Chare for Node {
            type Msg = i64;
            fn on_message(&mut self, m: i64, ctx: &mut Ctx<'_>) {
                let proxy = ArrayProxy::<Node>::new(ctx.my_id().array);
                match m {
                    0 => {
                        // Send to a child that doesn't exist yet, then create it.
                        ctx.send(proxy, Ix::i1(99), 7);
                        ctx.insert(proxy, Ix::i1(99), Node::default(), None);
                    }
                    7 => {
                        self.hits += 1;
                        ctx.log_metric("childhit", 1.0);
                        ctx.exit();
                    }
                    _ => {}
                }
            }
        }
        let mut rt = Runtime::homogeneous(2);
        let arr = rt.create_array::<Node>("nodes");
        rt.insert(arr, Ix::i1(0), Node::default(), Some(0));
        rt.send(arr, Ix::i1(0), 0);
        rt.run();
        assert_eq!(rt.metric("childhit").len(), 1);
    }

    #[test]
    fn work_scales_execution_time() {
        #[derive(Default)]
        struct W;
        impl charm_pup::Pup for W {
            fn pup(&mut self, _p: &mut Puper) {}
        }
        impl Chare for W {
            type Msg = f64;
            fn on_message(&mut self, units: f64, ctx: &mut Ctx<'_>) {
                ctx.work(units);
            }
        }
        let time_for = |units: f64| {
            let mut rt = Runtime::homogeneous(1);
            let arr = rt.create_array::<W>("w");
            rt.insert(arr, Ix::i1(0), W, Some(0));
            rt.send(arr, Ix::i1(0), units);
            rt.run().end_time
        };
        let t1 = time_for(1e6);
        let t2 = time_for(2e6);
        // 1e6 units at 1e9 flops = 1 ms; doubling work adds ~1 ms.
        let delta = (t2 - t1).as_secs_f64();
        assert!((delta - 1e-3).abs() < 1e-4, "delta={delta}");
    }
}
