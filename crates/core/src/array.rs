//! Chare arrays: typed element storage, proxies, and the object-safe
//! interface the runtime drives them through.

use crate::chare::{Chare, SysEvent};
use crate::index::Ix;
use crate::Ctx;
use std::any::Any;
use std::collections::HashMap;

/// Identifier of a chare array within a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ArrayId(pub u32);

/// Global identity of one chare. Ordered by `(array, ix)`, matching the
/// sorted-drain convention used everywhere determinism matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ObjId {
    /// The array the chare belongs to.
    pub array: ArrayId,
    /// The chare's index within the array.
    pub ix: Ix,
}

impl charm_pup::Pup for ObjId {
    fn pup(&mut self, p: &mut charm_pup::Puper) {
        p.p(&mut self.array);
        p.p(&mut self.ix);
    }
}

/// A typed, copyable handle to a chare array — the equivalent of a Charm++
/// proxy. All sends go through a proxy plus the [`Ctx`](crate::Ctx) (inside
/// entry methods) or the [`Runtime`](crate::Runtime) (from the host program).
pub struct ArrayProxy<C: Chare> {
    pub(crate) id: ArrayId,
    _pd: std::marker::PhantomData<fn() -> C>,
}

impl<C: Chare> ArrayProxy<C> {
    pub(crate) fn new(id: ArrayId) -> Self {
        ArrayProxy {
            id,
            _pd: std::marker::PhantomData,
        }
    }

    /// Rebuild a typed proxy from a raw [`ArrayId`] (e.g. one stored in a
    /// chare's pup'd state). A type mismatch is caught — with a clear panic —
    /// at message delivery, exactly like sending through a mistyped Charm++
    /// proxy.
    pub fn from_id(id: ArrayId) -> Self {
        Self::new(id)
    }

    /// The untyped array id.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// Identity of element `ix` of this array.
    pub fn elem(&self, ix: Ix) -> ObjId {
        ObjId {
            array: self.id,
            ix,
        }
    }
}

impl<C: Chare> Clone for ArrayProxy<C> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C: Chare> Copy for ArrayProxy<C> {}

impl charm_pup::Pup for ArrayId {
    fn pup(&mut self, p: &mut charm_pup::Puper) {
        p.p(&mut self.0);
    }
}

/// Proxies are plain handles; chares may keep them in pup'd state.
impl<C: Chare> charm_pup::Pup for ArrayProxy<C> {
    fn pup(&mut self, p: &mut charm_pup::Puper) {
        p.p(&mut self.id);
    }
}

impl<C: Chare> Default for ArrayProxy<C> {
    fn default() -> Self {
        Self::new(ArrayId(u32::MAX))
    }
}

/// A message or event on its way to a chare.
pub enum Payload {
    /// A user message (a boxed `C::Msg` for the destination array's type).
    User(Box<dyn Any>),
    /// A runtime event.
    Sys(SysEvent),
}

impl Payload {
    /// Short description for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::User(_) => "user",
            Payload::Sys(_) => "sys",
        }
    }
}

/// Per-element bookkeeping the runtime and the LB framework need.
struct Element<C> {
    chare: C,
    pe: usize,
    /// Work-seconds accumulated since the last LB stats collection.
    load: f64,
    /// Bumped on every migration; stale location caches are detected by
    /// comparing epochs.
    epoch: u32,
}

/// Object-safe view of a typed array store; the runtime holds
/// `Box<dyn AnyArray>` and dispatches through this.
pub(crate) trait AnyArray {
    fn id(&self) -> ArrayId;
    fn name(&self) -> &str;
    fn len(&self) -> usize;
    #[allow(dead_code)] // part of the store interface; used by tests/tools
    fn contains(&self, ix: &Ix) -> bool;
    fn element_pe(&self, ix: &Ix) -> Option<usize>;
    fn element_epoch(&self, ix: &Ix) -> Option<u32>;
    #[allow(dead_code)] // part of the store interface; used by tests/tools
    fn set_element_pe(&mut self, ix: &Ix, pe: usize);
    fn indices(&self) -> Vec<Ix>;
    fn indices_on_pe(&self, pe: usize) -> Vec<Ix>;
    /// Run the entry method / event handler for one delivered payload.
    /// Returns false if the element does not exist (message buffered or
    /// dropped by the caller's policy).
    fn execute(&mut self, ix: &Ix, payload: Payload, ctx: &mut Ctx<'_>) -> bool;
    /// PUP digest of a user message destined for this array (0 on a type
    /// mismatch — `execute` will panic with context anyway).
    fn user_msg_digest(&self, msg: &mut Box<dyn Any>) -> u64;
    /// PUP digest of one element's chare state.
    fn digest_element(&mut self, ix: &Ix) -> Option<u64>;
    /// Serialize an element (for migration / checkpoints).
    fn pack_element(&mut self, ix: &Ix) -> Option<Vec<u8>>;
    /// Deserialize and (re-)insert an element at `pe`.
    fn unpack_insert(&mut self, ix: Ix, pe: usize, bytes: &[u8]);
    fn remove_element(&mut self, ix: &Ix) -> bool;
    /// Insert a type-erased chare (from `Ctx::insert` buffering).
    fn insert_boxed(&mut self, ix: Ix, pe: usize, chare: Box<dyn Any>);
    fn add_load(&mut self, ix: &Ix, load: f64);
    /// Snapshot (index, pe, measured load, hint) for all elements and reset
    /// the measured loads — called at LB time.
    fn drain_loads(&mut self) -> Vec<(Ix, usize, f64, f64)>;
    /// Is this array participating in AtSync load balancing?
    fn uses_at_sync(&self) -> bool;
    fn set_uses_at_sync(&mut self, v: bool);
    /// Remove every element (used by failure rollback before restoring the
    /// checkpointed population).
    fn clear(&mut self);
    /// Downcast support for typed host-side inspection.
    fn as_any(&self) -> &dyn Any;
    #[allow(dead_code)] // mutable counterpart of as_any, for tooling
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Typed storage for all elements of one chare array.
pub(crate) struct ArrayStore<C: Chare> {
    id: ArrayId,
    name: String,
    elements: HashMap<Ix, Element<C>>,
    at_sync: bool,
}

impl<C: Chare> ArrayStore<C> {
    /// Host-side read access to one element's chare state.
    pub(crate) fn peek(&self, ix: &Ix) -> Option<&C> {
        self.elements.get(ix).map(|e| &e.chare)
    }

    pub(crate) fn new(id: ArrayId, name: &str) -> Self {
        ArrayStore {
            id,
            name: name.to_string(),
            elements: HashMap::new(),
            at_sync: false,
        }
    }

    pub(crate) fn insert(&mut self, ix: Ix, pe: usize, chare: C) {
        let prev = self.elements.insert(
            ix,
            Element {
                chare,
                pe,
                load: 0.0,
                epoch: 0,
            },
        );
        assert!(prev.is_none(), "duplicate insertion of element {ix}");
    }
}

impl<C: Chare> AnyArray for ArrayStore<C> {
    fn id(&self) -> ArrayId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.elements.len()
    }

    fn contains(&self, ix: &Ix) -> bool {
        self.elements.contains_key(ix)
    }

    fn element_pe(&self, ix: &Ix) -> Option<usize> {
        self.elements.get(ix).map(|e| e.pe)
    }

    fn element_epoch(&self, ix: &Ix) -> Option<u32> {
        self.elements.get(ix).map(|e| e.epoch)
    }

    fn set_element_pe(&mut self, ix: &Ix, pe: usize) {
        let e = self
            .elements
            .get_mut(ix)
            .unwrap_or_else(|| panic!("set_element_pe: no element {ix}"));
        if e.pe != pe {
            e.pe = pe;
            e.epoch += 1;
        }
    }

    fn indices(&self) -> Vec<Ix> {
        let mut v: Vec<Ix> = self.elements.keys().copied().collect();
        // Deterministic order regardless of hash-map iteration.
        v.sort_unstable();
        v
    }

    fn indices_on_pe(&self, pe: usize) -> Vec<Ix> {
        let mut v: Vec<Ix> = self
            .elements
            .iter()
            .filter(|(_, e)| e.pe == pe)
            .map(|(ix, _)| *ix)
            .collect();
        v.sort_unstable();
        v
    }

    fn execute(&mut self, ix: &Ix, payload: Payload, ctx: &mut Ctx<'_>) -> bool {
        let Some(e) = self.elements.get_mut(ix) else {
            return false;
        };
        match payload {
            Payload::User(boxed) => {
                let msg = *boxed.downcast::<C::Msg>().unwrap_or_else(|_| {
                    panic!(
                        "array '{}' element {ix}: message type mismatch (expected {})",
                        self.name,
                        std::any::type_name::<C::Msg>()
                    )
                });
                e.chare.on_message(msg, ctx);
            }
            Payload::Sys(ev) => e.chare.on_event(ev, ctx),
        }
        true
    }

    fn user_msg_digest(&self, msg: &mut Box<dyn Any>) -> u64 {
        msg.downcast_mut::<C::Msg>()
            .map(charm_pup::digest_of)
            .unwrap_or(0)
    }

    fn digest_element(&mut self, ix: &Ix) -> Option<u64> {
        self.elements
            .get_mut(ix)
            .map(|e| charm_pup::digest_of(&mut e.chare))
    }

    fn pack_element(&mut self, ix: &Ix) -> Option<Vec<u8>> {
        self.elements
            .get_mut(ix)
            .map(|e| charm_pup::to_bytes(&mut e.chare))
    }

    fn unpack_insert(&mut self, ix: Ix, pe: usize, bytes: &[u8]) {
        let chare: C = charm_pup::from_bytes(bytes);
        let epoch = self
            .elements
            .get(&ix)
            .map(|e| e.epoch + 1)
            .unwrap_or_default();
        self.elements.insert(
            ix,
            Element {
                chare,
                pe,
                load: 0.0,
                epoch,
            },
        );
    }

    fn remove_element(&mut self, ix: &Ix) -> bool {
        self.elements.remove(ix).is_some()
    }

    fn insert_boxed(&mut self, ix: Ix, pe: usize, chare: Box<dyn Any>) {
        let chare = *chare.downcast::<C>().unwrap_or_else(|_| {
            panic!(
                "array '{}': insert of wrong chare type (expected {})",
                self.name,
                std::any::type_name::<C>()
            )
        });
        self.insert(ix, pe, chare);
    }

    fn add_load(&mut self, ix: &Ix, load: f64) {
        if let Some(e) = self.elements.get_mut(ix) {
            e.load += load;
        }
    }

    fn drain_loads(&mut self) -> Vec<(Ix, usize, f64, f64)> {
        let mut v: Vec<(Ix, usize, f64, f64)> = self
            .elements
            .iter_mut()
            .map(|(ix, e)| {
                let l = e.load;
                e.load = 0.0;
                (*ix, e.pe, l, e.chare.load_hint())
            })
            .collect();
        v.sort_unstable_by_key(|a| a.0);
        v
    }

    fn uses_at_sync(&self) -> bool {
        self.at_sync
    }

    fn set_uses_at_sync(&mut self, v: bool) {
        self.at_sync = v;
    }

    fn clear(&mut self) {
        self.elements.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_pup::Puper;

    #[derive(Default)]
    struct Dummy {
        v: i64,
    }
    impl charm_pup::Pup for Dummy {
        fn pup(&mut self, p: &mut Puper) {
            p.p(&mut self.v);
        }
    }
    impl Chare for Dummy {
        type Msg = i64;
        fn on_message(&mut self, msg: i64, _ctx: &mut Ctx<'_>) {
            self.v += msg;
        }
    }

    #[test]
    fn insert_pack_unpack_cycle() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(3), 2, Dummy { v: 40 });
        assert_eq!(s.len(), 1);
        assert_eq!(s.element_pe(&Ix::i1(3)), Some(2));
        let bytes = s.pack_element(&Ix::i1(3)).unwrap();
        assert!(s.remove_element(&Ix::i1(3)));
        assert!(!s.contains(&Ix::i1(3)));
        s.unpack_insert(Ix::i1(3), 5, &bytes);
        assert_eq!(s.element_pe(&Ix::i1(3)), Some(5));
    }

    #[test]
    fn epoch_bumps_on_pe_change() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(0), 0, Dummy::default());
        assert_eq!(s.element_epoch(&Ix::i1(0)), Some(0));
        s.set_element_pe(&Ix::i1(0), 1);
        assert_eq!(s.element_epoch(&Ix::i1(0)), Some(1));
        // setting to the same PE is not a migration
        s.set_element_pe(&Ix::i1(0), 1);
        assert_eq!(s.element_epoch(&Ix::i1(0)), Some(1));
    }

    #[test]
    fn drain_loads_resets() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(0), 0, Dummy::default());
        s.insert(Ix::i1(1), 1, Dummy::default());
        s.add_load(&Ix::i1(0), 0.5);
        s.add_load(&Ix::i1(0), 0.25);
        let loads = s.drain_loads();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0], (Ix::i1(0), 0, 0.75, 1.0));
        assert_eq!(loads[1], (Ix::i1(1), 1, 0.0, 1.0));
        let again = s.drain_loads();
        assert_eq!(again[0].2, 0.0, "loads reset after drain");
    }

    #[test]
    fn indices_sorted_and_per_pe() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        for i in (0..10).rev() {
            s.insert(Ix::i1(i), (i % 3) as usize, Dummy::default());
        }
        let all = s.indices();
        assert_eq!(all.len(), 10);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.indices_on_pe(0).len(), 4); // 0,3,6,9
        assert_eq!(s.indices_on_pe(1).len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate insertion")]
    fn duplicate_insert_rejected() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(0), 0, Dummy::default());
        s.insert(Ix::i1(0), 0, Dummy::default());
    }
}
