//! Chare arrays: typed element storage, proxies, and the object-safe
//! interface the runtime drives them through.

use crate::chare::{Chare, SysEvent};
use crate::index::Ix;
use crate::Ctx;
use fxhash::FxHashMap;
use std::any::Any;

/// Identifier of a chare array within a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ArrayId(pub u32);

/// Global identity of one chare. Ordered by `(array, ix)`, matching the
/// sorted-drain convention used everywhere determinism matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ObjId {
    /// The array the chare belongs to.
    pub array: ArrayId,
    /// The chare's index within the array.
    pub ix: Ix,
}

impl charm_pup::Pup for ObjId {
    fn pup(&mut self, p: &mut charm_pup::Puper) {
        p.p(&mut self.array);
        p.p(&mut self.ix);
    }
}

/// A typed, copyable handle to a chare array — the equivalent of a Charm++
/// proxy. All sends go through a proxy plus the [`Ctx`](crate::Ctx) (inside
/// entry methods) or the [`Runtime`](crate::Runtime) (from the host program).
pub struct ArrayProxy<C: Chare> {
    pub(crate) id: ArrayId,
    _pd: std::marker::PhantomData<fn() -> C>,
}

impl<C: Chare> ArrayProxy<C> {
    pub(crate) fn new(id: ArrayId) -> Self {
        ArrayProxy {
            id,
            _pd: std::marker::PhantomData,
        }
    }

    /// Rebuild a typed proxy from a raw [`ArrayId`] (e.g. one stored in a
    /// chare's pup'd state). A type mismatch is caught — with a clear panic —
    /// at message delivery, exactly like sending through a mistyped Charm++
    /// proxy.
    pub fn from_id(id: ArrayId) -> Self {
        Self::new(id)
    }

    /// The untyped array id.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// Identity of element `ix` of this array.
    pub fn elem(&self, ix: Ix) -> ObjId {
        ObjId {
            array: self.id,
            ix,
        }
    }
}

impl<C: Chare> Clone for ArrayProxy<C> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C: Chare> Copy for ArrayProxy<C> {}

impl charm_pup::Pup for ArrayId {
    fn pup(&mut self, p: &mut charm_pup::Puper) {
        p.p(&mut self.0);
    }
}

/// Proxies are plain handles; chares may keep them in pup'd state.
impl<C: Chare> charm_pup::Pup for ArrayProxy<C> {
    fn pup(&mut self, p: &mut charm_pup::Puper) {
        p.p(&mut self.id);
    }
}

impl<C: Chare> Default for ArrayProxy<C> {
    fn default() -> Self {
        Self::new(ArrayId(u32::MAX))
    }
}

/// A message or event on its way to a chare.
pub enum Payload {
    /// A user message (a boxed `C::Msg` for the destination array's type).
    User(Box<dyn Any + Send>),
    /// A runtime event.
    Sys(SysEvent),
}

impl Payload {
    /// Short description for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::User(_) => "user",
            Payload::Sys(_) => "sys",
        }
    }
}

/// Per-element bookkeeping the runtime and the LB framework need.
struct Element<C> {
    chare: C,
    pe: usize,
    /// Work-seconds accumulated since the last LB stats collection.
    load: f64,
    /// Bumped on every migration; stale location caches are detected by
    /// comparing epochs.
    epoch: u32,
}

/// Object-safe view of a typed array store; the runtime holds
/// `Box<dyn AnyArray>` and dispatches through this.
pub(crate) trait AnyArray: Send {
    fn id(&self) -> ArrayId;
    fn name(&self) -> &str;
    fn len(&self) -> usize;
    #[allow(dead_code)] // part of the store interface; used by tests/tools
    fn contains(&self, ix: &Ix) -> bool;
    fn element_pe(&self, ix: &Ix) -> Option<usize>;
    #[allow(dead_code)] // part of the store interface; used by tests/tools
    fn element_epoch(&self, ix: &Ix) -> Option<u32>;
    /// `(pe, epoch)` in one lookup — the routing hot path's accessor.
    fn locate(&self, ix: &Ix) -> Option<(usize, u32)>;
    #[allow(dead_code)] // part of the store interface; used by tests/tools
    fn set_element_pe(&mut self, ix: &Ix, pe: usize);
    fn indices(&self) -> Vec<Ix>;
    fn indices_on_pe(&self, pe: usize) -> Vec<Ix>;
    /// Run the entry method / event handler for one delivered payload.
    /// Returns false if the element does not exist (message buffered or
    /// dropped by the caller's policy).
    fn execute(&mut self, ix: &Ix, payload: Payload, ctx: &mut Ctx<'_>) -> bool;
    /// PUP digest of a user message destined for this array (0 on a type
    /// mismatch — `execute` will panic with context anyway).
    fn user_msg_digest(&self, msg: &mut Box<dyn Any + Send>) -> u64;
    /// PUP digest of one element's chare state.
    fn digest_element(&mut self, ix: &Ix) -> Option<u64>;
    /// Serialize an element (for migration / checkpoints).
    fn pack_element(&mut self, ix: &Ix) -> Option<Vec<u8>>;
    /// Deserialize and (re-)insert an element at `pe`.
    fn unpack_insert(&mut self, ix: Ix, pe: usize, bytes: &[u8]);
    fn remove_element(&mut self, ix: &Ix) -> bool;
    /// Insert a type-erased chare (from `Ctx::insert` buffering).
    fn insert_boxed(&mut self, ix: Ix, pe: usize, chare: Box<dyn Any + Send>);
    fn add_load(&mut self, ix: &Ix, load: f64);
    /// Snapshot (index, pe, measured load, hint) for all elements and reset
    /// the measured loads — called at LB time.
    fn drain_loads(&mut self) -> Vec<(Ix, usize, f64, f64)>;
    /// Is this array participating in AtSync load balancing?
    fn uses_at_sync(&self) -> bool;
    fn set_uses_at_sync(&mut self, v: bool);
    /// Remove every element (used by failure rollback before restoring the
    /// checkpointed population).
    fn clear(&mut self);
    /// Move every element homed on a PE in `[lo, hi)` into a fresh store
    /// with the same identity — shard construction for the parallel engine.
    /// Loads and epochs travel with the elements.
    fn split_off_pes(&mut self, lo: usize, hi: usize) -> Box<dyn AnyArray>;
    /// Move all elements of `other` (a store split from this one) back in.
    fn absorb(&mut self, other: Box<dyn AnyArray>);
    /// Downcast support for typed host-side inspection.
    fn as_any(&self) -> &dyn Any;
    #[allow(dead_code)] // mutable counterpart of as_any, for tooling
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Owned downcast support (used by [`AnyArray::absorb`]).
    fn as_any_box(self: Box<Self>) -> Box<dyn Any>;
}

/// Which `Ix` variant owns an array's dense window (see [`dense_slot`]).
const DENSE_NONE: u8 = 0;
const DENSE_I1: u8 = 1;
const DENSE_I2: u8 = 2;

/// Dense-slot ceiling for 1-D indices: `Ix::I1(i)` with `0 <= i < 65536`.
const DENSE_1D_MAX: i64 = 1 << 16;
/// Per-axis bound of the row-major dense 2-D window (`256 × 256`).
const DENSE_2D_SIDE: i32 = 1 << 8;

/// Dense kind an index is eligible for (`DENSE_NONE` if it must hash).
#[inline]
fn dense_kind_of(ix: &Ix) -> u8 {
    match *ix {
        Ix::I1(i) if (0..DENSE_1D_MAX).contains(&i) => DENSE_I1,
        Ix::I2([a, b])
            if (0..DENSE_2D_SIDE).contains(&a) && (0..DENSE_2D_SIDE).contains(&b) =>
        {
            DENSE_I2
        }
        _ => DENSE_NONE,
    }
}

/// Flat slot of `ix` under dense kind `kind`, if it belongs there.
#[inline]
fn dense_slot(kind: u8, ix: &Ix) -> Option<usize> {
    match (kind, *ix) {
        (DENSE_I1, Ix::I1(i)) if (0..DENSE_1D_MAX).contains(&i) => Some(i as usize),
        (DENSE_I2, Ix::I2([a, b]))
            if (0..DENSE_2D_SIDE).contains(&a) && (0..DENSE_2D_SIDE).contains(&b) =>
        {
            Some(((a as usize) << 8) | b as usize)
        }
        _ => None,
    }
}

/// Inverse of [`dense_slot`]: reconstruct the index a slot encodes.
#[inline]
fn slot_ix(kind: u8, slot: usize) -> Ix {
    match kind {
        DENSE_I1 => Ix::I1(slot as i64),
        DENSE_I2 => Ix::I2([(slot >> 8) as i32, (slot & 0xff) as i32]),
        k => unreachable!("slot_ix on dense kind {k}"),
    }
}

/// One source PE's location cache: the last-known PE (and epoch) of every
/// remote element this PE has sent to.
///
/// Probed once per remote send, so it mirrors [`ArrayStore`]'s two-tier
/// layout: dense 1-D/2-D indices — the overwhelmingly common case — hit a
/// flat per-array lane with a single indexed load and **no hashing**;
/// everything else spills to a hash map. Entries pack as
/// `((pe + 1) << 32) | epoch`, with `0` meaning "not cached".
#[derive(Clone, Default)]
pub(crate) struct LocCache {
    /// Whether dense lanes are in use at all. A lane's length is the
    /// highest cached *slot*, not the entry count — ~512 KB fully grown —
    /// which is a fine trade per source PE on bench-sized machines but
    /// O(PEs × 512 KB) on huge ones. Above
    /// [`crate::runtime::LOC_CACHE_DENSE_MAX_PES`] simulated PEs every
    /// entry goes to the (entry-proportional) spill map instead.
    dense_enabled: bool,
    /// Per-array dense kind (`DENSE_NONE` until the first dense-eligible
    /// insert fixes it, exactly like the store's own tier selection).
    kinds: Vec<u8>,
    /// Per-array flat lane, indexed by [`dense_slot`]; grown on demand.
    dense: Vec<Vec<u64>>,
    /// Everything that doesn't fit a dense lane.
    spill: FxHashMap<ObjId, (usize, u32)>,
}

impl LocCache {
    pub(crate) fn with_dense(dense_enabled: bool) -> Self {
        Self { dense_enabled, ..Self::default() }
    }

    /// Cached `(pe, epoch)` of `obj`, if any.
    #[inline]
    pub(crate) fn get(&self, obj: &ObjId) -> Option<(usize, u32)> {
        let a = obj.array.0 as usize;
        if let Some(&kind) = self.kinds.get(a) {
            if let Some(slot) = dense_slot(kind, &obj.ix) {
                let v = self.dense[a].get(slot).copied().unwrap_or(0);
                if v == 0 {
                    return None;
                }
                return Some((((v >> 32) - 1) as usize, v as u32));
            }
        }
        self.spill.get(obj).copied()
    }

    /// Record `obj` as last seen on `pe` at `epoch`.
    pub(crate) fn insert(&mut self, obj: ObjId, (pe, epoch): (usize, u32)) {
        if !self.dense_enabled {
            self.spill.insert(obj, (pe, epoch));
            return;
        }
        let a = obj.array.0 as usize;
        if a >= self.kinds.len() {
            self.kinds.resize(a + 1, DENSE_NONE);
            self.dense.resize_with(a + 1, Vec::new);
        }
        if self.kinds[a] == DENSE_NONE {
            self.kinds[a] = dense_kind_of(&obj.ix);
        }
        if let Some(slot) = dense_slot(self.kinds[a], &obj.ix) {
            let lane = &mut self.dense[a];
            if slot >= lane.len() {
                lane.resize(slot + 1, 0);
            }
            lane[slot] = ((pe as u64 + 1) << 32) | epoch as u64;
        } else {
            self.spill.insert(obj, (pe, epoch));
        }
    }

    /// Drop every entry (lane kinds persist: array index shapes don't
    /// change over a run).
    pub(crate) fn clear(&mut self) {
        for lane in &mut self.dense {
            lane.clear();
        }
        self.spill.clear();
    }

    /// Every cached `(obj, (pe, epoch))`, in no particular order — callers
    /// are order-insensitive (the parallel-mode staleness precheck).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (ObjId, (usize, u32))> + '_ {
        let kinds = &self.kinds;
        self.dense
            .iter()
            .enumerate()
            .flat_map(move |(a, lane)| {
                lane.iter().enumerate().filter(|(_, &v)| v != 0).map(move |(slot, &v)| {
                    (
                        ObjId {
                            array: ArrayId(a as u32),
                            ix: slot_ix(kinds[a], slot),
                        },
                        (((v >> 32) - 1) as usize, v as u32),
                    )
                })
            })
            .chain(self.spill.iter().map(|(o, &v)| (*o, v)))
    }
}

/// Typed storage for all elements of one chare array.
///
/// Layout is a two-tier hybrid tuned for the scheduler hot path, which
/// looks an element up by index several times per delivered message:
///
/// * **dense tier** — small nonnegative 1-D indices (`0..65536`) or 2-D
///   indices inside a `256×256` window live in a flat `Vec` indexed
///   directly by the (row-major) index value: one bounds check and one
///   pointer chase, no hashing. The first dense-eligible insert fixes
///   which variant owns the window. Boxed slots keep empty entries at one
///   pointer each, so sparse populations don't bloat.
/// * **spill tier** — everything else (negative/huge 1-D, 3-D/4-D/6-D,
///   bit-vector, named) hashes into an [`FxHashMap`] — deterministic,
///   seed-free, and ~an order of magnitude cheaper than the std SipHash
///   map on these small fixed-shape keys.
///
/// Iteration-order caveats are unchanged from the old single-map layout:
/// every enumeration below sorts (or is wrapped by a caller that sorts),
/// so replacing the map cannot perturb observable behavior — the replay
/// golden-log regression tests pin this.
pub(crate) struct ArrayStore<C: Chare> {
    id: ArrayId,
    name: String,
    /// Dense tier, indexed by [`dense_slot`]; grown on demand.
    dense: Vec<Option<Box<Element<C>>>>,
    /// Which `Ix` variant owns the dense tier (`DENSE_NONE` until the
    /// first dense-eligible insert).
    dense_kind: u8,
    /// Live elements in the dense tier.
    dense_len: usize,
    /// Spill tier for indices outside the dense window.
    spill: FxHashMap<Ix, Element<C>>,
    at_sync: bool,
}

impl<C: Chare> ArrayStore<C> {
    /// Host-side read access to one element's chare state.
    pub(crate) fn peek(&self, ix: &Ix) -> Option<&C> {
        self.get(ix).map(|e| &e.chare)
    }

    pub(crate) fn new(id: ArrayId, name: &str) -> Self {
        ArrayStore {
            id,
            name: name.to_string(),
            dense: Vec::new(),
            dense_kind: DENSE_NONE,
            dense_len: 0,
            spill: FxHashMap::default(),
            at_sync: false,
        }
    }

    #[inline]
    fn get(&self, ix: &Ix) -> Option<&Element<C>> {
        if let Some(slot) = dense_slot(self.dense_kind, ix) {
            return self.dense.get(slot).and_then(|o| o.as_deref());
        }
        self.spill.get(ix)
    }

    #[inline]
    fn get_mut(&mut self, ix: &Ix) -> Option<&mut Element<C>> {
        if let Some(slot) = dense_slot(self.dense_kind, ix) {
            return self.dense.get_mut(slot).and_then(|o| o.as_deref_mut());
        }
        self.spill.get_mut(ix)
    }

    /// Insert, returning the displaced element (if any).
    fn put(&mut self, ix: Ix, e: Element<C>) -> Option<Element<C>> {
        if self.dense_kind == DENSE_NONE {
            self.dense_kind = dense_kind_of(&ix);
        }
        if let Some(slot) = dense_slot(self.dense_kind, &ix) {
            if slot >= self.dense.len() {
                self.dense.resize_with(slot + 1, || None);
            }
            let prev = self.dense[slot].replace(Box::new(e)).map(|b| *b);
            if prev.is_none() {
                self.dense_len += 1;
            }
            return prev;
        }
        self.spill.insert(ix, e)
    }

    fn take(&mut self, ix: &Ix) -> Option<Element<C>> {
        if let Some(slot) = dense_slot(self.dense_kind, ix) {
            let prev = self.dense.get_mut(slot).and_then(|o| o.take()).map(|b| *b);
            if prev.is_some() {
                self.dense_len -= 1;
            }
            return prev;
        }
        self.spill.remove(ix)
    }

    /// Iterate every `(index, element)` pair, dense tier first. Arbitrary
    /// order within each tier — callers that expose order must sort.
    fn iter(&self) -> impl Iterator<Item = (Ix, &Element<C>)> {
        let kind = self.dense_kind;
        self.dense
            .iter()
            .enumerate()
            .filter_map(move |(slot, o)| o.as_deref().map(|e| (slot_ix(kind, slot), e)))
            .chain(self.spill.iter().map(|(ix, e)| (*ix, e)))
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = (Ix, &mut Element<C>)> {
        let kind = self.dense_kind;
        self.dense
            .iter_mut()
            .enumerate()
            .filter_map(move |(slot, o)| o.as_deref_mut().map(|e| (slot_ix(kind, slot), e)))
            .chain(self.spill.iter_mut().map(|(ix, e)| (*ix, e)))
    }

    pub(crate) fn insert(&mut self, ix: Ix, pe: usize, chare: C) {
        let prev = self.put(
            ix,
            Element {
                chare,
                pe,
                load: 0.0,
                epoch: 0,
            },
        );
        assert!(prev.is_none(), "duplicate insertion of element {ix}");
    }
}

impl<C: Chare> AnyArray for ArrayStore<C> {
    fn id(&self) -> ArrayId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.dense_len + self.spill.len()
    }

    fn contains(&self, ix: &Ix) -> bool {
        self.get(ix).is_some()
    }

    fn element_pe(&self, ix: &Ix) -> Option<usize> {
        self.get(ix).map(|e| e.pe)
    }

    fn element_epoch(&self, ix: &Ix) -> Option<u32> {
        self.get(ix).map(|e| e.epoch)
    }

    fn locate(&self, ix: &Ix) -> Option<(usize, u32)> {
        self.get(ix).map(|e| (e.pe, e.epoch))
    }

    fn set_element_pe(&mut self, ix: &Ix, pe: usize) {
        let e = self
            .get_mut(ix)
            .unwrap_or_else(|| panic!("set_element_pe: no element {ix}"));
        if e.pe != pe {
            e.pe = pe;
            e.epoch += 1;
        }
    }

    fn indices(&self) -> Vec<Ix> {
        let mut v: Vec<Ix> = self.iter().map(|(ix, _)| ix).collect();
        // Deterministic order regardless of storage-tier iteration.
        v.sort_unstable();
        v
    }

    fn indices_on_pe(&self, pe: usize) -> Vec<Ix> {
        let mut v: Vec<Ix> = self
            .iter()
            .filter(|(_, e)| e.pe == pe)
            .map(|(ix, _)| ix)
            .collect();
        v.sort_unstable();
        v
    }

    fn execute(&mut self, ix: &Ix, payload: Payload, ctx: &mut Ctx<'_>) -> bool {
        // Split borrows: name is needed inside the panic message while the
        // element is mutably borrowed from the same struct.
        let (name, e) = if let Some(slot) = dense_slot(self.dense_kind, ix) {
            match self.dense.get_mut(slot).and_then(|o| o.as_deref_mut()) {
                Some(e) => (&self.name, e),
                None => return false,
            }
        } else {
            match self.spill.get_mut(ix) {
                Some(e) => (&self.name, e),
                None => return false,
            }
        };
        match payload {
            Payload::User(boxed) => {
                let boxed = boxed.downcast::<C::Msg>().unwrap_or_else(|_| {
                    panic!(
                        "array '{name}' element {ix}: message type mismatch (expected {})",
                        std::any::type_name::<C::Msg>()
                    )
                });
                // Recycle the payload block (the send-side `box_payload`
                // then reuses it — no allocator traffic per message).
                let msg = if ctx.arena {
                    crate::arena::take_box(boxed)
                } else {
                    *boxed
                };
                e.chare.on_message(msg, ctx);
            }
            Payload::Sys(ev) => e.chare.on_event(ev, ctx),
        }
        true
    }

    fn user_msg_digest(&self, msg: &mut Box<dyn Any + Send>) -> u64 {
        msg.downcast_mut::<C::Msg>()
            .map(charm_pup::digest_of)
            .unwrap_or(0)
    }

    fn digest_element(&mut self, ix: &Ix) -> Option<u64> {
        self.get_mut(ix).map(|e| charm_pup::digest_of(&mut e.chare))
    }

    fn pack_element(&mut self, ix: &Ix) -> Option<Vec<u8>> {
        self.get_mut(ix).map(|e| charm_pup::to_bytes(&mut e.chare))
    }

    fn unpack_insert(&mut self, ix: Ix, pe: usize, bytes: &[u8]) {
        let chare: C = charm_pup::from_bytes(bytes);
        let epoch = self.get(&ix).map(|e| e.epoch + 1).unwrap_or_default();
        self.put(
            ix,
            Element {
                chare,
                pe,
                load: 0.0,
                epoch,
            },
        );
    }

    fn remove_element(&mut self, ix: &Ix) -> bool {
        self.take(ix).is_some()
    }

    fn insert_boxed(&mut self, ix: Ix, pe: usize, chare: Box<dyn Any + Send>) {
        let chare = *chare.downcast::<C>().unwrap_or_else(|_| {
            panic!(
                "array '{}': insert of wrong chare type (expected {})",
                self.name,
                std::any::type_name::<C>()
            )
        });
        self.insert(ix, pe, chare);
    }

    fn add_load(&mut self, ix: &Ix, load: f64) {
        if let Some(e) = self.get_mut(ix) {
            e.load += load;
        }
    }

    fn drain_loads(&mut self) -> Vec<(Ix, usize, f64, f64)> {
        let mut v: Vec<(Ix, usize, f64, f64)> = self
            .iter_mut()
            .map(|(ix, e)| {
                let l = e.load;
                e.load = 0.0;
                (ix, e.pe, l, e.chare.load_hint())
            })
            .collect();
        v.sort_unstable_by_key(|a| a.0);
        v
    }

    fn uses_at_sync(&self) -> bool {
        self.at_sync
    }

    fn set_uses_at_sync(&mut self, v: bool) {
        self.at_sync = v;
    }

    fn clear(&mut self) {
        // Keep the dense window's kind and capacity: a rollback repopulates
        // the same index space, so the allocation is reused.
        for slot in &mut self.dense {
            *slot = None;
        }
        self.dense_len = 0;
        self.spill.clear();
    }

    fn split_off_pes(&mut self, lo: usize, hi: usize) -> Box<dyn AnyArray> {
        let mut out = ArrayStore::<C>::new(self.id, &self.name);
        out.dense_kind = self.dense_kind;
        out.at_sync = self.at_sync;
        let kind = self.dense_kind;
        for (slot, s) in self.dense.iter_mut().enumerate() {
            if s.as_deref().is_some_and(|e| (lo..hi).contains(&e.pe)) {
                let e = s.take().expect("checked");
                self.dense_len -= 1;
                let prev = out.put(slot_ix(kind, slot), *e);
                debug_assert!(prev.is_none());
            }
        }
        let moved: Vec<Ix> = self
            .spill
            .iter()
            .filter(|(_, e)| (lo..hi).contains(&e.pe))
            .map(|(ix, _)| *ix)
            .collect();
        for ix in moved {
            let e = self.spill.remove(&ix).expect("collected above");
            let prev = out.put(ix, e);
            debug_assert!(prev.is_none());
        }
        Box::new(out)
    }

    fn absorb(&mut self, other: Box<dyn AnyArray>) {
        let other = other
            .as_any_box()
            .downcast::<ArrayStore<C>>()
            .unwrap_or_else(|_| panic!("absorb: store type mismatch for array '{}'", self.name));
        let mut elems: Vec<(Ix, Element<C>)> = Vec::new();
        let mut o = *other;
        let kind = o.dense_kind;
        for (slot, s) in o.dense.iter_mut().enumerate() {
            if let Some(e) = s.take() {
                elems.push((slot_ix(kind, slot), *e));
            }
        }
        elems.extend(o.spill.drain());
        for (ix, e) in elems {
            let prev = self.put(ix, e);
            assert!(prev.is_none(), "absorb: duplicate element {ix}");
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_pup::Puper;

    #[derive(Default)]
    struct Dummy {
        v: i64,
    }
    impl charm_pup::Pup for Dummy {
        fn pup(&mut self, p: &mut Puper) {
            p.p(&mut self.v);
        }
    }
    impl Chare for Dummy {
        type Msg = i64;
        fn on_message(&mut self, msg: i64, _ctx: &mut Ctx<'_>) {
            self.v += msg;
        }
    }

    #[test]
    fn insert_pack_unpack_cycle() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(3), 2, Dummy { v: 40 });
        assert_eq!(s.len(), 1);
        assert_eq!(s.element_pe(&Ix::i1(3)), Some(2));
        let bytes = s.pack_element(&Ix::i1(3)).unwrap();
        assert!(s.remove_element(&Ix::i1(3)));
        assert!(!s.contains(&Ix::i1(3)));
        s.unpack_insert(Ix::i1(3), 5, &bytes);
        assert_eq!(s.element_pe(&Ix::i1(3)), Some(5));
    }

    #[test]
    fn epoch_bumps_on_pe_change() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(0), 0, Dummy::default());
        assert_eq!(s.element_epoch(&Ix::i1(0)), Some(0));
        s.set_element_pe(&Ix::i1(0), 1);
        assert_eq!(s.element_epoch(&Ix::i1(0)), Some(1));
        // setting to the same PE is not a migration
        s.set_element_pe(&Ix::i1(0), 1);
        assert_eq!(s.element_epoch(&Ix::i1(0)), Some(1));
    }

    #[test]
    fn drain_loads_resets() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(0), 0, Dummy::default());
        s.insert(Ix::i1(1), 1, Dummy::default());
        s.add_load(&Ix::i1(0), 0.5);
        s.add_load(&Ix::i1(0), 0.25);
        let loads = s.drain_loads();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0], (Ix::i1(0), 0, 0.75, 1.0));
        assert_eq!(loads[1], (Ix::i1(1), 1, 0.0, 1.0));
        let again = s.drain_loads();
        assert_eq!(again[0].2, 0.0, "loads reset after drain");
    }

    #[test]
    fn indices_sorted_and_per_pe() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        for i in (0..10).rev() {
            s.insert(Ix::i1(i), (i % 3) as usize, Dummy::default());
        }
        let all = s.indices();
        assert_eq!(all.len(), 10);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.indices_on_pe(0).len(), 4); // 0,3,6,9
        assert_eq!(s.indices_on_pe(1).len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate insertion")]
    fn duplicate_insert_rejected() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(0), 0, Dummy::default());
        s.insert(Ix::i1(0), 0, Dummy::default());
    }

    #[test]
    fn dense_and_spill_tiers_coexist() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        // First insert claims the dense window for I1…
        s.insert(Ix::i1(7), 0, Dummy { v: 7 });
        // …negative and huge 1-D indices spill, as do other variants.
        s.insert(Ix::i1(-4), 1, Dummy { v: -4 });
        s.insert(Ix::i1(DENSE_1D_MAX + 9), 2, Dummy { v: 99 });
        s.insert(Ix::i2(0, 3), 0, Dummy { v: 3 });
        assert_eq!(s.len(), 4);
        assert_eq!(s.peek(&Ix::i1(7)).unwrap().v, 7);
        assert_eq!(s.peek(&Ix::i1(-4)).unwrap().v, -4);
        assert_eq!(s.peek(&Ix::i1(DENSE_1D_MAX + 9)).unwrap().v, 99);
        assert_eq!(s.peek(&Ix::i2(0, 3)).unwrap().v, 3);
        // indices() is sorted across both tiers.
        let all = s.indices();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all.len(), 4);
        // Removal from both tiers keeps len() honest.
        assert!(s.remove_element(&Ix::i1(7)));
        assert!(s.remove_element(&Ix::i1(-4)));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&Ix::i1(7)));
    }

    #[test]
    fn dense_2d_window_no_slot_collisions() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        // 2-D first insert claims the 256×256 window; I1 then spills, so
        // I2([0, 5]) and I1(5) never share storage.
        s.insert(Ix::i2(0, 5), 0, Dummy { v: 25 });
        s.insert(Ix::i1(5), 1, Dummy { v: 15 });
        assert_eq!(s.peek(&Ix::i2(0, 5)).unwrap().v, 25);
        assert_eq!(s.peek(&Ix::i1(5)).unwrap().v, 15);
        assert_eq!(s.element_pe(&Ix::i2(0, 5)), Some(0));
        assert_eq!(s.element_pe(&Ix::i1(5)), Some(1));
        // Outside the window spills too.
        s.insert(Ix::i2(300, 1), 2, Dummy { v: 301 });
        assert_eq!(s.locate(&Ix::i2(300, 1)), Some((2, 0)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn locate_matches_pe_and_epoch() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(2), 3, Dummy::default());
        assert_eq!(s.locate(&Ix::i1(2)), Some((3, 0)));
        s.set_element_pe(&Ix::i1(2), 4);
        assert_eq!(s.locate(&Ix::i1(2)), Some((4, 1)));
        assert_eq!(s.locate(&Ix::i1(99)), None);
    }

    #[test]
    fn split_and_absorb_preserve_elements_and_load() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(3), "dummy");
        for i in 0..8 {
            s.insert(Ix::i1(i), (i % 4) as usize, Dummy { v: i });
        }
        s.insert(Ix::i1(-2), 1, Dummy { v: -2 }); // spill tier
        s.add_load(&Ix::i1(1), 0.5);
        let mut shard = s.split_off_pes(1, 3);
        // PEs 1 and 2 own 1,2,5,6 and the spilled -2.
        assert_eq!(shard.len(), 5);
        assert_eq!(s.len(), 4);
        assert_eq!(shard.element_pe(&Ix::i1(1)), Some(1));
        assert_eq!(shard.element_pe(&Ix::i1(-2)), Some(1));
        assert_eq!(s.element_pe(&Ix::i1(0)), Some(0));
        assert!(s.element_pe(&Ix::i1(1)).is_none());
        // Loads travel with the split and back.
        let loads = shard.drain_loads();
        assert_eq!(loads.iter().find(|l| l.0 == Ix::i1(1)).unwrap().2, 0.5);
        s.absorb(shard);
        assert_eq!(s.len(), 9);
        assert_eq!(s.peek(&Ix::i1(5)).unwrap().v, 5);
        let all = s.indices();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn clear_empties_both_tiers() {
        let mut s = ArrayStore::<Dummy>::new(ArrayId(0), "dummy");
        s.insert(Ix::i1(1), 0, Dummy::default());
        s.insert(Ix::i1(-1), 0, Dummy::default());
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(s.indices().is_empty());
        // Dense window stays claimed for I1 — reinsertion works.
        s.insert(Ix::i1(1), 0, Dummy::default());
        assert_eq!(s.len(), 1);
    }
}
