//! Streaming file sinks for the tracer: incremental Chrome-trace JSON and
//! CSV writers implementing [`TraceSink`].
//!
//! Both funnel every record through the same formatters as the in-memory
//! exporters, so a streamed file is byte-identical to
//! [`Runtime::trace_chrome_json_arrival`](crate::Runtime::trace_chrome_json_arrival)
//! / [`trace_csv_arrival`](crate::Runtime::trace_csv_arrival) whenever the
//! rings retained every record (property-tested in `tests/trace_stream.rs`)
//! — but unlike the rings they hold O(1) memory no matter how many events
//! the run produces, which is what lets full event logs survive 128 K–1 M
//! simulated PEs (`scale_bench`).
//!
//! Write errors never abort the simulation: they are counted in
//! [`SinkStats::dropped`] and surfaced in the report footer.

use crate::trace::{chrome_event, chrome_header, csv_row, NameTable, SinkStats, TraceRecord, TraceSink, CSV_HEADER};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

/// Shared plumbing: buffered file, delivery counters, error latch.
struct FileSink {
    out: Option<BufWriter<File>>,
    records: u64,
    dropped: u64,
    bytes_written: u64,
    finished: bool,
}

impl FileSink {
    fn create(path: &Path) -> std::io::Result<Self> {
        Ok(FileSink {
            out: Some(BufWriter::new(File::create(path)?)),
            records: 0,
            dropped: 0,
            bytes_written: 0,
            finished: false,
        })
    }

    /// Write a chunk; on error latch the failure into `dropped`.
    fn write(&mut self, chunk: &str) -> bool {
        let Some(w) = self.out.as_mut() else {
            return false;
        };
        match w.write_all(chunk.as_bytes()) {
            Ok(()) => {
                self.bytes_written += chunk.len() as u64;
                true
            }
            Err(_) => false,
        }
    }

    fn record(&mut self, chunk: &str) {
        self.records += 1;
        if !self.write(chunk) {
            self.dropped += 1;
        }
    }

    fn finish(&mut self, tail: &str) {
        if self.finished {
            return;
        }
        self.finished = true;
        if !self.write(tail) {
            self.dropped += 1;
        }
        if let Some(mut w) = self.out.take() {
            let _ = w.flush();
        }
    }

    fn stats(&self, name: &'static str) -> SinkStats {
        SinkStats {
            name: name.to_string(),
            records: self.records,
            dropped: self.dropped,
            bytes_written: self.bytes_written,
        }
    }
}

/// Streams the event log to a Chrome trace-event JSON file as records
/// arrive (Perfetto / `chrome://tracing` loadable). Install via
/// [`RuntimeBuilder::trace_sink`](crate::RuntimeBuilder::trace_sink);
/// finalize with [`Runtime::finish_trace`](crate::Runtime::finish_trace)
/// (dropping the runtime also closes the file, via `TraceSink::finish`
/// never having run — the JSON tail is then missing, so always finish).
pub struct ChromeStreamSink {
    file: FileSink,
    first: bool,
    scratch: String,
}

impl ChromeStreamSink {
    /// Create/truncate the output file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(ChromeStreamSink {
            file: FileSink::create(path.as_ref())?,
            first: true,
            scratch: String::new(),
        })
    }
}

impl TraceSink for ChromeStreamSink {
    fn name(&self) -> &'static str {
        "chrome_stream"
    }

    fn begin(&mut self, num_tracks: usize, _names: &NameTable) {
        self.scratch.clear();
        chrome_header(&mut self.scratch, num_tracks, num_tracks.saturating_sub(1));
        let header = std::mem::take(&mut self.scratch);
        if !self.file.write(&header) {
            self.file.dropped += 1;
        }
        self.scratch = header; // keep the allocation
    }

    fn record(&mut self, rec: &TraceRecord, names: &NameTable) {
        self.scratch.clear();
        if !self.first {
            self.scratch.push_str(",\n");
        }
        self.first = false;
        chrome_event(&mut self.scratch, rec, &|a, e| names.entry_name(a, e));
        let line = std::mem::take(&mut self.scratch);
        self.file.record(&line);
        self.scratch = line;
    }

    fn finish(&mut self, _names: &NameTable) {
        self.file.finish("\n]}\n");
    }

    fn stats(&self) -> SinkStats {
        self.file.stats("chrome_stream")
    }
}

/// Streams the event log to a CSV file
/// (`t_ns,track,kind,name,dur_ns,bytes,a,b`) as records arrive.
pub struct CsvStreamSink {
    file: FileSink,
    scratch: String,
}

impl CsvStreamSink {
    /// Create/truncate the output file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(CsvStreamSink {
            file: FileSink::create(path.as_ref())?,
            scratch: String::new(),
        })
    }
}

impl TraceSink for CsvStreamSink {
    fn name(&self) -> &'static str {
        "csv_stream"
    }

    fn begin(&mut self, _num_tracks: usize, _names: &NameTable) {
        if !self.file.write(CSV_HEADER) {
            self.file.dropped += 1;
        }
    }

    fn record(&mut self, rec: &TraceRecord, names: &NameTable) {
        self.scratch.clear();
        self.scratch.push_str(&csv_row(rec, &|a, e| names.entry_name(a, e)));
        self.scratch.push('\n');
        let line = std::mem::take(&mut self.scratch);
        self.file.record(&line);
        self.scratch = line;
    }

    fn finish(&mut self, _names: &NameTable) {
        self.file.finish("");
    }

    fn stats(&self) -> SinkStats {
        self.file.stats("csv_stream")
    }
}

/// In-memory sink that counts records and discards them — the
/// null-overhead arm for sink-cost measurements and tests.
#[derive(Default)]
pub struct CountingSink {
    records: u64,
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for CountingSink {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn record(&mut self, _rec: &TraceRecord, _names: &NameTable) {
        self.records += 1;
    }

    fn stats(&self) -> SinkStats {
        SinkStats {
            name: "counting".to_string(),
            records: self.records,
            dropped: 0,
            bytes_written: 0,
        }
    }
}
