//! Power/temperature awareness (§III-C): periodic chip-temperature
//! sampling, DVFS control, and frequency-aware load balancing.
//!
//! Reproduces the five schemes of Fig. 4:
//!
//! * `Off` — temperature not even sampled (machines without a thermal model),
//! * `Base` — temperatures tracked, no DVFS, no LB: fast but hot,
//! * `Naive` — DVFS caps temperature but the resulting heterogeneity is
//!   ignored, so tightly coupled apps slow to the hottest chip's pace,
//! * `WithLb { period }` — DVFS plus frequency-aware LB every `period`
//!   (the paper's LB_10s / LB_5s),
//! * `MetaTemp` — DVFS plus LB triggered only when the measured imbalance
//!   makes rebalancing worth its cost.

use crate::runtime::{Ev, Runtime};
use crate::trace::TraceEventKind;
use charm_machine::SimTime;

/// The temperature-control scheme the RTS applies at each DVFS tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DvfsScheme {
    /// No thermal control at all.
    Off,
    /// Track temperature only (the paper's "Base" case).
    Base,
    /// DVFS without load balancing ("Naive_DVFS").
    Naive,
    /// DVFS plus periodic frequency-aware load balancing ("LB_10s"/"LB_5s").
    WithLb {
        /// Rebalancing period.
        period: SimTime,
    },
    /// DVFS plus benefit-triggered load balancing ("MetaTemp").
    MetaTemp {
        /// Imbalance (max/avg) above which rebalancing is considered
        /// worthwhile.
        min_imbalance: f64,
    },
}

impl Runtime {
    /// One temperature-sampling / DVFS-control period elapsed.
    pub(crate) fn on_dvfs_tick(&mut self) {
        let Some(thermal) = self.thermal.as_mut() else {
            return;
        };
        let period_s = self.dvfs_period.as_secs_f64();
        let cores = self.machine.cores_per_chip as f64;
        let mut any_freq_change = false;

        for chip in 0..thermal.num_chips() {
            let busy = std::mem::replace(&mut self.chip_busy[chip], SimTime::ZERO);
            let util = (busy.as_secs_f64() / (period_s * cores)).clamp(0.0, 1.0);
            thermal.advance(chip, period_s, util);
            match self.dvfs {
                DvfsScheme::Off | DvfsScheme::Base => {}
                DvfsScheme::Naive | DvfsScheme::WithLb { .. } | DvfsScheme::MetaTemp { .. } => {
                    if thermal.dvfs_step(chip) {
                        any_freq_change = true;
                        if let Some(tr) = &mut self.tracer {
                            tr.rts(
                                self.now,
                                TraceEventKind::DvfsFreq {
                                    chip,
                                    freq_factor: thermal.freq_factor(chip),
                                },
                            );
                        }
                    }
                }
            }
        }

        // Journal temperature / frequency observations.
        let max_t = (0..thermal.num_chips())
            .map(|c| thermal.temp(c))
            .fold(f64::NEG_INFINITY, f64::max);
        let avg_f = (0..thermal.num_chips())
            .map(|c| thermal.freq_factor(c))
            .sum::<f64>()
            / thermal.num_chips().max(1) as f64;
        let now_s = self.now.as_secs_f64();
        self.metrics
            .entry("max_temp_c".into())
            .or_default()
            .push((now_s, max_t));
        self.metrics
            .entry("avg_freq".into())
            .or_default()
            .push((now_s, avg_f));

        // Frequency-aware LB, per scheme.
        match self.dvfs {
            DvfsScheme::WithLb { period }
                if self.now.saturating_sub(self.last_rts_lb) >= period => {
                    self.last_rts_lb = self.now;
                    self.rts_triggered_lb();
                }
            DvfsScheme::MetaTemp { min_imbalance }
                if any_freq_change => {
                    let stats = self.collect_stats_peek();
                    if stats.imbalance() > min_imbalance {
                        self.last_rts_lb = self.now;
                        self.rts_triggered_lb();
                    }
                }
            _ => {}
        }

        let next = self.now + self.dvfs_period;
        self.push_ev(next, Ev::DvfsTick);
    }

    /// An RTS-triggered LB round (no AtSync barrier involved): used by the
    /// thermal schemes and by cloud interference handling (§IV-F: "instead
    /// of application-triggered periodic load balancing, we switch to an
    /// RTS-triggered approach").
    pub(crate) fn rts_triggered_lb(&mut self) {
        if self.lb.is_none() {
            return;
        }
        self.run_lb_round(self.now, false);
    }

    /// Schedule periodic RTS-triggered load balancing every `period`,
    /// starting one period from now (cloud scenarios, Fig. 16).
    pub fn schedule_periodic_lb(&mut self, period: SimTime, rounds: usize) {
        for k in 1..=rounds {
            let at = SimTime(self.now.0 + period.0 * k as u64);
            let key = self.fresh_key(self.host_slot());
            self.events.push_keyed(at, key, Ev::RtsLb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_machine::presets;

    #[test]
    fn dvfs_tick_tracks_temperature() {
        let machine = presets::thermal_testbed(16);
        let mut rt = Runtime::builder(machine)
            .dvfs(DvfsScheme::Base)
            .dvfs_period(SimTime::from_secs(1))
            .build();
        // Nothing to run; just let the sampler tick a few times.
        rt.run_for(SimTime::from_secs(10));
        let temps = rt.metric("max_temp_c");
        assert!(temps.len() >= 9, "got {} samples", temps.len());
        // Idle machine drifts toward its leakage-only steady state, which
        // sits near (±cooling variation) the initial temperature — never
        // anywhere close to the loaded threshold.
        let cfg = rt.thermal().unwrap().config().clone();
        assert!(temps.iter().all(|&(_, t)| t <= cfg.initial_c + 5.0));
        assert!(temps.iter().all(|&(_, t)| t < cfg.threshold_c));
    }

    #[test]
    fn naive_dvfs_reduces_frequency_when_hot() {
        let mut machine = presets::thermal_testbed(4);
        if let Some(t) = machine.thermal.as_mut() {
            t.initial_c = 80.0; // start hot
        }
        let mut rt = Runtime::builder(machine)
            .dvfs(DvfsScheme::Naive)
            .dvfs_period(SimTime::from_secs(1))
            .build();
        rt.run_for(SimTime::from_secs(5));
        let f = rt.metric("avg_freq");
        assert!(f.last().unwrap().1 < 1.0, "frequency should have dropped");
    }
}
