//! `Ctx` — the interface an entry method uses to interact with the runtime.
//!
//! All effects (sends, broadcasts, reductions, migration, insertion…) are
//! *buffered* while the entry method runs and applied by the runtime when it
//! returns. This mirrors the asynchronous semantics of Charm++ (nothing an
//! entry method does takes effect synchronously) and keeps the borrow
//! structure simple: the chare is borrowed from its store, the `Ctx` from
//! the runtime's scratch state, and never both from the same place.

use crate::array::{ArrayId, ArrayProxy, ObjId};
use crate::chare::{Callback, Chare, RedOp, RedValue};
use crate::ctrl::ControlValues;
use crate::index::Ix;
use charm_machine::SimTime;
use rand::rngs::StdRng;
use std::any::Any;

/// Buffered effects of one entry-method execution.
pub(crate) enum Action {
    Send {
        dst: ObjId,
        payload: Box<dyn Any + Send>,
        bytes: usize,
        prio: i64,
        delay: SimTime,
    },
    Broadcast {
        array: ArrayId,
        make: Box<dyn Fn() -> Box<dyn Any + Send> + Send>,
        bytes: usize,
        prio: i64,
    },
    Contribute {
        array: ArrayId,
        tag: u32,
        value: RedValue,
        op: RedOp,
        cb: Callback,
    },
    AtSync,
    MigrateMe {
        to: usize,
    },
    Insert {
        array: ArrayId,
        ix: Ix,
        chare: Box<dyn Any + Send>,
        pe: Option<usize>,
    },
    DestroyMe,
    Exit,
    Metric {
        name: String,
        value: f64,
    },
    RequestQuiescence {
        cb: Callback,
    },
    CtrlFeedback {
        /// Observed value of the objective the tuner minimizes (e.g. the
        /// last step time in seconds).
        objective: f64,
    },
    MemCheckpoint {
        cb: Callback,
    },
    RequestLb,
}

/// Execution context passed to [`Chare::on_message`] / [`Chare::on_event`].
pub struct Ctx<'rt> {
    pub(crate) now: SimTime,
    pub(crate) pe: usize,
    pub(crate) num_pes: usize,
    pub(crate) self_id: ObjId,
    pub(crate) work_units: f64,
    pub(crate) actions: Vec<Action>,
    pub(crate) rng: &'rt mut StdRng,
    pub(crate) ctrl: &'rt ControlValues,
    /// Serve payload boxes from the thread-local [`crate::arena`] pool
    /// (mirrors `Runtime::arena_enabled`).
    pub(crate) arena: bool,
}

impl<'rt> Ctx<'rt> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The PE this entry method is executing on.
    pub fn my_pe(&self) -> usize {
        self.pe
    }

    /// Number of live PEs in the runtime.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// This chare's own index.
    pub fn my_index(&self) -> Ix {
        self.self_id.ix
    }

    /// This chare's identity (array + index).
    pub fn my_id(&self) -> ObjId {
        self.self_id
    }

    /// Charge `units` work-units (flops) of computation to this entry
    /// method. The scheduler converts this to virtual time at the PE's
    /// current effective speed. Calls accumulate.
    pub fn work(&mut self, units: f64) {
        debug_assert!(units >= 0.0, "negative work");
        self.work_units += units;
    }

    /// A deterministic per-PE random generator (seeded from the run seed).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Box a payload, recycling a pooled block when the arena is on (the
    /// matching `take_box` is in `ArrayStore::execute`).
    #[inline]
    fn box_payload<M: Send + 'static>(&self, msg: M) -> Box<dyn Any + Send> {
        if self.arena {
            crate::arena::alloc_box(msg)
        } else {
            Box::new(msg)
        }
    }

    /// Asynchronously invoke the entry method of `ix` in `array` with `msg`
    /// (default priority 0; smaller priorities run first).
    pub fn send<C: Chare>(&mut self, array: ArrayProxy<C>, ix: Ix, msg: C::Msg) {
        self.send_prio(array, ix, msg, 0);
    }

    /// [`Ctx::send`] with an explicit priority: smaller values are scheduled
    /// ahead of larger ones on the destination PE (§IV-C uses this to favor
    /// remote data requests).
    pub fn send_prio<C: Chare>(&mut self, array: ArrayProxy<C>, ix: Ix, mut msg: C::Msg, prio: i64) {
        let bytes = charm_pup::packed_size(&mut msg) + crate::ENVELOPE_BYTES;
        let payload = self.box_payload(msg);
        self.actions.push(Action::Send {
            dst: ObjId {
                array: array.id,
                ix,
            },
            payload,
            bytes,
            prio,
            delay: SimTime::ZERO,
        });
    }

    /// Deliver `msg` to `ix` after an additional virtual delay — the
    /// idiomatic way to implement periodic chare-driven behaviour.
    pub fn send_after<C: Chare>(&mut self, delay: SimTime, array: ArrayProxy<C>, ix: Ix, mut msg: C::Msg) {
        let bytes = charm_pup::packed_size(&mut msg) + crate::ENVELOPE_BYTES;
        let payload = self.box_payload(msg);
        self.actions.push(Action::Send {
            dst: ObjId {
                array: array.id,
                ix,
            },
            payload,
            bytes,
            prio: 0,
            delay,
        });
    }

    /// Broadcast `msg` to every element of `array` (spanning-tree cost).
    pub fn broadcast<C: Chare>(&mut self, array: ArrayProxy<C>, msg: C::Msg)
    where
        C::Msg: Clone,
    {
        let mut probe = msg.clone();
        let bytes = charm_pup::packed_size(&mut probe) + crate::ENVELOPE_BYTES;
        let use_arena = self.arena;
        self.actions.push(Action::Broadcast {
            array: array.id,
            make: Box::new(move || {
                if use_arena {
                    crate::arena::alloc_box(msg.clone()) as Box<dyn Any + Send>
                } else {
                    Box::new(msg.clone()) as Box<dyn Any + Send>
                }
            }),
            bytes,
            prio: 0,
        });
    }

    /// Contribute to reduction `tag` over `array`. When every current
    /// element of the array has contributed with the same tag, `op`-combined
    /// `value` is delivered to `cb` as [`SysEvent::Reduction`].
    ///
    /// [`SysEvent::Reduction`]: crate::SysEvent::Reduction
    pub fn contribute<C: Chare>(
        &mut self,
        array: ArrayProxy<C>,
        tag: u32,
        value: RedValue,
        op: RedOp,
        cb: Callback,
    ) {
        self.actions.push(Action::Contribute {
            array: array.id,
            tag,
            value,
            op,
            cb,
        });
    }

    /// Signal that this chare is at its load-balancing point (Charm++'s
    /// `AtSync()`). When every element of every AtSync array has called
    /// this, the runtime runs the balancer, migrates chares, and delivers
    /// `ResumeFromSync` to all of them.
    pub fn at_sync(&mut self) {
        self.actions.push(Action::AtSync);
    }

    /// Migrate this chare to `pe` after this entry method returns.
    pub fn migrate_me(&mut self, pe: usize) {
        self.actions.push(Action::MigrateMe { to: pe });
    }

    /// Dynamically insert a new element (AMR refinement creates children
    /// this way). Placement defaults to the array's home map when `pe` is
    /// `None`.
    pub fn insert<C: Chare>(&mut self, array: ArrayProxy<C>, ix: Ix, chare: C, pe: Option<usize>) {
        self.actions.push(Action::Insert {
            array: array.id,
            ix,
            chare: Box::new(chare),
            pe,
        });
    }

    /// Remove this chare from its array after this entry method returns
    /// (AMR coarsening destroys children this way).
    pub fn destroy_me(&mut self) {
        self.actions.push(Action::DestroyMe);
    }

    /// Ask the runtime to detect quiescence: when no messages are in flight
    /// and all PEs are idle, deliver [`SysEvent::QuiescenceDetected`] to
    /// `cb`. Used by AMR3D's mesh restructuring (§IV-A: O(1) collective).
    ///
    /// [`SysEvent::QuiescenceDetected`]: crate::SysEvent::QuiescenceDetected
    pub fn request_quiescence(&mut self, cb: Callback) {
        self.actions.push(Action::RequestQuiescence { cb });
    }

    /// Terminate the simulation once buffered actions are applied (like
    /// `CkExit()`).
    pub fn exit(&mut self) {
        self.actions.push(Action::Exit);
    }

    /// Record a named time-series sample into the run journal — the bench
    /// harness reads these to regenerate the paper's figures.
    pub fn log_metric(&mut self, name: &str, value: f64) {
        self.actions.push(Action::Metric {
            name: name.to_string(),
            value,
        });
    }

    /// Current value of a registered control point (§III-E), or `default`
    /// if no such control point exists.
    pub fn control(&self, name: &str, default: i64) -> i64 {
        self.ctrl.get(name).unwrap_or(default)
    }

    /// Report the objective value (e.g. step time) the introspective tuner
    /// is minimizing; the tuner adjusts registered control points between
    /// observations.
    pub fn report_objective(&mut self, objective: f64) {
        self.actions.push(Action::CtrlFeedback { objective });
    }

    /// Take a double in-memory checkpoint of the entire application
    /// (Charm++'s `CkStartMemCheckpoint`, §III-B): every chare is packed,
    /// stored locally and on a buddy PE, and `cb` receives
    /// [`SysEvent::CheckpointDone`] when the protocol completes.
    ///
    /// [`SysEvent::CheckpointDone`]: crate::SysEvent::CheckpointDone
    pub fn start_mem_checkpoint(&mut self, cb: Callback) {
        self.actions.push(Action::MemCheckpoint { cb });
    }

    /// Ask the RTS to run a load-balancing round now (without the AtSync
    /// barrier): what the runtime does on its own under the thermal and
    /// cloud schemes, exposed for application-driven moments like AMR
    /// post-restructure balancing.
    pub fn request_lb(&mut self) {
        self.actions.push(Action::RequestLb);
    }

    /// A callback handle naming this chare (convenience for `contribute`).
    pub fn cb_self(&self) -> Callback {
        Callback::ToChare {
            array: self.self_id.array,
            ix: self.self_id.ix,
        }
    }
}
