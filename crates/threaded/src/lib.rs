//! # charm-threaded — the chare model on real OS threads
//!
//! The simulator in `charm-core` reproduces the paper's *measurements*; this
//! crate demonstrates the same programming model with *genuine parallelism*:
//! message-driven actors over a pool of worker threads, over-decomposition
//! (many more actors than workers), actor migration between workers, and
//! measurement-based rebalancing. Rust's `Send` bounds make the usual
//! pitfalls (sharing a chare between two schedulers, racing a migration
//! against a delivery) compile-time errors — data-race freedom by
//! construction, per the concurrency guides.
//!
//! Scope: the laptop-scale companion for examples and speedup demos — sends,
//! sum-reductions, quiescence-style drain, migration, and a greedy
//! measured-load rebalancer. The simulated machine models (network, thermal,
//! failures) belong to `charm-core`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identity of an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u64);

/// A message-driven object executing on the thread pool.
pub trait Actor: Send + 'static {
    /// Message type.
    type Msg: Send + 'static;
    /// Entry method.
    fn on_message(&mut self, msg: Self::Msg, ctx: &mut TCtx<'_>);
}

trait AnyActor: Send {
    fn deliver(&mut self, msg: Box<dyn Any + Send>, ctx: &mut TCtx<'_>);
}

struct ActorBox<A: Actor>(A);

impl<A: Actor> AnyActor for ActorBox<A> {
    fn deliver(&mut self, msg: Box<dyn Any + Send>, ctx: &mut TCtx<'_>) {
        let msg = *msg
            .downcast::<A::Msg>()
            .unwrap_or_else(|_| panic!("message type mismatch for actor {}", ctx.self_id.0));
        self.0.on_message(msg, ctx);
    }
}

/// Per-actor measurements (drives the rebalancer).
#[derive(Default)]
struct ActorStats {
    busy_ns: AtomicU64,
    msgs: AtomicU64,
}

enum Task {
    /// A user message for an actor.
    Deliver(ActorId, Box<dyn Any + Send>),
    /// An actor's state arriving at its (new) worker.
    Settle(ActorId, Box<dyn AnyActor>, Arc<ActorStats>),
    /// Re-examine an actor (applies pending rebalancer moves).
    Nudge(ActorId),
    /// Shut the worker down.
    Stop,
}

struct RedInProgress {
    expected: usize,
    count: usize,
    acc: f64,
    done: Sender<f64>,
}

struct Shared {
    locations: RwLock<HashMap<ActorId, usize>>,
    queues: Vec<Sender<Task>>,
    /// (sent − processed) messages; 0 ⇒ quiescent.
    in_flight: AtomicI64,
    stats: RwLock<HashMap<ActorId, Arc<ActorStats>>>,
    reductions: Mutex<HashMap<u32, RedInProgress>>,
    /// Rebalancer decisions awaiting application by the owning worker.
    pending_moves: Mutex<HashMap<ActorId, usize>>,
    worker_busy_ns: Vec<AtomicU64>,
}

impl Shared {
    fn send_erased(&self, to: ActorId, msg: Box<dyn Any + Send>) {
        let w = *self
            .locations
            .read()
            .get(&to)
            .unwrap_or_else(|| panic!("send to unknown actor {}", to.0));
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = self.queues[w].send(Task::Deliver(to, msg));
    }

    fn contribute(&self, tag: u32, value: f64) {
        let mut reds = self.reductions.lock();
        let entry = reds
            .get_mut(&tag)
            .unwrap_or_else(|| panic!("contribution to unregistered reduction {tag}"));
        entry.count += 1;
        entry.acc += value;
        if entry.count >= entry.expected {
            let r = reds.remove(&tag).expect("present");
            let _ = r.done.send(r.acc);
        }
    }
}

/// Context passed to [`Actor::on_message`].
pub struct TCtx<'a> {
    shared: &'a Arc<Shared>,
    self_id: ActorId,
    worker: usize,
    migrate_to: Option<usize>,
}

impl<'a> TCtx<'a> {
    /// This actor's id.
    pub fn my_id(&self) -> ActorId {
        self.self_id
    }

    /// The worker thread currently running this actor.
    pub fn my_worker(&self) -> usize {
        self.worker
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Asynchronously invoke actor `to` with `msg`.
    pub fn send<A: Actor>(&mut self, to: ActorId, msg: A::Msg) {
        self.shared.send_erased(to, Box::new(msg));
    }

    /// Contribute `value` to reduction `tag` (registered on the runtime).
    pub fn contribute(&mut self, tag: u32, value: f64) {
        self.shared.contribute(tag, value);
    }

    /// Migrate this actor to `worker` once the current entry returns.
    pub fn migrate_me(&mut self, worker: usize) {
        if worker < self.shared.queues.len() {
            self.migrate_to = Some(worker);
        }
    }
}

/// A pool of worker threads executing actors.
pub struct ThreadedRuntime {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next_id: u64,
    started: Instant,
}

impl ThreadedRuntime {
    /// Spin up `workers` threads.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1);
        let mut queues = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded();
            queues.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            locations: RwLock::new(HashMap::new()),
            queues,
            in_flight: AtomicI64::new(0),
            stats: RwLock::new(HashMap::new()),
            reductions: Mutex::new(HashMap::new()),
            pending_moves: Mutex::new(HashMap::new()),
            worker_busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(w, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(w, rx, shared))
            })
            .collect();
        ThreadedRuntime {
            shared,
            handles,
            next_id: 0,
            started: Instant::now(),
        }
    }

    /// Create an actor on a worker (round-robin when `worker` is None).
    pub fn spawn<A: Actor>(&mut self, actor: A, worker: Option<usize>) -> ActorId {
        let id = ActorId(self.next_id);
        self.next_id += 1;
        let w = worker.unwrap_or(id.0 as usize % self.shared.queues.len());
        assert!(w < self.shared.queues.len(), "worker {w} out of range");
        let stats = Arc::new(ActorStats::default());
        self.shared.locations.write().insert(id, w);
        self.shared.stats.write().insert(id, Arc::clone(&stats));
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        self.shared.queues[w]
            .send(Task::Settle(id, Box::new(ActorBox(actor)), stats))
            .expect("worker alive");
        id
    }

    /// Send a message from the host.
    pub fn send<A: Actor>(&self, to: ActorId, msg: A::Msg) {
        self.shared.send_erased(to, Box::new(msg));
    }

    /// Register a sum-reduction over `expected` contributions; the returned
    /// receiver yields the total.
    pub fn reduction(&self, tag: u32, expected: usize) -> Receiver<f64> {
        let (tx, rx) = unbounded();
        let prev = self.shared.reductions.lock().insert(
            tag,
            RedInProgress {
                expected,
                count: 0,
                acc: 0.0,
                done: tx,
            },
        );
        assert!(prev.is_none(), "reduction tag {tag} already active");
        rx
    }

    /// Block until no messages are queued or executing, or `timeout`
    /// expires. Returns true on quiescence.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.shared.in_flight.load(Ordering::SeqCst) != 0 {
            if Instant::now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// Measured busy time per worker, nanoseconds.
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        self.shared
            .worker_busy_ns
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Where an actor currently lives.
    pub fn location(&self, id: ActorId) -> Option<usize> {
        self.shared.locations.read().get(&id).copied()
    }

    /// Wall-clock since construction.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Greedy rebalance by measured per-actor busy time (heaviest first to
    /// the least-loaded worker). Call at a quiescent point. Returns the
    /// number of migrations initiated.
    pub fn rebalance(&self) -> usize {
        let stats = self.shared.stats.read();
        let locs = self.shared.locations.read();
        let mut items: Vec<(ActorId, usize, u64)> = stats
            .iter()
            .filter_map(|(&id, s)| {
                locs.get(&id)
                    .map(|&w| (id, w, s.busy_ns.load(Ordering::Relaxed).max(1)))
            })
            .collect();
        drop(locs);
        drop(stats);
        items.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        let workers = self.shared.queues.len();
        let mut load = vec![0u64; workers];
        let mut moves = 0usize;
        let mut pending = self.shared.pending_moves.lock();
        for (id, cur, busy) in items {
            let w = (0..workers).min_by_key(|&w| load[w]).expect("workers >= 1");
            load[w] += busy;
            if w != cur {
                moves += 1;
                pending.insert(id, w);
                self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
                let _ = self.shared.queues[cur].send(Task::Nudge(id));
            }
        }
        moves
    }
}

impl Drop for ThreadedRuntime {
    fn drop(&mut self) {
        for q in &self.shared.queues {
            let _ = q.send(Task::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(me: usize, rx: Receiver<Task>, shared: Arc<Shared>) {
    let mut local: HashMap<ActorId, (Box<dyn AnyActor>, Arc<ActorStats>)> = HashMap::new();
    while let Ok(task) = rx.recv() {
        match task {
            Task::Stop => return,
            Task::Settle(id, actor, stats) => {
                local.insert(id, (actor, stats));
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            Task::Nudge(id) => {
                match local.remove(&id) {
                    Some((actor, stats)) => {
                        if let Some(t) = shared.pending_moves.lock().remove(&id) {
                            if t != me {
                                shared.locations.write().insert(id, t);
                                // The Nudge's in-flight slot is inherited by
                                // the Settle (decremented on arrival).
                                let _ = shared.queues[t].send(Task::Settle(id, actor, stats));
                                continue;
                            }
                            local.insert(id, (actor, stats));
                        } else {
                            local.insert(id, (actor, stats));
                        }
                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        // Actor moved or still in transit: chase it.
                        let w = shared.locations.read().get(&id).copied().unwrap_or(me);
                        let _ = shared.queues[w].send(Task::Nudge(id));
                    }
                }
            }
            Task::Deliver(id, msg) => {
                match local.get_mut(&id) {
                    None => {
                        // Stale route or in transit: forward to the current
                        // owner (or requeue locally behind a pending Settle).
                        let w = shared.locations.read().get(&id).copied().unwrap_or(me);
                        let _ = shared.queues[w].send(Task::Deliver(id, msg));
                    }
                    Some((actor, stats)) => {
                        let mut ctx = TCtx {
                            shared: &shared,
                            self_id: id,
                            worker: me,
                            migrate_to: None,
                        };
                        let t0 = Instant::now();
                        actor.deliver(msg, &mut ctx);
                        let dt = t0.elapsed().as_nanos() as u64;
                        stats.busy_ns.fetch_add(dt, Ordering::Relaxed);
                        stats.msgs.fetch_add(1, Ordering::Relaxed);
                        shared.worker_busy_ns[me].fetch_add(dt, Ordering::Relaxed);
                        let migrate = ctx.migrate_to;
                        if let Some(t) = migrate {
                            if t != me {
                                let (actor, stats) = local.remove(&id).expect("just used");
                                shared.locations.write().insert(id, t);
                                // Settle inherits this Deliver's in-flight
                                // slot; decremented when it lands.
                                let _ = shared.queues[t].send(Task::Settle(id, actor, stats));
                                continue;
                            }
                        }
                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spins for roughly `n` iterations of real work.
    fn spin(n: u64) -> u64 {
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..n {
            x = x.rotate_left(17).wrapping_mul(i | 1);
        }
        std::hint::black_box(x)
    }

    struct Counter {
        hits: u64,
        spin_iters: u64,
    }
    impl Actor for Counter {
        type Msg = u64;
        fn on_message(&mut self, m: u64, ctx: &mut TCtx<'_>) {
            self.hits += 1;
            spin(self.spin_iters);
            if m == u64::MAX {
                ctx.contribute(1, self.hits as f64);
            }
        }
    }

    #[test]
    fn messages_all_arrive() {
        let mut rt = ThreadedRuntime::new(4);
        let ids: Vec<ActorId> = (0..16)
            .map(|_| rt.spawn(Counter { hits: 0, spin_iters: 10 }, None))
            .collect();
        let rx = rt.reduction(1, ids.len());
        for &id in &ids {
            for _ in 0..9 {
                rt.send::<Counter>(id, 0);
            }
        }
        for &id in &ids {
            rt.send::<Counter>(id, u64::MAX);
        }
        let total = rx.recv_timeout(Duration::from_secs(10)).expect("reduction");
        assert_eq!(total, (16 * 10) as f64);
        assert!(rt.drain(Duration::from_secs(5)));
    }

    #[test]
    fn real_parallel_speedup() {
        // Genuine multicore speedup on CPU-bound actors.
        let run = |workers: usize| {
            let mut rt = ThreadedRuntime::new(workers);
            let ids: Vec<ActorId> = (0..8)
                .map(|_| rt.spawn(Counter { hits: 0, spin_iters: 3_000_000 }, None))
                .collect();
            let t0 = Instant::now();
            let rx = rt.reduction(1, ids.len());
            for &id in &ids {
                rt.send::<Counter>(id, 0);
                rt.send::<Counter>(id, u64::MAX);
            }
            rx.recv_timeout(Duration::from_secs(60)).expect("done");
            t0.elapsed()
        };
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let t1 = run(1);
        let t4 = run(4);
        if cores >= 4 {
            assert!(
                t4 < t1 * 3 / 4,
                "4 workers should beat 1 by a wide margin: t1={t1:?} t4={t4:?}"
            );
        } else if cores >= 2 {
            assert!(t4 < t1, "more workers must not be slower: t1={t1:?} t4={t4:?}");
        } else {
            // Single-core host: only assert absence of pathological
            // slowdown from the threading machinery itself.
            assert!(
                t4 < t1 * 2,
                "single-core overhead bounded: t1={t1:?} t4={t4:?}"
            );
        }
    }

    struct Hopper;
    impl Actor for Hopper {
        type Msg = usize;
        fn on_message(&mut self, target: usize, ctx: &mut TCtx<'_>) {
            ctx.migrate_me(target);
        }
    }

    #[test]
    fn migration_moves_actors() {
        let mut rt = ThreadedRuntime::new(4);
        let id = rt.spawn(Hopper, Some(0));
        assert!(rt.drain(Duration::from_secs(5)));
        assert_eq!(rt.location(id), Some(0));
        rt.send::<Hopper>(id, 3);
        assert!(rt.drain(Duration::from_secs(5)));
        assert_eq!(rt.location(id), Some(3));
        // Messages delivered after migration still arrive (forwarding).
        rt.send::<Hopper>(id, 1);
        assert!(rt.drain(Duration::from_secs(5)));
        assert_eq!(rt.location(id), Some(1));
    }

    #[test]
    fn rebalance_spreads_hot_actors() {
        let mut rt = ThreadedRuntime::new(4);
        // All actors piled on worker 0.
        let ids: Vec<ActorId> = (0..8)
            .map(|_| rt.spawn(Counter { hits: 0, spin_iters: 400_000 }, Some(0)))
            .collect();
        let rx = rt.reduction(1, ids.len());
        for &id in &ids {
            rt.send::<Counter>(id, 0);
            rt.send::<Counter>(id, u64::MAX);
        }
        rx.recv_timeout(Duration::from_secs(30)).expect("warmup");
        assert!(rt.drain(Duration::from_secs(5)));
        let moves = rt.rebalance();
        assert!(rt.drain(Duration::from_secs(5)));
        assert!(moves >= 4, "most actors should move off worker 0: {moves}");
        let mut by_worker = [0usize; 4];
        for &id in &ids {
            by_worker[rt.location(id).expect("alive")] += 1;
        }
        assert!(
            by_worker.iter().all(|&c| c >= 1),
            "actors spread: {by_worker:?}"
        );
    }

    #[test]
    fn send_to_unknown_actor_panics() {
        let rt = ThreadedRuntime::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.send::<Counter>(ActorId(999), 0);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn clean_shutdown_under_load() {
        let mut rt = ThreadedRuntime::new(4);
        let ids: Vec<ActorId> = (0..32)
            .map(|_| rt.spawn(Counter { hits: 0, spin_iters: 1000 }, None))
            .collect();
        for &id in &ids {
            for _ in 0..50 {
                rt.send::<Counter>(id, 0);
            }
        }
        assert!(rt.drain(Duration::from_secs(30)));
        drop(rt); // must join without hanging
    }
}
