//! Criterion microbenchmarks for the runtime's hot paths and the
//! DESIGN.md ablations: scheduler throughput, PUP serialization, TRAM
//! flush-threshold sweep, LB strategy decision cost, parallel sorting,
//! and the event-queue primitive.

use charm_core::lbframework::synthetic_stats;
use charm_core::{Chare, Ctx, Ix, Runtime, Strategy};
use charm_machine::{EventQueue, SimTime};
use charm_pup::{Pup, Puper};
use charm_sort::{hist_sort, mpi_multiway, skewed_keys};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

// ---------------------------------------------------------------------------

#[derive(Default)]
struct Ring {
    hops_left: u64,
    n: i64,
}
impl Pup for Ring {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.hops_left);
        p.p(&mut self.n);
    }
}
impl Chare for Ring {
    type Msg = u64;
    fn on_message(&mut self, hops: u64, ctx: &mut Ctx<'_>) {
        if hops == 0 {
            ctx.exit();
            return;
        }
        let me = charm_core::ArrayProxy::<Ring>::from_id(ctx.my_id().array);
        let next = (self.n + 1) % 64;
        ctx.send(me, Ix::i1(next), hops - 1);
    }
}

/// End-to-end scheduler throughput: how many simulated message deliveries
/// per real second the DES core sustains.
fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler/ring_10k_msgs", |b| {
        b.iter(|| {
            let mut rt = Runtime::homogeneous(8);
            let arr = rt.create_array::<Ring>("ring");
            for i in 0..64 {
                rt.insert(arr, Ix::i1(i), Ring { hops_left: 0, n: i }, None);
            }
            rt.send(arr, Ix::i1(0), 10_000u64);
            black_box(rt.run().entries)
        })
    });
}

// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct Particle {
    pos: [f64; 3],
    vel: [f64; 3],
    id: u64,
}
impl Pup for Particle {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_array(p, &mut self.pos);
        charm_pup::pup_array(p, &mut self.vel);
        p.p(&mut self.id);
    }
}

fn bench_pup(c: &mut Criterion) {
    let mut particles: Vec<Particle> = (0..1000)
        .map(|i| Particle {
            pos: [i as f64, 2.0, 3.0],
            vel: [0.1, 0.2, 0.3],
            id: i,
        })
        .collect();
    let bytes = charm_pup::to_bytes(&mut particles);
    let mut g = c.benchmark_group("pup");
    g.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    g.bench_function("pack_1k_particles", |b| {
        b.iter(|| black_box(charm_pup::to_bytes(black_box(&mut particles))))
    });
    g.bench_function("unpack_1k_particles", |b| {
        b.iter(|| black_box(charm_pup::from_bytes::<Vec<Particle>>(black_box(&bytes))))
    });
    g.finish();
}

// ---------------------------------------------------------------------------

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

// ---------------------------------------------------------------------------

/// Ablation: LB strategy decision cost on identical stats.
fn bench_lb_strategies(c: &mut Criterion) {
    let loads: Vec<f64> = (0..4096)
        .map(|i| ((i * 2654435761usize) % 1000) as f64 / 100.0 + 0.1)
        .collect();
    let stats = synthetic_stats(256, &loads);
    let mut g = c.benchmark_group("lb_assign_4096objs_256pes");
    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        ("greedy", Box::new(charm_lb::GreedyLb)),
        ("refine", Box::new(charm_lb::RefineLb::default())),
        ("hybrid", Box::new(charm_lb::HybridLb::default())),
        ("distributed", Box::new(charm_lb::DistributedLb::default())),
        ("orb", Box::new(charm_lb::OrbLb)),
    ];
    for (name, mut s) in strategies {
        g.bench_function(name, |b| b.iter(|| black_box(s.assign(black_box(&stats)))));
    }
    g.finish();
}

// ---------------------------------------------------------------------------

/// Ablation: TRAM flush-threshold sweep — end-to-end PHOLD event rate.
fn bench_tram_threshold(c: &mut Criterion) {
    use charm_apps::pdes::{run, PdesConfig};
    use charm_tram::TramConfig;
    let mut g = c.benchmark_group("tram_threshold_phold");
    g.sample_size(10);
    for &threshold in &[8usize, 64, 256] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &th| {
                b.iter(|| {
                    let r = run(PdesConfig {
                        machine: charm_core::MachineConfig::homogeneous(16),
                        lps_per_pe: 32,
                        initial_events_per_lp: 48,
                        windows: 8,
                        tram: Some(TramConfig {
                            ndims: 2,
                            flush_threshold: th,
                            flush_interval: Some(SimTime::from_micros(30)),
                        }),
                        ..PdesConfig::default()
                    });
                    black_box(r.events_executed)
                })
            },
        );
    }
    g.finish();
}

// ---------------------------------------------------------------------------

fn bench_sorting(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_64k_keys_16pes");
    g.sample_size(10);
    g.bench_function("charm_histsort", |b| {
        b.iter(|| {
            let mut rt = Runtime::homogeneous(16);
            let keys = skewed_keys(16, 4096, 3);
            black_box(hist_sort(&mut rt, keys, 0.05).time)
        })
    });
    g.bench_function("mpi_multiway", |b| {
        b.iter(|| {
            let m = charm_core::MachineConfig::homogeneous(16);
            let keys = skewed_keys(16, 4096, 3);
            black_box(mpi_multiway(&m, keys).time)
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------------

/// Ablations on the runtime itself: location caching and collective arity.
/// These report the *virtual* time of a fixed workload under each setting
/// (criterion's wall time additionally tracks simulator overhead).
#[derive(Default)]
struct Bouncer {
    peer: i64,
    remaining: u64,
}
impl Pup for Bouncer {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.peer);
        p.p(&mut self.remaining);
    }
}
impl Chare for Bouncer {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let me = charm_core::ArrayProxy::<Bouncer>::from_id(ctx.my_id().array);
            ctx.send(me, Ix::i1(self.peer), 0u8);
        }
    }
}

fn bench_runtime_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_ablation");
    g.sample_size(20);
    for (name, cache, arity) in [
        ("cache_on_arity2", true, 2u64),
        ("cache_off_arity2", false, 2),
        ("cache_on_arity8", true, 8),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut rt = Runtime::builder(charm_core::MachineConfig::homogeneous(8))
                    .location_cache(cache)
                    .collective_arity(arity)
                    .build();
                let arr = rt.create_array::<Bouncer>("bounce");
                for i in 0..2i64 {
                    rt.insert(
                        arr,
                        Ix::i1(i),
                        Bouncer {
                            peer: i ^ 1,
                            remaining: 500,
                        },
                        Some(i as usize),
                    );
                }
                rt.send(arr, Ix::i1(0), 0u8);
                black_box(rt.run().end_time)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_pup,
    bench_event_queue,
    bench_lb_strategies,
    bench_tram_threshold,
    bench_sorting,
    bench_runtime_ablations
);
criterion_main!(benches);
