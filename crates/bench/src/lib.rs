//! # charm-bench — figure regeneration and microbenchmarks
//!
//! One binary per data figure of the paper (`src/bin/figNN_*.rs`); each
//! prints the figure's series as an aligned table and writes
//! `results/figNN.csv`. `all_figs` runs everything. Criterion
//! microbenchmarks (scheduler, PUP, TRAM, sorting, LB strategies) live in
//! `benches/`.
//!
//! Scale: by default each figure runs at a *demo scale* chosen so the whole
//! suite completes in minutes on a laptop while preserving the figure's
//! shape (who wins, by what factor, where crossovers fall). Set
//! `CHARM_FIG_SCALE=full` for PE counts closer to the paper's (slow).

use std::fmt::Write as _;
use std::path::PathBuf;

/// Demo vs. full experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast, laptop-friendly parameters (default).
    Demo,
    /// PE counts closer to the paper's (minutes to hours).
    Full,
}

impl Scale {
    /// Read from `CHARM_FIG_SCALE` (`full` → Full).
    pub fn from_env() -> Scale {
        match std::env::var("CHARM_FIG_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Demo,
        }
    }

    /// Choose one of two values by scale.
    pub fn pick<T>(self, demo: T, full: T) -> T {
        match self {
            Scale::Demo => demo,
            Scale::Full => full,
        }
    }
}

/// A tabular figure result: column headers plus rows, printed aligned and
/// saved as CSV.
pub struct Figure {
    /// e.g. "fig09".
    pub id: &'static str,
    /// Short description printed above the table.
    pub title: &'static str,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (paper comparison).
    pub notes: Vec<String>,
}

impl Figure {
    /// Start a figure table.
    pub fn new(id: &'static str, title: &'static str, columns: &[&str]) -> Figure {
        Figure {
            id,
            title,
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  # {n}");
        }
        out
    }

    /// Write `results/<id>.csv` (relative to the workspace root when run
    /// via cargo, else the current directory).
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let path = results_path(&format!("{}.csv", self.id))?;
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.columns.join(","));
        for r in &self.rows {
            let _ = writeln!(csv, "{}", r.join(","));
        }
        for n in &self.notes {
            let _ = writeln!(csv, "# {n}");
        }
        std::fs::write(&path, csv)?;
        Ok(path)
    }

    /// Print and save.
    pub fn emit(&self) {
        print!("{}", self.render());
        match self.save_csv() {
            Ok(p) => println!("  -> {}\n", p.display()),
            Err(e) => println!("  (csv not written: {e})\n"),
        }
    }
}

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → ../../results
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => PathBuf::from(m).join("../../results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// Path for an artifact in the shared `results/` directory, creating the
/// directory if needed. Used by drivers that write non-Figure outputs
/// (trace JSON/CSV, campaign logs).
pub fn results_path(name: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    Ok(dir.join(name))
}

/// Format seconds with an adaptive unit.
pub fn fmt_s(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3}s")
    } else if v >= 1e-3 {
        format!("{:.3}ms", v * 1e3)
    } else {
        format!("{:.1}us", v * 1e6)
    }
}

/// Format a dimensionless ratio.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut f = Figure::new("figXX", "test", &["pes", "time"]);
        f.row(vec!["8".into(), "1.25ms".into()]);
        f.row(vec!["1024".into(), "0.3ms".into()]);
        f.note("shape matches");
        let r = f.render();
        assert!(r.contains("figXX"));
        assert!(r.contains("# shape matches"));
        assert_eq!(r.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut f = Figure::new("figXX", "test", &["a", "b"]);
        f.row(vec!["1".into()]);
    }

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Demo.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_s(2.5), "2.500s");
        assert_eq!(fmt_s(0.0025), "2.500ms");
        assert_eq!(fmt_s(2.5e-6), "2.5us");
        assert_eq!(fmt_x(2.4), "2.40x");
    }
}
