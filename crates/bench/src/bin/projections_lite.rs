//! Trace demo driver: run leanmd with full tracing *streamed* — Chrome-trace
//! JSON + CSV flow through file sinks to `results/` while the run executes —
//! plus the online critical-path analyzer, print the projections-lite
//! report, and self-check the core accounting invariants:
//!
//! * traced per-entry busy time must equal the scheduler's per-PE busy time,
//! * the streamed files must be byte-identical to the in-memory
//!   arrival-order exporters (the rings retained every record),
//! * the critical-path length must not exceed the makespan.
//!
//! Open `results/trace_leanmd.json` at <https://ui.perfetto.dev> — one track
//! per PE plus an RTS track with LB/FT/DVFS instants.

use charm_apps::leanmd::{run_with_runtime, LeanMdConfig};
use charm_bench::results_path;
use charm_core::{ChromeStreamSink, CsvStreamSink, SimTime, TraceConfig};
use charm_lb::GreedyLb;

fn main() {
    let stream_json = results_path("trace_leanmd_stream.json").expect("results dir");
    let stream_csv = results_path("trace_leanmd_stream.csv").expect("results dir");
    let (run, mut rt) = run_with_runtime(LeanMdConfig {
        cells_per_dim: 3,
        atoms_per_cell: 40,
        steps: 6,
        lb_every: 3,
        strategy: Some(Box::new(GreedyLb)),
        ckpt_at: Some(4),
        trace: Some(TraceConfig::default().with_critical_path()),
        trace_sinks: vec![
            Box::new(ChromeStreamSink::create(&stream_json).expect("stream sink")),
            Box::new(CsvStreamSink::create(&stream_csv).expect("stream sink")),
        ],
        ..LeanMdConfig::default()
    });
    assert!(run.unrecoverable.is_none(), "demo run must complete");
    let sink_stats = rt.finish_trace();

    // Projections "summary mode": always-on aggregates, printed as a report
    // (includes the critical-path attribution and per-sink delivery stats).
    let report = rt.projections_report(8).expect("tracing was enabled");
    print!("{report}");

    // Projections "log mode": full event logs, exported for external tools.
    let json = rt.trace_chrome_json().expect("tracing was enabled");
    let csv = rt.trace_csv().expect("tracing was enabled");
    for (name, data) in [("trace_leanmd.json", &json), ("trace_leanmd.csv", &csv)] {
        match results_path(name).and_then(|p| std::fs::write(&p, data).map(|()| p)) {
            Ok(p) => println!("  -> {}", p.display()),
            Err(e) => {
                eprintln!("failed to write {name}: {e}");
                std::process::exit(1);
            }
        }
    }
    for p in [&stream_json, &stream_csv] {
        println!("  -> {} (streamed)", p.display());
    }

    // Acceptance self-check: the profile totals must agree with the
    // scheduler's busy-time accounting to within float rounding.
    let busy: SimTime = (0..rt.num_pes()).map(|pe| rt.pe_busy_time(pe)).sum();
    let traced = rt.tracer().expect("tracing was enabled").total_entry_time();
    if traced != busy {
        eprintln!("BUSY-TIME MISMATCH: traced {traced} vs scheduler {busy}");
        std::process::exit(1);
    }
    let profile_s: f64 = rt.trace_profiles().iter().map(|p| p.total_s).sum();
    let rel = (profile_s - busy.as_secs_f64()).abs() / busy.as_secs_f64().max(f64::MIN_POSITIVE);
    if rel > 1e-9 {
        eprintln!("PROFILE MISMATCH: {profile_s} vs {} (rel {rel:e})", busy.as_secs_f64());
        std::process::exit(1);
    }

    // Streaming self-check: nothing shed, every record delivered to both
    // sinks, and the files on disk match the in-memory arrival-order
    // exporters byte for byte.
    let tr = rt.tracer().expect("tracing was enabled");
    if tr.dropped_events() != 0 {
        eprintln!("RING SHED on a demo-sized run: {} records", tr.dropped_events());
        std::process::exit(1);
    }
    if sink_stats.len() != 2 || sink_stats.iter().any(|s| s.dropped != 0 || s.records == 0) {
        eprintln!("SINK STATS unexpected: {sink_stats:?}");
        std::process::exit(1);
    }
    let streamed = std::fs::read_to_string(&stream_json).expect("streamed json");
    if streamed != rt.trace_chrome_json_arrival().expect("tracing was enabled") {
        eprintln!("STREAMED JSON != in-memory arrival exporter");
        std::process::exit(1);
    }
    let streamed = std::fs::read_to_string(&stream_csv).expect("streamed csv");
    if streamed != rt.trace_csv_arrival().expect("tracing was enabled") {
        eprintln!("STREAMED CSV != in-memory arrival exporter");
        std::process::exit(1);
    }

    // Critical path: a lower bound on (and attribution of) the makespan.
    // The driver exits from the final reduction, so entries already under
    // way when the clock stopped may overhang end_time by at most one
    // entry duration (see Tracer::critical_path).
    let cp = rt
        .tracer()
        .expect("tracing was enabled")
        .critical_path()
        .expect("entries executed");
    let end_s = rt.summary().end_time.as_secs_f64();
    let max_entry_s = rt.trace_profiles().iter().map(|p| p.max_s).fold(0.0, f64::max);
    if cp.len_s <= 0.0 || cp.len_s > end_s + max_entry_s {
        eprintln!(
            "CRITICAL PATH {} outside (0, makespan {end_s} + max entry {max_entry_s}]",
            cp.len_s
        );
        std::process::exit(1);
    }

    println!(
        "  self-check ok: traced busy time {traced} == scheduler busy time ({} entries); \
         streamed files byte-equal; critical path {:.1}% of makespan",
        run.entries,
        100.0 * cp.len_s / end_s
    );
}
