//! Trace demo driver: run leanmd with full tracing, export the Chrome-trace
//! JSON + CSV event logs to `results/`, print the projections-lite report,
//! and self-check the core accounting invariant (traced per-entry busy time
//! must equal the scheduler's per-PE busy time).
//!
//! Open `results/trace_leanmd.json` at <https://ui.perfetto.dev> — one track
//! per PE plus an RTS track with LB/FT/DVFS instants.

use charm_apps::leanmd::{run_with_runtime, LeanMdConfig};
use charm_bench::results_path;
use charm_core::{SimTime, TraceConfig};
use charm_lb::GreedyLb;

fn main() {
    let (run, rt) = run_with_runtime(LeanMdConfig {
        cells_per_dim: 3,
        atoms_per_cell: 40,
        steps: 6,
        lb_every: 3,
        strategy: Some(Box::new(GreedyLb)),
        ckpt_at: Some(4),
        trace: Some(TraceConfig::default()),
        ..LeanMdConfig::default()
    });
    assert!(run.unrecoverable.is_none(), "demo run must complete");

    // Projections "summary mode": always-on aggregates, printed as a report.
    let report = rt.projections_report(8).expect("tracing was enabled");
    print!("{report}");

    // Projections "log mode": full event logs, exported for external tools.
    let json = rt.trace_chrome_json().expect("tracing was enabled");
    let csv = rt.trace_csv().expect("tracing was enabled");
    for (name, data) in [("trace_leanmd.json", &json), ("trace_leanmd.csv", &csv)] {
        match results_path(name).and_then(|p| std::fs::write(&p, data).map(|()| p)) {
            Ok(p) => println!("  -> {}", p.display()),
            Err(e) => {
                eprintln!("failed to write {name}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Acceptance self-check: the profile totals must agree with the
    // scheduler's busy-time accounting to within float rounding.
    let busy: SimTime = (0..rt.num_pes()).map(|pe| rt.pe_busy_time(pe)).sum();
    let traced = rt.tracer().expect("tracing was enabled").total_entry_time();
    if traced != busy {
        eprintln!("BUSY-TIME MISMATCH: traced {traced} vs scheduler {busy}");
        std::process::exit(1);
    }
    let profile_s: f64 = rt.trace_profiles().iter().map(|p| p.total_s).sum();
    let rel = (profile_s - busy.as_secs_f64()).abs() / busy.as_secs_f64().max(f64::MIN_POSITIVE);
    if rel > 1e-9 {
        eprintln!("PROFILE MISMATCH: {profile_s} vs {} (rel {rel:e})", busy.as_secs_f64());
        std::process::exit(1);
    }
    println!(
        "  self-check ok: traced busy time {traced} == scheduler busy time ({} entries)",
        run.entries
    );
}
