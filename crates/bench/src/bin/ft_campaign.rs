//! Fault-injection campaign driver — §III-B hardening, run against the real
//! mini-apps (LeanMD and Stencil2D) rather than the test suite's synthetic
//! ones (`crates/core/tests/ft_campaign.rs` holds the rigorous version with
//! probed checkpoint windows and sim-time budgets).
//!
//! For each app: generate seeded failure schedules of five kinds (single,
//! simultaneous, cascade, buddy-pair, near-checkpoint), run with automatic
//! periodic checkpointing, and classify the outcome as `correct`,
//! `unrecoverable`, or `INCOMPLETE` (a protocol bug — the process exits
//! non-zero).
//!
//! Every `results/ftcamp.csv` row is reproducible *from the CSV alone*: it
//! carries the app, schedule kind, per-run schedule seed, PE count, and the
//! auto-checkpoint interval (full f64 round-trip precision), which are
//! exactly the inputs of `gen_schedule` — no campaign seed or probe re-run
//! needed. The explicit failure list is also recorded as a cross-check.
//! Whole campaigns rerun with `CHARM_FT_SEED`/`CHARM_FT_RUNS`; schedules
//! depend only on (campaign seed, app, run index).

use charm_apps::leanmd::{self, LeanMdConfig};
use charm_apps::stencil::{self, StencilConfig};
use charm_bench::{results_path, Figure};
use charm_core::{buddy_pe, ReplayConfig, SimTime};
use charm_machine::presets;
use charm_replay::ReplayLog;

/// Stencil runs on single-PE cloud nodes; LeanMD on a 2-node BG/Q (16
/// PEs/node), where one injected failure expands to a whole node and the
/// buddy copies on the surviving node carry the restart.
const STENCIL_PES: usize = 8;
const LEANMD_PES: usize = 32;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

const KINDS: [&str; 5] = ["single", "simultaneous", "cascade", "buddy-pair", "near-ckpt"];

fn schedule_seed(campaign_seed: u64, app: &str, k: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ campaign_seed;
    for b in app.bytes().chain(k.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `t_run`: failure-free duration; `interval`: the auto-checkpoint period
/// (near-ckpt schedules aim just after a multiple of it, where the
/// replication window sits).
fn gen_schedule(
    kind: &str,
    seed: u64,
    t_run: f64,
    interval: f64,
    num_pes: usize,
) -> Vec<(SimTime, usize)> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::new();
    match kind {
        "single" => {
            let t = rng.range(0.05, 0.85) * t_run;
            out.push((SimTime::from_secs_f64(t), rng.below(num_pes as u64) as usize));
        }
        "simultaneous" => {
            let t = SimTime::from_secs_f64(rng.range(0.05, 0.85) * t_run);
            let n = 2 + rng.below(2) as usize;
            let mut pes: Vec<usize> = Vec::new();
            while pes.len() < n {
                let pe = rng.below(num_pes as u64) as usize;
                if !pes.contains(&pe) {
                    pes.push(pe);
                }
            }
            out.extend(pes.into_iter().map(|pe| (t, pe)));
        }
        "cascade" => {
            let mut t = rng.range(0.05, 0.6) * t_run;
            for _ in 0..3 {
                out.push((SimTime::from_secs_f64(t), rng.below(num_pes as u64) as usize));
                t += rng.range(0.001, 0.08) * t_run;
            }
        }
        "buddy-pair" => {
            let t = SimTime::from_secs_f64(rng.range(0.05, 0.85) * t_run);
            let pe = rng.below(num_pes as u64) as usize;
            out.push((t, pe));
            out.push((t, buddy_pe(pe, num_pes)));
        }
        _ => {
            // near-ckpt: just after a random checkpoint tick, inside or
            // near the replication window.
            let ticks = ((t_run / interval) as u64).max(1);
            let t = (1 + rng.below(ticks)) as f64 * interval + rng.range(0.0, 0.2) * interval;
            out.push((SimTime::from_secs_f64(t), rng.below(num_pes as u64) as usize));
        }
    }
    out
}

struct Outcome {
    label: &'static str,
    detail: String,
}

fn classify(steps_done: usize, steps_want: u64, unrecoverable: Option<String>) -> Outcome {
    match unrecoverable {
        Some(u) => Outcome { label: "unrecoverable", detail: u },
        None if steps_done >= steps_want as usize => {
            Outcome { label: "correct", detail: format!("{steps_done} steps") }
        }
        None => Outcome {
            label: "INCOMPLETE",
            detail: format!("{steps_done}/{steps_want} steps, no Unrecoverable"),
        },
    }
}

fn run_leanmd(
    auto_ckpt: Option<SimTime>,
    failures: Vec<(SimTime, usize)>,
    record: bool,
) -> (usize, f64, Option<String>, Option<ReplayLog>) {
    let (run, mut rt) = leanmd::run_with_runtime(LeanMdConfig {
        machine: presets::bgq(LEANMD_PES),
        cells_per_dim: 3,
        atoms_per_cell: 40,
        steps: 8,
        auto_ckpt,
        failures,
        record: record.then(ReplayConfig::default),
        ..LeanMdConfig::default()
    });
    let log = rt.take_replay_log();
    (run.step_times.len(), run.total_s, run.unrecoverable, log)
}

fn run_stencil(
    auto_ckpt: Option<SimTime>,
    failures: Vec<(SimTime, usize)>,
    record: bool,
) -> (usize, f64, Option<String>, Option<ReplayLog>) {
    let mut c = StencilConfig::cloud_4k(presets::cloud(STENCIL_PES), 2);
    c.grid = 256; // keep checkpoint replication short relative to a step
    c.steps = 10;
    c.auto_ckpt = auto_ckpt;
    c.failures = failures;
    c.record = record.then(ReplayConfig::default);
    let (run, mut rt) = stencil::run_with_runtime(c);
    let log = rt.take_replay_log();
    (run.step_times.len(), run.total_s, run.unrecoverable, log)
}

fn main() {
    let campaign_seed: u64 = std::env::var("CHARM_FT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let runs_per_app: usize = std::env::var("CHARM_FT_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    // --record: every failure run also writes a replayable log next to the
    // CSV, so a flagged row can be re-examined (verify/whatif/race-hunt)
    // without regenerating the schedule.
    let record = std::env::args().any(|a| a == "--record");

    let mut fig = Figure::new(
        "ftcamp",
        "fault-injection campaign: LeanMD + Stencil2D under seeded failure schedules",
        &["app", "kind", "seed", "pes", "ckpt_s", "failures", "outcome", "detail", "replay_log"],
    );
    fig.note(format!(
        "campaign seed {campaign_seed}, {runs_per_app} runs/app; \
         leanmd on bgq x{LEANMD_PES} (16 PEs/node), stencil on cloud x{STENCIL_PES}"
    ));

    let mut incomplete = 0usize;
    for app in ["leanmd", "stencil"] {
        // Failure-free probe for the app's duration, then checkpoint every
        // fifth of it.
        let (pes, steps_want, probe) = match app {
            "leanmd" => (LEANMD_PES, 8u64, run_leanmd(None, Vec::new(), false)),
            _ => (STENCIL_PES, 10u64, run_stencil(None, Vec::new(), false)),
        };
        assert!(probe.2.is_none() && probe.0 >= steps_want as usize);
        let t_free = probe.1;
        let interval = t_free / 5.0;
        let auto = SimTime::from_secs_f64(interval);

        let mut tally = [0usize; 3]; // correct, unrecoverable, incomplete
        for k in 0..runs_per_app {
            let kind = KINDS[k % KINDS.len()];
            let seed = schedule_seed(campaign_seed, app, k as u64);
            let schedule = gen_schedule(kind, seed, t_free, interval, pes);
            let (steps_done, _, unrec, log) = match app {
                "leanmd" => run_leanmd(Some(auto), schedule.clone(), record),
                _ => run_stencil(Some(auto), schedule.clone(), record),
            };
            let log_cell = match log {
                Some(mut l) => {
                    l.app = app.to_string();
                    let name = format!("ftcamp_{app}_{k:02}.rlog");
                    match results_path(&name)
                        .and_then(|p| charm_replay::save(&l, &p).map(|()| p))
                    {
                        Ok(p) => p.display().to_string(),
                        Err(e) => format!("save failed: {e}"),
                    }
                }
                None => "-".to_string(),
            };
            let o = classify(steps_done, steps_want, unrec);
            match o.label {
                "correct" => tally[0] += 1,
                "unrecoverable" => tally[1] += 1,
                _ => {
                    tally[2] += 1;
                    incomplete += 1;
                }
            }
            let fails: Vec<String> = schedule
                .iter()
                .map(|(t, pe)| format!("{:.4}s@pe{pe}", t.as_secs_f64()))
                .collect();
            fig.row(vec![
                app.to_string(),
                kind.to_string(),
                format!("{seed:#x}"),
                pes.to_string(),
                // f64 Display round-trips, so gen_schedule's inputs are
                // recoverable exactly (t_free = 5 * ckpt_s by construction).
                format!("{interval}"),
                fails.join("+"),
                o.label.to_string(),
                o.detail,
                log_cell,
            ]);
        }
        fig.note(format!(
            "{app}: {} correct, {} unrecoverable, {} incomplete",
            tally[0], tally[1], tally[2]
        ));
    }

    fig.emit();
    if incomplete > 0 {
        eprintln!("{incomplete} run(s) neither completed nor surfaced Unrecoverable");
        std::process::exit(1);
    }
}
