//! Fig. 5 — malleability: LeanMD iteration times across a shrink
//! (P→P/2) and a later expand (P/2→P), with reconfiguration spikes.
//!
//! Expected shape: iteration time roughly doubles while shrunk and
//! recovers after the expand; each transition costs a one-time spike
//! dominated by the modeled process restart/reconnect (paper: 2.7 s
//! shrink, 7.2 s expand on Stampede).

use charm_apps::leanmd::{run_with_runtime, LeanMdConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_core::SimTime;
use charm_machine::presets;

fn main() {
    let scale = Scale::from_env();
    let pes = scale.pick(64, 256);
    let steps = scale.pick(320u64, 400);
    let cells = scale.pick(8, 16);
    let atoms = 160;

    // Probe a few steps to estimate the iteration time, then schedule the
    // commands (as the paper does through CCS, at chosen wall-clock times).
    let probe = run_with_runtime(LeanMdConfig {
        machine: presets::stampede(pes),
        cells_per_dim: cells,
        atoms_per_cell: atoms,
        density_peak: 1.0,
        steps: 12,
        ..LeanMdConfig::default()
    });
    let step_s = probe.0.avg_step_s();
    let shrink_at = SimTime::from_secs_f64(step_s * steps as f64 * 0.2);
    // While shrunk, iterations take ~2×; leave ~30 % of the steps for the
    // shrunk epoch, then expand (shrink itself blocks ~2 s).
    let expand_at = SimTime::from_secs_f64(
        shrink_at.as_secs_f64() + 2.2 + 2.0 * step_s * steps as f64 * 0.3,
    );

    let (run, rt) = run_with_runtime(LeanMdConfig {
        machine: presets::stampede(pes),
        cells_per_dim: cells,
        atoms_per_cell: atoms,
        density_peak: 1.0,
        steps,
        lb_every: 20, // periodic AtSync keeps the run balanced throughout
        strategy: Some(Box::new(charm_lb::GreedyLb)),
        reconfigure: vec![(shrink_at, pes / 2), (expand_at, pes)],
        ..LeanMdConfig::default()
    });

    // Actual reconfiguration timestamps from the journal.
    let reconf = rt.metric("reconfigure");
    let costs = rt.metric("reconfigure_cost_s");
    let shrink_t = reconf.first().map(|&(t, _)| t).unwrap_or(f64::MAX);
    let expand_t = reconf.get(1).map(|&(t, _)| t).unwrap_or(f64::MAX);

    let mut fig = Figure::new(
        "fig05",
        "LeanMD shrink/expand timeline (iteration time vs iteration)",
        &["iter", "iter_time", "epoch"],
    );
    let durs = run.step_durations();
    for (i, (&t_end, &dt)) in run.step_times.iter().zip(durs.iter()).enumerate() {
        let epoch = if t_end < shrink_t {
            format!("{pes}pe")
        } else if t_end < expand_t {
            format!("{}pe", pes / 2)
        } else {
            format!("{pes}pe(expanded)")
        };
        fig.row(vec![i.to_string(), fmt_s(dt), epoch]);
    }
    for (i, &(at, c)) in costs.iter().enumerate() {
        let kind = if i == 0 { "shrink" } else { "expand" };
        fig.note(format!(
            "{kind} at t={at:.2}s cost={c:.2}s (paper: shrink 2.7s, expand 7.2s)"
        ));
    }
    let mean_in = |lo: f64, hi: f64| {
        let xs: Vec<f64> = run
            .step_times
            .iter()
            .zip(durs.iter())
            .filter(|(&t, &d)| t >= lo && t < hi && d < step_s * 20.0) // skip spikes
            .map(|(_, &d)| d)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    // Skip the warm-up window before the first AtSync round equalizes the
    // static placement.
    let before = mean_in(shrink_t * 0.5, shrink_t);
    let shrunk = mean_in(shrink_t + 2.5, expand_t);
    // The expand blocks ~6.5 s; measure from resumption.
    let after = mean_in(expand_t + 6.6, f64::MAX);
    fig.note(format!(
        "mean iter: before={} shrunk={} ({:.2}x, paper ~2x) after-expand={} ({:.2}x of before)",
        fmt_s(before),
        fmt_s(shrunk),
        shrunk / before.max(1e-12),
        fmt_s(after),
        after / before.max(1e-12),
    ));
    fig.emit();
}
