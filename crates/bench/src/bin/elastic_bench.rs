//! elastic_bench — autoscale policies vs spot preemptions on the cloud
//! machine profile.
//!
//! Two experiments per app (stencil2d and leanmd, both on `presets::cloud`
//! with 1 PE per VM and 1 GbE):
//!
//! 1. **Policy sweep under interference.** A noisy neighbor slows the tail
//!    VMs to 0.35× for the whole run. Four arms: `static` (no controller),
//!    `observe` (controller samples but never acts — its makespan must equal
//!    static's, i.e. observation is free), and two hysteresis autoscalers.
//!    Each arm records the cost×makespan Pareto point: completion time vs
//!    PE-seconds (the integral of alive capacity — what the cloud bill
//!    charges), plus evacuation/restart/reconfigure counts. The dominance
//!    claim — at least one elastic arm completes no later than static while
//!    renting strictly fewer PE-seconds — is asserted before the JSON is
//!    written.
//!
//! 2. **Preemption survival pair.** The same mid-run spot reclamation twice:
//!    once with a long warning (the runtime drains the doomed VM through the
//!    migration path — zero rollbacks, FT-ledger-verifiable) and once with
//!    zero warning (degrade to buddy-checkpoint restart). Proactive
//!    evacuation must beat the restart on makespan.
//!
//! Every arm runs twice with the same seed and the final PUP state digests
//! must agree, as in `engine_bench`. `--smoke` runs a tiny matrix and does
//! not rewrite `BENCH_elastic.json`.

use charm_apps::{leanmd, stencil, AppRun};
use charm_core::{ElasticConfig, HysteresisPolicy, Runtime, SimTime};
use charm_machine::{presets, InterferenceWindow, MachineConfig};
use std::fmt::Write as _;

const SWEEP_PES: usize = 16;
/// Tail VMs hit by the noisy neighbor (PEs 10..16): high indices, so a
/// shrink retires exactly the slowed instances.
const SLOW_FIRST: usize = 10;
const SLOW_N: usize = 6;
const SLOW_FACTOR: f64 = 0.35;

fn interfered_cloud(pes: usize) -> MachineConfig {
    let mut m = presets::cloud(pes);
    m.speed = m.speed.clone().with_interference(InterferenceWindow {
        first_pe: SLOW_FIRST,
        num_pes: SLOW_N,
        start: SimTime::from_millis(10),
        end: SimTime::MAX,
        speed_factor: SLOW_FACTOR,
    });
    m
}

/// The policy arms of the sweep. The cadence must be long relative to an
/// entry method (utilization is sampled from `busy_time` deltas, which
/// accrue at entry completion) and the cooldown long relative to a
/// reconfiguration (shrink costs 2 s of virtual time, expand 6.5 s — the
/// paper's §III-D figures), or the controller reacts to its own blackouts.
fn policy_arm(name: &str) -> Option<ElasticConfig> {
    let cadence = SimTime::from_secs(2);
    match name {
        "static" => None,
        "observe" => Some(ElasticConfig::observe_only(cadence)),
        "hysteresis-conservative" => Some(ElasticConfig::new(
            cadence,
            Box::new(HysteresisPolicy::new(
                0.98,
                0.70,
                2,
                SimTime::from_secs(5),
                6,
                SWEEP_PES,
            )),
        )),
        "hysteresis-aggressive" => Some(ElasticConfig::new(
            cadence,
            Box::new(HysteresisPolicy::new(
                0.90,
                0.75,
                4,
                SimTime::from_secs(3),
                4,
                SWEEP_PES,
            )),
        )),
        _ => unreachable!("unknown policy arm {name}"),
    }
}

const POLICY_ARMS: [&str; 4] = [
    "static",
    "observe",
    "hysteresis-conservative",
    "hysteresis-aggressive",
];

// ---------------------------------------------------------------------------
// measurement plumbing
// ---------------------------------------------------------------------------

struct PolicyRow {
    policy: &'static str,
    makespan_s: f64,
    pe_seconds: f64,
    evacuations: usize,
    restarts: usize,
    reconfigures: usize,
    final_alive_pes: usize,
    degraded: bool,
}

struct PreemptPair {
    evac_makespan_s: f64,
    evac_rollbacks: usize,
    evacuations: usize,
    restart_makespan_s: f64,
    restart_rollbacks: usize,
}

struct AppReport {
    name: &'static str,
    policies: Vec<PolicyRow>,
    preemption: PreemptPair,
    elastic_dominates_static: bool,
}

fn fold_digest(pairs: &[(charm_core::ObjId, u64)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    };
    for (obj, d) in pairs {
        mix(obj.ix.stable_hash());
        mix(*d);
    }
    h
}

/// Run an arm twice with the same seed; the final state digests must agree
/// (the controller and the preemption path are inside the deterministic
/// event loop — divergence here is an engine bug, not noise).
fn run_twice(run_once: impl Fn() -> (AppRun, Runtime)) -> (AppRun, Runtime) {
    let (r1, mut rt1) = run_once();
    let (_r2, mut rt2) = run_once();
    let d1 = fold_digest(&rt1.state_digest());
    let d2 = fold_digest(&rt2.state_digest());
    assert_eq!(d1, d2, "same-seed elastic runs diverged — nondeterminism");
    (r1, rt1)
}

/// PE-seconds rented: the integral of the alive-capacity step function
/// (journaled by the runtime as the `capacity` metric) over the run.
fn pe_seconds(rt: &Runtime, start_pes: usize, makespan_s: f64) -> f64 {
    let mut level = start_pes as f64;
    let mut t = 0.0;
    let mut acc = 0.0;
    for &(ts, v) in rt.metric("capacity") {
        let ts = ts.min(makespan_s);
        acc += level * (ts - t).max(0.0);
        t = ts;
        level = v;
    }
    acc + level * (makespan_s - t).max(0.0)
}

fn policy_row(policy: &'static str, run: &AppRun, rt: &Runtime, start_pes: usize) -> PolicyRow {
    let makespan_s = run.total_s;
    PolicyRow {
        policy,
        makespan_s,
        pe_seconds: pe_seconds(rt, start_pes, makespan_s),
        evacuations: rt.metric("evacuations").len(),
        restarts: rt.metric("restart_time_s").len(),
        reconfigures: rt.metric("reconfigure").len(),
        final_alive_pes: rt.alive_pes(),
        degraded: rt.degraded().is_some(),
    }
}

/// At least one elastic arm must be a Pareto improvement over static:
/// no later, strictly cheaper in PE-seconds.
fn dominates(rows: &[PolicyRow]) -> bool {
    let st = rows.iter().find(|r| r.policy == "static").expect("static arm");
    rows.iter().any(|r| {
        r.policy.starts_with("hysteresis")
            && r.makespan_s <= st.makespan_s
            && r.pe_seconds < st.pe_seconds
    })
}

// ---------------------------------------------------------------------------
// stencil2d
// ---------------------------------------------------------------------------

fn stencil_sweep_cfg(steps: u64, arm: &str, preempt: Option<(SimTime, SimTime)>) -> stencil::StencilConfig {
    let mut c = stencil::StencilConfig::cloud_4k(interfered_cloud(SWEEP_PES), 4);
    c.grid = 2048;
    c.blocks_per_side = 8;
    c.steps = steps;
    // Compute-heavy blocks so the virtual run lasts minutes: the 2 s/6.5 s
    // malleability overheads must amortize for autoscaling to pay off.
    c.flops_per_point = 6000.0;
    c.elastic = policy_arm(arm);
    // A spot reclamation of the top slow VM mid-run: every arm must survive
    // it (static evacuates; an autoscaler that already shrank past PE 15
    // had returned the instance beforehand).
    if let Some((kill, warn)) = preempt {
        c.preemptions = vec![(kill, SWEEP_PES - 1, warn)];
    }
    c
}

fn stencil_pair_cfg(steps: u64) -> stencil::StencilConfig {
    let mut c = stencil::StencilConfig::cloud_4k(presets::cloud(8), 4);
    c.grid = 1024;
    c.blocks_per_side = 8;
    c.steps = steps;
    // Compute-heavy blocks: the run must be long relative to both the
    // checkpoint replication window and the evacuation transfer.
    c.flops_per_point = 120.0;
    c
}

fn stencil_report(smoke: bool) -> AppReport {
    let steps = if smoke { 30 } else { 120 };
    let probe = stencil::run(stencil_sweep_cfg(steps, "static", None));
    let preempt = Some(sweep_preemption(probe.total_s));
    let mut policies = Vec::new();
    for arm in POLICY_ARMS {
        let (run, rt) =
            run_twice(|| stencil::run_with_runtime(stencil_sweep_cfg(steps, arm, preempt)));
        policies.push(policy_row(arm, &run, &rt, SWEEP_PES));
    }

    let pair_steps = if smoke { 12 } else { 30 };
    let probe = stencil::run(stencil_pair_cfg(pair_steps));
    let pair = preemption_pair(probe.total_s, |kill, warn, ckpt| {
        run_twice(|| {
            let mut c = stencil_pair_cfg(pair_steps);
            c.auto_ckpt = Some(ckpt);
            c.preemptions = vec![(kill, 5, warn)];
            stencil::run_with_runtime(c)
        })
    });
    finish_report("stencil2d", policies, pair)
}

// ---------------------------------------------------------------------------
// leanmd
// ---------------------------------------------------------------------------

fn leanmd_sweep_cfg(
    steps: u64,
    arm: &str,
    preempt: Option<(SimTime, SimTime)>,
) -> leanmd::LeanMdConfig {
    leanmd::LeanMdConfig {
        machine: interfered_cloud(SWEEP_PES),
        cells_per_dim: 4,
        // Heavy cells (force work is quadratic in atoms): minutes of
        // virtual time, long entries — same amortization argument as the
        // stencil sweep.
        atoms_per_cell: 800,
        // Uniform density: the sweep isolates *interference*-driven idling.
        // With the default Gaussian blob, mean utilization stays low at any
        // PE count (the hot cell gates every step) and a utilization
        // controller would rightly shrink to the floor.
        density_peak: 1.0,
        steps,
        elastic: policy_arm(arm),
        preemptions: preempt
            .map(|(kill, warn)| vec![(kill, SWEEP_PES - 1, warn)])
            .unwrap_or_default(),
        ..leanmd::LeanMdConfig::default()
    }
}

fn leanmd_pair_cfg(steps: u64) -> leanmd::LeanMdConfig {
    leanmd::LeanMdConfig {
        machine: presets::cloud(8),
        cells_per_dim: 4,
        atoms_per_cell: 40,
        steps,
        ..leanmd::LeanMdConfig::default()
    }
}

fn leanmd_report(smoke: bool) -> AppReport {
    let steps = if smoke { 30 } else { 120 };
    let probe = leanmd::run(leanmd_sweep_cfg(steps, "static", None));
    let preempt = Some(sweep_preemption(probe.total_s));
    let mut policies = Vec::new();
    for arm in POLICY_ARMS {
        let (run, rt) =
            run_twice(|| leanmd::run_with_runtime(leanmd_sweep_cfg(steps, arm, preempt)));
        policies.push(policy_row(arm, &run, &rt, SWEEP_PES));
    }

    let pair_steps = if smoke { 6 } else { 10 };
    let probe = leanmd::run(leanmd_pair_cfg(pair_steps));
    let pair = preemption_pair(probe.total_s, |kill, warn, ckpt| {
        run_twice(|| {
            let mut c = leanmd_pair_cfg(pair_steps);
            c.auto_ckpt = Some(ckpt);
            c.preemptions = vec![(kill, 5, warn)];
            leanmd::run_with_runtime(c)
        })
    });
    finish_report("leanmd", policies, pair)
}

// ---------------------------------------------------------------------------
// shared experiment shapes
// ---------------------------------------------------------------------------

/// The sweep's spot reclamation: 40 % into the failure-free makespan,
/// announced 2 s ahead (ample for the drain on these chare sizes).
fn sweep_preemption(probe_makespan_s: f64) -> (SimTime, SimTime) {
    (
        SimTime::from_secs_f64(probe_makespan_s * 0.4),
        SimTime::from_secs(2),
    )
}

/// The same spot reclamation twice: long warning (proactive drain) vs zero
/// warning (checkpoint restart). Everything scales with the failure-free
/// makespan: the kill lands at 55 % of it, checkpoints run every fifth of
/// it (so at least one commit precedes the zero-warning kill), and the
/// long warning is 30 % of it (ample room for the evacuation transfer).
fn preemption_pair(
    probe_makespan_s: f64,
    run_arm: impl Fn(SimTime, SimTime, SimTime) -> (AppRun, Runtime),
) -> PreemptPair {
    let kill = SimTime::from_secs_f64(probe_makespan_s * 0.55);
    let ckpt = SimTime::from_secs_f64(probe_makespan_s / 5.0);
    let long_warn = SimTime::from_secs_f64(probe_makespan_s * 0.30);

    let (evac_run, evac_rt) = run_arm(kill, long_warn, ckpt);
    let evac_rollbacks = evac_rt.metric("restart_time_s").len();
    let evacuations = evac_rt.metric("evacuations").len();
    assert!(
        evac_rt.unrecoverable().is_none(),
        "evacuation arm must survive: {:?}",
        evac_rt.unrecoverable()
    );
    assert_eq!(
        evac_rollbacks, 0,
        "long-warning preemption must drain proactively, not roll back"
    );
    assert!(evacuations >= 1, "long warning must record an evacuation");

    let (restart_run, restart_rt) = run_arm(kill, SimTime::ZERO, ckpt);
    let restart_rollbacks = restart_rt.metric("restart_time_s").len();
    assert!(
        restart_rt.unrecoverable().is_none(),
        "restart arm must recover: {:?}",
        restart_rt.unrecoverable()
    );
    assert!(
        restart_rollbacks >= 1,
        "zero-warning preemption must fall back to checkpoint restart"
    );
    assert!(
        evac_run.total_s < restart_run.total_s,
        "proactive evacuation must beat restart on makespan: evac={:.4}s restart={:.4}s",
        evac_run.total_s,
        restart_run.total_s
    );

    PreemptPair {
        evac_makespan_s: evac_run.total_s,
        evac_rollbacks,
        evacuations,
        restart_makespan_s: restart_run.total_s,
        restart_rollbacks,
    }
}

fn finish_report(
    name: &'static str,
    policies: Vec<PolicyRow>,
    preemption: PreemptPair,
) -> AppReport {
    // Observation is free: a controller that never acts must not change
    // the virtual timeline at all.
    let st = policies.iter().find(|r| r.policy == "static").unwrap();
    let ob = policies.iter().find(|r| r.policy == "observe").unwrap();
    assert!(
        (st.makespan_s - ob.makespan_s).abs() < 1e-9,
        "{name}: observe-only controller changed the makespan: static={:.6}s observe={:.6}s",
        st.makespan_s,
        ob.makespan_s
    );
    let elastic_dominates_static = dominates(&policies);
    AppReport {
        name,
        policies,
        preemption,
        elastic_dominates_static,
    }
}

// ---------------------------------------------------------------------------
// output
// ---------------------------------------------------------------------------

fn print_report(r: &AppReport) {
    println!("== {} — policy sweep (interference on PEs {SLOW_FIRST}..{} at {SLOW_FACTOR}x)",
        r.name, SLOW_FIRST + SLOW_N);
    println!(
        "  {:<24} {:>10} {:>12} {:>6} {:>9} {:>7} {:>6} {:>9}",
        "policy", "makespan", "PE-seconds", "evacs", "restarts", "reconf", "PEs", "degraded"
    );
    for p in &r.policies {
        println!(
            "  {:<24} {:>9.4}s {:>12.4} {:>6} {:>9} {:>7} {:>6} {:>9}",
            p.policy,
            p.makespan_s,
            p.pe_seconds,
            p.evacuations,
            p.restarts,
            p.reconfigures,
            p.final_alive_pes,
            if p.degraded { "yes" } else { "no" },
        );
    }
    println!(
        "  elastic dominates static: {}",
        if r.elastic_dominates_static { "yes" } else { "no" }
    );
    let pp = &r.preemption;
    println!(
        "  preemption pair: evac {:.4}s ({} evacuation(s), {} rollbacks) vs restart {:.4}s ({} rollback(s))",
        pp.evac_makespan_s, pp.evacuations, pp.evac_rollbacks, pp.restart_makespan_s, pp.restart_rollbacks
    );
}

fn write_json(reports: &[AppReport]) -> std::io::Result<std::path::PathBuf> {
    let root = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::PathBuf::from(m).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    };
    let path = root.join("BENCH_elastic.json");
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"elastic\",");
    let _ = writeln!(j, "  \"mode\": \"full\",");
    let _ = writeln!(
        j,
        "  \"note\": \"closed-loop autoscaling on presets::cloud with a {SLOW_FACTOR}x noisy neighbor on PEs {SLOW_FIRST}..{}; pe_seconds integrates the alive-capacity journal (the cloud bill); the preemption pair compares a spot reclamation announced 30% of the makespan ahead (proactive drain, zero rollbacks) against the same kill with no warning (buddy-checkpoint restart)\",",
        SLOW_FIRST + SLOW_N
    );
    let _ = writeln!(j, "  \"apps\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(j, "      \"policies\": [");
        for (k, p) in r.policies.iter().enumerate() {
            let pc = if k + 1 < r.policies.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "        {{\"policy\": \"{}\", \"makespan_s\": {:.6}, \"pe_seconds\": {:.6}, \"evacuations\": {}, \"restarts\": {}, \"reconfigures\": {}, \"final_alive_pes\": {}, \"degraded\": {}}}{pc}",
                p.policy,
                p.makespan_s,
                p.pe_seconds,
                p.evacuations,
                p.restarts,
                p.reconfigures,
                p.final_alive_pes,
                p.degraded
            );
        }
        let _ = writeln!(j, "      ],");
        let pp = &r.preemption;
        let _ = writeln!(j, "      \"preemption\": {{");
        let _ = writeln!(j, "        \"evac_makespan_s\": {:.6},", pp.evac_makespan_s);
        let _ = writeln!(j, "        \"evac_rollbacks\": {},", pp.evac_rollbacks);
        let _ = writeln!(j, "        \"evacuations\": {},", pp.evacuations);
        let _ = writeln!(j, "        \"restart_makespan_s\": {:.6},", pp.restart_makespan_s);
        let _ = writeln!(j, "        \"restart_rollbacks\": {}", pp.restart_rollbacks);
        let _ = writeln!(j, "      }},");
        let _ = writeln!(
            j,
            "      \"elastic_dominates_static\": {}",
            r.elastic_dominates_static
        );
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&path, j)?;
    Ok(path)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reports = vec![stencil_report(smoke), leanmd_report(smoke)];
    for r in &reports {
        print_report(r);
    }
    if smoke {
        // Smoke sizes are too short to amortize the 2 s/6.5 s malleability
        // overheads, so the Pareto dominance claim is asserted only on the
        // full matrix (and re-checked against the committed JSON by
        // scripts/elastic_smoke.sh); the preemption-survival invariants
        // were asserted above at both sizes.
        println!("  (smoke mode: BENCH_elastic.json not rewritten)");
        return;
    }
    for r in &reports {
        assert!(
            r.elastic_dominates_static,
            "{}: no hysteresis arm dominated the static baseline",
            r.name
        );
    }
    match write_json(&reports) {
        Ok(p) => println!("  -> {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_elastic.json: {e}");
            std::process::exit(1);
        }
    }
}
