//! Race-hunt driver: record a baseline run, re-execute it K times under
//! seeded causally-valid delivery perturbations, and report every chare
//! whose final state depended on delivery order — with the minimized
//! two-message witness.
//!
//! Hunts two targets:
//!  * the deliberately racy demo chare (must be flagged, with witness),
//!  * its commutative control and a LeanMD run (must stay clean).

use charm_bench::{results_path, Figure};
use charm_core::ReplayConfig;
use charm_replay::demo::{run_commute, run_racy};
use charm_replay::{hunt, save, HuntOutcome, ReplayLog};

fn hunt_leanmd(k: u64) -> (ReplayLog, HuntOutcome) {
    let record = |perturb| {
        let (_run, mut rt) =
            charm_apps::leanmd::run_with_runtime(charm_apps::leanmd::LeanMdConfig {
                steps: 5,
                record: Some(ReplayConfig::default()),
                perturb,
                ..Default::default()
            });
        let mut log = rt.take_replay_log().expect("recording was on");
        log.app = "leanmd".into();
        log
    };
    let baseline = record(None);
    let outcome = hunt(&baseline, k, 100, |p| record(Some(p)));
    (baseline, outcome)
}

fn main() {
    let k = 16;
    let mut fig = Figure::new(
        "race_hunt",
        "Schedule-perturbation race hunt (K seeded reorderings per target)",
        &["target", "runs", "flagged", "order-sensitive chares", "witness"],
    );

    let baseline = run_racy(7, None);
    let racy = hunt(&baseline, k, 100, |p| run_racy(7, Some(p)));
    fig.row(vec![
        "racy-demo".into(),
        racy.runs.to_string(),
        racy.flagging_seed
            .map(|s| format!("yes (seed {s})"))
            .unwrap_or_else(|| "no".into()),
        racy.report.order_sensitive.len().to_string(),
        racy.report
            .witness
            .as_ref()
            .map(|w| w.to_string())
            .unwrap_or_else(|| "-".into()),
    ]);
    if let Ok(p) = results_path("race_hunt_baseline.rlog") {
        if save(&baseline, &p).is_ok() {
            fig.note(format!("baseline log: {}", p.display()));
        }
    }

    let commute_base = run_commute(7, None);
    let commute = hunt(&commute_base, k, 100, |p| run_commute(7, Some(p)));
    fig.row(vec![
        "commute-control".into(),
        commute.runs.to_string(),
        commute.flagging_seed.map(|s| format!("yes (seed {s})")).unwrap_or_else(|| "no".into()),
        commute.report.order_sensitive.len().to_string(),
        "-".into(),
    ]);

    let (_leanmd_base, leanmd) = hunt_leanmd(4);
    fig.row(vec![
        "leanmd (6^3 cells, 5 steps)".into(),
        leanmd.runs.to_string(),
        leanmd.flagging_seed.map(|s| format!("yes (seed {s})")).unwrap_or_else(|| "no".into()),
        leanmd.report.order_sensitive.len().to_string(),
        leanmd
            .report
            .witness
            .as_ref()
            .map(|w| w.to_string())
            .unwrap_or_else(|| "-".into()),
    ]);

    fig.note("a flag means a causally-valid delivery reordering changed a chare's final PUP state digest");
    fig.emit();
    let _ = fig.save_csv();

    // Self-check: the seeded bug must be caught, the controls must be clean.
    if racy.flagging_seed.is_none() || racy.report.witness.is_none() {
        eprintln!("FAIL: seeded racy chare was not flagged with a witness");
        std::process::exit(1);
    }
    if commute.flagging_seed.is_some() {
        eprintln!("FAIL: commutative control was flagged");
        std::process::exit(1);
    }
}
