//! Fig. 16 — Stencil2D in the cloud: an interfering VM lands on one node
//! mid-run; iteration time with and without RTS-triggered heterogeneity-
//! aware load balancing. Also reports §IV-F's over-decomposition result
//! (1 vs 8 chares per VM on slow Ethernet).
//!
//! Expected shape: both curves jump when interference starts; the LB curve
//! recovers close to the pre-interference level (with periodic LB spikes),
//! the NoLB curve stays high. Over-decomposition alone buys ~2.4×.

use charm_apps::stencil::{run, StencilConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_core::SimTime;
use charm_machine::{presets, InterferenceWindow};

fn main() {
    let scale = Scale::from_env();
    let vms = 32;
    let steps = scale.pick(160u64, 500);

    // ---- over-decomposition table (§IV-F text) -----------------------------
    let mut od = Figure::new(
        "fig16_overdecomp",
        "Stencil2D on 32 cloud VMs: iteration time vs chares per VM",
        &["chares_per_vm", "iter_time"],
    );
    for &cpp in &[1usize, 2, 4, 8] {
        let mut c = StencilConfig::cloud_4k(presets::cloud(vms), cpp);
        c.steps = 24;
        let r = run(c);
        od.row(vec![cpp.to_string(), fmt_s(r.avg_step_s())]);
    }
    od.note("paper: 77ms with 1 chare/VM -> 32ms with 8 (2.4x) from comm/compute overlap");
    od.emit();

    // ---- interference timeline ---------------------------------------------
    // Probe the clean iteration time to place the interference at ~1/3 of
    // the run, as the paper starts the interfering VM at iteration 100/500.
    let probe = {
        let mut c = StencilConfig::cloud_4k(presets::cloud(vms), 4);
        c.steps = 20;
        run(c)
    };
    let step_s = probe.avg_step_s();
    let start = SimTime::from_secs_f64(step_s * steps as f64 / 3.0);

    let mk = |with_lb: bool| {
        let mut machine = presets::cloud(vms);
        machine.speed = machine.speed.clone().with_interference(InterferenceWindow {
            first_pe: 0,
            num_pes: 1,
            start,
            end: SimTime::MAX,
            speed_factor: 0.45,
        });
        let mut c = StencilConfig::cloud_4k(machine, 4);
        c.steps = steps;
        if with_lb {
            c.strategy = Some(Box::new(charm_lb::RefineLb::default()));
            // LB every 20 steps, as in the paper's figure.
            c.lb_period = Some(SimTime::from_secs_f64(step_s * 20.0));
        }
        c
    };
    let nolb = run(mk(false));
    let lb = run(mk(true));

    let mut fig = Figure::new(
        "fig16",
        "Stencil2D iteration times with an interfering VM (starts ~1/3 in)",
        &["iter", "no_lb", "lb"],
    );
    let dn = nolb.step_durations();
    let dl = lb.step_durations();
    for i in 0..dn.len().min(dl.len()) {
        fig.row(vec![i.to_string(), fmt_s(dn[i]), fmt_s(dl[i])]);
    }
    let tail = |d: &[f64]| d[d.len() - 10..].iter().sum::<f64>() / 10.0;
    fig.note(format!(
        "steady tail: no_lb={} lb={} (pre-interference ~{}); lb_rounds={} (spikes)",
        fmt_s(tail(&dn)),
        fmt_s(tail(&dl)),
        fmt_s(step_s),
        lb.lb_rounds
    ));
    fig.note("paper: LB recovers near the clean iteration time; NoLB stays degraded");
    fig.emit();
}
