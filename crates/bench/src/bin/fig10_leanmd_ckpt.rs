//! Fig. 10 — LeanMD double in-memory checkpoint and restart times on BG/Q
//! for two system sizes (paper: 1.6 M and 2.8 M atoms, 2K→32K PEs).
//!
//! Expected shape: checkpoint time *decreases* with PE count (per-PE state
//! shrinks: 43 ms → 33 ms for 2.8 M atoms) and is larger for the larger
//! system; restart time *increases* slightly with PE count (66 ms → 139 ms)
//! because the recovery protocol's barriers grow with log P.

use charm_apps::leanmd::{run_with_runtime, LeanMdConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_core::SimTime;
use charm_machine::presets;

fn measure(pes: usize, cells: usize, atoms: usize) -> (f64, f64) {
    // Probe to find a good failure time (strictly after the checkpoint).
    let probe = run_with_runtime(LeanMdConfig {
        machine: presets::bgq(pes),
        cells_per_dim: cells,
        atoms_per_cell: atoms,
        steps: 8,
        ckpt_at: Some(3),
        ..LeanMdConfig::default()
    });
    let ckpt_t = probe.1.metric("ckpt_time_s")[0].0;
    let end_t = probe.1.metric("leanmd_step").last().expect("steps ran").0;
    let fail_t = SimTime::from_secs_f64((ckpt_t + end_t) / 2.0);

    let (_, rt) = run_with_runtime(LeanMdConfig {
        machine: presets::bgq(pes),
        cells_per_dim: cells,
        atoms_per_cell: atoms,
        steps: 8,
        ckpt_at: Some(3),
        fail_at: Some((fail_t, pes / 3)),
        ..LeanMdConfig::default()
    });
    (
        rt.metric("ckpt_time_s")[0].1,
        rt.metric("restart_time_s")[0].1,
    )
}

fn main() {
    let scale = Scale::from_env();
    let pe_list: Vec<usize> = scale.pick(vec![64, 128, 256, 512], vec![2048, 8192, 32768]);
    // Two system sizes with a 2.8/1.6 ≈ 1.75 ratio of total atoms.
    let big_cells = scale.pick(10usize, 28);
    let small_cells = scale.pick(8usize, 23);
    let atoms = 90;

    let mut fig = Figure::new(
        "fig10",
        "LeanMD in-memory checkpoint/restart times, two system sizes",
        &["pes", "big_ckpt", "small_ckpt", "big_restart", "small_restart"],
    );
    for &p in &pe_list {
        let (cb, rb) = measure(p, big_cells, atoms);
        let (cs, rs) = measure(p, small_cells, atoms);
        fig.row(vec![
            p.to_string(),
            fmt_s(cb),
            fmt_s(cs),
            fmt_s(rb),
            fmt_s(rs),
        ]);
    }
    fig.note("paper: 2.8M-atom checkpoint 43ms@2K → 33ms@32K (falls with P, bigger system costs more);");
    fig.note("restart 66ms@4K → 139ms@32K (grows with P: barrier term)");
    fig.emit();
}
