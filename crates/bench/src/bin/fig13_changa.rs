//! Fig. 13 — ChaNGa-like per-phase time breakdown (Gravity, DD, TB, LB,
//! total step) across a strong-scaling sweep on the XE6 profile.
//!
//! Expected shape: gravity dominates everywhere and strong-scales well;
//! DD and TB are small and shrink more slowly (collective-bound), so their
//! *relative* share grows with PE count; total step keeps ~80 % parallel
//! efficiency across a 16× PE sweep (paper: 8K→128K at 80 %).

use charm_apps::changa::{run, ChangaConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_machine::presets;

fn main() {
    let scale = Scale::from_env();
    let pe_list: Vec<usize> = scale.pick(vec![32, 128, 512], vec![8192, 32768, 131072]);
    let total_particles = scale.pick(600_000usize, 50_000_000);
    let pieces_per_pe = 8;

    let mut fig = Figure::new(
        "fig13",
        "ChaNGa-like phase breakdown per step",
        &["pes", "gravity", "dd", "tb", "lb", "total", "efficiency"],
    );
    let mut base: Option<(usize, f64)> = None;
    for &p in &pe_list {
        let pieces = p * pieces_per_pe;
        let b = run(ChangaConfig {
            machine: presets::xe6(p),
            pieces,
            particles_per_piece: (total_particles / pieces).max(1),
            clustering: 6.0,
            steps: 6,
            lb_every: 3,
            strategy: Some(Box::new(charm_lb::HybridLb::default())),
            ..ChangaConfig::default()
        });
        let (p0, t0) = *base.get_or_insert((p, b.total));
        let eff = (t0 * p0 as f64) / (b.total * p as f64);
        fig.row(vec![
            p.to_string(),
            fmt_s(b.gravity),
            fmt_s(b.dd),
            fmt_s(b.tb),
            fmt_s(b.lb),
            fmt_s(b.total),
            format!("{:.0}%", 100.0 * eff),
        ]);
    }
    fig.note("paper: gravity dominates; 2.7s total step at 128K PEs, 80% efficiency vs 8K");
    fig.emit();
}
