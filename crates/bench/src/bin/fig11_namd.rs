//! Fig. 11 — NAMD-like strong scaling of the 100 M-atom benchmark on
//! Titan XK7 (CPU only) vs Jaguar XT5.
//!
//! Expected shape: both machines strong-scale; XK7 (faster cores, faster
//! Gemini interconnect) sits below XT5 at every PE count, with the gap
//! persisting to the full-machine scale.

use charm_apps::leanmd::{run, LeanMdConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_machine::presets;

fn main() {
    let scale = Scale::from_env();
    let pe_list: Vec<usize> = scale.pick(vec![256, 512, 1024, 2048], vec![4096, 16384, 65536]);
    // A fixed "100M-atom-like" system (scaled: constant total work).
    let cells = scale.pick(16usize, 40);
    let atoms = scale.pick(90usize, 140);

    let mk = |machine, lb_every| LeanMdConfig {
        machine,
        cells_per_dim: cells,
        atoms_per_cell: atoms,
        density_peak: 4.0,
        steps: 8,
        lb_every,
        strategy: Some(Box::new(charm_lb::HybridLb::default())),
        ..LeanMdConfig::default()
    };

    let mut fig = Figure::new(
        "fig11",
        "NAMD-like strong scaling (time/step): Titan XK7 vs Jaguar XT5",
        &["pes", "xk7", "xt5", "xt5/xk7"],
    );
    let tail = |r: &charm_apps::AppRun| {
        let d = r.step_durations();
        d[d.len() - 3..].iter().sum::<f64>() / 3.0
    };
    for &p in &pe_list {
        let xk7 = tail(&run(mk(presets::xk7(p), 3)));
        let xt5 = tail(&run(mk(presets::xt5(p), 3)));
        fig.row(vec![
            p.to_string(),
            fmt_s(xk7),
            fmt_s(xt5),
            format!("{:.2}x", xt5 / xk7),
        ]);
    }
    fig.note("paper: XK7 consistently faster than XT5 across the sweep; both keep scaling");
    fig.emit();
}
