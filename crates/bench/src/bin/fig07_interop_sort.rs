//! Fig. 7 — interoperation removes the sorting bottleneck in CHARM.
//!
//! The host "MPI" program does one N-body-style compute step over a fixed
//! global problem (strong scaling), then globally sorts the skewed particle
//! keys — once with the bulk-synchronous MPI multiway-merge sort, once by
//! handing the phase to the charm-rs HistSort library through the interop
//! interface (§III-G).
//!
//! Expected shape: compute strong-scales; the MPI sort's bulk-synchronous
//! phases (root sample funnel, `(P−1)·α` all-to-all) stop scaling and its
//! share of the step grows (paper: 23 % at 4096 cores); the asynchronous
//! HistSort stays a small, flat fraction (paper: 2 %).

use charm_bench::{fmt_s, Figure, Scale};
use charm_core::{CharmLib, Runtime};
use charm_machine::presets;
use charm_sort::{hist_sort, mpi_multiway, skewed_keys, verify_sorted};

fn main() {
    let scale = Scale::from_env();
    let pe_list: Vec<usize> = scale.pick(vec![8, 64, 256, 1024, 2048], vec![8, 64, 512, 4096]);
    // Strong scaling: fixed totals, chosen so the top PE count's compute
    // share sits in the paper's regime (hundreds of ms).
    let total_keys: usize = scale.pick(1 << 19, 1 << 22);
    let total_compute_flops = scale.pick(2.0e11, 2.0e12);

    let mut fig = Figure::new(
        "fig07",
        "CHARM interop: per-step time of compute vs MPI sort vs Charm HistSort",
        &[
            "pes",
            "useful_compute",
            "mpi_sort",
            "charm_histsort",
            "mpi_sort_frac",
            "charm_sort_frac",
        ],
    );

    for &p in &pe_list {
        let keys = skewed_keys(p, total_keys / p, 7);
        let machine = presets::stampede(p);
        let compute_s = total_compute_flops / (machine.flops_per_sec * p as f64);

        let mpi = mpi_multiway(&machine, keys.clone());
        verify_sorted(&keys, &mpi.buckets).expect("mpi sort correct");

        let mut lib = CharmLib::init(Runtime::builder(presets::stampede(p)).build());
        lib.host_compute(compute_s);
        let charm_time = {
            let rt = lib.runtime();
            let r = hist_sort(rt, keys.clone(), 0.03);
            verify_sorted(&keys, &r.buckets).expect("charm sort correct");
            r.time
        };
        let _ = lib.exit();

        let mpi_s = mpi.time.as_secs_f64();
        let charm_s = charm_time.as_secs_f64();
        fig.row(vec![
            p.to_string(),
            fmt_s(compute_s),
            fmt_s(mpi_s),
            fmt_s(charm_s),
            format!("{:.1}%", 100.0 * mpi_s / (compute_s + mpi_s)),
            format!("{:.1}%", 100.0 * charm_s / (compute_s + charm_s)),
        ]);
    }
    fig.note("paper: MPI sort grows to 23% of step time at 4096 cores; Charm sort stays ~2%");
    fig.emit();
}
