//! Fig. 15 — PHOLD weak scaling on Stampede. (a) event rate as LPs per PE
//! grows (over-decomposition keeps PEs busy within a YAWNS window);
//! (b) TRAM vs direct sends at low and high event density.
//!
//! Expected shape: (a) more LPs/PE → higher event rate at every PE count;
//! (b) at 64 events/LP direct sends win on the smallest machine, TRAM wins
//! as volume grows; at 1024 events/LP TRAM wins everywhere (paper peak:
//! >50 M events/s).

use charm_apps::pdes::{run, PdesConfig};
use charm_bench::{Figure, Scale};
use charm_core::SimTime;
use charm_machine::presets;
use charm_tram::TramConfig;

fn base(pes: usize, lps_per_pe: usize, events: usize, tram: bool) -> PdesConfig {
    PdesConfig {
        machine: presets::stampede(pes),
        lps_per_pe,
        initial_events_per_lp: events,
        windows: 14,
        tram: tram.then(|| TramConfig {
            ndims: 2,
            flush_threshold: 64,
            flush_interval: Some(SimTime::from_micros(30)),
        }),
        ..PdesConfig::default()
    }
}

fn main() {
    let scale = Scale::from_env();
    let pe_list: Vec<usize> = scale.pick(vec![16, 32, 64], vec![1024, 2048, 4096]);

    // ---- (a): LPs per PE sweep at 32 events/LP -----------------------------
    let mut a = Figure::new(
        "fig15a",
        "PHOLD event rate (events/s) vs PEs, varying LPs per PE (32 events/LP)",
        &["pes", "64_lps_pe", "128_lps_pe", "256_lps_pe"],
    );
    let lps_sweep = scale.pick(vec![16usize, 32, 64], vec![64, 128, 256]);
    for &p in &pe_list {
        let mut row = vec![p.to_string()];
        for &lpp in &lps_sweep {
            let r = run(base(p, lpp, 32, false));
            row.push(format!("{:.2}M", r.event_rate / 1e6));
        }
        a.row(row);
    }
    a.note(format!(
        "columns are {:?} LPs/PE at demo scale (paper: 64/128/256)",
        lps_sweep
    ));
    a.note("paper: higher LPs/PE → higher event rate at every machine size");
    a.emit();

    // ---- (b): TRAM vs direct at two event densities ------------------------
    let mut b = Figure::new(
        "fig15b",
        "PHOLD event rate: direct vs TRAM at low/high events per LP (256 LPs/PE demo-scaled)",
        &["pes", "direct_64ev", "tram_64ev", "direct_1024ev", "tram_1024ev"],
    );
    let lpp = scale.pick(64usize, 256);
    let (low_ev, high_ev) = scale.pick((16usize, 192usize), (64, 1024));
    for &p in &pe_list {
        let d_low = run(base(p, lpp, low_ev, false));
        let t_low = run(base(p, lpp, low_ev, true));
        let d_high = run(base(p, lpp, high_ev, false));
        let t_high = run(base(p, lpp, high_ev, true));
        b.row(vec![
            p.to_string(),
            format!("{:.2}M", d_low.event_rate / 1e6),
            format!("{:.2}M", t_low.event_rate / 1e6),
            format!("{:.2}M", d_high.event_rate / 1e6),
            format!("{:.2}M", t_high.event_rate / 1e6),
        ]);
    }
    b.note("paper: direct wins at 64 ev/LP on 1K PEs; TRAM wins at high volume (peak >50M ev/s)");
    b.emit();
}
