//! Fig. 9 — LeanMD strong scaling on BG/Q (1K→32K PEs): speedup with the
//! hierarchical HybridLB vs no LB vs ideal.
//!
//! Expected shape: with LB the app tracks ideal closely (paper: 44 ms/step
//! at 32K); without LB, the clustered atom density caps speedup well below
//! ideal ("improves the performance by at least 40%").

use charm_apps::leanmd::{run, LeanMdConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_machine::presets;

fn main() {
    let scale = Scale::from_env();
    let pe_list: Vec<usize> = scale.pick(vec![64, 128, 256, 512], vec![1024, 4096, 32768]);
    // Strong scaling: fixed molecule system across the sweep.
    let cells = scale.pick(10usize, 22);
    let atoms = scale.pick(70usize, 120);

    let mk = |pes: usize, lb: bool| LeanMdConfig {
        machine: presets::bgq(pes),
        cells_per_dim: cells,
        atoms_per_cell: atoms,
        density_peak: 6.0,
        steps: 10,
        lb_every: if lb { 3 } else { 0 },
        strategy: lb.then(|| Box::new(charm_lb::HybridLb::default()) as _),
        ..LeanMdConfig::default()
    };

    let mut fig = Figure::new(
        "fig09",
        "LeanMD strong scaling (time/step): HybridLB vs NoLB vs ideal",
        &["pes", "no_lb", "with_lb", "lb_gain", "speedup_lb", "ideal_speedup"],
    );
    let tail = |r: &charm_apps::AppRun| {
        let d = r.step_durations();
        d[d.len() - 4..].iter().sum::<f64>() / 4.0
    };
    let mut base: Option<f64> = None;
    for &p in &pe_list {
        let no = tail(&run(mk(p, false)));
        let lb = tail(&run(mk(p, true)));
        let b = *base.get_or_insert(lb);
        fig.row(vec![
            p.to_string(),
            fmt_s(no),
            fmt_s(lb),
            format!("{:.0}%", 100.0 * (no - lb) / no),
            format!("{:.2}", b / lb * pe_list[0] as f64),
            format!("{:.2}", p as f64),
        ]);
    }
    fig.note("paper: HybridLB improves LeanMD by >= 40%; 44 ms/step at 32K PEs");
    fig.emit();
}
