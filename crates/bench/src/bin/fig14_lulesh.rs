//! Fig. 14 — LULESH weak scaling on Hopper: native MPI vs AMPI with
//! virtualization (v=1, v=8) and v=8 + load balancing, including non-cubic
//! PE counts that plain MPI cannot use.
//!
//! Expected shape: AMPI v=1 ≈ MPI (virtualization alone costs little);
//! v=8 is ~2.4× faster (working set drops under the node cache); +LB takes
//! a bit more off by absorbing the region imbalance; the v=8 rows exist at
//! non-cubic PE counts where the MPI column is impossible.

use charm_apps::lulesh::{run, LuleshConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_machine::presets;

fn main() {
    let scale = Scale::from_env();
    // Weak scaling: elements per PE constant (paper: 27000/PE).
    let elements_per_pe = 27000usize;
    // (pes, cubic?) — non-cubic entries mirror the paper's 3000/6000.
    let pe_list: Vec<usize> = scale.pick(vec![8, 27, 36, 64], vec![512, 1000, 3000, 4096]);

    let mut fig = Figure::new(
        "fig14",
        "LULESH weak scaling (time/iteration): MPI vs AMPI v=1 vs v=8 vs v=8+LB",
        &["pes", "mpi", "ampi_v1", "ampi_v8", "ampi_v8_lb"],
    );

    for &pes in &pe_list {
        let cubic = {
            let c = (pes as f64).cbrt().round() as usize;
            c * c * c == pes
        };
        // v=1: ranks == pes (only possible at cubic counts).
        let v1 = cubic.then(|| {
            let side = (pes as f64).cbrt().round() as usize;
            run(LuleshConfig {
                machine: presets::hopper(pes),
                ranks_per_side: side,
                elements_per_rank: elements_per_pe,
                iterations: 6,
                cache: Some(LuleshConfig::hopper_cache(elements_per_pe)),
                ..LuleshConfig::default()
            })
            .avg_iter_s
        });
        // v=8: ranks = 8 × pes (cubic whenever 2·side is an integer — use
        // the nearest cube ≥ 8·pes and scale elements to keep work/PE).
        let v8_side = ((8 * pes) as f64).cbrt().round() as usize;
        let v8_ranks = v8_side * v8_side * v8_side;
        let elems_v8 = elements_per_pe * pes / v8_ranks;
        let mk_v8 = |lb: bool| {
            run(LuleshConfig {
                machine: presets::hopper(pes),
                ranks_per_side: v8_side,
                elements_per_rank: elems_v8,
                iterations: 6,
                migrate_every: if lb { 2 } else { 0 },
                strategy: lb.then(|| Box::new(charm_lb::GreedyLb) as _),
                cache: Some(LuleshConfig::hopper_cache(elems_v8)),
                skew: 0.25,
                ..LuleshConfig::default()
            })
            .avg_iter_s
        };
        let v8 = mk_v8(false);
        let v8_lb = mk_v8(true);
        fig.row(vec![
            pes.to_string(),
            v1.map(fmt_s).unwrap_or_else(|| "n/a (non-cubic)".into()),
            v1.map(fmt_s).unwrap_or_else(|| "n/a (non-cubic)".into()),
            fmt_s(v8),
            fmt_s(v8_lb),
        ]);
    }
    fig.note("paper: v=8 gives 2.4x over MPI/v=1 via cache blocking; +LB shaves the region imbalance;");
    fig.note("AMPI rows exist at non-cubic PE counts (3000/6000) where MPI cannot run");
    fig.emit();
}
