//! scale_bench — streaming observability at 128K–1M simulated PEs.
//!
//! Proves the ISSUE 7 claim: the tracer survives runs far past what the
//! in-memory rings could hold, because records *stream* to sinks instead
//! of accumulating. Two arms, Task-Bench style:
//!
//! * **scale** — the cloud stencil at 128K / 256K / 512K / 1M simulated
//!   PEs (one chare per PE, one step) with `log_capacity: 0` — the rings
//!   retain nothing, every record flows through Chrome-JSON *and* CSV
//!   file sinks — measuring simulator events/sec and peak RSS per PE
//!   count. RSS must grow at most linearly in PEs (the O(PE) runtime
//!   state: PE queues, RNGs, location caches), never with event count.
//! * **overhead** — a fixed 4K-PE stencil under tracer off vs
//!   `summary_only` vs full streaming, quantifying the observability tax
//!   on simulator throughput.
//!
//! Peak RSS (`VmHWM`) is process-lifetime-monotonic, so every point runs
//! in a fresh subprocess (the hidden `--one` mode) and reports back over
//! stdout as a `RESULT key=value ...` line.
//!
//! The full matrix writes `BENCH_scale.json` at the repo root; `--smoke`
//! runs a reduced matrix (128K-PE point, hard RSS ceiling) and does not
//! rewrite the JSON.

use charm_apps::stencil::{self, StencilConfig};
use charm_bench::Figure;
use charm_core::{ChromeStreamSink, CsvStreamSink, TraceConfig};
use charm_machine::presets;
use std::fmt::Write as _;

/// Hard ceiling for the 128K-PE streaming point, enforced in smoke mode
/// (and on the same point in full mode). Generous vs the ~0.2 GiB
/// measured, tight vs the multi-GiB an O(events) tracer would need.
const SMOKE_RSS_CEILING: u64 = 1 << 30; // 1 GiB

/// Ceiling for the 1M-PE point: 8× the 128K ceiling (linear-in-PE
/// headroom), still far under what retaining ~13M trace records would
/// cost.
const FULL_RSS_CEILING: u64 = 8 << 30; // 8 GiB

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Off,
    Summary,
    Stream,
}

impl Mode {
    fn tag(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Summary => "summary_only",
            Mode::Stream => "stream",
        }
    }

    fn parse(s: &str) -> Option<Mode> {
        match s {
            "off" => Some(Mode::Off),
            "summary_only" => Some(Mode::Summary),
            "stream" => Some(Mode::Stream),
            _ => None,
        }
    }
}

/// One measured subprocess run.
#[derive(Debug, Clone)]
struct Point {
    pes: usize,
    mode: Mode,
    steps: u64,
    events: u64,
    entries: u64,
    messages: u64,
    wall_s: f64,
    events_per_sec: f64,
    trace_dropped: u64,
    sink_records: u64,
    sink_bytes: u64,
    peak_rss_bytes: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--one") {
        run_one(&args[1..]);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");

    println!(
        "== scale_bench — streaming observability at scale ({})",
        if smoke { "smoke" } else { "full" }
    );

    // -- scale arm: full streaming at growing PE counts -------------------
    let pe_counts: &[usize] = if smoke {
        &[131_072]
    } else {
        &[131_072, 262_144, 524_288, 1_048_576]
    };
    let mut fig = Figure::new(
        "scale_obs",
        "stencil, 1 step, full streaming (Chrome+CSV sinks, rings at capacity 0)",
        &["pes", "events", "ev/sec", "wall_s", "streamed_MB", "peak_rss_MB", "rss_B/pe"],
    );
    let mut scale_points = Vec::new();
    for &pes in pe_counts {
        let p = spawn_point(pes, Mode::Stream, 1, 1);
        assert!(p.sink_records > 0, "sinks saw nothing at {pes} PEs");
        assert!(
            p.trace_dropped > 0,
            "capacity-0 rings must report shedding at {pes} PEs"
        );
        assert!(p.peak_rss_bytes > 0, "VmHWM unavailable");
        fig.row(vec![
            p.pes.to_string(),
            p.events.to_string(),
            format!("{:.0}", p.events_per_sec),
            format!("{:.2}", p.wall_s),
            format!("{:.1}", p.sink_bytes as f64 / 1e6),
            format!("{:.1}", p.peak_rss_bytes as f64 / 1e6),
            (p.peak_rss_bytes / p.pes as u64).to_string(),
        ]);
        scale_points.push(p);
    }
    // Bounded-memory check: the 128K point stays under a hard ceiling, and
    // RSS-per-PE must not *grow* with PE count (at-most-linear growth; the
    // event stream is ~13 records/PE/step, so an O(events) tracer would
    // blow this immediately).
    let first = &scale_points[0];
    assert!(
        first.peak_rss_bytes < SMOKE_RSS_CEILING,
        "128K-PE streaming run used {} bytes (ceiling {})",
        first.peak_rss_bytes,
        SMOKE_RSS_CEILING
    );
    let last = scale_points.last().unwrap();
    assert!(
        last.peak_rss_bytes < FULL_RSS_CEILING,
        "{}-PE streaming run used {} bytes (ceiling {})",
        last.pes,
        last.peak_rss_bytes,
        FULL_RSS_CEILING
    );
    let rpp_first = first.peak_rss_bytes as f64 / first.pes as f64;
    let rpp_last = last.peak_rss_bytes as f64 / last.pes as f64;
    assert!(
        rpp_last <= rpp_first * 1.5,
        "RSS/PE grew {rpp_first:.0} -> {rpp_last:.0} B: super-linear memory"
    );
    fig.note(format!(
        "RSS/PE {:.0} B at {}K PEs vs {:.0} B at {}K PEs: at-most-linear growth",
        rpp_first,
        first.pes / 1024,
        rpp_last,
        last.pes / 1024
    ));
    emit(&fig, smoke);

    // -- overhead arm: off vs summary_only vs stream ----------------------
    let (opes, osteps, ocpp) = if smoke { (1024, 2, 2) } else { (4096, 3, 2) };
    let modes: &[Mode] = if smoke {
        &[Mode::Off, Mode::Stream]
    } else {
        &[Mode::Off, Mode::Summary, Mode::Stream]
    };
    let mut ofig = Figure::new(
        "scale_overhead",
        "tracer overhead, stencil (Task-Bench style: same work, tracer arms)",
        &["arm", "events", "ev/sec", "wall_s", "slowdown"],
    );
    let mut overhead_points = Vec::new();
    let mut off_eps = 0.0f64;
    for &m in modes {
        let p = spawn_point(opes, m, osteps, ocpp);
        if m == Mode::Off {
            off_eps = p.events_per_sec;
        }
        let slow = if p.events_per_sec > 0.0 { off_eps / p.events_per_sec } else { 0.0 };
        ofig.row(vec![
            m.tag().to_string(),
            p.events.to_string(),
            format!("{:.0}", p.events_per_sec),
            format!("{:.3}", p.wall_s),
            format!("{slow:.2}x"),
        ]);
        overhead_points.push((p, slow));
    }
    // Identical virtual work in every arm.
    for (p, _) in &overhead_points {
        assert_eq!(p.events, overhead_points[0].0.events, "arms diverged");
        assert_eq!(p.entries, overhead_points[0].0.entries, "arms diverged");
    }
    emit(&ofig, smoke);

    if smoke {
        println!("  (smoke mode: BENCH_scale.json not rewritten)");
        println!("scale_bench smoke OK");
        return;
    }
    match write_json(&scale_points, &overhead_points) {
        Ok(p) => println!("  -> {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_scale.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Print a figure; only the full matrix overwrites the committed
/// `results/*.csv` (smoke runs a reduced matrix and must not clobber it).
fn emit(fig: &Figure, smoke: bool) {
    if smoke {
        print!("{}", fig.render());
    } else {
        fig.emit();
    }
}

/// Child mode: run one point in this process (so VmHWM belongs to it
/// alone) and print a single `RESULT key=value ...` line.
fn run_one(rest: &[String]) {
    assert_eq!(rest.len(), 4, "--one <pes> <mode> <steps> <chares_per_pe>");
    let pes: usize = rest[0].parse().expect("pes");
    let mode = Mode::parse(&rest[1]).expect("mode: off|summary_only|stream");
    let steps: u64 = rest[2].parse().expect("steps");
    let cpp: usize = rest[3].parse().expect("chares_per_pe");

    let mut cfg = StencilConfig::cloud_4k(presets::cloud(pes), cpp);
    cfg.steps = steps;
    let tmp = std::env::temp_dir();
    let jpath = tmp.join(format!("charm_scale_{}_{pes}.trace.json", std::process::id()));
    let cpath = tmp.join(format!("charm_scale_{}_{pes}.trace.csv", std::process::id()));
    match mode {
        Mode::Off => {}
        Mode::Summary => cfg.trace = Some(TraceConfig::summary_only()),
        Mode::Stream => {
            // Rings keep nothing; the sinks are the only consumers of the
            // full record stream. Fan-out cap 8 keeps the sparse comm
            // matrix at O(PE) even at 1M sources.
            cfg.trace = Some(TraceConfig {
                log_capacity: 0,
                comm_fanout_cap: 8,
                ..TraceConfig::default()
            });
            cfg.trace_sinks = vec![
                Box::new(ChromeStreamSink::create(&jpath).expect("chrome sink")),
                Box::new(CsvStreamSink::create(&cpath).expect("csv sink")),
            ];
        }
    }

    let (_run, mut rt) = stencil::run_with_runtime(cfg);
    let summary = rt.summary();
    let stats = rt.finish_trace();
    let sink_records: u64 = stats.iter().map(|s| s.records).sum();
    let sink_bytes: u64 = stats.iter().map(|s| s.bytes_written).sum();
    let _ = std::fs::remove_file(&jpath);
    let _ = std::fs::remove_file(&cpath);
    let rss = charm_machine::peak_rss_bytes().unwrap_or(0);

    println!(
        "RESULT pes={pes} mode={} steps={steps} events={} entries={} messages={} \
         wall_s={:.6} events_per_sec={:.1} trace_dropped={} sink_records={sink_records} \
         sink_bytes={sink_bytes} peak_rss_bytes={rss}",
        mode.tag(),
        summary.events,
        summary.entries,
        summary.messages,
        summary.wall_time_s,
        summary.events_per_sec,
        summary.trace_dropped,
    );
}

/// Run one point in a fresh subprocess and parse its RESULT line.
fn spawn_point(pes: usize, mode: Mode, steps: u64, cpp: usize) -> Point {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args([
            "--one",
            &pes.to_string(),
            mode.tag(),
            &steps.to_string(),
            &cpp.to_string(),
        ])
        .output()
        .expect("spawn scale point");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "point pes={pes} mode={} failed:\n{stdout}\n{}",
        mode.tag(),
        String::from_utf8_lossy(&out.stderr)
    );
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("RESULT "))
        .unwrap_or_else(|| panic!("no RESULT line from pes={pes}:\n{stdout}"));
    let mut kv = std::collections::HashMap::new();
    for tok in line.trim_start_matches("RESULT ").split_whitespace() {
        if let Some((k, v)) = tok.split_once('=') {
            kv.insert(k.to_string(), v.to_string());
        }
    }
    let get = |k: &str| -> &str { kv.get(k).map(String::as_str).unwrap_or("0") };
    Point {
        pes: get("pes").parse().unwrap(),
        mode: Mode::parse(get("mode")).unwrap(),
        steps: get("steps").parse().unwrap(),
        events: get("events").parse().unwrap(),
        entries: get("entries").parse().unwrap(),
        messages: get("messages").parse().unwrap(),
        wall_s: get("wall_s").parse().unwrap(),
        events_per_sec: get("events_per_sec").parse().unwrap(),
        trace_dropped: get("trace_dropped").parse().unwrap(),
        sink_records: get("sink_records").parse().unwrap(),
        sink_bytes: get("sink_bytes").parse().unwrap(),
        peak_rss_bytes: get("peak_rss_bytes").parse().unwrap(),
    }
}

fn write_json(scale: &[Point], overhead: &[(Point, f64)]) -> std::io::Result<std::path::PathBuf> {
    // CARGO_MANIFEST_DIR = crates/bench → ../../BENCH_scale.json
    let root = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::PathBuf::from(m).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    };
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let path = root.join("BENCH_scale.json");
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"scale\",");
    let _ = writeln!(j, "  \"mode\": \"full\",");
    let _ = writeln!(
        j,
        "  \"note\": \"streaming observability: stencil (cloud preset, 1 chare/PE, 1 step) with log_capacity 0 and Chrome+CSV file sinks — rings retain nothing, sinks see every record; peak RSS is the subprocess VmHWM; overhead arm compares tracer off vs summary_only vs full streaming on a fixed 4K-PE stencil\","
    );
    let _ = writeln!(j, "  \"host_cores\": {host_cores},");
    let _ = writeln!(j, "  \"scale\": [");
    for (i, p) in scale.iter().enumerate() {
        let comma = if i + 1 < scale.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"pes\": {},", p.pes);
        let _ = writeln!(j, "      \"steps\": {},", p.steps);
        let _ = writeln!(j, "      \"events\": {},", p.events);
        let _ = writeln!(j, "      \"entries\": {},", p.entries);
        let _ = writeln!(j, "      \"messages\": {},", p.messages);
        let _ = writeln!(j, "      \"wall_s\": {:.3},", p.wall_s);
        let _ = writeln!(j, "      \"events_per_sec\": {:.1},", p.events_per_sec);
        let _ = writeln!(j, "      \"ring_dropped\": {},", p.trace_dropped);
        let _ = writeln!(j, "      \"sink_records\": {},", p.sink_records);
        let _ = writeln!(j, "      \"sink_bytes\": {},", p.sink_bytes);
        let _ = writeln!(j, "      \"peak_rss_bytes\": {},", p.peak_rss_bytes);
        let _ = writeln!(j, "      \"rss_bytes_per_pe\": {}", p.peak_rss_bytes / p.pes as u64);
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"overhead\": [");
    for (i, (p, slow)) in overhead.iter().enumerate() {
        let comma = if i + 1 < overhead.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"arm\": \"{}\",", p.mode.tag());
        let _ = writeln!(j, "      \"pes\": {},", p.pes);
        let _ = writeln!(j, "      \"steps\": {},", p.steps);
        let _ = writeln!(j, "      \"events\": {},", p.events);
        let _ = writeln!(j, "      \"wall_s\": {:.3},", p.wall_s);
        let _ = writeln!(j, "      \"events_per_sec\": {:.1},", p.events_per_sec);
        let _ = writeln!(j, "      \"slowdown_vs_off\": {slow:.3}");
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&path, j)?;
    Ok(path)
}
