//! engine_bench — wall-clock throughput of the discrete-event engine.
//!
//! Every figure driver, the fault-injection campaign, race hunting, and
//! what-if re-simulation sit on the same hot loop: pop an event, dispatch
//! it, schedule its consequences. This binary measures that loop in
//! *wall-clock* terms (`events/sec`, `msgs/sec`) over a fixed workload
//! matrix and writes `BENCH_engine.json` at the repo root, so every future
//! PR has a perf trajectory to improve against.
//!
//! Workloads:
//! - `stencil2d`  — halo exchange + reduction per step (charm-apps stencil)
//! - `leanmd`     — 3-D cells + 6-D computes force loop (charm-apps leanmd)
//! - `pdes`       — PHOLD over YAWNS windows (charm-apps pdes)
//! - `tram_flood` — fine-grained item flood through the TRAM aggregator
//! - `ping_pipe`  — pure scheduler stressor: many chare pairs ping-ponging
//!   with zero declared work, so *only* engine overhead is on the clock
//!
//! Each workload runs several times with the same seed (three in full
//! mode, two in smoke and scaling modes); all final PUP state digests
//! must agree (the engine is deterministic — a perf change that breaks
//! this fails the bench), and the reported wall time is the fastest run
//! (less scheduler noise — the recording hosts are noisy 1-core VMs).
//!
//! `--smoke` runs a ~1 s budget version of the matrix (CI); it self-checks
//! but does not rewrite `BENCH_engine.json`.

use charm_apps::{leanmd, pdes, stencil};
use charm_core::{ArrayProxy, Chare, Ctx, Ix, Runtime, RunSummary};
use charm_machine::presets;
use charm_pup::{Pup, Puper};
use charm_tram::{Tram, TramBuf, TramConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// events/sec recorded on this workload matrix *before* the PR 4 hot-path
/// optimizations (SipHash maps, no dense-index store, per-event heap pops),
/// same machine presets and seeds. The committed `BENCH_engine.json` keeps
/// these numbers next to the current ones so the speedup is auditable.
/// Recorded on the seed of PR 4 (commit b816ac2), release build, same
/// matrix sizes as below.
const PRE_OPT_BASELINE: &[(&str, f64)] = &[
    ("ping_pipe", 3_731_083.0),
    ("tram_flood", 1_424_757.0),
    ("stencil2d", 688_692.0),
    ("leanmd", 2_484_746.0),
    ("pdes", 1_917_809.0),
];

fn baseline_for(name: &str) -> Option<f64> {
    PRE_OPT_BASELINE
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
}

// ---------------------------------------------------------------------------
// measurement plumbing
// ---------------------------------------------------------------------------

struct Measured {
    name: &'static str,
    events: u64,
    entries: u64,
    messages: u64,
    wall_s: f64,
    digest: u64,
    went_parallel: bool,
    barriers_waited: u64,
    barriers_elided: u64,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
    fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.wall_s
    }
}

/// Fold the per-chare state digests into one order-sensitive FNV-1a value.
fn fold_digest(pairs: &[(charm_core::ObjId, u64)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    };
    for (obj, d) in pairs {
        mix(obj.ix.stable_hash());
        mix(*d);
    }
    h
}

/// Run `build` + `run` `runs` times under the wall clock; check
/// determinism across every repetition and keep the fastest run. With
/// `threads > 1` the workload also runs once on the sequential engine and
/// the final state digests must agree — the parallel engine's
/// byte-identical contract, enforced on every bench run.
fn measure(
    name: &'static str,
    threads: usize,
    runs: usize,
    run_once: impl Fn(usize) -> (RunSummary, u64, bool),
) -> Measured {
    assert!(runs >= 2, "need >= 2 runs for the determinism check");
    let t0 = Instant::now();
    let (s1, d1, p1) = run_once(threads);
    let w1 = t0.elapsed().as_secs_f64();
    let mut wall = w1;
    for _ in 1..runs {
        let t = Instant::now();
        let (s, d, _) = run_once(threads);
        let w = t.elapsed().as_secs_f64();
        assert_eq!(
            d1, d,
            "{name}: same-seed final state digests diverged — engine nondeterminism"
        );
        assert_eq!(s1.events, s.events, "{name}: same-seed event counts diverged");
        wall = wall.min(w);
    }
    if threads > 1 {
        let (_, d_seq, _) = run_once(1);
        assert_eq!(
            d1, d_seq,
            "{name}: parallel ({threads} threads) digest diverged from sequential"
        );
    }
    Measured {
        name,
        events: s1.events,
        entries: s1.entries,
        messages: s1.messages,
        wall_s: wall.max(1e-9),
        digest: d1,
        went_parallel: p1,
        barriers_waited: s1.barriers_waited,
        barriers_elided: s1.barriers_elided,
    }
}

// ---------------------------------------------------------------------------
// ping_pipe — the pure scheduler stressor
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Ping {
    count: u64,
    limit: u64,
    peer: i64,
}

impl Pup for Ping {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.count, self.limit, self.peer);
    }
}

impl Chare for Ping {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        self.count += 1;
        if self.count < self.limit {
            let arr = ArrayProxy::<Ping>::from_id(ctx.my_id().array);
            ctx.send(arr, Ix::i1(self.peer), 0u8);
        }
    }
}

/// `pairs` chare pairs spread over `pes` PEs, each pair exchanging `limit`
/// zero-work messages per endpoint. Nothing but envelopes, queues, and the
/// event heap: the closest thing to a syscall benchmark the engine has.
fn run_ping_pipe(
    pes: usize,
    pairs: usize,
    limit: u64,
    threads: usize,
    gw: bool,
) -> (RunSummary, u64, bool) {
    let mut rt = Runtime::homogeneous(pes);
    rt.set_parallel_threads(threads);
    rt.set_global_window(gw);
    let arr = rt.create_array::<Ping>("ping");
    for k in 0..pairs {
        let a = (2 * k) as i64;
        let b = a + 1;
        rt.insert(arr, Ix::i1(a), Ping { count: 0, limit, peer: b }, Some((2 * k) % pes));
        rt.insert(arr, Ix::i1(b), Ping { count: 0, limit, peer: a }, Some((2 * k + 1) % pes));
    }
    for k in 0..pairs {
        rt.send(arr, Ix::i1((2 * k) as i64), 0u8);
    }
    let s = rt.run();
    let d = fold_digest(&rt.state_digest());
    (s, d, rt.last_run_parallel())
}

// ---------------------------------------------------------------------------
// tram_flood — fine-grained items through the aggregation layer
// ---------------------------------------------------------------------------

const SINKS_PER_PE: u64 = 4;

#[derive(Default)]
struct Sink {
    received: u64,
    checksum: u64,
}

impl Pup for Sink {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.received, self.checksum);
    }
}

#[derive(Default, Clone)]
struct Item(u64);
impl Pup for Item {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.0);
    }
}

impl Chare for Sink {
    type Msg = Item;
    fn on_message(&mut self, Item(v): Item, _ctx: &mut Ctx<'_>) {
        self.received += 1;
        self.checksum = self.checksum.wrapping_add(v.wrapping_mul(0x9E3779B9));
    }
}

#[derive(Default)]
struct Source {
    tram: Tram<Sink>,
    buf: TramBuf<Sink>,
    num_pes: u64,
    items: u64,
}

impl Pup for Source {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.tram, self.buf, self.num_pes, self.items);
    }
}

#[derive(Default, Clone)]
struct Spray;
impl Pup for Spray {
    fn pup(&mut self, _p: &mut Puper) {}
}

impl Chare for Source {
    type Msg = Spray;
    fn on_message(&mut self, _m: Spray, ctx: &mut Ctx<'_>) {
        for k in 0..self.items {
            let h = k
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((ctx.my_pe() as u64) << 32);
            let dst_pe = (h >> 17) % self.num_pes;
            let sink_ix = (dst_pe * SINKS_PER_PE + (h % SINKS_PER_PE)) as i64;
            let tram = self.tram;
            tram.send_via(ctx, &mut self.buf, dst_pe as usize, Ix::i1(sink_ix), Item(k));
        }
        let tram = self.tram;
        tram.flush_via(ctx, &mut self.buf);
    }
}

fn run_tram_flood(
    pes: usize,
    items_per_source: u64,
    threads: usize,
    gw: bool,
) -> (RunSummary, u64, bool) {
    let mut rt = Runtime::homogeneous(pes);
    rt.set_parallel_threads(threads);
    rt.set_global_window(gw);
    let sinks = rt.create_array::<Sink>("sinks");
    for pe in 0..pes {
        for s in 0..SINKS_PER_PE {
            rt.insert(
                sinks,
                Ix::i1((pe as u64 * SINKS_PER_PE + s) as i64),
                Sink::default(),
                Some(pe),
            );
        }
    }
    let tram = Tram::attach(&mut rt, "tram", sinks, TramConfig::default());
    let sources = rt.create_array::<Source>("sources");
    for pe in 0..pes {
        rt.insert(
            sources,
            Ix::i1(pe as i64),
            Source {
                tram,
                buf: TramBuf::default(),
                num_pes: pes as u64,
                items: items_per_source,
            },
            Some(pe),
        );
    }
    for pe in 0..pes {
        rt.send(sources, Ix::i1(pe as i64), Spray);
    }
    let s = rt.run();
    let d = fold_digest(&rt.state_digest());
    (s, d, rt.last_run_parallel())
}

// ---------------------------------------------------------------------------
// app workloads
// ---------------------------------------------------------------------------

fn run_stencil(
    pes: usize,
    chares_per_pe: usize,
    steps: u64,
    threads: usize,
    gw: bool,
) -> (RunSummary, u64, bool) {
    let mut cfg = stencil::StencilConfig::cloud_4k(presets::cloud(pes), chares_per_pe);
    cfg.steps = steps;
    cfg.threads = threads;
    cfg.global_window = gw;
    let (_run, mut rt) = stencil::run_with_runtime(cfg);
    let d = fold_digest(&rt.state_digest());
    let p = rt.last_run_parallel();
    (rt.summary(), d, p)
}

fn run_leanmd(steps: u64, threads: usize, gw: bool) -> (RunSummary, u64, bool) {
    let cfg = leanmd::LeanMdConfig {
        steps,
        threads,
        global_window: gw,
        ..Default::default()
    };
    let (_run, mut rt) = leanmd::run_with_runtime(cfg);
    let d = fold_digest(&rt.state_digest());
    let p = rt.last_run_parallel();
    (rt.summary(), d, p)
}

fn run_pdes(lps_per_pe: usize, windows: u64, threads: usize, gw: bool) -> (RunSummary, u64, bool) {
    let cfg = pdes::PdesConfig {
        lps_per_pe,
        windows,
        threads,
        global_window: gw,
        ..Default::default()
    };
    let (_run, mut rt) = pdes::run_with_runtime(cfg);
    let d = fold_digest(&rt.state_digest());
    let p = rt.last_run_parallel();
    (rt.summary(), d, p)
}

// ---------------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------------

/// One point of the multi-worker scaling matrix.
struct ScalePoint {
    threads: usize,
    events_per_sec: f64,
    speedup_vs_seq: f64,
    went_parallel: bool,
    /// Blocking waits per thousand events on the adaptive engine (parks of
    /// a starved shard; the sequential point records 0).
    barriers_per_kevent: f64,
    /// Same cadence on the global-window lockstep fallback: four barrier
    /// waits per shard per window. The adaptive engine's headline claim is
    /// this ratio.
    lockstep_barriers_per_kevent: f64,
    barriers_elided: u64,
}

struct Scaling {
    name: &'static str,
    points: Vec<ScalePoint>,
}

const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Measure the workloads at 1/2/4/8 worker threads. Digest equality vs
/// the sequential engine is asserted inside `measure` for every threaded
/// point, so a scaling number can never come from a wrong answer. The
/// second closure argument selects the global-window lockstep fallback;
/// each threaded point runs both engines so `barriers_per_kevent` carries
/// its own before/after comparison.
type WorkloadFn = Box<dyn Fn(usize, bool) -> (RunSummary, u64, bool)>;

fn scaling_matrix() -> Vec<Scaling> {
    let apps: Vec<(&'static str, WorkloadFn)> = vec![
        ("ping_pipe", Box::new(|t, gw| run_ping_pipe(8, 32, 2_000, t, gw))),
        ("tram_flood", Box::new(|t, gw| run_tram_flood(8, 6_000, t, gw))),
        ("stencil2d", Box::new(|t, gw| run_stencil(8, 4, 40, t, gw))),
        ("leanmd", Box::new(|t, gw| run_leanmd(20, t, gw))),
        ("pdes", Box::new(|t, gw| run_pdes(64, 16, t, gw))),
    ];
    println!("== parallel scaling (events/s at 1/2/4/8 worker threads)");
    println!(
        "  {:<12} {:>3} {:>14} {:>8} {:>10} {:>10} {:>10} {:>5}",
        "workload", "thr", "events/s", "speedup", "waits/kev", "lockstep", "elided", "par"
    );
    let mut out = Vec::new();
    for (name, run) in apps {
        let mut points: Vec<ScalePoint> = Vec::new();
        for t in SCALING_THREADS {
            let m = measure(name, t, 2, |t| run(t, false));
            let kev = m.events as f64 / 1_000.0;
            let lockstep_bpk = if t > 1 {
                let l = measure(name, t, 2, |t| run(t, true));
                assert_eq!(
                    m.digest, l.digest,
                    "{name} at {t} threads: lockstep fallback digest diverged from adaptive"
                );
                l.barriers_waited as f64 / kev
            } else {
                0.0
            };
            let seq_eps = points.first().map_or(m.events_per_sec(), |p| p.events_per_sec);
            let point = ScalePoint {
                threads: t,
                events_per_sec: m.events_per_sec(),
                speedup_vs_seq: m.events_per_sec() / seq_eps,
                went_parallel: m.went_parallel,
                barriers_per_kevent: m.barriers_waited as f64 / kev,
                lockstep_barriers_per_kevent: lockstep_bpk,
                barriers_elided: m.barriers_elided,
            };
            assert_eq!(
                m.went_parallel,
                t > 1,
                "{name} at {t} threads: unexpected engine selection"
            );
            println!(
                "  {:<12} {:>3} {:>14.0} {:>7.2}x {:>10.2} {:>10.2} {:>10} {:>5}",
                name,
                t,
                point.events_per_sec,
                point.speedup_vs_seq,
                point.barriers_per_kevent,
                point.lockstep_barriers_per_kevent,
                point.barriers_elided,
                if point.went_parallel { "yes" } else { "no" },
            );
            points.push(point);
        }
        out.push(Scaling { name, points });
    }
    out
}

fn write_json(results: &[Measured], scaling: &[Scaling]) -> std::io::Result<std::path::PathBuf> {
    // CARGO_MANIFEST_DIR = crates/bench → ../../BENCH_engine.json
    let root = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::PathBuf::from(m).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    };
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let path = root.join("BENCH_engine.json");
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"engine\",");
    let _ = writeln!(j, "  \"mode\": \"full\",");
    let _ = writeln!(
        j,
        "  \"note\": \"wall-clock engine throughput; baseline_events_per_sec was recorded on the same workload matrix before the PR 4 hot-path optimizations; parallel_scaling measures the sharded multi-worker engine (byte-identical results, digest-checked) and is bounded by host_cores\","
    );
    let _ = writeln!(j, "  \"host_cores\": {host_cores},");
    let _ = writeln!(j, "  \"workloads\": [");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let base = baseline_for(m.name);
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(j, "      \"events\": {},", m.events);
        let _ = writeln!(j, "      \"entries\": {},", m.entries);
        let _ = writeln!(j, "      \"messages\": {},", m.messages);
        let _ = writeln!(j, "      \"wall_s\": {:.6},", m.wall_s);
        let _ = writeln!(j, "      \"events_per_sec\": {:.1},", m.events_per_sec());
        let _ = writeln!(j, "      \"msgs_per_sec\": {:.1},", m.msgs_per_sec());
        match base {
            Some(b) => {
                let _ = writeln!(j, "      \"baseline_events_per_sec\": {:.1},", b);
                let _ = writeln!(j, "      \"speedup_vs_baseline\": {:.2},", m.events_per_sec() / b);
            }
            None => {
                let _ = writeln!(j, "      \"baseline_events_per_sec\": null,");
                let _ = writeln!(j, "      \"speedup_vs_baseline\": null,");
            }
        }
        let _ = writeln!(j, "      \"final_state_digest\": \"{:#018x}\"", m.digest);
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"parallel_scaling\": [");
    for (i, sc) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", sc.name);
        let _ = writeln!(j, "      \"points\": [");
        for (k, p) in sc.points.iter().enumerate() {
            let pc = if k + 1 < sc.points.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "        {{\"threads\": {}, \"events_per_sec\": {:.1}, \"speedup_vs_seq\": {:.3}, \"barriers_per_kevent\": {:.3}, \"lockstep_barriers_per_kevent\": {:.3}, \"barriers_elided\": {}, \"went_parallel\": {}}}{pc}",
                p.threads,
                p.events_per_sec,
                p.speedup_vs_seq,
                p.barriers_per_kevent,
                p.lockstep_barriers_per_kevent,
                p.barriers_elided,
                p.went_parallel
            );
        }
        let _ = writeln!(j, "      ]");
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&path, j)?;
    Ok(path)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(1);

    let results: Vec<Measured> = if smoke {
        vec![
            measure("ping_pipe", threads, 2, |t| run_ping_pipe(8, 8, 400, t, false)),
            measure("tram_flood", threads, 2, |t| run_tram_flood(8, 800, t, false)),
            measure("stencil2d", threads, 2, |t| run_stencil(8, 2, 4, t, false)),
            measure("leanmd", threads, 2, |t| run_leanmd(2, t, false)),
            measure("pdes", threads, 2, |t| run_pdes(32, 4, t, false)),
        ]
    } else {
        vec![
            measure("ping_pipe", threads, 3, |t| run_ping_pipe(8, 64, 10_000, t, false)),
            measure("tram_flood", threads, 3, |t| run_tram_flood(16, 30_000, t, false)),
            measure("stencil2d", threads, 3, |t| run_stencil(16, 8, 120, t, false)),
            measure("leanmd", threads, 3, |t| run_leanmd(60, t, false)),
            measure("pdes", threads, 3, |t| run_pdes(192, 40, t, false)),
        ]
    };

    println!(
        "== engine_bench ({}, {} thread{}) — wall-clock engine throughput",
        if smoke { "smoke" } else { "full" },
        threads,
        if threads == 1 { "" } else { "s" },
    );
    println!(
        "  {:<12} {:>12} {:>12} {:>9} {:>14} {:>14} {:>9} {:>5}",
        "workload", "events", "messages", "wall", "events/s", "msgs/s", "vs base", "par"
    );
    for m in &results {
        let speedup = baseline_for(m.name)
            .map(|b| format!("{:.2}x", m.events_per_sec() / b))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:<12} {:>12} {:>12} {:>9} {:>14.0} {:>14.0} {:>9} {:>5}",
            m.name,
            m.events,
            m.messages,
            charm_bench::fmt_s(m.wall_s),
            m.events_per_sec(),
            m.msgs_per_sec(),
            speedup,
            if m.went_parallel { "yes" } else { "no" },
        );
    }
    if threads > 1 {
        assert!(
            results.iter().any(|m| m.went_parallel),
            "--threads {threads}: no workload took the parallel path — eligibility regressed"
        );
        println!("  (digest equality vs sequential engine verified for every workload)");
    }

    if smoke {
        println!("  (smoke mode: BENCH_engine.json not rewritten)");
        return;
    }
    if threads > 1 {
        println!("  (--threads {threads}: BENCH_engine.json not rewritten; sequential fields stay canonical)");
        return;
    }

    // Multi-worker scaling matrix on the app workloads (smaller sizes than
    // the throughput matrix so the full bench stays tractable): events/s at
    // 1/2/4/8 workers plus speedup over the same-size sequential run, with
    // the byte-identical digest contract asserted at every point.
    let scaling = scaling_matrix();

    match write_json(&results, &scaling) {
        Ok(p) => println!("  -> {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_engine.json: {e}");
            std::process::exit(1);
        }
    }
}
