//! Fig. 17 — LeanMD in a heterogeneous cloud (Grid'5000-style: one node's
//! effective CPU at 0.7×): HeteroNoLB vs HeteroLB vs HomoLB vs ideal.
//!
//! Expected shape: heterogeneity without LB costs a constant factor at
//! every scale (the whole tightly-coupled app runs at the slow node's
//! pace); heterogeneity-aware LB brings performance close to the
//! homogeneous curve.

use charm_apps::leanmd::{run, LeanMdConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_machine::presets;

fn main() {
    let scale = Scale::from_env();
    let pe_list: Vec<usize> = scale.pick(vec![32, 64, 128], vec![32, 64, 128, 256]);
    let cores_per_node = 4;

    let mk = |pes: usize, slow: bool, lb: bool| {
        let mut machine = presets::cloud(pes);
        if slow {
            // One node (its `cores_per_node` PEs) at 0.7× — the paper's
            // Distem-injected heterogeneity.
            machine.speed = machine.speed.clone().slow_block(0, cores_per_node, 0.7);
        }
        LeanMdConfig {
            machine,
            cells_per_dim: scale.pick(8, 10),
            atoms_per_cell: 80,
            density_peak: 1.0, // intrinsic balance; heterogeneity is the test
            steps: 10,
            lb_every: if lb { 2 } else { 0 },
            strategy: lb.then(|| Box::new(charm_lb::GreedyLb) as _),
            ..LeanMdConfig::default()
        }
    };
    let tail = |r: &charm_apps::AppRun| {
        let d = r.step_durations();
        d[d.len() - 4..].iter().sum::<f64>() / 4.0
    };

    let mut fig = Figure::new(
        "fig17",
        "LeanMD time/step in a heterogeneous cloud (one node at 0.7x)",
        &["pes", "hetero_no_lb", "hetero_lb", "homo_lb", "hetero_lb/homo"],
    );
    for &p in &pe_list {
        let hetero_nolb = tail(&run(mk(p, true, false)));
        let hetero_lb = tail(&run(mk(p, true, true)));
        let homo_lb = tail(&run(mk(p, false, true)));
        fig.row(vec![
            p.to_string(),
            fmt_s(hetero_nolb),
            fmt_s(hetero_lb),
            fmt_s(homo_lb),
            format!("{:.2}x", hetero_lb / homo_lb),
        ]);
    }
    fig.note("paper: HeteroLB performance close to the homogeneous case at every PE count");
    fig.emit();
}
