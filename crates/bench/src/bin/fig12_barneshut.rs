//! Fig. 12 — Barnes-Hut strong scaling on Blue Waters: the full
//! configuration (over-decomposition + ORB LB) vs LB disabled (500m_LB
//! missing) vs one piece per PE (500m_NO).
//!
//! Expected shape: over-decomposition + LB scales best (paper: ~40 % better
//! than one-object-per-PE); disabling LB or over-decomposition each costs a
//! growing penalty at scale.

use charm_apps::barneshut::{run, BarnesHutConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_machine::presets;

fn main() {
    let scale = Scale::from_env();
    // PE counts are powers of 8 fractions so the no-overdecomp variant can
    // put exactly one piece per PE.
    let pe_list: Vec<usize> = scale.pick(vec![64, 512], vec![512, 4096]);
    let full_depth = scale.pick(4u8, 5); // 8^4 = 4096 pieces at demo scale
    let total_particles = scale.pick(120_000u64, 4_000_000);

    let tail = |r: &charm_apps::AppRun| {
        let d = r.step_durations();
        d[d.len() - 3..].iter().sum::<f64>() / 3.0
    };

    let mut fig = Figure::new(
        "fig12",
        "Barnes-Hut time/step: overdecomp+ORB (500m) vs no LB (500m_LB-off) vs 1 piece/PE (500m_NO)",
        &["pes", "full", "no_lb", "no_overdecomp"],
    );
    for &p in &pe_list {
        let pieces_full = 8usize.pow(full_depth as u32);
        let ppp_full = (total_particles as usize / pieces_full).max(1);
        let mk = |depth: u8, lb: bool| {
            let pieces = 8usize.pow(depth as u32);
            BarnesHutConfig {
                machine: presets::xe6(p),
                depth,
                particles_per_piece: (total_particles as usize / pieces).max(1),
                clustering: 8.0,
                steps: 8,
                lb_every: if lb { 3 } else { 0 },
                strategy: lb.then(|| Box::new(charm_lb::OrbLb) as _),
                ..BarnesHutConfig::default()
            }
        };
        let _ = ppp_full;
        // no-overdecomp depth: 8^d == p
        let no_depth = (p as f64).log(8.0).round() as u8;
        let full = tail(&run(mk(full_depth, true)));
        let no_lb = tail(&run(mk(full_depth, false)));
        let no_od = tail(&run(mk(no_depth, true)));
        fig.row(vec![
            p.to_string(),
            fmt_s(full),
            fmt_s(no_lb),
            fmt_s(no_od),
        ]);
    }
    fig.note("paper: full config ~40% faster than one piece per PE; LB matters under clustering");
    fig.emit();
}
