//! Run every figure-regeneration binary in sequence (each also writes its
//! CSV under `results/`). Set `CHARM_FIG_SCALE=full` for larger PE counts.

use std::process::Command;

fn main() {
    let figs = [
        "fig04_dvfs",
        "fig05_shrink_expand",
        "fig06_control_points",
        "fig07_interop_sort",
        "fig08_amr",
        "fig09_leanmd_scale",
        "fig10_leanmd_ckpt",
        "fig11_namd",
        "fig12_barneshut",
        "fig13_changa",
        "fig14_lulesh",
        "fig15_pdes",
        "fig16_cloud_stencil",
        "fig17_cloud_leanmd",
    ];
    let exe_dir = std::env::current_exe()
        .expect("self path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for f in figs {
        eprintln!("--- running {f} ---");
        let status = Command::new(exe_dir.join(f)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("!!! {f} failed: {other:?}");
                failed.push(f);
            }
        }
    }
    if failed.is_empty() {
        eprintln!("all figures regenerated; CSVs in results/");
    } else {
        eprintln!("failed figures: {failed:?}");
        std::process::exit(1);
    }
}
