//! Fig. 4 — temperature-aware DVFS: execution time + max core temperature
//! for Base / Naive_DVFS / LB_10s / LB_5s / MetaTemp (CRAC at 74 °F,
//! threshold 50 °C).
//!
//! Expected shape (paper): Base is fastest but runs hot (≈74 °C); all DVFS
//! schemes restrain temperature to the threshold band; Naive_DVFS pays the
//! largest timing penalty because the throttled chips create load imbalance
//! nobody fixes; LB_10s/LB_5s reduce the penalty; MetaTemp reduces it the
//! most for the least balancing effort.

use charm_apps::stencil::{run_thermal, StencilConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_core::{DvfsScheme, SimTime};
use charm_machine::presets;
use charm_machine::thermal::ThermalConfig;

fn config(scheme: DvfsScheme, with_lb: bool, scale: Scale) -> StencilConfig {
    let pes = scale.pick(16, 64);
    let mut machine = presets::thermal_testbed(pes);
    // Demo scale uses 10×-faster thermal dynamics (same steady states).
    machine.thermal = Some(scale.pick(ThermalConfig::fig4_fast(), ThermalConfig::fig4()));
    StencilConfig {
        machine,
        grid: 2048,
        blocks_per_side: 16,
        steps: scale.pick(300, 600),
        flops_per_point: 300.0,
        strategy: with_lb.then(|| Box::new(charm_lb::RefineLb::default()) as _),
        lb_period: None, // LB is driven by the DVFS scheme itself
        dvfs: scheme,
        dvfs_period: SimTime::from_millis(scale.pick(200, 1000)),
        auto_ckpt: None,
        failures: Vec::new(),
        preemptions: Vec::new(),
        elastic: None,
        seed: 42,
        record: None,
        perturb: None,
        trace: None,
        trace_sinks: Vec::new(),
        threads: 1,
        classic_hotpath: false,
        global_window: false,
    }
}

fn main() {
    let scale = Scale::from_env();
    let lb_fast = SimTime::from_millis(scale.pick(1000, 5000));
    let lb_slow = SimTime::from_millis(scale.pick(2000, 10000));
    let schemes: Vec<(&str, DvfsScheme, bool)> = vec![
        ("Base", DvfsScheme::Base, false),
        ("Naive_DVFS", DvfsScheme::Naive, false),
        ("LB_10s", DvfsScheme::WithLb { period: lb_slow }, true),
        ("LB_5s", DvfsScheme::WithLb { period: lb_fast }, true),
        (
            "MetaTemp",
            DvfsScheme::MetaTemp {
                min_imbalance: 1.08,
            },
            true,
        ),
    ];

    let mut fig = Figure::new(
        "fig04",
        "DVFS & temperature control (Stencil2D on the thermal testbed)",
        &["scheme", "exec_time", "max_temp_C", "penalty_vs_base", "lb_rounds"],
    );
    let mut base_time = None;
    for (name, scheme, with_lb) in schemes {
        let (run, max_temp) = run_thermal(config(scheme, with_lb, scale));
        let t = run.total_s;
        if base_time.is_none() {
            base_time = Some(t);
        }
        fig.row(vec![
            name.to_string(),
            fmt_s(t),
            format!("{max_temp:.1}"),
            format!("{:.2}x", t / base_time.expect("set")),
            run.lb_rounds.to_string(),
        ]);
    }
    fig.note("paper: Base ~74C hot/fastest; DVFS schemes cap ~50-55C;");
    fig.note("Naive pays the largest penalty; LB_10s < LB_5s overheads; MetaTemp best.");
    fig.emit();
}
