//! Fig. 8 — AMR3D on BG/Q: (left) strong-scaling time per step with and
//! without DistributedLB; (right) in-memory checkpoint and restart times.
//!
//! Expected shape (paper, 8K→128K PEs): DistributedLB buys ~40 % at the
//! largest scale (refined blocks cluster on their parents' PEs without it);
//! checkpoint time *falls* with PE count (per-PE volume shrinks); restart
//! time also falls with scale here but flattens as barrier costs grow.

use charm_apps::amr3d::{run_with_runtime, AmrConfig};
use charm_bench::{fmt_s, Figure, Scale};
use charm_machine::presets;

fn cfg(pes: usize, lb: bool, ckpt: Option<u64>, scale: Scale) -> AmrConfig {
    AmrConfig {
        machine: presets::bgq(pes),
        min_depth: scale.pick(3, 4),
        max_depth: scale.pick(5, 7),
        block_side: scale.pick(16, 12),
        steps: scale.pick(16, 28),
        regrid_every: 3,
        // Stationary feature: the refined band is a persistent hotspot
        // whose children pile onto their parents' PEs without LB.
        front_start: 0.3,
        front_speed: 0.0,
        lb_after_regrid: lb,
        strategy: lb.then(|| Box::new(charm_lb::DistributedLb::default()) as _),
        ckpt_at: ckpt,
        seed: 42,
    }
}

fn main() {
    let scale = Scale::from_env();
    let pe_list: Vec<usize> = scale.pick(vec![16, 32, 64, 128], vec![512, 2048, 8192]);

    // ---- left: strong scaling, NoLB vs DistributedLB ----------------------
    let mut left = Figure::new(
        "fig08_left",
        "AMR3D strong scaling (time/step): NoLB vs DistributedLB vs ideal",
        &["pes", "no_lb", "distributed_lb", "lb_gain", "ideal"],
    );
    let mut first: Option<f64> = None;
    for &p in &pe_list {
        let (no, nb_no, _) = run_with_runtime(cfg(p, false, None, scale));
        let (lb, nb_lb, _) = run_with_runtime(cfg(p, true, None, scale));
        let _ = (nb_no, nb_lb);
        // Steady tail: median of the last 5 steps — robust to the regrid
        // step's decide/share/QD spike.
        let tail = |r: &charm_apps::AppRun| {
            let d = r.step_durations();
            let mut last: Vec<f64> = d[d.len().saturating_sub(5)..].to_vec();
            last.sort_by(f64::total_cmp);
            last[last.len() / 2]
        };
        let t_no = tail(&no);
        let t_lb = tail(&lb);
        let ideal = *first.get_or_insert(t_lb) * pe_list[0] as f64 / p as f64;
        left.row(vec![
            p.to_string(),
            fmt_s(t_no),
            fmt_s(t_lb),
            format!("{:.0}%", 100.0 * (t_no - t_lb) / t_no),
            fmt_s(ideal),
        ]);
    }
    left.note("paper: DistributedLB gains ~40% at 128K PEs; 46% parallel efficiency with LB");
    left.emit();

    // ---- right: checkpoint / restart times --------------------------------
    let mut right = Figure::new(
        "fig08_right",
        "AMR3D double in-memory checkpoint and restart times",
        &["pes", "checkpoint", "restart"],
    );
    for &p in &pe_list {
        let mut c = cfg(p, false, Some(4), scale);
        // Inject a failure after the checkpoint to measure restart.
        let probe = run_with_runtime(cfg(p, false, Some(4), scale));
        let ckpt_t = probe.2.metric("ckpt_time_s").first().map(|&(t, _)| t);
        let end_t = probe
            .2
            .metric("amr_step")
            .last()
            .map(|&(t, _)| t)
            .unwrap_or(0.0);
        let fail_t = ckpt_t.map(|c| (c + end_t) / 2.0).unwrap_or(end_t * 0.7);
        c.machine.failures.push(
            charm_core::SimTime::from_secs_f64(fail_t),
            p / 3,
        );
        let (_, _, rt) = run_with_runtime(c);
        let ck = rt
            .metric("ckpt_time_s")
            .first()
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN);
        let rs = rt
            .metric("restart_time_s")
            .first()
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN);
        right.row(vec![p.to_string(), fmt_s(ck), fmt_s(rs)]);
    }
    right.note("paper: checkpoint 394ms@2K → 29ms@32K; restart 2.24s@2K → 470ms@32K");
    right.note("(falling with P because per-PE state shrinks; barriers add a floor)");
    right.emit();
}
