//! What-if driver (BigSim-lite): record LeanMD once on the BG/Q preset,
//! replay its computation/communication DAG on the other machine presets,
//! and compare each prediction against an *actual* run on that machine.

use charm_bench::{fmt_s, Figure};
use charm_core::ReplayConfig;
use charm_machine::{presets, MachineConfig, SimTime};
use charm_replay::{whatif, ReplayLog};

fn record_on(machine: MachineConfig) -> ReplayLog {
    let (_run, mut rt) = charm_apps::leanmd::run_with_runtime(charm_apps::leanmd::LeanMdConfig {
        machine,
        steps: 6,
        record: Some(ReplayConfig::default()),
        ..Default::default()
    });
    let mut log = rt.take_replay_log().expect("recording was on");
    log.app = "leanmd".into();
    log
}

fn main() {
    let pes = 32;
    let log = record_on(presets::bgq(pes));
    let recorded_s = SimTime(log.end_ns).as_secs_f64();

    let mut fig = Figure::new(
        "whatif",
        "What-if machine re-simulation of one LeanMD recording (BG/Q, 32 PEs)",
        &["what-if machine", "predicted", "actual", "error", "predicted util"],
    );
    fig.note(format!(
        "recording: {} entries on {}, makespan {}",
        log.execs.len(),
        log.machine,
        fmt_s(recorded_s)
    ));

    let mut worst = 0.0f64;
    for target in [presets::bgq(pes), presets::cloud(pes), presets::stampede(pes), presets::xe6(pes)] {
        let rep = whatif(&log, &target);
        let actual = SimTime(record_on(target).end_ns).as_secs_f64();
        let err = rep.error_vs(actual);
        worst = worst.max(err);
        fig.row(vec![
            rep.machine.clone(),
            fmt_s(rep.predicted_makespan_s),
            fmt_s(actual),
            format!("{:.1}%", err * 100.0),
            format!("{:.1}%", rep.utilization * 100.0),
        ]);
    }

    fig.note("predictions replay the recorded DAG through charm_machine::simulate_dag; no application logic re-runs");
    fig.emit();
    let _ = fig.save_csv();

    if worst > 0.10 {
        eprintln!("FAIL: worst prediction error {:.1}% exceeds 10%", worst * 100.0);
        std::process::exit(1);
    }
}
