//! Fig. 6 — the introspective control system tunes the number of pipeline
//! messages in a ping benchmark: step time converges onto the best fixed
//! configuration as the tuner explores.

use charm_apps::pingpipe::{run, sweep, PingConfig};
use charm_bench::{fmt_s, Figure};

fn main() {
    // Ground truth: fixed-depth sweep.
    let payload = 256 * 1024;
    let truth = sweep(payload, &[1, 2, 4, 8, 12, 16, 24, 32, 48, 64]);
    let mut sweep_fig = Figure::new(
        "fig06_sweep",
        "fixed pipeline depth sweep (ground truth for the tuner)",
        &["pipeline_msgs", "step_time"],
    );
    let best = truth
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    for &(k, t) in &truth {
        sweep_fig.row(vec![k.to_string(), fmt_s(t)]);
    }
    sweep_fig.note(format!("best fixed: k={} at {}", best.0, fmt_s(best.1)));
    sweep_fig.emit();

    // The tuned run (Fig. 6 proper): per-step time + chosen depth.
    let tuned = run(PingConfig {
        payload,
        steps: 60,
        initial: 1,
        ..PingConfig::default()
    });
    let mut fig = Figure::new(
        "fig06",
        "introspective tuning of pipeline depth (ping benchmark)",
        &["step", "time_per_step", "pipeline_msgs"],
    );
    for (i, (&t, &k)) in tuned
        .step_times
        .iter()
        .zip(tuned.pipeline.iter())
        .enumerate()
    {
        fig.row(vec![i.to_string(), fmt_s(t), format!("{k:.0}")]);
    }
    let converged = tuned.tail_mean(10);
    fig.note(format!(
        "converged: {} at depth {} vs best fixed {} at k={} ({:.0}% of optimal)",
        fmt_s(converged),
        tuned.final_depth(),
        fmt_s(best.1),
        best.0,
        100.0 * best.1 / converged.max(1e-12)
    ));
    fig.note("paper: control system finds the optimum and stabilizes performance");
    fig.emit();
}
