//! service_bench — the charm-kv serving workload under live traffic:
//! SLO-grade latency (p50/p99/p999) swept over offered load × LB × elastic.
//!
//! Unlike the iterative-app benches (makespan of a fixed work DAG), this
//! one measures a *service*: open-loop Poisson arrivals with a Zipf key
//! distribution whose hot region drifts across the shard space, so the
//! load imbalance the balancer fixed a moment ago keeps reappearing
//! somewhere else. Per-request end-to-end latency (virtual arrival →
//! acknowledgment, so scheduling lag counts — no coordinated omission)
//! lands in a log-bucket histogram per client; the merged histogram yields
//! the arm's SLO percentiles.
//!
//! The sweep: three offered loads × LB off/on (periodic greedy rounds
//! chasing the hotspot) × elastic controller off/on. At sub-second
//! service horizons the right elastic action is *none* — the 2 s/6.5 s
//! reconfigure blackouts dwarf any capacity saving — so the elastic-on
//! arms run the controller observe-only and assert observation is free,
//! while a `mis_scaling_demo` arm shows an acting autoscaler mistaking
//! imbalance for idleness and shrinking into the hotspot. The headline
//! claim, asserted before `BENCH_service.json` is written: **at the
//! saturating load, LB-on beats LB-off on p99** — measurement-based
//! migration is what keeps a skewed service inside its SLO. A TRAM pair
//! at mid load additionally records the message-aggregation trade
//! (batched payloads vs added mesh-routing hops).
//!
//! Every arm runs twice with the same seed; final store and PUP state
//! digests must agree. `--smoke` runs a reduced matrix and does not
//! rewrite `BENCH_service.json`.

use charm_apps::kv::{self, KvConfig, KvRun};
use charm_apps::strategy_by_name;
use charm_core::{ElasticConfig, HysteresisPolicy, Runtime, SimTime};
use charm_machine::presets;
use charm_tram::TramConfig;
use std::fmt::Write as _;

const PES: usize = 8;

/// Offered-load fractions of aggregate service capacity. The top one
/// saturates the hot PEs without LB (the region concentrates ~40% of
/// traffic on 2 of 8 PEs under blocked placement).
const LOADS_FULL: [f64; 3] = [0.45, 0.65, 0.85];
const LOADS_SMOKE: [f64; 1] = [0.75];

struct Arm {
    load: f64,
    lb: bool,
    elastic: bool,
    tram: bool,
    run: KvRun,
    pe_seconds: f64,
}

fn config(load: f64, lb: bool, elastic: bool, tram: bool, requests: u64) -> KvConfig {
    let mut c = KvConfig::service(presets::cloud(PES), requests);
    c.offered_load = load;
    c.zipf_s = 1.2;
    c.seed = 7;
    if lb {
        c.strategy = strategy_by_name("greedy");
        c.lb_period = Some(SimTime::from_millis(10));
    }
    if elastic {
        // Controller in the loop, observing every 25 ms but never acting:
        // at sub-second service horizons the 2 s/6.5 s reconfigure
        // blackouts dwarf any capacity saving, and ramp-up/drain windows
        // read as idleness to any shrink threshold, so the only correct
        // elastic policy is to hold — asserted below as "observation is
        // free". `mis_scaling_demo` records what an acting policy costs.
        c.elastic = Some(ElasticConfig::observe_only(SimTime::from_millis(25)));
    }
    if tram {
        c.tram = Some(TramConfig {
            ndims: 2,
            flush_threshold: 8,
            flush_interval: Some(SimTime::from_micros(200)),
        });
    }
    c
}

/// PE-seconds rented over the run (integral of the alive-capacity journal;
/// flat when the elastic controller is off).
fn pe_seconds(rt: &Runtime, duration_s: f64) -> f64 {
    let mut level = PES as f64;
    let mut t = 0.0;
    let mut acc = 0.0;
    for &(ts, v) in rt.metric("capacity") {
        let ts = ts.min(duration_s);
        acc += level * (ts - t).max(0.0);
        t = ts;
        level = v;
    }
    acc + level * (duration_s - t).max(0.0)
}

fn run_arm(load: f64, lb: bool, elastic: bool, tram: bool, requests: u64) -> Arm {
    let (run, rt) = kv::run_with_runtime(config(load, lb, elastic, tram, requests));
    let (run2, _) = kv::run_with_runtime(config(load, lb, elastic, tram, requests));
    assert_eq!(
        (run.store_digest, run.state_digest),
        (run2.store_digest, run2.state_digest),
        "same-seed service runs diverged (load={load} lb={lb} elastic={elastic} tram={tram})"
    );
    assert!(
        run.unrecoverable.is_none(),
        "arm failed unrecoverably (load={load} lb={lb} elastic={elastic})"
    );
    let expected = {
        let c = config(load, lb, elastic, tram, requests);
        c.clients as u64 * requests
    };
    assert_eq!(run.acked, expected, "traffic not fully served");
    assert!(
        run.p50_s <= run.p99_s && run.p99_s <= run.p999_s,
        "percentiles out of order"
    );
    kv::verify_acked_puts(&rt).expect("acked-PUT invariant");
    let pe_s = pe_seconds(&rt, run.duration_s);
    Arm {
        load,
        lb,
        elastic,
        tram,
        pe_seconds: pe_s,
        run,
    }
}

fn print_arm(a: &Arm) {
    println!(
        "  load {:.2} lb {:<3} elastic {:<3} tram {:<3} | p50 {:>8.1}us p99 {:>9.1}us p999 {:>9.1}us | {:>7.0} rps | retries {:>3} | lb {:>2}/{:>4} | reconf {} | {:>7.3} PE-s",
        a.load,
        if a.lb { "on" } else { "off" },
        if a.elastic { "on" } else { "off" },
        if a.tram { "on" } else { "off" },
        a.run.p50_s * 1e6,
        a.run.p99_s * 1e6,
        a.run.p999_s * 1e6,
        a.run.throughput_rps,
        a.run.retries,
        a.run.lb_rounds,
        a.run.migrations,
        a.run.reconfigures,
        a.pe_seconds,
    );
}

fn arm_json(a: &Arm) -> String {
    format!(
        "{{\"offered_load\": {:.2}, \"lb\": {}, \"elastic\": {}, \"tram\": {}, \"offered_rps\": {:.1}, \"throughput_rps\": {:.1}, \"acked\": {}, \"retries\": {}, \"p50_s\": {:.9}, \"p99_s\": {:.9}, \"p999_s\": {:.9}, \"mean_latency_s\": {:.9}, \"duration_s\": {:.6}, \"lb_rounds\": {}, \"migrations\": {}, \"reconfigures\": {}, \"pe_seconds\": {:.6}, \"avg_utilization\": {:.4}, \"messages\": {}}}",
        a.load,
        a.lb,
        a.elastic,
        a.tram,
        a.run.offered_rps,
        a.run.throughput_rps,
        a.run.acked,
        a.run.retries,
        a.run.p50_s,
        a.run.p99_s,
        a.run.p999_s,
        a.run.mean_latency_s,
        a.run.duration_s,
        a.run.lb_rounds,
        a.run.migrations,
        a.run.reconfigures,
        a.pe_seconds,
        a.run.avg_utilization,
        a.run.messages,
    )
}

fn write_json(arms: &[Arm], demo: &Arm) -> std::io::Result<std::path::PathBuf> {
    let root = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::PathBuf::from(m).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    };
    let path = root.join("BENCH_service.json");
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"service\",");
    let _ = writeln!(j, "  \"mode\": \"full\",");
    let _ = writeln!(
        j,
        "  \"note\": \"charm-kv on presets::cloud({PES}): open-loop Poisson arrivals, Zipf s=1.2 keys, hot region 2 PEs wide drifting every 20ms over blocked shard placement; latency is virtual arrival->ack per request (no coordinated omission); lb = periodic greedy rounds every 10ms; elastic = observe-only controller in the loop (asserted free; see mis_scaling_demo for an acting one); pe_seconds is the rented-capacity integral\",");
    let _ = writeln!(j, "  \"machine\": {{\"pes\": {PES}, \"preset\": \"cloud\"}},");
    let _ = writeln!(j, "  \"arms\": [");
    for (i, a) in arms.iter().enumerate() {
        let comma = if i + 1 < arms.len() { "," } else { "" };
        let _ = writeln!(j, "    {}{comma}", arm_json(a));
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"mis_scaling_demo\": {{");
    let _ = writeln!(
        j,
        "    \"note\": \"the mid-load lb-off arm re-run under a trigger-happy autoscaler (shrink threshold above the imbalance-induced idle level, cooldown shorter than the reconfigure blackout): it mistakes imbalance for idleness, shrinks into the hotspot, and lands strictly worse than the static arm on p99 and on PE-seconds — balance first, then autoscale\",");
    let _ = writeln!(j, "    \"thrash\": {}", arm_json(demo));
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    std::fs::write(&path, j)?;
    Ok(path)
}

/// The cautionary arm: the same unbalanced mid-load service under a
/// trigger-happy autoscaler (shrink threshold above the imbalance-induced
/// idle level, cooldown shorter than the reconfigure blackout). It
/// mistakes imbalance for idleness, shrinks into the hotspot, and pays
/// twice — strictly worse than the static baseline on p99 *and* on
/// rented PE-seconds.
fn mis_scaling_demo(baseline: &Arm, requests: u64) -> Arm {
    let load = baseline.load;
    let mut cfg = config(load, false, false, false, requests);
    cfg.elastic = Some(ElasticConfig::new(
        SimTime::from_millis(25),
        Box::new(HysteresisPolicy::new(
            0.85,
            0.45,
            2,
            SimTime::from_millis(200),
            PES / 2,
            PES,
        )),
    ));
    let (run, rt) = kv::run_with_runtime(cfg);
    kv::verify_acked_puts(&rt).expect("acked-PUT invariant (aggressive arm)");
    let pe_s = pe_seconds(&rt, run.duration_s);
    let thrash = Arm {
        load,
        lb: false,
        elastic: true,
        tram: false,
        pe_seconds: pe_s,
        run,
    };
    assert!(
        thrash.run.reconfigures > 0,
        "aggressive controller never acted — demo is vacuous"
    );
    assert!(
        thrash.run.p99_s > baseline.run.p99_s && thrash.pe_seconds > baseline.pe_seconds,
        "mis-scaling must be strictly worse on both axes: p99 {:.6}s vs {:.6}s, PE-s {:.3} vs {:.3}",
        thrash.run.p99_s,
        baseline.run.p99_s,
        thrash.pe_seconds,
        baseline.pe_seconds
    );
    thrash
}

/// The headline SLO claim, asserted at every load where the hot region
/// overcommits its home PEs: LB-on must beat LB-off on p99.
fn assert_lb_beats_nolb(arms: &[Arm], load: f64) {
    let find = |lb: bool| {
        arms.iter()
            .find(|a| a.load == load && a.lb == lb && !a.elastic && !a.tram)
            .expect("sweep arm present")
    };
    let (off, on) = (find(false), find(true));
    assert!(on.run.lb_rounds > 0 && on.run.migrations > 0, "LB never acted");
    assert!(
        on.run.p99_s < off.run.p99_s,
        "LB-on must beat LB-off on p99 at load {load}: on={:.6}s off={:.6}s",
        on.run.p99_s,
        off.run.p99_s
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (loads, requests): (&[f64], u64) = if smoke {
        (&LOADS_SMOKE, 120)
    } else {
        (&LOADS_FULL, 400)
    };

    let mut arms = Vec::new();
    println!("== charm-kv service sweep (cloud/{PES} PEs, {requests} req/client)");
    for &load in loads {
        for lb in [false, true] {
            for elastic in [false, true] {
                let a = run_arm(load, lb, elastic, false, requests);
                print_arm(&a);
                arms.push(a);
            }
        }
    }
    // TRAM pair: aggregation at the middle load with LB on.
    let tram_load = loads[loads.len() / 2];
    for tram in [false, true] {
        let a = run_arm(tram_load, true, false, tram, requests);
        if tram {
            print_arm(&a);
            arms.push(a);
        }
    }

    // Observation is free: the observe-only controller must not perturb
    // the virtual timeline at all.
    for &load in loads {
        for lb in [false, true] {
            let find = |elastic: bool| {
                arms.iter()
                    .find(|a| a.load == load && a.lb == lb && a.elastic == elastic && !a.tram)
                    .expect("sweep arm present")
            };
            let (st, ob) = (find(false), find(true));
            assert_eq!(ob.run.reconfigures, 0, "observe-only controller acted");
            assert!(
                (st.run.duration_s - ob.run.duration_s).abs() < 1e-12
                    && st.run.latency.counts() == ob.run.latency.counts(),
                "observe-only controller changed the service (load {load} lb {lb})"
            );
        }
    }

    // The saturating load is where the SLO story lives.
    let top = loads[loads.len() - 1];
    assert_lb_beats_nolb(&arms, top);

    println!("-- mis-scaling demo (load {tram_load:.2}, lb off)");
    let baseline = arms
        .iter()
        .find(|a| a.load == tram_load && !a.lb && !a.elastic && !a.tram)
        .expect("baseline arm present");
    let demo = mis_scaling_demo(baseline, requests);
    print_arm(&demo);

    if smoke {
        println!("  (smoke mode: BENCH_service.json not rewritten)");
        return;
    }
    match write_json(&arms, &demo) {
        Ok(p) => println!("  -> {}", p.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_service.json: {e}");
            std::process::exit(1);
        }
    }
}
