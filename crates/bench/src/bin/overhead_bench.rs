//! overhead_bench — Task-Bench-style METG measurement of per-task runtime
//! overhead, per instrumentation configuration.
//!
//! "Quantifying Overheads in Charm++ and HPX using Task Bench" measures a
//! runtime's *minimum effective task granularity* (METG): the smallest task
//! at which the runtime still achieves a target efficiency (50% in the
//! paper). For an overhead-additive runtime the METG(50%) is exactly the
//! runtime's own per-task overhead — efficiency hits 50% when the real work
//! per task equals the overhead per task. This engine simulates task *work*
//! (declared nanoseconds advance virtual time, not the host clock), so the
//! per-task host overhead is directly observable: run a zero-work message
//! storm and divide wall time by tasks executed. That number **is** the
//! METG curve point, and we sweep it along the axis that actually moves it
//! here — task *density* (tasks per PE per virtual timestep), which sets
//! event-queue bucket depth and batch-amortization behavior.
//!
//! Each instrumentation configuration (tracing off / summary-only /
//! streaming sink / replay recording) is swept separately, so the cost of
//! observability is a recorded per-configuration curve instead of folklore.
//!
//! Writes `BENCH_overhead.json` at the repo root. `--smoke` runs a ~1 s
//! subset and self-checks without rewriting the JSON.
//!
//! Caveat (recorded in the JSON): CI hosts for this repo are typically
//! 1-core VMs with significant steal-time noise; absolute ns/task moves
//! ±30% between runs. Each point keeps the faster of two same-seed runs
//! (digest-checked), the same discipline as `engine_bench`.

use charm_core::{ArrayProxy, Chare, Ctx, Ix, MachineConfig, ReplayConfig, Runtime};
use charm_core::{CountingSink, TraceConfig};
use charm_pup::{Pup, Puper};
use std::fmt::Write as _;
use std::time::Instant;

const PES: usize = 8;

/// A zero-work relay: every delivery immediately forwards one hop to the
/// next chare (one PE over), until the hop budget is spent. Nothing but
/// envelopes, routing, queues, and instrumentation on the clock.
#[derive(Default)]
struct Relay {
    ring: i64,
    hops_left: u64,
    fired: u64,
}

impl Pup for Relay {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.ring, self.hops_left, self.fired);
    }
}

impl Chare for Relay {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        self.fired += 1;
        if self.hops_left > 0 {
            self.hops_left -= 1;
            let me = match ctx.my_index() {
                Ix::I1(i) => i,
                other => panic!("unexpected index {other:?}"),
            };
            let arr = ArrayProxy::<Relay>::from_id(ctx.my_id().array);
            ctx.send(arr, Ix::i1((me + 1) % self.ring), 0u8);
        }
    }
}

/// Which instrumentation arms are on for a sweep.
#[derive(Clone, Copy)]
struct BenchConfig {
    name: &'static str,
    tracing: &'static str, // "off" | "summary" | "stream"
    recording: bool,
}

const CONFIGS: &[BenchConfig] = &[
    BenchConfig { name: "baseline", tracing: "off", recording: false },
    BenchConfig { name: "trace_summary", tracing: "summary", recording: false },
    BenchConfig { name: "trace_stream", tracing: "stream", recording: false },
    BenchConfig { name: "record", tracing: "off", recording: true },
];

/// One sweep point: `density` rings per PE, each walking `hops` hops, all
/// rings in lockstep so every virtual timestep carries `density` tasks per
/// PE. Returns (tasks executed, final-state digest).
fn run_point(cfg: BenchConfig, density: usize, hops: u64) -> (u64, u64) {
    let mut b = Runtime::builder(MachineConfig::homogeneous(PES));
    match cfg.tracing {
        "off" => {}
        "summary" => b = b.tracing(TraceConfig::summary_only()),
        "stream" => {
            b = b
                .tracing(TraceConfig::summary_only())
                .trace_sink(Box::new(CountingSink::new()));
        }
        other => panic!("unknown tracing arm {other}"),
    }
    if cfg.recording {
        b = b.record(ReplayConfig::with_digest_every(1 << 20));
    }
    let mut rt = b.build();
    let arr = rt.create_array::<Relay>("relay");
    let n = (density * PES) as i64;
    for i in 0..n {
        rt.insert(
            arr,
            Ix::i1(i),
            Relay { ring: n, hops_left: hops, fired: 0 },
            Some(i as usize % PES),
        );
    }
    for i in 0..n {
        rt.send(arr, Ix::i1(i), 0u8);
    }
    let s = rt.run();
    let mut digest: u64 = 0xcbf29ce484222325;
    for (obj, d) in rt.state_digest() {
        for b in (obj.ix.stable_hash() ^ d).to_le_bytes() {
            digest = (digest ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    (s.entries, digest)
}

struct Point {
    density: usize,
    tasks: u64,
    wall_s: f64,
    ns_per_task: f64,
}

/// Sweep one config across densities at a roughly fixed total task count.
/// Each point: best-of-two same-seed runs, digests must agree.
fn sweep(cfg: BenchConfig, densities: &[usize], total_tasks: u64) -> Vec<Point> {
    let mut out = Vec::new();
    for &d in densities {
        let chares = (d * PES) as u64;
        let hops = (total_tasks / chares).max(4);
        let t0 = Instant::now();
        let (tasks1, dig1) = run_point(cfg, d, hops);
        let w1 = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (tasks2, dig2) = run_point(cfg, d, hops);
        let w2 = t1.elapsed().as_secs_f64();
        assert_eq!(dig1, dig2, "{}: same-seed digest diverged at density {d}", cfg.name);
        assert_eq!(tasks1, tasks2, "{}: task counts diverged at density {d}", cfg.name);
        let wall = w1.min(w2).max(1e-9);
        out.push(Point {
            density: d,
            tasks: tasks1,
            wall_s: wall,
            ns_per_task: wall * 1e9 / tasks1 as f64,
        });
    }
    out
}

fn write_json(results: &[(BenchConfig, Vec<Point>)]) -> std::io::Result<std::path::PathBuf> {
    let root = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::PathBuf::from(m).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    };
    let path = root.join("BENCH_overhead.json");
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let baseline_metg = results
        .iter()
        .find(|(c, _)| c.name == "baseline")
        .map(|(_, pts)| metg(pts))
        .expect("baseline config present");
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"overhead\",");
    let _ = writeln!(j, "  \"mode\": \"full\",");
    let _ = writeln!(
        j,
        "  \"note\": \"Task-Bench-style METG: ns_per_task is host overhead per zero-work task; for an overhead-additive runtime this equals METG at 50% efficiency. Swept over task density (tasks/PE/timestep). Host is a 1-core VM with steal-time noise; each point keeps the faster of two digest-checked runs, absolute numbers still move ~±30% run to run.\","
    );
    let _ = writeln!(j, "  \"host_cores\": {host_cores},");
    let _ = writeln!(j, "  \"pes\": {PES},");
    let _ = writeln!(j, "  \"configs\": [");
    for (i, (cfg, pts)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let m = metg(pts);
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", cfg.name);
        let _ = writeln!(j, "      \"tracing\": \"{}\",", cfg.tracing);
        let _ = writeln!(j, "      \"recording\": {},", cfg.recording);
        let _ = writeln!(j, "      \"points\": [");
        for (k, p) in pts.iter().enumerate() {
            let pc = if k + 1 < pts.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "        {{\"tasks_per_pe_per_step\": {}, \"tasks\": {}, \"wall_s\": {:.6}, \"ns_per_task\": {:.1}}}{pc}",
                p.density, p.tasks, p.wall_s, p.ns_per_task
            );
        }
        let _ = writeln!(j, "      ],");
        let _ = writeln!(j, "      \"metg_50_ns\": {:.1},", m);
        let _ = writeln!(j, "      \"overhead_vs_baseline\": {:.3}", m / baseline_metg);
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&path, j)?;
    Ok(path)
}

/// METG(50%) of a swept config: the best (smallest) per-task overhead the
/// runtime reaches across the density sweep.
fn metg(pts: &[Point]) -> f64 {
    pts.iter().map(|p| p.ns_per_task).fold(f64::INFINITY, f64::min)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (densities, total): (&[usize], u64) =
        if smoke { (&[1, 16], 40_000) } else { (&[1, 4, 16, 64], 400_000) };

    println!("== runtime overhead (METG) per instrumentation config");
    println!(
        "  {:<14} {:>8} {:>9} {:>9} {:>12}",
        "config", "density", "tasks", "wall_s", "ns/task"
    );
    let mut results = Vec::new();
    for &cfg in CONFIGS {
        let pts = sweep(cfg, densities, total);
        for p in &pts {
            println!(
                "  {:<14} {:>8} {:>9} {:>9.3} {:>12.1}",
                cfg.name, p.density, p.tasks, p.wall_s, p.ns_per_task
            );
        }
        println!("  {:<14} METG(50%) = {:.0} ns/task", cfg.name, metg(&pts));
        results.push((cfg, pts));
    }

    // Self-checks, smoke and full alike: every arm measured, sane numbers.
    assert!(results.len() >= 3, "need >= 3 instrumentation configs");
    for (cfg, pts) in &results {
        assert_eq!(pts.len(), densities.len(), "{}: missing sweep points", cfg.name);
        for p in pts {
            assert!(p.ns_per_task.is_finite() && p.ns_per_task > 0.0);
            assert!(p.tasks > 0);
        }
    }

    if smoke {
        println!("smoke ok: {} configs × {} densities", results.len(), densities.len());
    } else {
        let path = write_json(&results).expect("write BENCH_overhead.json");
        println!("wrote {}", path.display());
    }
}
