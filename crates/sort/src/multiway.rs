//! The MPI-style multiway-merge sample sort baseline.
//!
//! This is the sort the paper's CHARM cosmology code used before the
//! interop offload: a *bulk-synchronous* sample sort. Every phase is a
//! barrier; the splitter phase funnels samples through a root; the
//! all-to-all is synchronous. It is executed for real (so correctness is
//! testable) and costed phase-by-phase on the same machine model the
//! runtime uses, which is what makes it a fair baseline for Fig. 7.
//!
//! Why it stops scaling (visible in the cost model):
//! * the root gathers `P × s` samples and sorts them — O(P) work and
//!   O(P·s) bytes into one endpoint,
//! * the synchronous all-to-all pays `(P−1)·α` per PE with no overlap,
//! * every phase barrier adds `log P` latencies that asynchronous
//!   message-driven execution would hide.

use charm_machine::{MachineConfig, NetworkModel, SimTime};

/// Result of an [`mpi_multiway`] run.
#[derive(Debug)]
pub struct MultiwayResult {
    /// Sorted keys, one bucket per rank.
    pub buckets: Vec<Vec<u64>>,
    /// Modeled time of the bulk-synchronous execution.
    pub time: SimTime,
    /// Time attributable to the root's sample-sort bottleneck.
    pub root_time: SimTime,
}

/// Samples taken per rank for the splitter phase.
const SAMPLES_PER_RANK: usize = 16;
const SORT_FLOPS: f64 = 6.0;
const SCAN_FLOPS: f64 = 8.0;
const MERGE_FLOPS: f64 = 4.0;

/// Execute and cost an MPI-style multiway-merge sample sort of `keys`
/// (one vector per rank) on `machine`.
pub fn mpi_multiway(machine: &MachineConfig, keys: Vec<Vec<u64>>) -> MultiwayResult {
    let p = keys.len();
    assert!(p >= 1);
    let mut net = NetworkModel::new(machine.network.clone(), 1);
    let flops = machine.flops_per_sec;
    let secs = |work: f64| SimTime::from_secs_f64(work / flops);
    let barrier = {
        let depth = (p.max(2) as f64).log2().ceil() as u64;
        let hop = net.delay(0, 1.min(p - 1), 64, 0);
        SimTime(hop.0 * depth)
    };

    let mut time = SimTime::ZERO;

    // Phase 1: local sort (all ranks in parallel → max cost).
    let mut sorted: Vec<Vec<u64>> = keys;
    let mut max_local = SimTime::ZERO;
    for k in sorted.iter_mut() {
        let n = k.len() as f64;
        k.sort_unstable();
        max_local = max_local.max(secs(n * SORT_FLOPS * n.max(2.0).log2()));
    }
    time += max_local + barrier;

    // Phase 2: sample gather at root; root sorts P·s samples and picks
    // P−1 splitters; broadcast.
    let mut samples: Vec<u64> = Vec::with_capacity(p * SAMPLES_PER_RANK);
    for k in &sorted {
        if k.is_empty() {
            continue;
        }
        for j in 0..SAMPLES_PER_RANK {
            samples.push(k[(j * k.len()) / SAMPLES_PER_RANK]);
        }
    }
    samples.sort_unstable();
    let splitters: Vec<u64> = (1..p)
        .map(|i| {
            if samples.is_empty() {
                u64::MAX / p as u64 * i as u64
            } else {
                samples[(i * samples.len()) / p]
            }
        })
        .collect();
    // Gather: P messages of s·8 bytes converge on the root (serialized at
    // its NIC), then the root's sort, then a broadcast.
    let gather_bytes = SAMPLES_PER_RANK * 8;
    let mut gather = SimTime::ZERO;
    for src in 1..p {
        gather += net.delay(src, 0, gather_bytes, src as u64);
    }
    let ns = (p * SAMPLES_PER_RANK) as f64;
    let root_sort = secs(ns * SORT_FLOPS * ns.max(2.0).log2());
    let bcast = {
        let depth = (p.max(2) as f64).log2().ceil() as u64;
        let hop = net.delay(0, 1.min(p - 1), (p - 1) * 8, 1);
        SimTime(hop.0 * depth)
    };
    let root_time = gather + root_sort;
    time += root_time + bcast + barrier;

    // Phase 3: synchronous all-to-all — every rank serializes P−1 sends.
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut max_rank_a2a = SimTime::ZERO;
    for k in sorted.iter() {
        let mut cost = secs(k.len() as f64 * SCAN_FLOPS);
        let mut b = 0usize;
        let mut part_sizes = vec![0usize; p];
        for &key in k {
            while b < splitters.len() && key >= splitters[b] {
                b += 1;
            }
            part_sizes[b] += 1;
        }
        for (dst, &sz) in part_sizes.iter().enumerate() {
            if sz > 0 {
                // Synchronous pairwise exchange: sender pays the full
                // round-trip-ish cost per partner (no overlap).
                cost += net.delay(0, dst.max(1).min(p - 1), sz * 8, dst as u64);
            }
        }
        max_rank_a2a = max_rank_a2a.max(cost);
    }
    // Actually move the data.
    for k in &sorted {
        let mut b = 0usize;
        for &key in k {
            while b < splitters.len() && key >= splitters[b] {
                b += 1;
            }
            buckets[b].push(key);
        }
        // b resets per source rank
    }
    time += max_rank_a2a + barrier;

    // Phase 4: P-way merge of received runs.
    let mut max_merge = SimTime::ZERO;
    for bkt in buckets.iter_mut() {
        let n = bkt.len() as f64;
        bkt.sort_unstable();
        max_merge = max_merge.max(secs(n * MERGE_FLOPS * (p.max(2) as f64).log2()));
    }
    time += max_merge + barrier;

    MultiwayResult {
        buckets,
        time,
        root_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{skewed_keys, verify_sorted};
    use charm_machine::MachineConfig;

    #[test]
    fn multiway_sorts_correctly() {
        let m = MachineConfig::homogeneous(8);
        let keys = skewed_keys(8, 400, 3);
        let orig = keys.clone();
        let r = mpi_multiway(&m, keys);
        verify_sorted(&orig, &r.buckets).expect("valid sort");
    }

    #[test]
    fn multiway_handles_empty_and_single() {
        let m = MachineConfig::homogeneous(4);
        let r = mpi_multiway(&m, vec![vec![], vec![3], vec![], vec![1]]);
        let flat: Vec<u64> = r.buckets.iter().flatten().copied().collect();
        assert_eq!(flat, vec![1, 3]);
    }

    #[test]
    fn per_source_bucket_pointer_bug_guard() {
        // Keys from *different* ranks must each restart the splitter scan.
        let m = MachineConfig::homogeneous(2);
        let keys = vec![vec![10u64, 20], vec![1u64, 2]];
        let orig = keys.clone();
        let r = mpi_multiway(&m, keys);
        verify_sorted(&orig, &r.buckets).expect("low keys from rank 1 kept");
    }

    #[test]
    fn cost_grows_superlinearly_with_ranks() {
        // Fixed total problem size: the root bottleneck + sync all-to-all
        // make the *sort phase* more expensive at higher P — the Fig. 7
        // effect (23% of step time at 4096 cores).
        let total = 1 << 14;
        let time_at = |p: usize| {
            let m = MachineConfig::homogeneous(p);
            let keys = skewed_keys(p, total / p, 5);
            mpi_multiway(&m, keys).time
        };
        let t64 = time_at(64);
        let t512 = time_at(512);
        assert!(
            t512 > t64,
            "strong scaling must *invert* for the MPI sort: t64={t64} t512={t512}"
        );
    }
}
