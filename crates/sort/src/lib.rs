//! # charm-sort — scalable parallel sorting (§III-G, paper refs 26/27)
//!
//! The paper's interoperation study offloads the global particle sort of an
//! MPI cosmology code (CHARM) to Charm++'s *histogram sort* library,
//! removing a scalability bottleneck: 23 % of total time spent sorting at
//! 4096 cores drops to 2 % (Fig. 7). This crate provides both sides of that
//! comparison:
//!
//! * [`hist_sort`] — HistSort (Solomonik & Kalé, IPDPS'10) running on the
//!   charm-rs runtime: iterative splitter refinement via histogram
//!   reductions, then fully asynchronous all-to-all key exchange. Sorting
//!   needs "asynchronous and unexpected messages", which is why it "suits
//!   Charm++ more".
//! * [`mpi_multiway`] — the MPI-style multiway-merge sort baseline: a
//!   bulk-synchronous sample sort with a root-driven splitter phase and a
//!   synchronous all-to-all, costed on the same machine model (and executed
//!   for real to verify correctness).

mod histsort;
mod multiway;

pub use histsort::{hist_sort, HistSortResult};
pub use multiway::{mpi_multiway, MultiwayResult};

/// Check that `buckets` form a globally sorted, complete permutation of
/// `original` (each bucket sorted; bucket boundaries ordered).
pub fn verify_sorted(original: &[Vec<u64>], buckets: &[Vec<u64>]) -> Result<(), String> {
    let mut input: Vec<u64> = original.iter().flatten().copied().collect();
    let mut output: Vec<u64> = buckets.iter().flatten().copied().collect();
    if input.len() != output.len() {
        return Err(format!(
            "key count changed: {} in, {} out",
            input.len(),
            output.len()
        ));
    }
    for (b, bucket) in buckets.iter().enumerate() {
        if bucket.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("bucket {b} not internally sorted"));
        }
    }
    for w in buckets.windows(2) {
        if let (Some(&hi), Some(&lo)) = (w[0].last(), w[1].first()) {
            if hi > lo {
                return Err("bucket boundaries out of order".into());
            }
        }
    }
    input.sort_unstable();
    output.sort_unstable();
    if input != output {
        return Err("output is not a permutation of the input".into());
    }
    Ok(())
}

/// Generate a skewed key distribution (clustered particles): `frac_hot` of
/// keys land in the bottom 1/16 of the key space — the non-uniform particle
/// distribution that forces CHARM to re-sort every step.
pub fn skewed_keys(num_pes: usize, keys_per_pe: usize, seed: u64) -> Vec<Vec<u64>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    (0..num_pes)
        .map(|pe| {
            let mut rng = StdRng::seed_from_u64(seed ^ (pe as u64).wrapping_mul(0x9E3779B9));
            (0..keys_per_pe)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        rng.gen_range(0..u64::MAX / 16)
                    } else {
                        rng.gen::<u64>()
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_accepts_correct_output() {
        let input = vec![vec![5, 1], vec![9, 3]];
        let buckets = vec![vec![1, 3], vec![5, 9]];
        assert!(verify_sorted(&input, &buckets).is_ok());
    }

    #[test]
    fn verify_rejects_lost_keys() {
        let input = vec![vec![5, 1], vec![9, 3]];
        let buckets = vec![vec![1, 3], vec![5]];
        assert!(verify_sorted(&input, &buckets).is_err());
    }

    #[test]
    fn verify_rejects_unsorted_bucket() {
        let input = vec![vec![5, 1]];
        let buckets = vec![vec![5, 1]];
        assert!(verify_sorted(&input, &buckets).is_err());
    }

    #[test]
    fn verify_rejects_boundary_violation() {
        let input = vec![vec![5, 1], vec![9, 3]];
        let buckets = vec![vec![3, 5], vec![1, 9]];
        assert!(verify_sorted(&input, &buckets).is_err());
    }

    #[test]
    fn skewed_keys_are_skewed_and_deterministic() {
        let a = skewed_keys(4, 1000, 7);
        let b = skewed_keys(4, 1000, 7);
        assert_eq!(a, b);
        let low = a
            .iter()
            .flatten()
            .filter(|&&k| k < u64::MAX / 16)
            .count();
        let total = 4 * 1000;
        assert!(
            low > total / 3,
            "bottom sliver should be crowded: {low}/{total}"
        );
    }
}
