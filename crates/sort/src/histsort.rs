//! HistSort: histogram sort on the charm-rs runtime (ref. [27]).
//!
//! One `Sorter` chare per PE holds its local keys. A singleton `SortMain`
//! refines P−1 splitters by repeated *histogramming*: it broadcasts probe
//! keys, every sorter counts local keys below each probe (binary search on
//! its presorted keys), a vector reduction sums the counts, and each
//! unresolved splitter's interval is bisected toward its target rank. Once
//! all splitters hit their tolerance, sorters exchange keys in one fully
//! asynchronous all-to-all and merge what they receive.

use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, RedOp, RedValue, Runtime, SimTime, SysEvent,
};
use charm_pup::{Pup, Puper};

/// Result of a [`hist_sort`] invocation.
#[derive(Debug)]
pub struct HistSortResult {
    /// Sorted keys, one bucket per PE, globally ordered across buckets.
    pub buckets: Vec<Vec<u64>>,
    /// Virtual time the sort took.
    pub time: SimTime,
    /// Histogramming rounds until all splitters converged.
    pub rounds: u64,
    /// Largest bucket / ideal bucket size (load balance of the output).
    pub bucket_imbalance: f64,
}

/// Flop-cost constants (per key comparison-ish unit).
const SORT_FLOPS: f64 = 6.0;
const SCAN_FLOPS: f64 = 8.0;
const MERGE_FLOPS: f64 = 4.0;

// ---------------------------------------------------------------------------

#[derive(Default)]
struct Sorter {
    keys: Vec<u64>,
    incoming: Vec<Vec<u64>>,
    expected_total: u64,
    splitters: Vec<u64>,
    presorted: bool,
    main_ix: i64,
}

impl Pup for Sorter {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.keys);
        p.p(&mut self.incoming);
        p.p(&mut self.expected_total);
        p.p(&mut self.splitters);
        p.p(&mut self.presorted);
        p.p(&mut self.main_ix);
    }
}

enum SorterMsg {
    /// Count keys below each probe; contribute the histogram.
    Histogram { round: u32, probes: Vec<u64> },
    /// Final splitters: partition and ship keys; expect `expected[you]`.
    Exchange {
        splitters: Vec<u64>,
        expected: Vec<u64>,
    },
    /// Keys destined for this bucket.
    Keys(Vec<u64>),
}

impl Pup for SorterMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            SorterMsg::Histogram { .. } => 0,
            SorterMsg::Exchange { .. } => 1,
            SorterMsg::Keys(_) => 2,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => SorterMsg::Histogram {
                    round: 0,
                    probes: Vec::new(),
                },
                1 => SorterMsg::Exchange {
                    splitters: Vec::new(),
                    expected: Vec::new(),
                },
                2 => SorterMsg::Keys(Vec::new()),
                x => panic!("bad SorterMsg tag {x}"),
            };
        }
        match self {
            SorterMsg::Histogram { round, probes } => {
                p.p(round);
                p.p(probes);
            }
            SorterMsg::Exchange {
                splitters,
                expected,
            } => {
                p.p(splitters);
                p.p(expected);
            }
            SorterMsg::Keys(k) => p.p(k),
        }
    }
}

impl Default for SorterMsg {
    fn default() -> Self {
        SorterMsg::Keys(Vec::new())
    }
}

impl Clone for SorterMsg {
    fn clone(&self) -> Self {
        match self {
            SorterMsg::Histogram { round, probes } => SorterMsg::Histogram {
                round: *round,
                probes: probes.clone(),
            },
            SorterMsg::Exchange {
                splitters,
                expected,
            } => SorterMsg::Exchange {
                splitters: splitters.clone(),
                expected: expected.clone(),
            },
            SorterMsg::Keys(k) => SorterMsg::Keys(k.clone()),
        }
    }
}

impl Sorter {
    fn main_cb(&self, ctx: &Ctx<'_>) -> Callback {
        Callback::ToChare {
            array: charm_core::ArrayId(ctx.my_id().array.0 + 1),
            ix: Ix::i1(self.main_ix),
        }
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_>) {
        let have: u64 = self.keys.len() as u64 + self.incoming.iter().map(|v| v.len() as u64).sum::<u64>();
        if self.expected_total != u64::MAX && have >= self.expected_total {
            // Merge the received runs with the kept keys.
            let mut total: Vec<u64> = std::mem::take(&mut self.keys);
            for run in self.incoming.drain(..) {
                total.extend(run);
            }
            ctx.work(total.len() as f64 * MERGE_FLOPS * (self.splitters.len().max(2) as f64).log2());
            total.sort_unstable();
            self.keys = total;
            let me = ArrayProxy::<Sorter>::from_id(ctx.my_id().array);
            ctx.contribute(
                me,
                u32::MAX,
                RedValue::I64(1),
                RedOp::Sum,
                self.main_cb(ctx),
            );
        }
    }
}

impl Chare for Sorter {
    type Msg = SorterMsg;

    fn on_message(&mut self, msg: SorterMsg, ctx: &mut Ctx<'_>) {
        match msg {
            SorterMsg::Histogram { round, probes } => {
                if !self.presorted {
                    // One-time local sort (part of the real algorithm).
                    let n = self.keys.len() as f64;
                    ctx.work(n * SORT_FLOPS * n.max(2.0).log2());
                    self.keys.sort_unstable();
                    self.presorted = true;
                }
                ctx.work(probes.len() as f64 * SCAN_FLOPS * (self.keys.len().max(2) as f64).log2());
                let counts: Vec<i64> = probes
                    .iter()
                    .map(|&probe| self.keys.partition_point(|&k| k < probe) as i64)
                    .collect();
                let me = ArrayProxy::<Sorter>::from_id(ctx.my_id().array);
                ctx.contribute(me, round, RedValue::VecI64(counts), RedOp::Sum, self.main_cb(ctx));
            }
            SorterMsg::Exchange {
                splitters,
                expected,
            } => {
                self.splitters = splitters;
                let my_bucket = match ctx.my_index() {
                    Ix::I1(i) => i as usize,
                    other => panic!("sorter index {other}"),
                };
                self.expected_total = expected[my_bucket];
                // Partition the presorted keys by splitter and ship.
                ctx.work(self.keys.len() as f64 * SCAN_FLOPS);
                let me = ArrayProxy::<Sorter>::from_id(ctx.my_id().array);
                let keys = std::mem::take(&mut self.keys);
                let nb = self.splitters.len() + 1;
                let mut parts: Vec<Vec<u64>> = vec![Vec::new(); nb];
                let mut b = 0usize;
                for k in keys {
                    while b < self.splitters.len() && k >= self.splitters[b] {
                        b += 1;
                    }
                    // keys are presorted, so b only moves forward
                    parts[b].push(k);
                }
                for (bucket, part) in parts.into_iter().enumerate() {
                    if bucket == my_bucket {
                        self.keys = part;
                    } else if !part.is_empty() {
                        ctx.send(me, Ix::i1(bucket as i64), SorterMsg::Keys(part));
                    }
                }
                self.maybe_finish(ctx);
            }
            SorterMsg::Keys(k) => {
                self.incoming.push(k);
                self.maybe_finish(ctx);
            }
        }
    }

    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

// ---------------------------------------------------------------------------

#[derive(Default)]
struct SortMain {
    num_buckets: u64,
    total_keys: u64,
    tolerance: f64,
    /// Per-splitter search interval (lo, hi) in key space and resolved value.
    lo: Vec<u64>,
    hi: Vec<u64>,
    resolved: Vec<Option<u64>>,
    /// Probe → splitter mapping of the in-flight round.
    probe_for: Vec<u64>,
    round: u32,
    rounds_done: u64,
}

impl Pup for SortMain {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.num_buckets,
            self.total_keys,
            self.tolerance,
            self.lo,
            self.hi,
            self.resolved,
            self.probe_for,
            self.round,
            self.rounds_done
        );
    }
}

impl SortMain {
    fn sorters(&self, ctx: &Ctx<'_>) -> ArrayProxy<Sorter> {
        ArrayProxy::from_id(charm_core::ArrayId(ctx.my_id().array.0 - 1))
    }

    fn target_rank(&self, splitter: usize) -> u64 {
        ((splitter as u64 + 1) * self.total_keys) / self.num_buckets
    }

    fn send_round(&mut self, ctx: &mut Ctx<'_>) {
        let mut probes = Vec::new();
        self.probe_for.clear();
        for s in 0..self.resolved.len() {
            if self.resolved[s].is_none() {
                let mid = self.lo[s] + (self.hi[s] - self.lo[s]) / 2;
                probes.push(mid);
                self.probe_for.push(s as u64);
            }
        }
        if probes.is_empty() {
            self.finish_probing(ctx);
            return;
        }
        self.round += 1;
        self.rounds_done += 1;
        ctx.broadcast(
            self.sorters(ctx),
            SorterMsg::Histogram {
                round: self.round,
                probes,
            },
        );
    }

    fn finish_probing(&mut self, ctx: &mut Ctx<'_>) {
        // Independently bisected splitters can land fractionally out of
        // order within the tolerance; sort to restore monotonicity.
        let mut splitters: Vec<u64> =
            self.resolved.iter().map(|r| r.expect("resolved")).collect();
        splitters.sort_unstable();
        for (r, s) in self.resolved.iter_mut().zip(&splitters) {
            *r = Some(*s);
        }
        // Expected bucket sizes come from the splitters' achieved ranks; we
        // recompute them exactly with one final histogram round tagged 0.
        ctx.broadcast(
            self.sorters(ctx),
            SorterMsg::Histogram {
                round: 0,
                probes: splitters,
            },
        );
    }

    fn on_histogram(&mut self, tag: u32, counts: &[i64], ctx: &mut Ctx<'_>) {
        if tag == 0 {
            // Final exact ranks of the chosen splitters → bucket sizes.
            let splitters: Vec<u64> = self.resolved.iter().map(|r| r.expect("resolved")).collect();
            let mut expected = Vec::with_capacity(self.num_buckets as usize);
            let mut prev = 0i64;
            for &c in counts {
                expected.push((c - prev) as u64);
                prev = c;
            }
            expected.push(self.total_keys - prev as u64);
            ctx.log_metric("histsort_rounds", self.rounds_done as f64);
            ctx.broadcast(
                self.sorters(ctx),
                SorterMsg::Exchange {
                    splitters,
                    expected,
                },
            );
            return;
        }
        // Bisection update for each probed splitter.
        let tol = (self.tolerance * self.total_keys as f64 / self.num_buckets as f64).max(1.0) as u64;
        for (k, &s) in self.probe_for.clone().iter().enumerate() {
            let s = s as usize;
            let count = counts[k] as u64;
            let probe = self.lo[s] + (self.hi[s] - self.lo[s]) / 2;
            let target = self.target_rank(s);
            if count.abs_diff(target) <= tol || self.hi[s] - self.lo[s] <= 1 {
                self.resolved[s] = Some(probe);
            } else if count < target {
                self.lo[s] = probe;
            } else {
                self.hi[s] = probe;
            }
        }
        self.send_round(ctx);
    }
}

enum MainMsg {
    Start {
        num_buckets: u64,
        total_keys: u64,
        tolerance: f64,
    },
}

impl Pup for MainMsg {
    fn pup(&mut self, p: &mut Puper) {
        let MainMsg::Start {
            num_buckets,
            total_keys,
            tolerance,
        } = self;
        p.p(num_buckets);
        p.p(total_keys);
        p.p(tolerance);
    }
}

impl Default for MainMsg {
    fn default() -> Self {
        MainMsg::Start {
            num_buckets: 0,
            total_keys: 0,
            tolerance: 0.0,
        }
    }
}

impl Chare for SortMain {
    type Msg = MainMsg;

    fn on_message(&mut self, msg: MainMsg, ctx: &mut Ctx<'_>) {
        let MainMsg::Start {
            num_buckets,
            total_keys,
            tolerance,
        } = msg;
        self.num_buckets = num_buckets;
        self.total_keys = total_keys;
        self.tolerance = tolerance;
        let n = num_buckets as usize - 1;
        self.lo = vec![0; n];
        self.hi = vec![u64::MAX; n];
        self.resolved = vec![None; n];
        if n == 0 {
            // Single bucket: nothing to split; trigger the exchange with no
            // splitters so the lone sorter just sorts locally.
            ctx.broadcast(
                self.sorters(ctx),
                SorterMsg::Exchange {
                    splitters: Vec::new(),
                    expected: vec![total_keys],
                },
            );
            return;
        }
        self.send_round(ctx);
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { tag, value } = ev {
            if tag == u32::MAX {
                // All sorters merged: done.
                ctx.log_metric("histsort_done", 1.0);
                ctx.exit();
            } else {
                self.on_histogram(tag, value.as_vec_i64(), ctx);
            }
        }
    }
}

// ---------------------------------------------------------------------------

/// Run HistSort on `rt` over `keys` (one input vector per PE; the bucket
/// count equals the PE count). Returns sorted buckets plus timing.
///
/// Reusable from interop contexts: uses uniquely named arrays, clears the
/// exit flag afterwards, and leaves other arrays untouched.
pub fn hist_sort(rt: &mut Runtime, keys: Vec<Vec<u64>>, tolerance: f64) -> HistSortResult {
    let p = rt.num_pes();
    assert_eq!(keys.len(), p, "one key vector per PE");
    let stamp = rt.now().as_nanos();
    let sorters: ArrayProxy<Sorter> =
        rt.create_array(&format!("histsort_sorters_{stamp}_{p}"));
    let main: ArrayProxy<SortMain> = rt.create_array(&format!("histsort_main_{stamp}_{p}"));
    assert_eq!(main.id().0, sorters.id().0 + 1, "main follows sorters");

    let total: u64 = keys.iter().map(|k| k.len() as u64).sum();
    for (pe, k) in keys.into_iter().enumerate() {
        rt.insert(
            sorters,
            Ix::i1(pe as i64),
            Sorter {
                keys: k,
                expected_total: u64::MAX,
                main_ix: 0,
                ..Sorter::default()
            },
            Some(pe),
        );
    }
    rt.insert(main, Ix::i1(0), SortMain::default(), Some(0));

    let t0 = rt.now();
    rt.send(
        main,
        Ix::i1(0),
        MainMsg::Start {
            num_buckets: p as u64,
            total_keys: total,
            tolerance,
        },
    );
    rt.run();
    rt.clear_exit();
    let time = rt.now() - t0;

    let mut buckets = Vec::with_capacity(p);
    for pe in 0..p {
        let b = rt
            .inspect(sorters, &Ix::i1(pe as i64), |s: &Sorter| s.keys.clone())
            .expect("sorter exists");
        buckets.push(b);
    }
    let rounds = rt
        .metric("histsort_rounds")
        .last()
        .map(|x| x.1 as u64)
        .unwrap_or(0);
    let ideal = total as f64 / p as f64;
    let imbalance = buckets
        .iter()
        .map(|b| b.len() as f64 / ideal.max(1.0))
        .fold(0.0, f64::max);
    HistSortResult {
        buckets,
        time,
        rounds,
        bucket_imbalance: imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{skewed_keys, verify_sorted};

    #[test]
    fn sorts_uniform_keys() {
        let mut rt = Runtime::homogeneous(8);
        let keys: Vec<Vec<u64>> = (0..8)
            .map(|pe| {
                (0..500u64)
                    .map(|i| (i * 2654435761).wrapping_mul(pe + 1))
                    .collect()
            })
            .collect();
        let orig = keys.clone();
        let r = hist_sort(&mut rt, keys, 0.05);
        verify_sorted(&orig, &r.buckets).expect("valid sort");
        assert!(r.rounds > 0);
        assert!(
            r.bucket_imbalance < 1.2,
            "buckets near-equal: {}",
            r.bucket_imbalance
        );
    }

    #[test]
    fn sorts_skewed_keys() {
        let mut rt = Runtime::homogeneous(16);
        let keys = skewed_keys(16, 300, 99);
        let orig = keys.clone();
        let r = hist_sort(&mut rt, keys, 0.05);
        verify_sorted(&orig, &r.buckets).expect("valid sort");
        assert!(
            r.bucket_imbalance < 1.25,
            "skewed input still balances: {}",
            r.bucket_imbalance
        );
    }

    #[test]
    fn single_pe_degenerate_case() {
        let mut rt = Runtime::homogeneous(1);
        let keys = vec![vec![5, 3, 9, 1]];
        let r = hist_sort(&mut rt, keys, 0.1);
        assert_eq!(r.buckets[0], vec![1, 3, 5, 9]);
    }

    #[test]
    fn empty_input() {
        let mut rt = Runtime::homogeneous(4);
        let keys = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        let r = hist_sort(&mut rt, keys, 0.1);
        assert!(r.buckets.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn duplicate_heavy_input() {
        let mut rt = Runtime::homogeneous(4);
        let keys: Vec<Vec<u64>> = (0..4).map(|_| vec![42u64; 250]).collect();
        let orig = keys.clone();
        let r = hist_sort(&mut rt, keys, 0.05);
        verify_sorted(&orig, &r.buckets).expect("valid sort of duplicates");
        let total: usize = r.buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn can_run_twice_on_one_runtime() {
        let mut rt = Runtime::homogeneous(4);
        let k1 = skewed_keys(4, 100, 1);
        let o1 = k1.clone();
        let r1 = hist_sort(&mut rt, k1, 0.1);
        verify_sorted(&o1, &r1.buckets).unwrap();
        let k2 = skewed_keys(4, 100, 2);
        let o2 = k2.clone();
        let r2 = hist_sort(&mut rt, k2, 0.1);
        verify_sorted(&o2, &r2.buckets).unwrap();
        assert!(rt.now() > r1.time, "virtual clock advanced across calls");
    }
}
