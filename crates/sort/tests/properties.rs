//! Property tests: both parallel sorts agree with `slice::sort` on
//! arbitrary inputs and arbitrary PE counts.

use charm_core::Runtime;
use charm_machine::MachineConfig;
use charm_sort::{hist_sort, mpi_multiway, verify_sorted};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hist_sort_is_a_sort(
        num_pes in 1usize..9,
        keys in vec(vec(any::<u64>(), 0..120), 1..9),
    ) {
        let mut per_pe: Vec<Vec<u64>> = vec![Vec::new(); num_pes];
        for (i, k) in keys.into_iter().enumerate() {
            per_pe[i % num_pes].extend(k);
        }
        let orig = per_pe.clone();
        let mut rt = Runtime::homogeneous(num_pes);
        let r = hist_sort(&mut rt, per_pe, 0.1);
        prop_assert!(verify_sorted(&orig, &r.buckets).is_ok());
        let flat: Vec<u64> = r.buckets.iter().flatten().copied().collect();
        let mut expect: Vec<u64> = orig.iter().flatten().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(flat, expect);
    }

    #[test]
    fn multiway_is_a_sort(
        num_pes in 1usize..9,
        keys in vec(vec(any::<u64>(), 0..120), 1..9),
    ) {
        let mut per_pe: Vec<Vec<u64>> = vec![Vec::new(); num_pes];
        for (i, k) in keys.into_iter().enumerate() {
            per_pe[i % num_pes].extend(k);
        }
        let orig = per_pe.clone();
        let m = MachineConfig::homogeneous(num_pes);
        let r = mpi_multiway(&m, per_pe);
        prop_assert!(verify_sorted(&orig, &r.buckets).is_ok());
    }

    #[test]
    fn both_sorts_agree_on_flat_output(
        keys in vec(any::<u64>(), 0..400),
    ) {
        let num_pes = 4usize;
        let mut per_pe: Vec<Vec<u64>> = vec![Vec::new(); num_pes];
        for (i, k) in keys.iter().enumerate() {
            per_pe[i % num_pes].push(*k);
        }
        let mut rt = Runtime::homogeneous(num_pes);
        let a = hist_sort(&mut rt, per_pe.clone(), 0.1);
        let m = MachineConfig::homogeneous(num_pes);
        let b = mpi_multiway(&m, per_pe);
        let fa: Vec<u64> = a.buckets.iter().flatten().copied().collect();
        let fb: Vec<u64> = b.buckets.iter().flatten().copied().collect();
        prop_assert_eq!(fa, fb);
    }
}
