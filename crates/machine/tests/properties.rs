//! Property tests for the machine models: torus geometry, network cost
//! monotonicity, thermal stability, and event-queue ordering.

use charm_machine::{EventQueue, NetworkModel, NetworkParams, SimTime, Torus};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rank → coords → rank is the identity on any torus.
    #[test]
    fn torus_coords_bijective(dims in vec(1usize..7, 1..4)) {
        let t = Torus::new(dims);
        for r in 0..t.size() {
            prop_assert_eq!(t.rank(&t.coords(r)), r);
        }
    }

    /// Hop distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn torus_hops_is_a_metric(dims in vec(1usize..6, 1..4)) {
        let t = Torus::new(dims);
        let n = t.size();
        for a in 0..n.min(12) {
            for b in 0..n.min(12) {
                prop_assert_eq!(t.hops(a, b), t.hops(b, a));
                prop_assert_eq!(t.hops(a, b) == 0, a == b);
                for c in 0..n.min(8) {
                    prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
                }
            }
        }
    }

    /// Dimension-order routing always terminates at the destination within
    /// `ndims` steps, and every intermediate is a valid rank.
    #[test]
    fn torus_routing_terminates(dims in vec(1usize..6, 1..4), seed in any::<u64>()) {
        let t = Torus::new(dims);
        let n = t.size();
        let from = (seed % n as u64) as usize;
        let to = ((seed >> 17) % n as u64) as usize;
        let mut cur = from;
        let mut steps = 0;
        while let Some(next) = t.route_next(cur, to) {
            prop_assert!(next < n);
            cur = next;
            steps += 1;
            prop_assert!(steps <= t.ndims());
        }
        prop_assert_eq!(cur, to);
    }

    /// Exact factorization really is exact, for any n.
    #[test]
    fn torus_factored_exact(n in 1usize..10_000, ndims in 1usize..4) {
        let t = Torus::factored(n, ndims);
        prop_assert_eq!(t.size(), n);
        prop_assert_eq!(t.ndims(), ndims);
    }

    /// Without jitter, network delay is monotone in message size and
    /// invariant under (src, dst) swap on symmetric fabrics.
    #[test]
    fn network_delay_monotone(bytes_a in 0usize..1_000_000, bytes_b in 0usize..1_000_000) {
        let mut net = NetworkModel::new(NetworkParams::infiniband(), 1);
        let (small, large) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(net.delay(0, 1, small, 0) <= net.delay(0, 1, large, 0));
        prop_assert_eq!(net.delay(2, 5, small, 0), net.delay(5, 2, small, 0));
    }

    /// The event queue pops in nondecreasing time order for arbitrary
    /// insertion sequences.
    #[test]
    fn event_queue_total_order(times in vec(0u64..1_000_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }
}

#[test]
fn thermal_never_diverges() {
    use charm_machine::thermal::{ThermalConfig, ThermalModel};
    // Bounded input ⇒ bounded temperature: at full utilization forever, a
    // chip approaches (and never wildly overshoots) its steady state.
    let mut m = ThermalModel::new(ThermalConfig::fig4(), 8);
    for chip in 0..8 {
        let ss = m.steady_state_temp(chip, 1.0);
        for _ in 0..5_000 {
            let t = m.advance(chip, 0.5, 1.0);
            assert!(t.is_finite());
            assert!(t < ss + 1.0, "chip {chip}: {t} overshoots steady {ss}");
        }
        assert!((m.temp(chip) - ss).abs() < 0.5);
    }
}
