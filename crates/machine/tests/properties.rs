//! Property tests for the machine models: torus geometry, network cost
//! monotonicity, thermal stability, and event-queue ordering.

use charm_machine::{
    EventQueue, Failure, FailureKind, FailurePlan, NetworkModel, NetworkParams, SimTime, Torus,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// One scripted mutation of a [`FailurePlan`] under test: a crash push, a
/// preemption push, or a correlated multi-PE event at one timestamp.
#[derive(Debug, Clone)]
enum PlanOp {
    Crash { time: u64, pe: usize },
    Preempt { time: u64, pe: usize, warning: u64 },
    Correlated { time: u64, first_pe: usize, n: usize },
}

fn plan_op() -> impl Strategy<Value = PlanOp> {
    (0u8..3, 0u64..500, 0usize..64, 0u64..600, 1usize..5).prop_map(
        |(which, time, pe, warning, n)| match which {
            0 => PlanOp::Crash { time, pe },
            1 => PlanOp::Preempt { time, pe, warning },
            _ => PlanOp::Correlated { time, first_pe: pe, n },
        },
    )
}

fn ops_len(ops: &[PlanOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            PlanOp::Correlated { n, .. } => *n,
            _ => 1,
        })
        .sum()
}

fn apply_ops(plan: &mut FailurePlan, ops: &[PlanOp]) {
    for op in ops {
        match *op {
            PlanOp::Crash { time, pe } => plan.push(SimTime::from_secs(time), pe),
            PlanOp::Preempt { time, pe, warning } => {
                plan.push_preemption(SimTime::from_secs(time), pe, SimTime::from_secs(warning))
            }
            PlanOp::Correlated { time, first_pe, n } => {
                for k in 0..n {
                    plan.push(SimTime::from_secs(time), first_pe + k);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rank → coords → rank is the identity on any torus.
    #[test]
    fn torus_coords_bijective(dims in vec(1usize..7, 1..4)) {
        let t = Torus::new(dims);
        for r in 0..t.size() {
            prop_assert_eq!(t.rank(&t.coords(r)), r);
        }
    }

    /// Hop distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn torus_hops_is_a_metric(dims in vec(1usize..6, 1..4)) {
        let t = Torus::new(dims);
        let n = t.size();
        for a in 0..n.min(12) {
            for b in 0..n.min(12) {
                prop_assert_eq!(t.hops(a, b), t.hops(b, a));
                prop_assert_eq!(t.hops(a, b) == 0, a == b);
                for c in 0..n.min(8) {
                    prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
                }
            }
        }
    }

    /// Dimension-order routing always terminates at the destination within
    /// `ndims` steps, and every intermediate is a valid rank.
    #[test]
    fn torus_routing_terminates(dims in vec(1usize..6, 1..4), seed in any::<u64>()) {
        let t = Torus::new(dims);
        let n = t.size();
        let from = (seed % n as u64) as usize;
        let to = ((seed >> 17) % n as u64) as usize;
        let mut cur = from;
        let mut steps = 0;
        while let Some(next) = t.route_next(cur, to) {
            prop_assert!(next < n);
            cur = next;
            steps += 1;
            prop_assert!(steps <= t.ndims());
        }
        prop_assert_eq!(cur, to);
    }

    /// Exact factorization really is exact, for any n.
    #[test]
    fn torus_factored_exact(n in 1usize..10_000, ndims in 1usize..4) {
        let t = Torus::factored(n, ndims);
        prop_assert_eq!(t.size(), n);
        prop_assert_eq!(t.ndims(), ndims);
    }

    /// Without jitter, network delay is monotone in message size and
    /// invariant under (src, dst) swap on symmetric fabrics.
    #[test]
    fn network_delay_monotone(bytes_a in 0usize..1_000_000, bytes_b in 0usize..1_000_000) {
        let mut net = NetworkModel::new(NetworkParams::infiniband(), 1);
        let (small, large) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(net.delay(0, 1, small, 0) <= net.delay(0, 1, large, 0));
        prop_assert_eq!(net.delay(2, 5, small, 0), net.delay(5, 2, small, 0));
    }

    /// Interleaved crash/preemption/correlated pushes plus a merge leave
    /// the plan sorted by kill time, with a drift-free tie-break: every
    /// same-time group fires in the order it was inserted (pushes from this
    /// plan before merged ones), so two runs that build the same schedule
    /// see the same firing order.
    #[test]
    fn failure_plan_stays_sorted_and_stable(
        ops_a in vec(plan_op(), 0..40),
        ops_b in vec(plan_op(), 0..40),
    ) {
        let mut a = FailurePlan::none();
        apply_ops(&mut a, &ops_a);
        let mut b = FailurePlan::none();
        apply_ops(&mut b, &ops_b);

        // Reference order: stable sort by kill time over (a's inserts in
        // order, then b's) — exactly what push/merge promise.
        let mut expect: Vec<Failure> = a.events().to_vec();
        expect.extend_from_slice(b.events());
        expect.sort_by_key(|f| f.time);

        a.merge(&b);
        prop_assert_eq!(a.events().len(), ops_len(&ops_a) + ops_len(&ops_b));
        prop_assert!(a.events().windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert_eq!(a.events(), expect.as_slice());

        // Preemption metadata survives scheduling untouched.
        for f in a.events() {
            if let FailureKind::Preemption { warning } = f.kind {
                prop_assert_eq!(f.visible_at(), f.time.saturating_sub(warning));
            }
        }
    }

    /// The event queue pops in nondecreasing time order for arbitrary
    /// insertion sequences.
    #[test]
    fn event_queue_total_order(times in vec(0u64..1_000_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// The calendar backend is observationally identical to the classic
    /// binary-heap backend — same pop order, same peeks, same lengths —
    /// under arbitrary interleavings of pushes (heavy same-timestamp ties),
    /// caller-keyed pushes (out-of-order keys), single pops, whole-timestep
    /// batch pops with partial restore, and clears (which reset the
    /// tie-break sequence on both).
    #[test]
    fn calendar_matches_heap_reference(ops in vec(queue_op(), 0..120)) {
        let mut cal = EventQueue::new();
        let mut heap = EventQueue::heap_backed();
        prop_assert!(!cal.is_heap_backed());
        prop_assert!(heap.is_heap_backed());
        // Payload counter; doubles as the caller-key counter for
        // `push_keyed` (offset far above any internal sequence number, so
        // the two key spaces stay disjoint as the contract requires).
        let mut n = 0u64;
        for op in ops {
            match op {
                QueueOp::Push(dt) => {
                    // A tiny time range forces heavy ties (deep buckets).
                    let t = SimTime::from_nanos(dt as u64 % 8);
                    cal.push(t, n);
                    heap.push(t, n);
                    n += 1;
                }
                QueueOp::PushKeyed(dt) => {
                    let t = SimTime::from_nanos(dt as u64 % 8);
                    let key = (1u64 << 40) + n;
                    cal.push_keyed(t, key, n);
                    heap.push_keyed(t, key, n);
                    n += 1;
                }
                QueueOp::Pop => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
                QueueOp::Batch => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    if let Some(t) = cal.peek_time() {
                        let (mut a, mut b) = (Vec::new(), Vec::new());
                        cal.pop_batch_at_seq_into(t, &mut a);
                        heap.pop_batch_at_seq_into(t, &mut b);
                        prop_assert_eq!(&a, &b);
                        // Restore every other entry under its original key:
                        // both backends must slot them back identically.
                        for (i, &(k, p)) in a.iter().enumerate() {
                            if i % 2 == 1 {
                                cal.restore(t, k, p);
                                heap.restore(t, k, p);
                            }
                        }
                    }
                }
                QueueOp::Clear => {
                    cal.clear();
                    heap.clear();
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
        }
        // Full drain pops the exact same (time, payload) sequence.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

/// One scripted operation against both event-queue backends at once.
#[derive(Debug, Clone)]
enum QueueOp {
    Push(u8),
    PushKeyed(u8),
    Pop,
    Batch,
    Clear,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    (0u8..12, any::<u8>()).prop_map(|(which, dt)| match which {
        0..=3 => QueueOp::Push(dt),
        4..=5 => QueueOp::PushKeyed(dt),
        6..=8 => QueueOp::Pop,
        9..=10 => QueueOp::Batch,
        _ => QueueOp::Clear,
    })
}

/// `clear` bounds retained capacity on both backends, so long campaigns of
/// many simulations don't pin the high-water mark forever.
#[test]
fn event_queue_clear_caps_capacity() {
    for mut q in [EventQueue::new(), EventQueue::heap_backed()] {
        // A wide spread of distinct timestamps plus one very deep bucket.
        for i in 0..50_000u64 {
            q.push(SimTime::from_nanos(i), i);
            q.push(SimTime::from_nanos(7), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert!(
            q.capacity() <= EventQueue::<u64>::CLEAR_RETAIN_CAP,
            "retained {} entries of capacity after clear",
            q.capacity()
        );
        // And the sequence counter reset: a cleared queue orders same-time
        // pushes exactly like a fresh one.
        let t = SimTime::from_nanos(3);
        for i in 0..10u64 {
            q.push(t, i);
        }
        for i in 0..10u64 {
            assert_eq!(q.pop().expect("pushed").1, i);
        }
    }
}

#[test]
fn thermal_never_diverges() {
    use charm_machine::thermal::{ThermalConfig, ThermalModel};
    // Bounded input ⇒ bounded temperature: at full utilization forever, a
    // chip approaches (and never wildly overshoots) its steady state.
    let mut m = ThermalModel::new(ThermalConfig::fig4(), 8);
    for chip in 0..8 {
        let ss = m.steady_state_temp(chip, 1.0);
        for _ in 0..5_000 {
            let t = m.advance(chip, 0.5, 1.0);
            assert!(t.is_finite());
            assert!(t < ss + 1.0, "chip {chip}: {t} overshoots steady {ss}");
        }
        assert!((m.temp(chip) - ss).abs() < 0.5);
    }
}
