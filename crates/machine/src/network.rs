//! Interconnect cost model: latency/bandwidth (α–β) with optional torus hop
//! costs and seeded jitter.

use crate::{SimTime, Torus};

/// Static parameters of a network (cloneable machine-description half).
#[derive(Debug, Clone)]
pub struct NetworkParams {
    /// Per-message latency (the α term), one-way.
    pub alpha: SimTime,
    /// Seconds per byte (1 / bandwidth), the β term.
    pub beta_sec_per_byte: f64,
    /// Extra latency per torus hop (γ); ignored without a topology.
    pub per_hop: SimTime,
    /// Physical topology for hop counts; `None` = flat full crossbar.
    pub torus_dims: Option<Vec<usize>>,
    /// Relative jitter amplitude (0.0 = deterministic delays; 0.1 = ±10 %).
    pub jitter: f64,
    /// Fixed cost of injecting any message (send-side software overhead).
    pub injection_overhead: SimTime,
    /// Cost of a local (same-PE) delivery — scheduler queue hop only.
    pub local_delivery: SimTime,
}

impl NetworkParams {
    /// InfiniBand-like cluster fabric: ~1.5 µs latency, ~5 GB/s.
    pub fn infiniband() -> Self {
        NetworkParams {
            alpha: SimTime::from_nanos(1_500),
            beta_sec_per_byte: 1.0 / 5e9,
            per_hop: SimTime::from_nanos(0),
            torus_dims: None,
            jitter: 0.0,
            injection_overhead: SimTime::from_nanos(300),
            local_delivery: SimTime::from_nanos(80),
        }
    }

    /// BG/Q-like 5-D torus: ~2.5 µs latency, 1.8 GB/s per link.
    pub fn bgq_torus(dims: Vec<usize>) -> Self {
        NetworkParams {
            alpha: SimTime::from_nanos(2_500),
            beta_sec_per_byte: 1.0 / 1.8e9,
            per_hop: SimTime::from_nanos(60),
            torus_dims: Some(dims),
            jitter: 0.0,
            injection_overhead: SimTime::from_nanos(400),
            local_delivery: SimTime::from_nanos(80),
        }
    }

    /// Cray Gemini-like (XE6/XK7) 3-D torus: ~1.8 µs, ~3 GB/s.
    pub fn gemini_torus(dims: Vec<usize>) -> Self {
        NetworkParams {
            alpha: SimTime::from_nanos(1_800),
            beta_sec_per_byte: 1.0 / 3e9,
            per_hop: SimTime::from_nanos(100),
            torus_dims: Some(dims),
            jitter: 0.0,
            injection_overhead: SimTime::from_nanos(350),
            local_delivery: SimTime::from_nanos(80),
        }
    }

    /// Cray SeaStar-like (XT5) 3-D torus: slower than Gemini.
    pub fn seastar_torus(dims: Vec<usize>) -> Self {
        NetworkParams {
            alpha: SimTime::from_nanos(4_500),
            beta_sec_per_byte: 1.0 / 1.6e9,
            per_hop: SimTime::from_nanos(180),
            torus_dims: Some(dims),
            jitter: 0.0,
            injection_overhead: SimTime::from_nanos(600),
            local_delivery: SimTime::from_nanos(80),
        }
    }

    /// Commodity gigabit Ethernet as found in the paper's cloud testbeds:
    /// an order of magnitude worse latency than HPC fabrics (§IV-F).
    pub fn ethernet_1g() -> Self {
        NetworkParams {
            alpha: SimTime::from_micros(45),
            beta_sec_per_byte: 1.0 / 110e6,
            per_hop: SimTime::from_nanos(0),
            torus_dims: None,
            jitter: 0.15,
            injection_overhead: SimTime::from_micros(4),
            local_delivery: SimTime::from_nanos(120),
        }
    }
}

/// Running totals of network-model activity — every [`NetworkModel::delay`]
/// evaluation, whether for an application message or a modeled protocol
/// exchange (home-PE queries, LB gathers, barrier hops). Always on: two
/// integer adds per call, read by the tracing/report layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetCounters {
    /// Remote (cross-PE) delay evaluations.
    pub remote_msgs: u64,
    /// Bytes across remote delay evaluations.
    pub remote_bytes: u64,
    /// Same-PE deliveries (scheduler-queue hops only).
    pub local_msgs: u64,
}

/// The stateful network model (seeded jitter, activity counters).
///
/// Jitter is a pure function of `(seed, token)` rather than a draw from a
/// sequential RNG stream: every delay evaluation is independent of how many
/// evaluations preceded it, so a simulation sharded across worker threads
/// prices each message identically to the single-threaded run.
pub struct NetworkModel {
    params: NetworkParams,
    torus: Option<Torus>,
    jitter_seed: u64,
    counters: NetCounters,
}

/// SplitMix64 finalizer — mixes a token into 64 well-distributed bits.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl NetworkModel {
    /// Instantiate a model from parameters with a jitter seed.
    pub fn new(params: NetworkParams, seed: u64) -> Self {
        let torus = params.torus_dims.as_ref().map(|d| Torus::new(d.clone()));
        NetworkModel {
            params,
            torus,
            jitter_seed: seed ^ 0x006e_6574_776f_726b_u64,
            counters: NetCounters::default(),
        }
    }

    /// A copy of this model with zeroed counters — per-shard models start
    /// from the same pricing function but account their own traffic.
    pub fn fresh_counters_clone(&self) -> Self {
        NetworkModel {
            params: self.params.clone(),
            torus: self.torus.clone(),
            jitter_seed: self.jitter_seed,
            counters: NetCounters::default(),
        }
    }

    /// Fold another model's counters into this one (shard merge).
    pub fn absorb_counters(&mut self, other: &NetworkModel) {
        self.counters.remote_msgs += other.counters.remote_msgs;
        self.counters.remote_bytes += other.counters.remote_bytes;
        self.counters.local_msgs += other.counters.local_msgs;
    }

    /// Static parameters.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Activity totals since construction.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// One-way delivery delay for a `bytes`-byte message from `src` to `dst`.
    ///
    /// Same-PE messages cost only the scheduler hop. Jitter, when enabled,
    /// multiplies the network portion by `1 ± jitter·u` with `u ∈ [-1, 1]`
    /// derived by hashing `token` with the model seed; callers pass a
    /// deterministic per-message token (message id, collective tag, …) so
    /// the same message always sees the same perturbation.
    pub fn delay(&mut self, src: usize, dst: usize, bytes: usize, token: u64) -> SimTime {
        if src == dst {
            self.counters.local_msgs += 1;
            return self.params.local_delivery;
        }
        self.counters.remote_msgs += 1;
        self.counters.remote_bytes += bytes as u64;
        let transfer = SimTime::from_secs_f64(bytes as f64 * self.params.beta_sec_per_byte);
        let hop_cost = match &self.torus {
            Some(t) if src < t.size() && dst < t.size() => {
                let hops = t.hops(src, dst) as u64;
                SimTime(self.params.per_hop.0 * hops)
            }
            _ => SimTime::ZERO,
        };
        let base = self.params.alpha + transfer + hop_cost;
        let jittered = if self.params.jitter > 0.0 {
            // 53 mixed bits → u ∈ [0, 2) → centered to [-1, 1].
            let bits = mix64(self.jitter_seed.wrapping_add(mix64(token)));
            let unit = (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
            base * (1.0 + self.params.jitter * unit)
        } else {
            base
        };
        self.params.injection_overhead + jittered
    }

    /// Worst-case lower bound of [`delay`](Self::delay) for any remote
    /// message: the conservative-window width of the sharded engine. Every
    /// cross-PE delivery takes at least this long after its send.
    pub fn min_remote_delay(&self) -> SimTime {
        let worst = self.params.alpha * (1.0 - self.params.jitter.clamp(0.0, 1.0));
        // 2 ns guard: SimTime × f64 rounds to the nearest nanosecond, so an
        // actual jittered delay can land just under the analytic bound.
        (self.params.injection_overhead + worst).saturating_sub(SimTime::from_nanos(2))
    }

    /// Send-side CPU overhead charged to the sender for each message.
    pub fn send_overhead(&self) -> SimTime {
        self.params.injection_overhead
    }

    /// Lower bound of [`delay`](Self::delay) for the *specific* remote pair
    /// `(src, dst)`, over every byte count and jitter draw. On a torus this
    /// includes the pair's hop distance, so far-apart PEs get a strictly
    /// wider bound than [`min_remote_delay`](Self::min_remote_delay) — the
    /// per-shard-pair lookahead the sharded engine widens its windows with.
    /// `src == dst` reports the local-delivery cost.
    pub fn min_pair_delay(&self, src: usize, dst: usize) -> SimTime {
        if src == dst {
            return self.params.local_delivery;
        }
        let hop_cost = match &self.torus {
            Some(t) if src < t.size() && dst < t.size() => {
                SimTime(self.params.per_hop.0 * t.hops(src, dst) as u64)
            }
            _ => SimTime::ZERO,
        };
        let worst = (self.params.alpha + hop_cost) * (1.0 - self.params.jitter.clamp(0.0, 1.0));
        // Same 2 ns rounding guard as `min_remote_delay`.
        (self.params.injection_overhead + worst).saturating_sub(SimTime::from_nanos(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_delivery_is_cheap() {
        let mut n = NetworkModel::new(NetworkParams::infiniband(), 1);
        let local = n.delay(3, 3, 1_000_000, 0);
        let remote = n.delay(3, 4, 1_000_000, 0);
        assert!(local < remote);
        assert_eq!(local, NetworkParams::infiniband().local_delivery);
    }

    #[test]
    fn bigger_messages_cost_more() {
        let mut n = NetworkModel::new(NetworkParams::infiniband(), 1);
        assert!(n.delay(0, 1, 10, 0) < n.delay(0, 1, 1_000_000, 0));
    }

    #[test]
    fn pair_delay_bounds_actual_delay() {
        // The pairwise bound must never exceed any actual delivery delay,
        // for every preset, pair, payload, and jitter token — it is the
        // safety floor of the sharded engine's adaptive windows.
        let presets = [
            NetworkParams::infiniband(),
            NetworkParams::bgq_torus(vec![4, 4]),
            NetworkParams::gemini_torus(vec![4, 2, 2]),
            NetworkParams::ethernet_1g(),
        ];
        for p in presets {
            let mut n = NetworkModel::new(p, 7);
            for src in 0..8 {
                for dst in 0..8 {
                    if src == dst {
                        continue;
                    }
                    let floor = n.min_pair_delay(src, dst);
                    assert!(floor >= n.min_remote_delay());
                    for (bytes, token) in [(0usize, 0u64), (8, 1), (4096, 99), (1 << 20, 12345)] {
                        let d = n.delay(src, dst, bytes, token);
                        assert!(
                            d >= floor,
                            "delay {d:?} under pair floor {floor:?} ({src}->{dst})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn torus_distance_matters() {
        let mut n = NetworkModel::new(NetworkParams::bgq_torus(vec![8, 8]), 1);
        let near = n.delay(0, 1, 64, 0); // 1 hop
        let far = n.delay(0, 8 * 4 + 4, 64, 0); // (4,4): 8 hops
        assert!(near < far, "near={near} far={far}");
    }

    #[test]
    fn jitter_is_bounded_seeded_and_token_pure() {
        let p = NetworkParams::ethernet_1g();
        let mut a = NetworkModel::new(p.clone(), 7);
        let mut b = NetworkModel::new(p.clone(), 7);
        let mut det = NetworkModel::new(
            NetworkParams {
                jitter: 0.0,
                ..p.clone()
            },
            0,
        );
        let base = det.delay(0, 1, 1000, 0).saturating_sub(p.injection_overhead);
        let lo = base * (1.0 - p.jitter);
        let hi = base * (1.0 + p.jitter) + SimTime::from_nanos(2);
        let mut distinct = std::collections::HashSet::new();
        for tok in 0..100u64 {
            let da = a.delay(0, 1, 1000, tok);
            let db = b.delay(0, 1, 1000, tok);
            assert_eq!(da, db, "same (seed, token) must give identical jitter");
            let net = da.saturating_sub(p.injection_overhead);
            assert!(net + SimTime::from_nanos(2) >= lo && net <= hi, "jitter out of bounds");
            distinct.insert(da);
        }
        assert!(distinct.len() > 50, "tokens should spread the jitter");
        // Pure in the token: re-evaluating an old token after other calls
        // reproduces the original value (no hidden stream state).
        let first = a.delay(0, 1, 1000, 0);
        let again = b.delay(0, 1, 1000, 0);
        assert_eq!(first, again);
        // Every jittered delay respects the conservative window bound.
        let floor = a.fresh_counters_clone().min_remote_delay();
        for tok in 0..100u64 {
            assert!(a.delay(0, 1, 0, tok) >= floor, "delay under min_remote_delay");
        }
        // Different seeds disagree somewhere.
        let mut c = NetworkModel::new(p.clone(), 8);
        let diverged = (0..100u64).any(|tok| c.delay(0, 1, 1000, tok) != b.delay(0, 1, 1000, tok));
        assert!(diverged, "different seeds should perturb differently");
    }

    #[test]
    fn min_remote_delay_bounds_jitterless_fabrics_exactly() {
        let mut n = NetworkModel::new(NetworkParams::infiniband(), 1);
        let floor = n.min_remote_delay();
        assert!(n.delay(0, 1, 0, 0) >= floor);
        assert!(floor > SimTime::ZERO);
    }

    #[test]
    fn counters_track_delay_calls() {
        let mut n = NetworkModel::new(NetworkParams::infiniband(), 1);
        assert_eq!(n.counters(), NetCounters::default());
        n.delay(0, 0, 100, 0);
        n.delay(0, 1, 100, 1);
        n.delay(1, 2, 50, 2);
        let c = n.counters();
        assert_eq!(c.local_msgs, 1);
        assert_eq!(c.remote_msgs, 2);
        assert_eq!(c.remote_bytes, 150);
        // Shard bookkeeping: fresh clones start at zero and merge back.
        let mut shard = n.fresh_counters_clone();
        assert_eq!(shard.counters(), NetCounters::default());
        shard.delay(0, 1, 30, 3);
        n.absorb_counters(&shard);
        assert_eq!(n.counters().remote_msgs, 3);
        assert_eq!(n.counters().remote_bytes, 180);
    }

    #[test]
    fn ethernet_much_slower_than_infiniband() {
        let mut ib = NetworkModel::new(NetworkParams::infiniband(), 1);
        let mut eth = NetworkModel::new(
            NetworkParams {
                jitter: 0.0,
                ..NetworkParams::ethernet_1g()
            },
            1,
        );
        // order-of-magnitude gap on small messages, as measured in §IV-F
        assert!(eth.delay(0, 1, 64, 0).as_nanos() > 10 * ib.delay(0, 1, 64, 0).as_nanos());
    }
}
