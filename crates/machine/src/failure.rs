//! Scheduled node-failure injection (§III-B's "simulated failure" runs).

use crate::SimTime;

/// One injected crash: the node containing `pe` fails at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// When the node dies.
    pub time: SimTime,
    /// A PE on the failing node (the runtime expands this to the node's
    /// full PE range using its node size).
    pub pe: usize,
}

/// The full failure schedule for a run.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<Failure>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        FailurePlan { events: Vec::new() }
    }

    /// Build from a list of (time, pe) pairs; sorts by time.
    pub fn at(mut events: Vec<Failure>) -> Self {
        events.sort_by_key(|f| f.time);
        FailurePlan { events }
    }

    /// Add one failure at its sorted position (stable: a failure inserted
    /// at an already-occupied time lands after the existing ones).
    pub fn push(&mut self, time: SimTime, pe: usize) {
        let at = self.events.partition_point(|f| f.time <= time);
        self.events.insert(at, Failure { time, pe });
    }

    /// Merge another plan into this one, keeping time order (stable: on
    /// ties, this plan's failures come first).
    pub fn merge(&mut self, other: &FailurePlan) {
        let mut merged = Vec::with_capacity(self.events.len() + other.events.len());
        let (mut a, mut b) = (self.events.iter().peekable(), other.events.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.time <= y.time {
                        merged.push(*a.next().unwrap());
                    } else {
                        merged.push(*b.next().unwrap());
                    }
                }
                (Some(_), None) => merged.extend(a.by_ref().copied()),
                (None, Some(_)) => merged.extend(b.by_ref().copied()),
                (None, None) => break,
            }
        }
        self.events = merged;
    }

    /// All scheduled failures in time order.
    pub fn events(&self) -> &[Failure] {
        &self.events
    }

    /// True when no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_time() {
        let p = FailurePlan::at(vec![
            Failure {
                time: SimTime::from_secs(9),
                pe: 1,
            },
            Failure {
                time: SimTime::from_secs(3),
                pe: 2,
            },
        ]);
        assert_eq!(p.events()[0].pe, 2);
        assert_eq!(p.events()[1].pe, 1);
    }

    #[test]
    fn push_keeps_order() {
        let mut p = FailurePlan::none();
        assert!(p.is_empty());
        p.push(SimTime::from_secs(5), 0);
        p.push(SimTime::from_secs(1), 7);
        assert_eq!(p.events()[0].pe, 7);
        assert!(!p.is_empty());
    }

    #[test]
    fn push_inserts_at_sorted_position_stably() {
        let mut p = FailurePlan::none();
        p.push(SimTime::from_secs(3), 0);
        p.push(SimTime::from_secs(1), 1);
        p.push(SimTime::from_secs(3), 2); // tie: lands after pe 0
        p.push(SimTime::from_secs(2), 3);
        let pes: Vec<usize> = p.events().iter().map(|f| f.pe).collect();
        assert_eq!(pes, vec![1, 3, 0, 2]);
        assert!(p.events().windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn merge_interleaves_two_plans() {
        let mut a = FailurePlan::none();
        a.push(SimTime::from_secs(1), 10);
        a.push(SimTime::from_secs(4), 11);
        let mut b = FailurePlan::none();
        b.push(SimTime::from_secs(2), 20);
        b.push(SimTime::from_secs(4), 21); // tie with a's second: a first
        b.push(SimTime::from_secs(9), 22);
        a.merge(&b);
        let pes: Vec<usize> = a.events().iter().map(|f| f.pe).collect();
        assert_eq!(pes, vec![10, 20, 11, 21, 22]);
        let mut empty = FailurePlan::none();
        empty.merge(&FailurePlan::none());
        assert!(empty.is_empty());
    }
}
